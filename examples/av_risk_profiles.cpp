// Risk profiling beyond healthcare: the autonomous-vehicle steering domain.
//
// The paper motivates its framework with both healthcare and autonomous
// vehicles (and names AVs as the next evaluation domain in its future
// work). This example runs the REAL registered `av` DomainAdapter
// (src/domains/av/) through the full five-step pipeline — simulate the
// steering-sensor attack per vehicle, quantify risk, build profiles,
// cluster them into vulnerability groups, and selectively train a detector
// on the less-vulnerable cluster — the same engine, third scenario.
//
//   build/examples/av_risk_profiles
#include <algorithm>
#include <iostream>
#include <memory>

#include "core/framework.hpp"
#include "domains/registry.hpp"

int main() {
  using namespace goodones;

  const auto domain = domains::make_domain("av");
  core::FrameworkConfig config = domain->prepare(core::FrameworkConfig::fast());
  // Miniature scale so the example runs in seconds.
  config.population.train_steps = 1600;
  config.population.test_steps = 500;
  config.registry.forecaster.hidden = 10;
  config.registry.forecaster.head_hidden = 8;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 6;
  config.registry.aggregate_window_step = 40;
  config.profiling_campaign.window_step = 8;
  config.evaluation_campaign.window_step = 8;
  config.detector_benign_stride = 8;
  config.random_runs = 1;

  core::RiskProfilingFramework framework(domain, config);
  const auto& profiling = framework.profiling();
  const auto& entities = framework.entities();

  std::cout << "Steering-telemetry risk dendrograms (per subset):\n";
  for (std::size_t s = 0; s < profiling.dendrograms.size(); ++s) {
    std::vector<std::string> names;
    for (const std::size_t i : profiling.subset_members[s]) names.push_back(entities[i].name);
    std::cout << profiling.dendrograms[s].render_ascii(names) << "\n";
  }

  std::cout << "Vehicle  attack-success  mean-risk      cluster\n";
  for (std::size_t v = 0; v < entities.size(); ++v) {
    const bool more = std::find(profiling.clusters.more_vulnerable.begin(),
                                profiling.clusters.more_vulnerable.end(),
                                v) != profiling.clusters.more_vulnerable.end();
    std::cout << "  " << entities[v].name << "   "
              << profiling.train_attack_rates[v].overall_rate() << "        "
              << profiling.profiles[v].mean() << "   "
              << (more ? "more-vulnerable" : "less-vulnerable") << "\n";
  }

  // Step 5: the paper's selective-training recipe on the new domain.
  const auto eval = framework.evaluate_strategy(detect::DetectorKind::kKnn,
                                                profiling.clusters.less_vulnerable);
  std::cout << "\nkNN trained on the less-vulnerable cluster: recall "
            << eval.pooled.recall() << ", precision " << eval.pooled.precision()
            << " over all vehicles' held-out traffic.\n"
            << "\nUrban (chaotic-route) vehicles cluster apart from highway ones —\n"
               "the same vulnerability structure the BGMS case study exhibits,\n"
               "found by the same domain-agnostic risk-profiling engine.\n";
  return 0;
}
