// Risk profiling beyond healthcare: an autonomous-vehicle steering workload.
//
// The paper motivates its framework with both healthcare and autonomous
// vehicles (and names AVs as the next evaluation domain in its future
// work). This example shows the framework's domain-agnostic core — risk
// quantification plus hierarchical clustering of victim profiles — applied
// to synthetic steering-angle telemetry: some vehicles drive smooth
// highway routes (resilient), others chaotic urban routes (vulnerable to
// steering-sensor manipulation).
//
//   build/examples/av_risk_profiles
#include <cmath>
#include <iostream>
#include <vector>

#include "cluster/distance.hpp"
#include "cluster/hierarchical.hpp"
#include "common/rng.hpp"

namespace {

using namespace goodones;

/// Synthetic steering-angle trace: smooth routes have long gentle curves,
/// chaotic routes have frequent sharp maneuvers.
std::vector<double> steering_trace(double chaos, std::uint64_t seed, std::size_t steps) {
  common::Rng rng(seed);
  std::vector<double> trace(steps);
  double angle = 0.0;
  double curve = 0.0;
  for (std::size_t t = 0; t < steps; ++t) {
    if (rng.bernoulli(0.02 + 0.2 * chaos)) {
      curve = rng.normal(0.0, 5.0 + 25.0 * chaos);  // new maneuver
    }
    angle += 0.2 * (curve - angle) + rng.normal(0.0, 0.3 + 2.0 * chaos);
    trace[t] = angle;
  }
  return trace;
}

/// Adversary injects a steering offset; the "model" (a smoothing
/// controller) follows it more readily on chaotic routes, exactly like the
/// glucose forecaster follows manipulated CGM on dysregulated patients.
double controller_response(const std::vector<double>& window, double chaos) {
  double response = 0.0;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < window.size(); ++i) {
    const double w = static_cast<double>(i + 1);
    response += w * window[i];
    weight_sum += w;
  }
  // Smooth-route controllers damp abrupt inputs harder.
  return (0.4 + 0.6 * chaos) * response / weight_sum;
}

}  // namespace

int main() {
  constexpr std::size_t kVehicles = 8;
  constexpr std::size_t kSteps = 2000;
  constexpr std::size_t kWindow = 10;
  constexpr double kInjectedOffset = 30.0;  // degrees, the manipulated input
  constexpr double kDangerousSwerve = 12.0; // controller output that causes harm

  // Vehicles 0-4: highway (low chaos); 5-7: urban (high chaos).
  const double chaos_levels[kVehicles] = {0.05, 0.1, 0.08, 0.12, 0.06, 0.8, 0.9, 0.7};

  // Step 1-3: simulate the attack and build per-vehicle risk profiles.
  // Severity here: a swerve from straight driving is weighted harder than
  // one during an already-sharp maneuver (analogous to Table I).
  std::vector<std::vector<double>> profiles(kVehicles);
  std::vector<double> attack_success(kVehicles, 0.0);
  for (std::size_t v = 0; v < kVehicles; ++v) {
    const auto trace = steering_trace(chaos_levels[v], 1000 + v, kSteps);
    std::size_t attempts = 0;
    std::size_t successes = 0;
    for (std::size_t start = 0; start + kWindow < trace.size(); start += kWindow) {
      std::vector<double> window(trace.begin() + static_cast<std::ptrdiff_t>(start),
                                 trace.begin() + static_cast<std::ptrdiff_t>(start + kWindow));
      const double benign = controller_response(window, chaos_levels[v]);
      // Manipulate the most recent sensor readings.
      for (std::size_t i = kWindow - 3; i < kWindow; ++i) window[i] += kInjectedOffset;
      const double adversarial = controller_response(window, chaos_levels[v]);
      // Severity keyed to the induced transition, like Table I: a swerve
      // strong enough to endanger the vehicle is weighted 8x.
      const bool dangerous = std::abs(adversarial) > kDangerousSwerve;
      const double severity = dangerous ? 8.0 : 1.0;
      const double deviation = (adversarial - benign) * (adversarial - benign);
      profiles[v].push_back(severity * deviation);
      ++attempts;
      successes += dangerous ? 1 : 0;
    }
    attack_success[v] =
        static_cast<double>(successes) / static_cast<double>(attempts);
  }

  // Step 4: hierarchical clustering of log-scaled profiles.
  std::vector<std::vector<double>> log_profiles(kVehicles);
  for (std::size_t v = 0; v < kVehicles; ++v) {
    for (const double r : profiles[v]) log_profiles[v].push_back(std::log1p(r));
  }
  const auto distances =
      cluster::distance_matrix(log_profiles, cluster::ProfileDistance::kEuclidean);
  const auto dendrogram = cluster::agglomerate(distances, cluster::Linkage::kAverage);
  const auto labels = dendrogram.cut(2);

  std::vector<std::string> names;
  for (std::size_t v = 0; v < kVehicles; ++v) names.push_back("car_" + std::to_string(v));
  std::cout << "Steering-telemetry risk dendrogram:\n"
            << dendrogram.render_ascii(names) << "\n";

  std::cout << "Vehicle  route   attack-success  cluster\n";
  for (std::size_t v = 0; v < kVehicles; ++v) {
    std::cout << "  car_" << v << "   " << (chaos_levels[v] < 0.5 ? "highway" : "urban  ")
              << "   " << attack_success[v] << "            " << labels[v] << "\n";
  }
  std::cout << "\nThe urban (chaotic) vehicles cluster apart from the highway ones —\n"
               "the same vulnerability structure the BGMS case study exhibits, found\n"
               "by the same domain-agnostic risk-profiling core.\n";
  return 0;
}
