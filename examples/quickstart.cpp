// Quickstart: run the five-step risk-profiling engine end to end on the
// BGMS domain (the paper's case study) and print which victims it
// recommends training the defenses on.
//
//   build/quickstart
//
// Uses a small configuration so it finishes in about a minute on a laptop.
// The engine itself is domain-agnostic: swap the adapter for
// domains::make_domain("synthtel") — or your own DomainAdapter — and the
// same five steps run on a different scenario (see examples/synthetic_domain).
#include <iostream>

#include "core/framework.hpp"
#include "domains/registry.hpp"

int main() {
  using namespace goodones;

  // 1. Pick a domain and prepare a config. fast() is a calibrated small
  //    preset; prepare() stamps the domain's semantics (channel layout,
  //    thresholds, attack boxes, severity) onto it.
  const auto domain = domains::make_domain("bgms");
  const core::FrameworkConfig config = domain->prepare(core::FrameworkConfig::fast());

  // 2. The framework computes lazily: entities -> forecaster fleet ->
  //    attack simulation -> risk profiles -> vulnerability clusters.
  core::RiskProfilingFramework framework(domain, config);
  const core::ProfilingOutputs& profiling = framework.profiling();

  std::cout << "Risk profiling of the simulated 12-patient cohort:\n\n";
  const auto& entities = framework.entities();
  for (std::size_t i = 0; i < entities.size(); ++i) {
    std::cout << "  " << entities[i].name
              << "  attack success " << 100.0 * profiling.train_attack_rates[i].overall_rate()
              << "%  mean risk " << profiling.profiles[i].mean() << "\n";
  }

  std::cout << "\nLess vulnerable (train your static defenses on these):\n  ";
  for (const auto p : profiling.clusters.less_vulnerable) {
    std::cout << entities[p].name << " ";
  }
  std::cout << "\nMore vulnerable:\n  ";
  for (const auto p : profiling.clusters.more_vulnerable) {
    std::cout << entities[p].name << " ";
  }
  std::cout << "\n\n";

  // 3. Step 5: selectively train a kNN detector on the less-vulnerable
  //    cluster and evaluate it on every victim's held-out test data.
  const auto selective = framework.evaluate_strategy(detect::DetectorKind::kKnn,
                                                     profiling.clusters.less_vulnerable);
  std::vector<std::size_t> everyone(entities.size());
  for (std::size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;
  const auto indiscriminate =
      framework.evaluate_strategy(detect::DetectorKind::kKnn, everyone);

  std::cout << "kNN detector, selective vs indiscriminate training:\n";
  std::cout << "  selective      recall " << selective.pooled.recall() << "  precision "
            << selective.pooled.precision() << "\n";
  std::cout << "  indiscriminate recall " << indiscriminate.pooled.recall()
            << "  precision " << indiscriminate.pooled.precision() << "\n";
  return 0;
}
