// Quickstart: run the five-step risk-profiling framework end to end and
// print which patients it recommends training the defenses on.
//
//   build/examples/quickstart
//
// Uses a small configuration so it finishes in about a minute on a laptop.
#include <iostream>

#include "core/framework.hpp"

int main() {
  using namespace goodones;

  // 1. Configure. fast() is a calibrated small preset; FrameworkConfig
  //    exposes every knob (cohort size, attack search, detector settings).
  const core::FrameworkConfig config = core::FrameworkConfig::fast();

  // 2. The framework computes lazily: cohort -> forecaster fleet ->
  //    attack simulation -> risk profiles -> vulnerability clusters.
  core::RiskProfilingFramework framework(config);
  const core::ProfilingOutputs& profiling = framework.profiling();

  std::cout << "Risk profiling of the simulated 12-patient cohort:\n\n";
  const auto& cohort = framework.cohort();
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    std::cout << "  " << sim::to_string(cohort[i].params.id)
              << "  attack success " << 100.0 * profiling.train_attack_rates[i].overall_rate()
              << "%  mean risk " << profiling.profiles[i].mean() << "\n";
  }

  std::cout << "\nLess vulnerable (train your static defenses on these):\n  ";
  for (const auto p : profiling.clusters.less_vulnerable) {
    std::cout << sim::to_string(cohort[p].params.id) << " ";
  }
  std::cout << "\nMore vulnerable:\n  ";
  for (const auto p : profiling.clusters.more_vulnerable) {
    std::cout << sim::to_string(cohort[p].params.id) << " ";
  }
  std::cout << "\n\n";

  // 3. Step 5: selectively train a kNN detector on the less-vulnerable
  //    cluster and evaluate it on every patient's held-out test data.
  const auto selective = framework.evaluate_strategy(detect::DetectorKind::kKnn,
                                                     profiling.clusters.less_vulnerable);
  std::vector<std::size_t> everyone(cohort.size());
  for (std::size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;
  const auto indiscriminate =
      framework.evaluate_strategy(detect::DetectorKind::kKnn, everyone);

  std::cout << "kNN detector, selective vs indiscriminate training:\n";
  std::cout << "  selective      recall " << selective.pooled.recall() << "  precision "
            << selective.pooled.precision() << "\n";
  std::cout << "  indiscriminate recall " << indiscriminate.pooled.recall()
            << "  precision " << indiscriminate.pooled.precision() << "\n";
  return 0;
}
