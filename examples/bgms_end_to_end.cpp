// Full blood-glucose-management-system (BGMS) walkthrough: the scenario the
// paper's Section III describes, component by component.
//
//   1. Simulate a Type-1 diabetes patient (CGM -> smartphone -> cloud).
//   2. Train the cloud-side BiLSTM glucose forecaster.
//   3. Mount the URET-style evasion attack on the CGM channel.
//   4. Show the clinical consequence: the insulin dose the app would
//      recommend from the manipulated prediction.
//   5. Deploy a MAD-GAN anomaly detector in front of the forecaster and
//      show the attack being flagged.
//
//   build/examples/bgms_end_to_end
#include <algorithm>
#include <iostream>

#include "attack/evasion.hpp"
#include "data/timeseries.hpp"
#include "data/window.hpp"
#include "detect/madgan.hpp"
#include "predict/bilstm_forecaster.hpp"
#include "domains/bgms/cohort.hpp"
#include "domains/bgms/glucose_state.hpp"
#include "domains/bgms/patient.hpp"

namespace {

using namespace goodones;

/// Simplified correction-bolus rule used by smart insulin apps: units of
/// insulin proportional to the predicted excess over the 120 mg/dL target.
double recommended_bolus(double predicted_glucose) {
  constexpr double kTarget = 120.0;
  constexpr double kCorrectionFactor = 40.0;  // mg/dL glucose drop per unit
  return std::max(0.0, (predicted_glucose - kTarget) / kCorrectionFactor);
}

}  // namespace

int main() {
  // --- 1. Patient telemetry -----------------------------------------------
  bgms::CohortConfig cohort_config;
  cohort_config.train_steps = 4000;
  cohort_config.test_steps = 800;
  const auto patient = bgms::generate_patient({bgms::Subset::kA, 2}, cohort_config);
  const auto train_series = bgms::to_series(patient.train);
  const auto test_series = bgms::to_series(patient.test);
  std::cout << "Simulated patient A_2: " << patient.train.size() << " training and "
            << patient.test.size() << " test samples at 5-minute cadence\n";

  // --- 2. The main DNN: personalized BiLSTM forecaster --------------------
  predict::ForecasterConfig forecaster_config;
  forecaster_config.epochs = 5;
  predict::BiLstmForecaster forecaster(
      forecaster_config, predict::fit_forecaster_scaler(train_series.values, bgms::kCgm,
                                     bgms::kMinGlucose, bgms::kMaxGlucose));
  data::WindowConfig window_config;
  window_config.step = 2;
  const auto train_windows = data::make_windows(train_series, window_config);
  forecaster.train(train_windows);
  const auto test_windows = data::make_windows(test_series, {});
  std::cout << "Forecaster trained; test RMSE "
            << forecaster.evaluate_rmse(test_windows) << " mg/dL\n\n";

  // --- 3. The evasion attack ----------------------------------------------
  // Pick a benign window whose true state is normal.
  const data::Window* victim = nullptr;
  for (const auto& w : test_windows) {
    if (bgms::classify(w.target_value, w.regime) == data::StateLabel::kNormal) {
      victim = &w;
      break;
    }
  }
  if (victim == nullptr) {
    std::cout << "no normal-state window found; rerun with a longer trace\n";
    return 1;
  }

  const attack::EvasionAttack attack{attack::AttackConfig{}};
  const auto result = attack.attack_window(forecaster, *victim);

  std::cout << "Evasion attack on a normal-state window ("
            << (victim->regime == data::Regime::kBaseline ? "fasting" : "postprandial")
            << " scenario):\n";
  std::cout << "  benign prediction:      " << result.benign_prediction << " mg/dL\n";
  std::cout << "  adversarial prediction: " << result.adversarial_prediction
            << " mg/dL after " << result.edits << " CGM edits\n";
  std::cout << "  attack success:         " << (result.success ? "YES" : "no") << "\n";

  // --- 4. Clinical consequence ---------------------------------------------
  std::cout << "  recommended bolus (benign):      "
            << recommended_bolus(result.benign_prediction) << " U\n";
  std::cout << "  recommended bolus (adversarial): "
            << recommended_bolus(result.adversarial_prediction)
            << " U  <- delivered while true glucose is " << victim->target_value
            << " mg/dL\n\n";

  // --- 5. The defense -------------------------------------------------------
  data::MinMaxScaler scaler = predict::fit_forecaster_scaler(train_series.values, bgms::kCgm,
                                     bgms::kMinGlucose, bgms::kMaxGlucose);
  detect::MadGanConfig gan_config;
  gan_config.epochs = 10;
  gan_config.max_train_windows = 800;
  detect::MadGan detector(gan_config);
  std::vector<nn::Matrix> benign_windows;
  for (std::size_t i = 0; i < train_windows.size(); i += 4) {
    benign_windows.push_back(scaler.transform(train_windows[i].features));
  }
  detector.fit(benign_windows, {});

  const double benign_score = detector.anomaly_score(scaler.transform(victim->features));
  const double attack_score =
      detector.anomaly_score(scaler.transform(result.adversarial_features));
  std::cout << "MAD-GAN anomaly detector (threshold " << detector.threshold() << "):\n";
  std::cout << "  benign window score:      " << benign_score << " -> "
            << (detector.flags(scaler.transform(victim->features)) ? "FLAGGED" : "passed")
            << "\n";
  std::cout << "  adversarial window score: " << attack_score << " -> "
            << (detector.flags(scaler.transform(result.adversarial_features))
                    ? "FLAGGED (attack blocked before reaching the forecaster)"
                    : "passed")
            << "\n";
  return 0;
}
