// Extending the framework with your own anomaly detector.
//
// The risk-profiling framework treats detectors as plug-ins behind the
// AnomalyDetector interface. This example implements a simple robust
// z-score detector (median/MAD over per-sample features), registers it
// alongside the built-ins, and compares selective vs indiscriminate
// training on it — demonstrating that the paper's selective-training
// recipe applies to any static detector, not just the three it evaluated.
//
//   build/examples/custom_detector
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>

#include "core/framework.hpp"
#include "domains/bgms/adapter.hpp"
#include "data/window.hpp"
#include "detect/detector.hpp"

namespace {

using namespace goodones;

/// Median/MAD z-score detector: flags a sample when any feature deviates
/// from the training median by more than `threshold` robust standard
/// deviations. Unsupervised and embarrassingly simple — a useful baseline.
class RobustZScoreDetector final : public detect::AnomalyDetector {
 public:
  explicit RobustZScoreDetector(double threshold = 6.0) : threshold_(threshold) {}

  detect::InputGranularity granularity() const override {
    return detect::InputGranularity::kSample;
  }

  void fit(const std::vector<nn::Matrix>& benign,
           const std::vector<nn::Matrix>& /*malicious*/) override {
    const std::size_t dim = benign.front().size();
    medians_.resize(dim);
    mads_.resize(dim);
    std::vector<double> column(benign.size());
    for (std::size_t c = 0; c < dim; ++c) {
      for (std::size_t i = 0; i < benign.size(); ++i) {
        column[i] = data::flatten(benign[i])[c];
      }
      std::nth_element(column.begin(), column.begin() + column.size() / 2, column.end());
      medians_[c] = column[column.size() / 2];
      for (std::size_t i = 0; i < benign.size(); ++i) {
        column[i] = std::abs(data::flatten(benign[i])[c] - medians_[c]);
      }
      std::nth_element(column.begin(), column.begin() + column.size() / 2, column.end());
      // 1.4826 * MAD estimates the standard deviation for normal data.
      mads_[c] = std::max(1.4826 * column[column.size() / 2], 1e-6);
    }
  }

  double anomaly_score(const nn::Matrix& window) const override {
    const auto features = data::flatten(window);
    double worst = 0.0;
    for (std::size_t c = 0; c < features.size(); ++c) {
      worst = std::max(worst, std::abs(features[c] - medians_[c]) / mads_[c]);
    }
    return worst;
  }

  bool flags(const nn::Matrix& window) const override {
    return anomaly_score(window) > threshold_;
  }

  /// Optional serving-path fast lane. The contract when you override
  /// score_batch (see detect/detector.hpp):
  ///   1. element i corresponds to windows[i];
  ///   2. every score is BITWISE identical to anomaly_score(windows[i]) —
  ///      batching may only change the execution schedule, never a value
  ///      (the serving tests replay responses against persisted bundles
  ///      and compare with EXPECT_EQ on doubles);
  ///   3. an empty span returns an empty vector;
  ///   4. it must be const and thread-safe (the ScoringService calls it
  ///      from pool workers, one call per entity per request batch).
  /// Skip the override entirely when there is nothing to amortize across
  /// the batch — the base class loops anomaly_score for you, which is all
  /// this detector needs (shown here only to demonstrate the contract;
  /// MAD-GAN's batched latent inversion and kNN's blocked neighbor
  /// queries in src/detect/ are the overrides that actually pay).
  std::vector<double> score_batch(std::span<const nn::Matrix> windows) const override {
    std::vector<double> scores;
    scores.reserve(windows.size());
    for (const nn::Matrix& window : windows) scores.push_back(anomaly_score(window));
    return scores;
  }

  std::string name() const override { return "RobustZScore"; }

 private:
  double threshold_;
  std::vector<double> medians_;
  std::vector<double> mads_;
};

/// Trains and evaluates the custom detector on a patient subset, reusing
/// the framework's data plumbing (scaled samples, attack campaigns).
core::ConfusionMatrix evaluate_custom(core::RiskProfilingFramework& framework,
                                      const std::vector<std::size_t>& train_victims) {
  RobustZScoreDetector detector;
  std::vector<nn::Matrix> benign;
  for (const auto p : train_victims) {
    auto samples = framework.benign_train_samples(p);
    benign.insert(benign.end(), samples.begin(), samples.end());
  }
  detector.fit(benign, {});

  core::ConfusionMatrix cm;
  for (std::size_t p = 0; p < framework.entities().size(); ++p) {
    for (const auto& sample : framework.benign_test_samples(p)) {
      cm.add(false, detector.flags(sample));
    }
    for (const auto& sample : framework.malicious_samples(framework.test_outcomes(p))) {
      cm.add(true, detector.flags(sample));
    }
  }
  return cm;
}

}  // namespace

int main() {
  const auto domain = std::make_shared<bgms::BgmsDomain>();
  core::FrameworkConfig config = domain->prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 3000;
  config.population.test_steps = 900;
  config.registry.forecaster.epochs = 4;
  config.profiling_campaign.attack.harm_threshold = 250.0;
  config.evaluation_campaign.attack.harm_threshold = 250.0;
  core::RiskProfilingFramework framework(domain, config);

  const auto& clusters = framework.profiling().clusters;
  std::vector<std::size_t> everyone(framework.entities().size());
  for (std::size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;

  const auto selective = evaluate_custom(framework, clusters.less_vulnerable);
  const auto indiscriminate = evaluate_custom(framework, everyone);

  std::cout << "Custom RobustZScore detector under the risk-profiling framework:\n";
  std::cout << "  selective (less vulnerable): recall " << selective.recall()
            << "  precision " << selective.precision() << "  F1 " << selective.f1()
            << "\n";
  std::cout << "  indiscriminate (all patients): recall " << indiscriminate.recall()
            << "  precision " << indiscriminate.precision() << "  F1 "
            << indiscriminate.f1() << "\n";
  std::cout << "\nAny AnomalyDetector implementation plugs into the same five-step "
               "pipeline;\nsee detect/detector.hpp for the interface.\n";
  return 0;
}
