// The same five-step engine on a different scenario: the synthetic
// sensor fleet. Nothing below names glucose — the DomainAdapter carries
// all the scenario knowledge.
//
//   build/synthetic_domain
#include <iostream>

#include "core/framework.hpp"
#include "domains/registry.hpp"

int main() {
  using namespace goodones;

  const auto domain = domains::make_domain("synthtel");
  core::FrameworkConfig config = domain->prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 3000;  // the fleet is cheap to simulate
  config.population.test_steps = 900;

  core::RiskProfilingFramework framework(domain, config);
  const auto& profiling = framework.profiling();
  const auto& entities = framework.entities();

  std::cout << "Sensor-fleet risk profiles (" << domain->spec().name << "):\n";
  for (std::size_t i = 0; i < entities.size(); ++i) {
    std::cout << "  " << entities[i].name << "  attack success "
              << 100.0 * profiling.train_attack_rates[i].overall_rate()
              << "%  mean risk " << profiling.profiles[i].mean() << "\n";
  }
  std::cout << "Less vulnerable nodes:";
  for (const auto n : profiling.clusters.less_vulnerable) {
    std::cout << " " << entities[n].name;
  }
  const auto eval = framework.evaluate_strategy(detect::DetectorKind::kKnn,
                                                profiling.clusters.less_vulnerable);
  std::cout << "\nkNN trained on them: recall " << eval.pooled.recall()
            << ", precision " << eval.pooled.precision() << "\n";
  return 0;
}
