// Serving quickstart: train once, score forever.
//
// First run: trains the synthtel mini pipeline (forecaster fleet +
// per-cluster detectors), persists the serving bundle into the artifact
// cache's ModelRegistry. Every later run: loads the bundle (no retraining)
// and scores live telemetry windows — clean ones and an adversarially
// manipulated one — printing forecast, residual, detector verdict and the
// severity-weighted live risk score per window.
#include <iostream>
#include <span>

#include "core/framework.hpp"
#include "data/window.hpp"
#include "domains/synthtel/adapter.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"

using namespace goodones;

namespace {

core::FrameworkConfig mini_config(const core::DomainAdapter& domain) {
  core::FrameworkConfig config = domain.prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 2000;
  config.population.test_steps = 600;
  config.registry.forecaster.hidden = 12;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 6;
  config.registry.aggregate_window_step = 40;
  config.profiling_campaign.window_step = 8;
  config.evaluation_campaign.window_step = 8;
  config.detector_benign_stride = 8;
  config.random_runs = 1;
  return config;
}

}  // namespace

int main() {
  const auto domain = std::make_shared<synthtel::SynthtelDomain>(3);
  const core::FrameworkConfig config = mini_config(*domain);

  // --- train once -----------------------------------------------------------
  core::RiskProfilingFramework framework(domain, config);
  const serve::ModelRegistry registry;
  const serve::RegistryKey key =
      serve::registry_key(framework, detect::DetectorKind::kKnn);

  if (!registry.contains(key)) {
    std::cout << "no serving bundle cached; training the pipeline once...\n";
    registry.save(serve::build_serving_model(framework, detect::DetectorKind::kKnn));
  } else {
    std::cout << "serving bundle found in the registry; skipping training\n";
  }

  // --- score forever --------------------------------------------------------
  const serve::ScoringService service(registry.load(key));
  const auto model = service.model();  // snapshot of the served generation
  std::cout << "loaded bundle: domain " << model->domain_key << ", "
            << model->entity_names.size() << " entities, detector "
            << detect::to_string(model->detector_kind) << "\n\n";

  // Live telemetry stand-in: held-out windows of the first entity, plus one
  // manipulated copy (the adversary rewrites the reading channel upward).
  const auto& entity = framework.entities().front();
  const auto windows = data::make_windows(entity.test, config.window);

  serve::ScoreRequest request;
  request.entity = entity.name;
  for (std::size_t i = 0; i < 3; ++i) {
    request.windows.push_back({windows[i * 20].features, windows[i * 20].regime});
  }
  serve::TelemetryWindow manipulated = request.windows.front();
  for (std::size_t t = 0; t < manipulated.features.rows(); ++t) {
    manipulated.features(t, model->spec.target_channel) =
        model->spec.attack_box_max;  // pinned to the constraint-box ceiling
  }
  request.windows.push_back(manipulated);

  const serve::ScoreResponse response = service.score(request);
  std::cout << "entity " << request.entity << " (cluster "
            << serve::to_string(response.cluster) << "):\n";
  for (std::size_t w = 0; w < response.windows.size(); ++w) {
    const serve::WindowScore& score = response.windows[w];
    std::cout << "  window " << w << (w == 3 ? " [manipulated]" : "")
              << ": forecast " << score.forecast << ", residual " << score.residual
              << ", anomaly " << score.anomaly_score
              << (score.flagged ? " FLAGGED" : " ok") << ", risk " << score.risk
              << "\n";
  }
  std::cout << "\n(artifacts live under " << registry.root().string()
            << "; delete to force retraining)\n";
  return 0;
}
