// Daemon round trip, self-contained: starts a serve::Daemon on a temp
// socket, scores clean and adversarially manipulated windows through a
// DaemonClient, drives enough evasion pressure that the adaptive loop
// publishes a new bundle generation (watch the generation tag on the
// verdicts change across the hot swap — no restart, no dropped request),
// then shuts the daemon down over the wire.
//
// This is the two-terminal goodonesd / goodonesd_client quickstart in one
// process; see README "Daemon quickstart" for the CLI version.
#include <filesystem>
#include <iostream>
#include <memory>

#include <unistd.h>

#include "core/framework.hpp"
#include "data/window.hpp"
#include "domains/synthtel/adapter.hpp"
#include "serve/daemon.hpp"

using namespace goodones;

namespace {

core::FrameworkConfig mini_config(const core::DomainAdapter& domain) {
  core::FrameworkConfig config = domain.prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 2000;
  config.population.test_steps = 600;
  config.registry.forecaster.hidden = 12;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 6;
  config.registry.aggregate_window_step = 40;
  config.profiling_campaign.window_step = 8;
  config.evaluation_campaign.window_step = 8;
  config.detector_benign_stride = 8;
  config.random_runs = 1;
  return config;
}

void print_response(const char* label, const serve::ScoreResponse& response) {
  std::cout << label << " [generation " << response.generation << "]:";
  for (const serve::WindowScore& score : response.windows) {
    std::cout << " risk=" << score.risk << (score.flagged ? " FLAGGED" : "");
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  const auto domain = std::make_shared<synthtel::SynthtelDomain>(2);
  core::RiskProfilingFramework framework(domain, mini_config(*domain));
  serve::ServingModel model =
      serve::build_serving_model(framework, detect::DetectorKind::kKnn);
  const core::DomainSpec spec = model.spec;
  const auto entities = model.entity_names;
  const auto gen0_routing = model.entity_cluster;

  serve::DaemonConfig config;
  const std::filesystem::path socket_path =
      std::filesystem::temp_directory_path() /
      ("goodones_daemon_demo_" + std::to_string(::getpid()) + ".sock");
  config.listen = common::Endpoint::unix_socket(socket_path);
  config.adaptive.reassess_every_windows = 16;
  config.adaptive.profiler.decay = 0.6;
  serve::Daemon daemon(std::move(model), config);
  daemon.start();
  std::cout << "daemon up on " << socket_path.string() << "\n";

  // Live traffic: each entity's held-out windows; entities the offline
  // pipeline trusted most get adversarial pressure (reading pinned to the
  // attack-box ceiling) so the online partition must eventually move.
  data::WindowConfig window_config = framework.config().window;
  window_config.step = 30;
  serve::DaemonClient client(socket_path);
  const std::uint64_t first_generation = daemon.generation();
  for (int round = 0; round < 60 && daemon.generation() == first_generation; ++round) {
    for (std::size_t e = 0; e < entities.size(); ++e) {
      const auto windows = data::make_windows(framework.entities()[e].test, window_config);
      serve::ScoreRequest request;
      request.entity = entities[e];
      for (std::size_t w = 0; w < 2 && w < windows.size(); ++w) {
        serve::TelemetryWindow window{windows[w].features, windows[w].regime};
        if (gen0_routing[e] == serve::Cluster::kLessVulnerable) {
          for (std::size_t t = 0; t < window.features.rows(); ++t) {
            window.features(t, spec.target_channel) = spec.attack_box_max;
          }
        }
        request.windows.push_back(std::move(window));
      }
      const serve::ScoreResponse response = client.score(request);
      if (round == 0) print_response(entities[e].c_str(), response);
    }
  }
  daemon.controller()->drain();

  std::cout << "\nadaptive loop published generation " << daemon.generation()
            << " (hot-swapped under live traffic)\n";
  serve::ScoreRequest probe;
  probe.entity = entities.front();
  const auto windows = data::make_windows(framework.entities().front().test, window_config);
  probe.windows.push_back({windows[0].features, windows[0].regime});
  print_response("post-swap verdict", client.score(probe));

  std::cout << "\ncounters (serve.daemon.*):\n";
  for (const auto& [name, value] : client.stats()) {
    if (name.rfind("serve.daemon.", 0) == 0) {
      std::cout << "  " << name << " = " << value << "\n";
    }
  }

  client.shutdown();
  daemon.wait();
  std::cout << "\ndaemon drained and stopped cleanly\n";
  return 0;
}
