// Tests for the risk extensions: configurable severity schedules (the
// paper's planned sensitivity analysis) and the online risk profiler
// (the paper's Appendix-D adaptive reassessment).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "risk/online.hpp"
#include "risk/severity.hpp"
#include "risk/schedule.hpp"

namespace goodones::risk {
namespace {

using StateLabel = data::StateLabel;

attack::WindowOutcome make_outcome(double benign_pred, double adv_pred,
                                   StateLabel benign_state, StateLabel adv_state) {
  attack::WindowOutcome outcome;
  outcome.attack.benign_prediction = benign_pred;
  outcome.attack.adversarial_prediction = adv_pred;
  outcome.benign_predicted_state = benign_state;
  outcome.adversarial_predicted_state = adv_state;
  return outcome;
}

TEST(SeveritySchedule, PaperDefaultMatchesTableI) {
  const auto schedule = SeveritySchedule::paper_default();
  EXPECT_DOUBLE_EQ(schedule.coefficient(StateLabel::kLow, StateLabel::kHigh), 64.0);
  EXPECT_DOUBLE_EQ(schedule.coefficient(StateLabel::kNormal, StateLabel::kHigh), 32.0);
  EXPECT_DOUBLE_EQ(schedule.coefficient(StateLabel::kLow, StateLabel::kNormal), 16.0);
  EXPECT_DOUBLE_EQ(schedule.coefficient(StateLabel::kHigh, StateLabel::kLow), 8.0);
  EXPECT_DOUBLE_EQ(schedule.coefficient(StateLabel::kHigh, StateLabel::kNormal), 4.0);
  EXPECT_DOUBLE_EQ(schedule.coefficient(StateLabel::kNormal, StateLabel::kLow), 2.0);
}

TEST(SeveritySchedule, PaperDefaultAgreesWithFixedFunction) {
  const auto schedule = SeveritySchedule::paper_default();
  for (const auto benign :
       {StateLabel::kLow, StateLabel::kNormal, StateLabel::kHigh}) {
    for (const auto adv :
         {StateLabel::kLow, StateLabel::kNormal, StateLabel::kHigh}) {
      EXPECT_DOUBLE_EQ(schedule.coefficient(benign, adv), severity_coefficient(benign, adv));
    }
  }
}

TEST(SeveritySchedule, LinearIsOrderPreserving) {
  const auto linear = SeveritySchedule::linear();
  EXPECT_DOUBLE_EQ(linear.coefficient(StateLabel::kLow, StateLabel::kHigh), 6.0);
  EXPECT_DOUBLE_EQ(linear.coefficient(StateLabel::kNormal, StateLabel::kLow), 1.0);
  // Same severity ordering as the paper's table, different magnitudes.
  const auto& table = severity_table();
  for (std::size_t i = 0; i + 1 < table.size(); ++i) {
    EXPECT_GT(linear.coefficient(table[i].benign, table[i].adversarial),
              linear.coefficient(table[i + 1].benign, table[i + 1].adversarial));
  }
}

TEST(SeveritySchedule, UniformWeighsEverythingEqually) {
  const auto uniform = SeveritySchedule::uniform();
  for (const auto benign :
       {StateLabel::kLow, StateLabel::kNormal, StateLabel::kHigh}) {
    for (const auto adv :
         {StateLabel::kLow, StateLabel::kNormal, StateLabel::kHigh}) {
      EXPECT_DOUBLE_EQ(uniform.coefficient(benign, adv), 1.0);
    }
  }
}

TEST(SeveritySchedule, ExponentialBaseThree) {
  const auto schedule = SeveritySchedule::exponential(3.0);
  EXPECT_DOUBLE_EQ(schedule.coefficient(StateLabel::kLow, StateLabel::kHigh), 729.0);
  EXPECT_DOUBLE_EQ(schedule.coefficient(StateLabel::kNormal, StateLabel::kLow), 3.0);
  EXPECT_THROW((void)SeveritySchedule::exponential(1.0), common::PreconditionError);
}

TEST(SeveritySchedule, SetOverridesSingleCell) {
  auto schedule = SeveritySchedule::paper_default();
  schedule.set(StateLabel::kNormal, StateLabel::kHigh, 100.0);
  EXPECT_DOUBLE_EQ(schedule.coefficient(StateLabel::kNormal, StateLabel::kHigh), 100.0);
  EXPECT_DOUBLE_EQ(schedule.coefficient(StateLabel::kLow, StateLabel::kHigh), 64.0);
}

TEST(SeveritySchedule, RiskUnderScheduleMatchesDefinition) {
  const auto outcome =
      make_outcome(100.0, 400.0, StateLabel::kNormal, StateLabel::kHigh);
  EXPECT_DOUBLE_EQ(instantaneous_risk(outcome, SeveritySchedule::paper_default()),
                   32.0 * 300.0 * 300.0);
  EXPECT_DOUBLE_EQ(instantaneous_risk(outcome, SeveritySchedule::uniform()),
                   300.0 * 300.0);
}

TEST(SeveritySchedule, ProfileUnderScheduleScalesValues) {
  std::vector<attack::WindowOutcome> outcomes{
      make_outcome(100.0, 400.0, StateLabel::kNormal, StateLabel::kHigh)};
  const auto paper = build_profile("A_0", outcomes, SeveritySchedule::paper_default());
  const auto uniform = build_profile("A_0", outcomes, SeveritySchedule::uniform());
  ASSERT_EQ(paper.values.size(), 1u);
  EXPECT_DOUBLE_EQ(paper.values[0], 32.0 * uniform.values[0]);
}

std::vector<std::string> two_victims() { return {"A_0", "A_1"}; }

TEST(OnlineProfiler, TracksLevelsAndBatches) {
  OnlineRiskProfiler profiler(two_victims(), {});
  EXPECT_EQ(profiler.num_victims(), 2u);
  EXPECT_EQ(profiler.batches(0), 0u);

  profiler.observe(0, {make_outcome(100.0, 105.0, StateLabel::kNormal,
                                    StateLabel::kNormal)});
  EXPECT_EQ(profiler.batches(0), 1u);
  EXPECT_NEAR(profiler.level(0), std::log1p(25.0), 1e-12);
}

TEST(OnlineProfiler, EmptyBatchIgnored) {
  OnlineRiskProfiler profiler(two_victims(), {});
  profiler.observe(0, {});
  EXPECT_EQ(profiler.batches(0), 0u);
}

TEST(OnlineProfiler, PartitionSeparatesHighAndLowRisk) {
  OnlineRiskProfiler profiler(two_victims(), {});
  // Victim 0: failed attacks, tiny deviations. Victim 1: severe hits.
  profiler.observe(0, {make_outcome(100.0, 104.0, StateLabel::kNormal,
                                    StateLabel::kNormal)});
  profiler.observe(1, {make_outcome(100.0, 430.0, StateLabel::kNormal,
                                    StateLabel::kHigh)});
  const auto& partition = profiler.reassess();
  ASSERT_EQ(partition.less_vulnerable.size(), 1u);
  ASSERT_EQ(partition.more_vulnerable.size(), 1u);
  EXPECT_EQ(partition.less_vulnerable[0], 0u);
  EXPECT_EQ(partition.more_vulnerable[0], 1u);
}

TEST(OnlineProfiler, AdaptsWhenAVictimRecovers) {
  OnlineProfilerConfig config;
  config.decay = 0.5;  // fast adaptation
  OnlineRiskProfiler profiler(two_victims(), config);
  const auto severe =
      make_outcome(100.0, 430.0, StateLabel::kNormal, StateLabel::kHigh);
  const auto mild =
      make_outcome(100.0, 103.0, StateLabel::kNormal, StateLabel::kNormal);

  profiler.observe(0, {severe});
  profiler.observe(1, {mild});
  profiler.reassess();
  EXPECT_EQ(profiler.partition().more_vulnerable[0], 0u);

  // Victim 0 recovers: repeated mild batches pull its level down.
  for (int i = 0; i < 8; ++i) {
    profiler.observe(0, {mild});
    profiler.observe(1, {mild});
  }
  // Victim 1 deteriorates.
  for (int i = 0; i < 4; ++i) profiler.observe(1, {severe});
  profiler.reassess();
  ASSERT_EQ(profiler.partition().more_vulnerable.size(), 1u);
  EXPECT_EQ(profiler.partition().more_vulnerable[0], 1u);  // roles swapped
}

TEST(OnlineProfiler, HysteresisPreventsBoundaryFlapping) {
  OnlineProfilerConfig config;
  config.decay = 0.5;
  config.hysteresis = 0.3;
  std::vector<std::string> victims = {"A_0", "A_1", "A_2"};
  OnlineRiskProfiler profiler(victims, config);
  const auto low =
      make_outcome(100.0, 102.0, StateLabel::kNormal, StateLabel::kNormal);
  const auto high =
      make_outcome(100.0, 430.0, StateLabel::kNormal, StateLabel::kHigh);
  const auto middling =
      make_outcome(100.0, 180.0, StateLabel::kNormal, StateLabel::kNormal);

  profiler.observe(0, {low});
  profiler.observe(1, {middling});
  profiler.observe(2, {high});
  profiler.reassess();
  const bool victim1_was_less =
      std::find(profiler.partition().less_vulnerable.begin(),
                profiler.partition().less_vulnerable.end(),
                1u) != profiler.partition().less_vulnerable.end();

  // A tiny perturbation of the middling victim must not flip its side.
  profiler.observe(0, {low});
  profiler.observe(1, {middling});
  profiler.observe(2, {high});
  profiler.reassess();
  const bool victim1_still_less =
      std::find(profiler.partition().less_vulnerable.begin(),
                profiler.partition().less_vulnerable.end(),
                1u) != profiler.partition().less_vulnerable.end();
  EXPECT_EQ(victim1_was_less, victim1_still_less);
}

TEST(OnlineProfiler, ReassessRequiresObservations) {
  OnlineRiskProfiler profiler(two_victims(), {});
  profiler.observe(0, {make_outcome(100.0, 105.0, StateLabel::kNormal,
                                    StateLabel::kNormal)});
  EXPECT_THROW((void)profiler.reassess(), common::PreconditionError);
}

TEST(OnlineProfiler, RejectsBadConfig) {
  OnlineProfilerConfig config;
  config.decay = 0.0;
  EXPECT_THROW(OnlineRiskProfiler(two_victims(), config), common::PreconditionError);
  config = {};
  config.hysteresis = 1.0;
  EXPECT_THROW(OnlineRiskProfiler(two_victims(), config), common::PreconditionError);
  EXPECT_THROW(OnlineRiskProfiler({}, {}), common::PreconditionError);
}

TEST(OnlineProfiler, VictimLookup) {
  OnlineRiskProfiler profiler(two_victims(), {});
  EXPECT_EQ(profiler.victim(1), "A_1");
  EXPECT_THROW((void)profiler.victim(2), common::PreconditionError);
}

TEST(OnlineProfiler, ObserveRisksMatchesObserveOnEquivalentEvidence) {
  // observe_risks (the serving-time entry point) must fold a batch exactly
  // like observe does for campaign outcomes with the same Eq.-1 risks.
  OnlineRiskProfiler from_outcomes(two_victims(), {});
  OnlineRiskProfiler from_risks(two_victims(), {});
  const auto outcome =
      make_outcome(100.0, 430.0, StateLabel::kNormal, StateLabel::kHigh);
  from_outcomes.observe(0, {outcome, outcome});
  const double risk = instantaneous_risk(outcome, SeveritySchedule::paper_default());
  from_risks.observe_risks(0, std::vector<double>{risk, risk});
  EXPECT_EQ(from_risks.level(0), from_outcomes.level(0));
  EXPECT_EQ(from_risks.batches(0), from_outcomes.batches(0));
  EXPECT_THROW(from_risks.observe_risks(0, std::vector<double>{-1.0}),
               common::PreconditionError);
}

TEST(OnlineProfiler, EmptyRiskBatchIgnored) {
  OnlineRiskProfiler profiler(two_victims(), {});
  profiler.observe_risks(0, std::vector<double>{});
  EXPECT_EQ(profiler.batches(0), 0u);
  EXPECT_EQ(profiler.level(0), 0.0);
}

TEST(OnlineProfiler, DecayOneIsCumulativeMeanOfBatchMeans) {
  OnlineProfilerConfig config;
  config.decay = 1.0;  // "never forget" must mean cumulative mean, not freeze
  OnlineRiskProfiler profiler(two_victims(), config);
  const std::vector<double> batch_risks = {3.0, 8.0, 1.0, 20.0, 5.0};
  double mean_of_means = 0.0;
  for (std::size_t i = 0; i < batch_risks.size(); ++i) {
    profiler.observe_risks(0, std::span<const double>(&batch_risks[i], 1));
    mean_of_means += std::log1p(batch_risks[i]);
  }
  mean_of_means /= static_cast<double>(batch_risks.size());
  EXPECT_NEAR(profiler.level(0), mean_of_means, 1e-12);
  EXPECT_EQ(profiler.batches(0), batch_risks.size());
}

/// Drives victim 2 of a 5-victim profiler so its level alternates between
/// 4.8 and 5.2 (log1p space) while the others stay pinned at 1.0 / 1.2 /
/// 9.0 / 9.2; returns the sequence of sides victim 2 landed on. This
/// geometry makes the max-gap SPLIT POINT itself flip with the oscillation
/// (the larger gap is below victim 2 at 5.2, above it at 4.8), so without
/// hysteresis the boundary victim changes cluster on every single batch.
std::vector<bool> boundary_victim_sides(double hysteresis, int rounds) {
  OnlineProfilerConfig config;
  config.decay = 0.5;  // level' = (old + batch_mean) / 2: exact control
  config.hysteresis = hysteresis;
  OnlineRiskProfiler profiler({"v0", "v1", "mid", "v3", "v4"}, config);
  const auto risk_for_level = [](double level) {
    return std::vector<double>{std::expm1(level)};  // first batch sets level
  };
  profiler.observe_risks(0, risk_for_level(1.0));
  profiler.observe_risks(1, risk_for_level(1.2));
  profiler.observe_risks(2, risk_for_level(5.2));
  profiler.observe_risks(3, risk_for_level(9.0));
  profiler.observe_risks(4, risk_for_level(9.2));

  std::vector<bool> sides;
  profiler.reassess();
  const auto record_side = [&] {
    sides.push_back(std::find(profiler.partition().less_vulnerable.begin(),
                              profiler.partition().less_vulnerable.end(),
                              2u) != profiler.partition().less_vulnerable.end());
  };
  record_side();
  for (int round = 0; round < rounds; ++round) {
    // With decay 0.5, a batch mean of (2*target - old) moves the level to
    // target: oscillate 5.2 -> 4.8 -> 5.2 -> ...
    const double target = round % 2 == 0 ? 4.8 : 5.2;
    const double old_level = profiler.level(2);
    profiler.observe_risks(2, risk_for_level(2.0 * target - old_level));
    profiler.reassess();
    record_side();
  }
  return sides;
}

TEST(OnlineProfiler, HysteresisDoesNotOscillateUnderAlternatingBatches) {
  // With a wide dead zone the boundary victim must keep one side across
  // every alternating batch...
  const auto stable = boundary_victim_sides(/*hysteresis=*/0.35, 10);
  for (std::size_t i = 1; i < stable.size(); ++i) {
    EXPECT_EQ(stable[i], stable[0]) << "flapped on round " << i;
  }
  // ...while without hysteresis the same traffic flips it every batch —
  // proving the scenario actually bites and the margin is load-bearing.
  const auto flapping = boundary_victim_sides(/*hysteresis=*/0.0, 4);
  bool any_flip = false;
  for (std::size_t i = 1; i < flapping.size(); ++i) {
    any_flip = any_flip || flapping[i] != flapping[i - 1];
  }
  EXPECT_TRUE(any_flip);
}

TEST(OnlineProfiler, SingleVictimAlwaysLessVulnerable) {
  OnlineRiskProfiler profiler({"only"}, {});
  profiler.observe_risks(0, std::vector<double>{1000.0});
  const auto& partition = profiler.reassess();
  ASSERT_EQ(partition.less_vulnerable.size(), 1u);
  EXPECT_EQ(partition.less_vulnerable[0], 0u);
  EXPECT_TRUE(partition.more_vulnerable.empty());
  // Repeated reassessment of the degenerate population stays stable.
  profiler.observe_risks(0, std::vector<double>{0.5});
  EXPECT_EQ(profiler.reassess().less_vulnerable.size(), 1u);
}

}  // namespace
}  // namespace goodones::risk
