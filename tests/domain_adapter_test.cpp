// Tests for the engine/domain seam: the synthetic sensor-fleet domain runs
// the full five-step pipeline end to end (living proof the seam is real),
// the domain registry resolves both built-in domains, and a regression pin
// holds the BGMS adapter numerically to the pre-refactor pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "core/framework.hpp"
#include "domains/bgms/adapter.hpp"
#include "domains/registry.hpp"
#include "domains/synthtel/adapter.hpp"

namespace goodones::core {
namespace {

// --- registry ---------------------------------------------------------------

TEST(DomainRegistry, ResolvesBuiltInDomains) {
  const auto names = domains::available_domains();
  ASSERT_EQ(names.size(), 3u);  // bgms, synthtel, av
  for (const auto& name : names) {
    const auto domain = domains::make_domain(name);
    ASSERT_NE(domain, nullptr);
    EXPECT_EQ(domain->spec().name, name);
    EXPECT_GT(domain->spec().num_channels, 0u);
    EXPECT_LT(domain->spec().target_channel, domain->spec().num_channels);
  }
  EXPECT_THROW((void)domains::make_domain("no_such_domain"), common::PreconditionError);
}

TEST(DomainRegistry, PrepareStampsDomainSemantics) {
  const auto domain = domains::make_domain("synthtel");
  const FrameworkConfig config = domain->prepare(FrameworkConfig::fast());
  const auto& spec = domain->spec();
  EXPECT_EQ(config.registry.target_channel, spec.target_channel);
  EXPECT_DOUBLE_EQ(config.registry.target_max, spec.target_max);
  EXPECT_DOUBLE_EQ(config.profiling_campaign.attack.thresholds.high_baseline,
                   spec.thresholds.high_baseline);
  EXPECT_DOUBLE_EQ(config.evaluation_campaign.attack.box_max, spec.attack_box_max);
  EXPECT_DOUBLE_EQ(config.profiling_campaign.attack.harm_threshold,
                   spec.attack_harm_threshold);
}

TEST(DomainRegistry, FrameworkRejectsUnpreparedConfig) {
  const auto domain = domains::make_domain("synthtel");
  // FrameworkConfig::fast() without prepare(): registry scaling disagrees
  // with the synthtel spec, which the constructor must reject.
  EXPECT_THROW(RiskProfilingFramework(domain, FrameworkConfig::fast()),
               common::PreconditionError);
}

// --- synthtel end to end (steps 1-5) ---------------------------------------

std::shared_ptr<const DomainAdapter> tiny_fleet() {
  static const auto domain = std::make_shared<synthtel::SynthtelDomain>(3);
  return domain;
}

FrameworkConfig tiny_fleet_config() {
  FrameworkConfig config = tiny_fleet()->prepare(FrameworkConfig::fast());
  config.population.train_steps = 1500;
  config.population.test_steps = 500;
  config.population.seed = 99;
  config.registry.forecaster.hidden = 8;
  config.registry.forecaster.head_hidden = 6;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 8;
  config.registry.aggregate_window_step = 50;
  config.profiling_campaign.window_step = 12;
  config.evaluation_campaign.window_step = 12;
  config.detector_benign_stride = 12;
  config.detectors.knn.max_points_per_class = 500;
  config.random_runs = 2;
  config.random_victims = 2;
  config.seed = 31337;
  return config;
}

RiskProfilingFramework& fleet_framework() {
  static RiskProfilingFramework framework(tiny_fleet(), tiny_fleet_config());
  return framework;
}

TEST(SynthtelDomain, GeneratesTwoSubsetFleet) {
  const auto& entities = fleet_framework().entities();
  ASSERT_EQ(entities.size(), 6u);  // 3 nodes per subset
  EXPECT_EQ(entities[0].name, "SA_0");
  EXPECT_EQ(entities[3].name, "SB_0");
  EXPECT_EQ(entities[0].subset, 0u);
  EXPECT_EQ(entities[3].subset, 1u);
  for (const auto& e : entities) {
    EXPECT_EQ(e.train.num_channels(), synthtel::kNumChannels);
    EXPECT_EQ(e.train.steps(), 1500u);
    EXPECT_EQ(e.test.steps(), 500u);
  }
}

TEST(SynthtelDomain, Steps1Through4ProduceProfilesAndClusters) {
  const auto& profiling = fleet_framework().profiling();
  ASSERT_EQ(profiling.profiles.size(), 6u);
  for (const auto& profile : profiling.profiles) {
    EXPECT_FALSE(profile.values.empty());
    for (const double r : profile.values) {
      ASSERT_GE(r, 0.0);
      ASSERT_TRUE(std::isfinite(r));
    }
  }
  // Step 4: one dendrogram per subset, clusters partition the fleet.
  ASSERT_EQ(profiling.dendrograms.size(), 2u);
  EXPECT_EQ(profiling.dendrograms[0].num_leaves(), 3u);
  std::set<std::size_t> all;
  for (const auto n : profiling.clusters.less_vulnerable) all.insert(n);
  for (const auto n : profiling.clusters.more_vulnerable) all.insert(n);
  EXPECT_EQ(all.size(), 6u);
  EXPECT_FALSE(profiling.clusters.less_vulnerable.empty());
  EXPECT_FALSE(profiling.clusters.more_vulnerable.empty());
  // Benign normal ratios are probabilities.
  for (const double r : profiling.benign_normal_ratio) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(SynthtelDomain, Step5TrainsAndEvaluatesDetectors) {
  auto& framework = fleet_framework();
  const auto eval = framework.evaluate_strategy(
      detect::DetectorKind::kKnn, framework.profiling().clusters.less_vulnerable);
  EXPECT_EQ(eval.per_victim.size(), 6u);
  EXPECT_GT(eval.pooled.total(), 0u);
  EXPECT_GT(eval.train_benign, 0u);
  EXPECT_GT(eval.train_malicious, 0u);
  // Metrics are well-defined probabilities.
  EXPECT_GE(eval.pooled.recall(), 0.0);
  EXPECT_LE(eval.pooled.recall(), 1.0);
  EXPECT_GE(eval.pooled.precision(), 0.0);
  EXPECT_LE(eval.pooled.precision(), 1.0);
}

TEST(SynthtelDomain, SampleFeaturesUseDomainContextChannels) {
  auto& framework = fleet_framework();
  const auto samples = framework.benign_train_samples(0);
  ASSERT_FALSE(samples.empty());
  // 3 channels + 1 rolling context sum (the event channel).
  EXPECT_EQ(samples.front().cols(), synthtel::kNumChannels + 1);
}

// --- BGMS regression pin ----------------------------------------------------

/// Pins the BGMS adapter against the pre-refactor pipeline: same seeds must
/// keep producing the same step-1/2/3 numbers. The constants below were
/// produced by the miniature configuration at the refactor boundary; any
/// drift means the adapter no longer reproduces the original pipeline.
constexpr double kPinnedAttackRateA2 = 1.0;
constexpr double kPinnedAttackRateA5 = 0.022222222222222223;
constexpr double kPinnedProfileMeanA2 = 3888479.5126297241;
constexpr double kPinnedNormalRatioA5 = 0.83250000000000002;

TEST(BgmsRegression, ProfilingNumbersAreStable) {
  const auto domain = std::make_shared<bgms::BgmsDomain>();
  FrameworkConfig config = domain->prepare(FrameworkConfig::fast());
  config.population.train_steps = 900;
  config.population.test_steps = 300;
  config.population.seed = 2025;
  config.registry.forecaster.hidden = 8;
  config.registry.forecaster.head_hidden = 6;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 12;
  config.registry.aggregate_window_step = 60;
  config.profiling_campaign.window_step = 15;
  config.profiling_campaign.attack.harm_threshold = 220.0;
  config.seed = 2025;

  RiskProfilingFramework framework(domain, config);
  const auto& profiling = framework.profiling();
  ASSERT_EQ(profiling.profiles.size(), 12u);

  // Values pinned at the refactor boundary (see CHANGES.md, PR 1).
  EXPECT_NEAR(profiling.train_attack_rates[2].overall_rate(),
              kPinnedAttackRateA2, 1e-12);
  EXPECT_NEAR(profiling.train_attack_rates[5].overall_rate(),
              kPinnedAttackRateA5, 1e-12);
  EXPECT_NEAR(profiling.profiles[2].mean(), kPinnedProfileMeanA2,
              std::abs(kPinnedProfileMeanA2) * 1e-9);
  EXPECT_NEAR(profiling.benign_normal_ratio[5], kPinnedNormalRatioA5, 1e-12);
}

}  // namespace
}  // namespace goodones::core
