// Corrupt/mismatched-artifact behavior of the serving ModelRegistry: a
// truncated file, a wrong magic or version, a shape mismatch, a stale
// config fingerprint and byte-level tampering must all fail with the typed
// common::SerializationError — the registry never returns a half-loaded
// model, and never dies on malformed bytes.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"

namespace goodones::serve {
namespace {

using common::SerializationError;

std::filesystem::path test_root() {
  return std::filesystem::temp_directory_path() / "goodones_serve_registry_test";
}

nn::Matrix random_matrix(std::size_t rows, std::size_t cols, common::Rng& rng) {
  nn::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (double& v : m.row(r)) v = rng.uniform(0.0, 1.0);
  }
  return m;
}

predict::BiLstmForecaster toy_forecaster(std::size_t channels, std::uint64_t seed) {
  common::Rng rng(seed);
  predict::ForecasterConfig config;
  config.hidden = 4;
  config.head_hidden = 3;
  config.target_channel = 0;
  config.seed = seed;
  data::MinMaxScaler scaler;
  scaler.fit(random_matrix(20, channels, rng));
  scaler.set_column_range(0, 0.0, 10.0);
  return predict::BiLstmForecaster(config, std::move(scaler));
}

std::unique_ptr<detect::AnomalyDetector> toy_detector(std::size_t dim, std::uint64_t seed) {
  common::Rng rng(seed);
  auto knn = std::make_unique<detect::KnnDetector>();
  std::vector<nn::Matrix> benign;
  std::vector<nn::Matrix> malicious;
  for (int i = 0; i < 12; ++i) benign.push_back(random_matrix(1, dim, rng));
  for (int i = 0; i < 12; ++i) malicious.push_back(random_matrix(1, dim, rng));
  knn->fit(benign, malicious);
  return knn;
}

/// Hand-built miniature bundle: 2 entities, 2-channel telemetry with one
/// context channel (sample feature width 3), untrained toy forecasters.
ServingModel toy_model(std::size_t forecaster_channels = 2) {
  common::Rng rng(99);
  ServingModel model;
  model.domain_key = "toy";
  model.fingerprint = 0xABCDEF01ULL;
  model.spec.name = "toy";
  model.spec.num_channels = 2;
  model.spec.target_channel = 0;
  model.spec.channel_names = {"reading", "event"};
  model.spec.target_min = 0.0;
  model.spec.target_max = 10.0;
  model.spec.thresholds.low = 2.0;
  model.spec.thresholds.high_baseline = 8.0;
  model.spec.thresholds.high_active = 9.0;
  model.spec.severity = risk::SeveritySchedule::paper_default();
  model.spec.context_channels = {1};
  model.spec.context_window_steps = 4;
  model.spec.num_subsets = 1;
  model.detector_kind = detect::DetectorKind::kKnn;
  model.entity_names = {"E_0", "E_1"};
  model.entity_cluster = {Cluster::kLessVulnerable, Cluster::kMoreVulnerable};
  model.detector_scaler.fit(random_matrix(30, 2, rng));
  model.forecasters.push_back(toy_forecaster(forecaster_channels, 1));
  model.forecasters.push_back(toy_forecaster(forecaster_channels, 2));
  model.cluster_detectors[0] = toy_detector(3, 10);
  model.cluster_detectors[1] = toy_detector(3, 11);
  return model;
}

RegistryKey toy_key() {
  RegistryKey key;
  key.domain_key = "toy";
  key.fingerprint = 0xABCDEF01ULL;
  key.detector_kind = detect::DetectorKind::kKnn;
  return key;
}

std::vector<char> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::filesystem::path& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ServeRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::filesystem::remove_all(test_root());
    registry_ = std::make_unique<ModelRegistry>(test_root());
  }
  void TearDown() override { std::filesystem::remove_all(test_root()); }

  ModelRegistry& registry() { return *registry_; }

 private:
  std::unique_ptr<ModelRegistry> registry_;
};

TEST_F(ServeRegistryTest, RoundTripPreservesRoutingAndScoring) {
  const ServingModel saved = toy_model();
  registry().save(saved);
  ASSERT_TRUE(registry().contains(toy_key()));
  ASSERT_EQ(registry().list().size(), 1u);

  ServingModel loaded = registry().load(toy_key());
  EXPECT_EQ(loaded.entity_names, saved.entity_names);
  EXPECT_EQ(loaded.spec.context_channels, saved.spec.context_channels);
  EXPECT_EQ(loaded.spec.severity.name(), saved.spec.severity.name());
  EXPECT_EQ(loaded.entity_cluster[1], Cluster::kMoreVulnerable);

  // The reloaded bundle actually serves.
  common::Rng rng(5);
  ScoreRequest request;
  request.entity = "E_1";
  request.windows.push_back({random_matrix(6, 2, rng), data::Regime::kActive});
  const ScoringService service(std::move(loaded), {.threads = 1});
  const ScoreResponse response = service.score(request);
  EXPECT_EQ(response.entity_index, 1u);
  EXPECT_EQ(response.cluster, Cluster::kMoreVulnerable);
  ASSERT_EQ(response.windows.size(), 1u);
}

TEST_F(ServeRegistryTest, MissingArtifactThrowsTypedError) {
  EXPECT_THROW((void)registry().load(toy_key()), SerializationError);
}

TEST_F(ServeRegistryTest, OpenSweepsOrphanedTempFilesAndKeepsLiveArtifacts) {
  const ServingModel saved = toy_model();
  registry().save(saved);
  const auto live = registry().path_for(toy_key());
  const std::vector<char> live_bytes = read_file(live);

  // A crashed writer's leftovers: a half-written temp next to the live
  // artifact, plus one for a key that never published. Backdate them past
  // the sweep's age threshold (only STALE temps may be removed — a fresh
  // temp could be a peer process's save in flight).
  const auto orphan_same_key = std::filesystem::path(live.string() + ".tmp.4242");
  const auto orphan_other =
      registry().root() / "serving_other_beef_knn_g3.bin.tmp.99";
  const auto fresh_peer = std::filesystem::path(live.string() + ".tmp.777");
  write_file(orphan_same_key, {'h', 'a', 'l', 'f'});
  write_file(orphan_other, {'x'});
  write_file(fresh_peer, {'l', 'i', 'v', 'e'});
  const auto stale = std::filesystem::file_time_type::clock::now() -
                     std::chrono::hours(2);
  std::filesystem::last_write_time(orphan_same_key, stale);
  std::filesystem::last_write_time(orphan_other, stale);

  const ModelRegistry reopened(registry().root());
  EXPECT_FALSE(std::filesystem::exists(orphan_same_key));
  EXPECT_FALSE(std::filesystem::exists(orphan_other));
  // The peer's in-flight temp survives the sweep.
  EXPECT_TRUE(std::filesystem::exists(fresh_peer));
  // The live artifact is untouched byte for byte and still loads.
  ASSERT_TRUE(std::filesystem::exists(live));
  EXPECT_EQ(read_file(live), live_bytes);
  const ServingModel reloaded = reopened.load(toy_key());
  EXPECT_EQ(reloaded.entity_names, saved.entity_names);
}

TEST_F(ServeRegistryTest, LatestResolvesNewestGeneration) {
  EXPECT_FALSE(registry().latest(toy_key()).has_value());
  for (const std::uint64_t generation : {0ull, 2ull, 11ull}) {
    ServingModel model = toy_model();
    model.generation = generation;
    registry().save(model);
  }
  // Malformed neighbors must be skipped, not crash the resume path: a
  // generation too large for u64 and a non-numeric suffix.
  const auto base_name = registry().path_for(toy_key()).filename().string();
  const auto prefix = base_name.substr(0, base_name.size() - std::string("0.bin").size());
  write_file(registry().root() / (prefix + "99999999999999999999999.bin"), {'x'});
  write_file(registry().root() / (prefix + "12abc.bin"), {'x'});
  const auto newest = registry().latest(toy_key());
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->generation, 11u);
  EXPECT_EQ(registry().load(*newest).generation, 11u);
  // Loading a generation under the wrong key fails loudly.
  RegistryKey wrong = toy_key();
  wrong.generation = 2;
  EXPECT_EQ(registry().load(wrong).generation, 2u);
  wrong.generation = 7;
  EXPECT_THROW((void)registry().load(wrong), SerializationError);
}

TEST_F(ServeRegistryTest, TruncatedArtifactThrowsTypedError) {
  registry().save(toy_model());
  const auto path = registry().path_for(toy_key());
  const std::vector<char> full = read_file(path);
  ASSERT_GT(full.size(), 64u);

  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{17}, full.size() / 4, full.size() / 2,
        full.size() - 1}) {
    write_file(path, {full.begin(), full.begin() + static_cast<std::ptrdiff_t>(keep)});
    EXPECT_THROW((void)registry().load(toy_key()), SerializationError)
        << "kept " << keep << " of " << full.size() << " bytes";
  }
}

TEST_F(ServeRegistryTest, WrongMagicThrowsTypedError) {
  registry().save(toy_model());
  const auto path = registry().path_for(toy_key());
  std::vector<char> bytes = read_file(path);
  bytes[0] = static_cast<char>(bytes[0] ^ 0x5A);
  write_file(path, bytes);
  EXPECT_THROW((void)registry().load(toy_key()), SerializationError);
}

TEST_F(ServeRegistryTest, WrongVersionThrowsTypedError) {
  registry().save(toy_model());
  const auto path = registry().path_for(toy_key());
  std::vector<char> bytes = read_file(path);
  bytes[4] = static_cast<char>(bytes[4] + 1);  // version field follows the magic
  write_file(path, bytes);
  EXPECT_THROW((void)registry().load(toy_key()), SerializationError);
}

TEST_F(ServeRegistryTest, StaleFingerprintThrowsTypedError) {
  registry().save(toy_model());

  // Simulate an operator copying an old artifact over a retrained config:
  // the file exists at the new key's path but embeds the old fingerprint.
  RegistryKey new_key = toy_key();
  new_key.fingerprint = 0x12345678ULL;
  std::filesystem::copy_file(registry().path_for(toy_key()),
                             registry().path_for(new_key));
  try {
    (void)registry().load(new_key);
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("stale"), std::string::npos);
  }
}

TEST_F(ServeRegistryTest, DetectorKindMismatchThrowsTypedError) {
  registry().save(toy_model());
  RegistryKey wrong_kind = toy_key();
  wrong_kind.detector_kind = detect::DetectorKind::kOcsvm;
  std::filesystem::copy_file(registry().path_for(toy_key()),
                             registry().path_for(wrong_kind));
  EXPECT_THROW((void)registry().load(wrong_kind), SerializationError);
}

TEST_F(ServeRegistryTest, ForecasterShapeMismatchThrowsTypedError) {
  // A bundle whose forecasters disagree with the spec's channel count must
  // be rejected on load — a shape-mismatched model silently serving is the
  // exact failure mode the typed errors exist to prevent.
  registry().save(toy_model(/*forecaster_channels=*/3));
  EXPECT_THROW((void)registry().load(toy_key()), SerializationError);
}

TEST_F(ServeRegistryTest, DetectorWidthMismatchThrowsTypedError) {
  // Internally consistent detectors whose feature width disagrees with the
  // domain schema (sample_feature_count = 2 channels + 1 context = 3) must
  // be rejected — they would otherwise read past every query row.
  ServingModel model = toy_model();
  model.cluster_detectors[0] = toy_detector(5, 20);
  model.cluster_detectors[1] = toy_detector(5, 21);
  registry().save(model);
  EXPECT_THROW((void)registry().load(toy_key()), SerializationError);
}

TEST_F(ServeRegistryTest, HeaderTamperingNeverYieldsUntypedFailure) {
  registry().save(toy_model());
  const auto path = registry().path_for(toy_key());
  const std::vector<char> clean = read_file(path);
  const std::size_t scan = std::min<std::size_t>(clean.size(), 160);

  // Flip one byte at a time through the structured header region. Every
  // outcome must be either a successful load or the typed error — never an
  // unhandled exception type, never a crash or runaway allocation.
  for (std::size_t offset = 0; offset < scan; ++offset) {
    std::vector<char> tampered = clean;
    tampered[offset] = static_cast<char>(tampered[offset] ^ 0xFF);
    write_file(path, tampered);
    try {
      (void)registry().load(toy_key());
    } catch (const SerializationError&) {
      // expected for most offsets
    } catch (const std::exception& e) {
      FAIL() << "offset " << offset << " raised non-typed " << e.what();
    }
  }
}

}  // namespace
}  // namespace goodones::serve
