// Gradient checking for all layers: analytic backward vs central finite
// differences. These tests are the foundation the forecaster, MAD-GAN and
// the gradient-guided attack all rest on.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/loss.hpp"

namespace goodones::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, common::Rng& rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (double& x : m.row(r)) x = rng.uniform(-scale, scale);
  }
  return m;
}

/// Scalar loss used for gradient checks: weighted sum of outputs (weights
/// fixed per test so dLoss/dOutput is known exactly).
double weighted_sum(const Matrix& out, const Matrix& weights) {
  double sum = 0.0;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) sum += out(r, c) * weights(r, c);
  }
  return sum;
}

constexpr double kEps = 1e-5;
constexpr double kTol = 1e-6;

TEST(Activations, SigmoidSymmetryAndRange) {
  EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(sigmoid(5.0) + sigmoid(-5.0), 1.0, 1e-12);
  EXPECT_GT(sigmoid(100.0), 0.999);
  EXPECT_LT(sigmoid(-100.0), 0.001);
  EXPECT_TRUE(std::isfinite(sigmoid(1000.0)));
  EXPECT_TRUE(std::isfinite(sigmoid(-1000.0)));
}

TEST(Activations, DerivativesFromOutputs) {
  const double y = sigmoid(0.7);
  EXPECT_NEAR(sigmoid_grad_from_output(y), y * (1 - y), 1e-15);
  const double t = tanh_act(0.3);
  EXPECT_NEAR(tanh_grad_from_output(t), 1 - t * t, 1e-15);
  EXPECT_DOUBLE_EQ(relu_grad_from_output(relu(2.0)), 1.0);
  EXPECT_DOUBLE_EQ(relu_grad_from_output(relu(-2.0)), 0.0);
}

class DenseGradientCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(DenseGradientCheck, ParameterAndInputGradientsMatchFiniteDifferences) {
  common::Rng rng(101);
  Dense layer(4, 3, GetParam(), rng);
  const Matrix x = random_matrix(5, 4, rng);
  const Matrix loss_weights = random_matrix(5, 3, rng);

  Dense::Cache cache;
  layer.forward_cached(x, cache);
  const Matrix dx = layer.backward(loss_weights, cache);

  // Input gradient check.
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      Matrix plus = x;
      Matrix minus = x;
      plus(r, c) += kEps;
      minus(r, c) -= kEps;
      const double numeric =
          (weighted_sum(layer.forward(plus), loss_weights) -
           weighted_sum(layer.forward(minus), loss_weights)) /
          (2 * kEps);
      ASSERT_NEAR(dx(r, c), numeric, kTol);
    }
  }

  // Weight gradient check (sampled entries).
  for (const auto [wr, wc] : {std::pair<std::size_t, std::size_t>{0, 0}, {3, 2}, {1, 1}}) {
    const double original = layer.weight().value(wr, wc);
    layer.weight().value(wr, wc) = original + kEps;
    const double up = weighted_sum(layer.forward(x), loss_weights);
    layer.weight().value(wr, wc) = original - kEps;
    const double down = weighted_sum(layer.forward(x), loss_weights);
    layer.weight().value(wr, wc) = original;
    ASSERT_NEAR(layer.weight().grad(wr, wc), (up - down) / (2 * kEps), kTol);
  }

  // Bias gradient check.
  for (std::size_t c = 0; c < 3; ++c) {
    const double original = layer.bias().value(0, c);
    layer.bias().value(0, c) = original + kEps;
    const double up = weighted_sum(layer.forward(x), loss_weights);
    layer.bias().value(0, c) = original - kEps;
    const double down = weighted_sum(layer.forward(x), loss_weights);
    layer.bias().value(0, c) = original;
    ASSERT_NEAR(layer.bias().grad(0, c), (up - down) / (2 * kEps), kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, DenseGradientCheck,
                         ::testing::Values(Activation::kLinear, Activation::kTanh,
                                           Activation::kSigmoid, Activation::kRelu));

TEST(Lstm, ForwardShapesAndDeterminism) {
  common::Rng rng(55);
  const Lstm lstm(3, 8, rng);
  common::Rng data_rng(56);
  const Matrix x = random_matrix(10, 3, data_rng);
  const Matrix h1 = lstm.forward(x);
  const Matrix h2 = lstm.forward(x);
  EXPECT_EQ(h1.rows(), 10u);
  EXPECT_EQ(h1.cols(), 8u);
  for (std::size_t t = 0; t < 10; ++t) {
    for (std::size_t j = 0; j < 8; ++j) ASSERT_DOUBLE_EQ(h1(t, j), h2(t, j));
  }
}

TEST(Lstm, HiddenValuesBounded) {
  common::Rng rng(57);
  const Lstm lstm(2, 6, rng);
  common::Rng data_rng(58);
  const Matrix x = random_matrix(20, 2, data_rng, 5.0);
  const Matrix h = lstm.forward(x);
  for (std::size_t t = 0; t < h.rows(); ++t) {
    for (const double v : h.row(t)) {
      ASSERT_LT(std::abs(v), 1.0);  // |h| = |o * tanh(c)| < 1
    }
  }
}

TEST(Lstm, InputGradientMatchesFiniteDifferences) {
  common::Rng rng(59);
  Lstm lstm(3, 5, rng);
  common::Rng data_rng(60);
  const Matrix x = random_matrix(6, 3, data_rng);
  const Matrix loss_weights = random_matrix(6, 5, data_rng);

  Lstm::Cache cache;
  lstm.forward_cached(x, cache);
  const Matrix dx = lstm.backward(loss_weights, cache);

  for (std::size_t t = 0; t < x.rows(); ++t) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      Matrix plus = x;
      Matrix minus = x;
      plus(t, c) += kEps;
      minus(t, c) -= kEps;
      const double numeric = (weighted_sum(lstm.forward(plus), loss_weights) -
                              weighted_sum(lstm.forward(minus), loss_weights)) /
                             (2 * kEps);
      ASSERT_NEAR(dx(t, c), numeric, kTol) << "t=" << t << " c=" << c;
    }
  }
}

TEST(Lstm, ParameterGradientsMatchFiniteDifferences) {
  common::Rng rng(61);
  Lstm lstm(2, 4, rng);
  common::Rng data_rng(62);
  const Matrix x = random_matrix(5, 2, data_rng);
  const Matrix loss_weights = random_matrix(5, 4, data_rng);

  Lstm::Cache cache;
  lstm.forward_cached(x, cache);
  lstm.backward(loss_weights, cache);

  const auto check_param = [&](ParamBuffer& p, std::size_t r, std::size_t c) {
    const double original = p.value(r, c);
    p.value(r, c) = original + kEps;
    const double up = weighted_sum(lstm.forward(x), loss_weights);
    p.value(r, c) = original - kEps;
    const double down = weighted_sum(lstm.forward(x), loss_weights);
    p.value(r, c) = original;
    ASSERT_NEAR(p.grad(r, c), (up - down) / (2 * kEps), kTol)
        << "param entry (" << r << "," << c << ")";
  };

  // Sample entries across all three parameter tensors and all four gates.
  for (std::size_t gate = 0; gate < 4; ++gate) {
    check_param(lstm.weight_input(), 0, gate * 4 + 1);
    check_param(lstm.weight_input(), 1, gate * 4 + 3);
    check_param(lstm.weight_hidden(), 2, gate * 4 + 0);
    check_param(lstm.bias(), 0, gate * 4 + 2);
  }
}

TEST(ReverseTime, ReversesAndIsInvolution) {
  const Matrix x{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Matrix r = reverse_time(x);
  EXPECT_DOUBLE_EQ(r(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(r(2, 1), 2.0);
  const Matrix rr = reverse_time(r);
  for (std::size_t t = 0; t < x.rows(); ++t) {
    for (std::size_t c = 0; c < x.cols(); ++c) ASSERT_DOUBLE_EQ(rr(t, c), x(t, c));
  }
}

TEST(BiLstm, OutputConcatenatesBothDirections) {
  common::Rng rng(63);
  const BiLstm bilstm(3, 4, rng);
  common::Rng data_rng(64);
  const Matrix x = random_matrix(7, 3, data_rng);
  const Matrix out = bilstm.forward(x);
  EXPECT_EQ(out.rows(), 7u);
  EXPECT_EQ(out.cols(), 8u);

  // First half equals the forward cell's output directly.
  const Matrix fwd = bilstm.forward_cell().forward(x);
  for (std::size_t t = 0; t < 7; ++t) {
    for (std::size_t j = 0; j < 4; ++j) ASSERT_DOUBLE_EQ(out(t, j), fwd(t, j));
  }
  // Second half equals the backward cell run on reversed input, re-reversed.
  const Matrix bwd = reverse_time(bilstm.backward_cell().forward(reverse_time(x)));
  for (std::size_t t = 0; t < 7; ++t) {
    for (std::size_t j = 0; j < 4; ++j) ASSERT_DOUBLE_EQ(out(t, 4 + j), bwd(t, j));
  }
}

TEST(BiLstm, InputGradientMatchesFiniteDifferences) {
  common::Rng rng(65);
  BiLstm bilstm(2, 3, rng);
  common::Rng data_rng(66);
  const Matrix x = random_matrix(5, 2, data_rng);
  const Matrix loss_weights = random_matrix(5, 6, data_rng);

  BiLstm::Cache cache;
  bilstm.forward_cached(x, cache);
  const Matrix dx = bilstm.backward(loss_weights, cache);

  for (std::size_t t = 0; t < x.rows(); ++t) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      Matrix plus = x;
      Matrix minus = x;
      plus(t, c) += kEps;
      minus(t, c) -= kEps;
      const double numeric = (weighted_sum(bilstm.forward(plus), loss_weights) -
                              weighted_sum(bilstm.forward(minus), loss_weights)) /
                             (2 * kEps);
      ASSERT_NEAR(dx(t, c), numeric, kTol);
    }
  }
}

TEST(BiLstm, ParameterListCoversBothCells) {
  common::Rng rng(67);
  BiLstm bilstm(2, 3, rng);
  EXPECT_EQ(bilstm.parameters().size(), 6u);  // 3 tensors per direction
}

}  // namespace
}  // namespace goodones::nn
