// End-to-end golden test for the serving path: train the synthtel mini
// pipeline, build the serving bundle, persist it through the ModelRegistry,
// reload into a fresh ScoringService, and pin that served verdicts and risk
// scores are IDENTICAL (bitwise) to in-memory scoring — for clean windows
// and for adversarially manipulated ones. This is the contract that makes
// "train once, score forever" safe.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "core/framework.hpp"
#include "core/metrics.hpp"
#include "data/window.hpp"
#include "domains/synthtel/adapter.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"

namespace goodones::serve {
namespace {

std::shared_ptr<const core::DomainAdapter> mini_fleet() {
  static const auto domain = std::make_shared<synthtel::SynthtelDomain>(2);
  return domain;
}

core::FrameworkConfig mini_config() {
  core::FrameworkConfig config = mini_fleet()->prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 1200;
  config.population.test_steps = 400;
  config.population.seed = 7;
  config.registry.forecaster.hidden = 8;
  config.registry.forecaster.head_hidden = 6;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 8;
  config.registry.aggregate_window_step = 50;
  config.profiling_campaign.window_step = 10;
  config.evaluation_campaign.window_step = 10;
  config.detector_benign_stride = 10;
  config.detectors.knn.max_points_per_class = 400;
  config.random_runs = 1;
  config.random_victims = 2;
  config.seed = 4242;
  return config;
}

core::RiskProfilingFramework& framework() {
  static core::RiskProfilingFramework instance(mini_fleet(), mini_config());
  return instance;
}

/// Scratch registry root, wiped between test runs.
std::filesystem::path registry_root() {
  const auto root = std::filesystem::temp_directory_path() / "goodones_serve_e2e";
  return root;
}

/// Clean + attacked score requests for every entity: a few benign test
/// windows and the successful adversarial windows of the evaluation
/// campaign (evasion pressure lands at test time).
std::vector<ScoreRequest> build_requests(core::RiskProfilingFramework& fw) {
  std::vector<ScoreRequest> requests;
  const auto& entities = fw.entities();
  data::WindowConfig window_config = fw.config().window;
  window_config.step = 25;
  for (std::size_t e = 0; e < entities.size(); ++e) {
    ScoreRequest clean;
    clean.entity = entities[e].name;
    const auto windows = data::make_windows(entities[e].test, window_config);
    for (std::size_t i = 0; i < windows.size() && i < 6; ++i) {
      clean.windows.push_back({windows[i].features, windows[i].regime});
    }
    requests.push_back(std::move(clean));

    ScoreRequest attacked;
    attacked.entity = entities[e].name;
    for (const auto& outcome : fw.test_outcomes(e)) {
      if (!outcome.attack.success) continue;
      attacked.windows.push_back(
          {outcome.attack.adversarial_features, outcome.benign.regime});
      if (attacked.windows.size() >= 4) break;
    }
    if (!attacked.windows.empty()) requests.push_back(std::move(attacked));
  }
  return requests;
}

void expect_identical_responses(const std::vector<ScoreResponse>& in_memory,
                                const std::vector<ScoreResponse>& served) {
  ASSERT_EQ(in_memory.size(), served.size());
  for (std::size_t r = 0; r < in_memory.size(); ++r) {
    const ScoreResponse& a = in_memory[r];
    const ScoreResponse& b = served[r];
    EXPECT_EQ(a.entity_index, b.entity_index);
    EXPECT_EQ(a.cluster, b.cluster);
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (std::size_t w = 0; w < a.windows.size(); ++w) {
      // Bitwise: a reloaded model must not drift by even one ulp.
      EXPECT_EQ(a.windows[w].forecast, b.windows[w].forecast) << "r=" << r << " w=" << w;
      EXPECT_EQ(a.windows[w].residual, b.windows[w].residual) << "r=" << r << " w=" << w;
      EXPECT_EQ(a.windows[w].observed_state, b.windows[w].observed_state);
      EXPECT_EQ(a.windows[w].predicted_state, b.windows[w].predicted_state);
      EXPECT_EQ(a.windows[w].anomaly_score, b.windows[w].anomaly_score)
          << "r=" << r << " w=" << w;
      EXPECT_EQ(a.windows[w].flagged, b.windows[w].flagged) << "r=" << r << " w=" << w;
      EXPECT_EQ(a.windows[w].risk, b.windows[w].risk) << "r=" << r << " w=" << w;
    }
  }
}

TEST(ServeEndToEnd, PersistedBundleServesIdenticalVerdicts) {
  std::filesystem::remove_all(registry_root());
  auto& fw = framework();

  // Train + bundle in memory.
  ServingModel model = build_serving_model(fw, detect::DetectorKind::kKnn);
  ASSERT_EQ(model.entity_names.size(), fw.entities().size());
  ASSERT_EQ(model.forecasters.size(), fw.entities().size());

  // Persist and reload through the registry.
  const ModelRegistry registry(registry_root());
  const RegistryKey key = registry_key(fw, detect::DetectorKind::kKnn);
  EXPECT_FALSE(registry.contains(key));
  registry.save(model);
  ASSERT_TRUE(registry.contains(key));
  ServingModel reloaded = registry.load(key);
  EXPECT_EQ(reloaded.domain_key, model.domain_key);
  EXPECT_EQ(reloaded.fingerprint, model.fingerprint);
  EXPECT_EQ(reloaded.entity_names, model.entity_names);
  EXPECT_EQ(reloaded.entity_cluster.size(), model.entity_cluster.size());

  const std::vector<ScoreRequest> requests = build_requests(fw);
  ASSERT_GE(requests.size(), fw.entities().size());  // at least the clean ones

  const ScoringService in_memory(std::move(model), {.threads = 2});
  const ScoringService served(std::move(reloaded), {.threads = 2});

  const auto in_memory_responses =
      in_memory.score_batch(std::span<const ScoreRequest>(requests));
  const auto served_responses =
      served.score_batch(std::span<const ScoreRequest>(requests));
  expect_identical_responses(in_memory_responses, served_responses);

  // The golden run must actually exercise the detector on attack traffic:
  // at least one adversarial request exists and at least one window of the
  // whole run carries nonzero anomaly signal.
  std::size_t scored_windows = 0;
  bool any_signal = false;
  for (const auto& response : served_responses) {
    for (const auto& window : response.windows) {
      ++scored_windows;
      any_signal = any_signal || window.anomaly_score != 0.0 || window.flagged;
    }
  }
  EXPECT_GT(scored_windows, fw.entities().size() * 3);
  EXPECT_TRUE(any_signal);

  std::filesystem::remove_all(registry_root());
}

TEST(ServeEndToEnd, SingleRequestMatchesBatchPath) {
  auto& fw = framework();
  ServingModel model = build_serving_model(fw, detect::DetectorKind::kKnn);
  const ScoringService service(std::move(model), {.threads = 2});

  const std::vector<ScoreRequest> requests = build_requests(fw);
  const auto batched = service.score_batch(std::span<const ScoreRequest>(requests));
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const ScoreResponse single = service.score(requests[r]);
    expect_identical_responses({batched[r]}, {single});
  }
}

TEST(ServeEndToEnd, ThroughputCountersAdvance) {
  auto& fw = framework();
  ServingModel model = build_serving_model(fw, detect::DetectorKind::kKnn);
  const ScoringService service(std::move(model), {.threads = 2});

  core::counters().reset();
  const std::vector<ScoreRequest> requests = build_requests(fw);
  std::size_t total_windows = 0;
  for (const auto& request : requests) total_windows += request.windows.size();
  (void)service.score_batch(std::span<const ScoreRequest>(requests));

  EXPECT_EQ(core::counters().value("serve.requests"), requests.size());
  EXPECT_EQ(core::counters().value("serve.windows"), total_windows);
  EXPECT_GE(core::counters().value("serve.entity_batches"), 1u);
}

TEST(ServeEndToEnd, UnknownEntityFailsLoudly) {
  auto& fw = framework();
  ServingModel model = build_serving_model(fw, detect::DetectorKind::kKnn);
  const ScoringService service(std::move(model));

  ScoreRequest bogus;
  bogus.entity = "NO_SUCH_NODE";
  EXPECT_THROW((void)service.score(bogus), common::PreconditionError);
}

}  // namespace
}  // namespace goodones::serve
