// End-to-end tests for the serving daemon over a REAL Unix-domain socket:
//
//   * IPC transparency: daemon verdicts are bitwise-identical to in-process
//     ScoringService verdicts for the same bundle generation (the wire
//     round-trips doubles bit-exactly).
//   * The refresh worker: a detector-retraining refresh triggered under
//     live load completes in the background while concurrent score round
//     trips stay under a pinned latency bound — retraining never runs on
//     the scoring path. Every verdict recorded across the hot swap replays
//     bitwise against the persisted bundle of the generation it names.
//   * Protocol robustness: malformed/truncated/oversized/foreign-version
//     frames produce typed Error frames, never a crash; the daemon keeps
//     serving other connections.
//   * Clean shutdown: a Shutdown frame drains connections, wait() returns,
//     the socket file is removed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/socket.hpp"
#include "core/framework.hpp"
#include "data/window.hpp"
#include "domains/synthtel/adapter.hpp"
#include "nn/serialize.hpp"
#include "serve/daemon.hpp"

namespace goodones::serve {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const core::DomainAdapter> mini_fleet() {
  static const auto domain = std::make_shared<synthtel::SynthtelDomain>(2);
  return domain;
}

core::FrameworkConfig mini_config() {
  core::FrameworkConfig config = mini_fleet()->prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 1200;
  config.population.test_steps = 400;
  config.population.seed = 23;
  config.registry.forecaster.hidden = 8;
  config.registry.forecaster.head_hidden = 6;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 8;
  config.registry.aggregate_window_step = 50;
  config.profiling_campaign.window_step = 10;
  config.evaluation_campaign.window_step = 10;
  config.detector_benign_stride = 10;
  config.detectors.knn.max_points_per_class = 400;
  config.random_runs = 1;
  config.random_victims = 2;
  config.seed = 555;
  return config;
}

core::RiskProfilingFramework& framework() {
  static core::RiskProfilingFramework instance(mini_fleet(), mini_config());
  return instance;
}

std::filesystem::path unique_path(const char* stem, const char* suffix) {
  return std::filesystem::temp_directory_path() /
         (std::string(stem) + "_" + std::to_string(::getpid()) + suffix);
}

/// Clean held-out windows, or the same windows with the reading channel
/// pinned to the attack-box ceiling (sustained evasion pressure).
ScoreRequest entity_request(std::size_t entity, bool manipulated) {
  auto& fw = framework();
  const auto& entities = fw.entities();
  data::WindowConfig window_config = fw.config().window;
  window_config.step = 30;
  ScoreRequest request;
  request.entity = entities[entity].name;
  const auto windows = data::make_windows(entities[entity].test, window_config);
  const core::DomainSpec& spec = fw.domain().spec();
  for (std::size_t i = 0; i < windows.size() && i < 4; ++i) {
    TelemetryWindow window{windows[i].features, windows[i].regime};
    if (manipulated) {
      for (std::size_t t = 0; t < window.features.rows(); ++t) {
        window.features(t, spec.target_channel) = spec.attack_box_max;
      }
    }
    request.windows.push_back(std::move(window));
  }
  return request;
}

void expect_identical_response(const ScoreResponse& a, const ScoreResponse& b) {
  EXPECT_EQ(a.entity_index, b.entity_index);
  EXPECT_EQ(a.cluster, b.cluster);
  EXPECT_EQ(a.generation, b.generation);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t w = 0; w < a.windows.size(); ++w) {
    // Bitwise: the wire must not cost even one ulp.
    EXPECT_EQ(a.windows[w].forecast, b.windows[w].forecast) << "w=" << w;
    EXPECT_EQ(a.windows[w].residual, b.windows[w].residual) << "w=" << w;
    EXPECT_EQ(a.windows[w].observed_state, b.windows[w].observed_state) << "w=" << w;
    EXPECT_EQ(a.windows[w].predicted_state, b.windows[w].predicted_state) << "w=" << w;
    EXPECT_EQ(a.windows[w].anomaly_score, b.windows[w].anomaly_score) << "w=" << w;
    EXPECT_EQ(a.windows[w].flagged, b.windows[w].flagged) << "w=" << w;
    EXPECT_EQ(a.windows[w].risk, b.windows[w].risk) << "w=" << w;
  }
}

TEST(ServeDaemon, VerdictsBitwiseMatchInProcessService) {
  auto& fw = framework();
  ServingModel bundle = build_serving_model(fw, detect::DetectorKind::kKnn);
  const ScoringService in_process(clone_serving_model(bundle), {.threads = 1});

  DaemonConfig config;
  const std::filesystem::path socket_path = unique_path("go_d_bitwise", ".sock");
  config.listen = common::Endpoint::unix_socket(socket_path);
  config.registry_root = unique_path("go_d_bitwise", "_reg");
  config.adaptive_enabled = false;  // frozen bundle: one generation to compare
  std::filesystem::remove_all(config.registry_root);
  Daemon daemon(std::move(bundle), config);
  daemon.start();

  const std::size_t n_entities = in_process.model()->entity_names.size();
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      DaemonClient client(socket_path);
      for (int iter = 0; iter < 8; ++iter) {
        for (std::size_t e = 0; e < n_entities; ++e) {
          const bool manipulated = (iter + t) % 2 == 0;
          const ScoreRequest request = entity_request(e, manipulated);
          const ScoreResponse over_wire = client.score(request);
          const ScoreResponse local = in_process.score(request);
          EXPECT_EQ(over_wire.generation, 0u);
          expect_identical_response(over_wire, local);
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  // Stats round trip reports the daemon counter family.
  DaemonClient admin(socket_path);
  const wire::StatsSnapshot stats = admin.stats();
  const auto value_of = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [key, value] : stats) {
      if (key == name) return value;
    }
    return 0;
  };
  EXPECT_GE(value_of("serve.daemon.connections"), 3u);
  EXPECT_GE(value_of("serve.daemon.scores"), 3u * 8u * n_entities);
  EXPECT_EQ(value_of("serve.daemon.generation"), 0u);

  admin.shutdown();
  daemon.wait();
  EXPECT_FALSE(daemon.running());
  EXPECT_FALSE(std::filesystem::exists(socket_path));
  std::filesystem::remove_all(config.registry_root);
}

TEST(ServeDaemon, RetrainingRefreshOnWorkerNeverBlocksScores) {
  auto& fw = framework();
  ServingModel bundle = build_serving_model(fw, detect::DetectorKind::kKnn);
  const std::vector<Cluster> gen0_routing = bundle.entity_cluster;
  const std::size_t n_entities = bundle.entity_names.size();
  RegistryKey base_key = registry_key(fw, detect::DetectorKind::kKnn);

  // The rebuild is made ARTIFICIALLY slow (real detector retraining plus
  // kRebuildFloor, see the rebuilder below) so a refresh that leaked onto
  // the scoring path would stall a request past the floor. De-flake
  // strategy (generous multiplier): the bound only has to separate
  // "rebuild leaked inline" (>= kRebuildFloor = 2400ms) from "score served
  // from the hot snapshot" (single-digit ms typically). Pinning the bound
  // at HALF the floor keeps the regression detectable while leaving ~1.2s
  // of headroom for CI scheduler noise — the old 400ms bound sat close
  // enough to a loaded runner's tail to flake.
  constexpr auto kRebuildFloor = 2400ms;
  constexpr auto kLatencyBound = kRebuildFloor / 2;

  DaemonConfig config;
  const std::filesystem::path socket_path = unique_path("go_d_refresh", ".sock");
  config.listen = common::Endpoint::unix_socket(socket_path);
  config.registry_root = unique_path("go_d_refresh", "_reg");
  std::filesystem::remove_all(config.registry_root);
  config.adaptive.profiler.decay = 0.6;
  config.adaptive.profiler.hysteresis = 0.05;
  config.adaptive.reassess_every_windows = 32;
  Daemon daemon(
      std::move(bundle), config,
      [&](const core::VulnerabilityClusters& partition, std::uint64_t generation) {
        std::this_thread::sleep_for(kRebuildFloor);
        return build_serving_model(fw, detect::DetectorKind::kKnn, partition, generation);
      });
  daemon.start();

  // Prebuilt traffic (no framework access from client threads): evasion
  // pressure on exactly the entities the offline pipeline trusted.
  std::vector<ScoreRequest> pressured;
  for (std::size_t e = 0; e < n_entities; ++e) {
    pressured.push_back(
        entity_request(e, gen0_routing[e] == Cluster::kLessVulnerable));
  }

  struct Recorded {
    ScoreRequest request;
    ScoreResponse response;
  };
  std::mutex recorded_mutex;
  std::vector<Recorded> recorded;
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> max_latency_us{0};

  const auto drive = [&] {
    DaemonClient client(socket_path);
    std::vector<Recorded> local;
    while (!stop.load()) {
      for (const ScoreRequest& request : pressured) {
        const auto start = std::chrono::steady_clock::now();
        const ScoreResponse response = client.score(request);
        const auto elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
        std::int64_t seen = max_latency_us.load();
        while (elapsed_us > seen && !max_latency_us.compare_exchange_weak(seen, elapsed_us)) {
        }
        local.push_back({request, response});
      }
    }
    const std::lock_guard<std::mutex> lock(recorded_mutex);
    recorded.insert(recorded.end(), std::make_move_iterator(local.begin()),
                    std::make_move_iterator(local.end()));
  };

  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) clients.emplace_back(drive);

  // Wait (bounded) for the background refresh to publish, then keep traffic
  // flowing a little longer so the new generation also serves requests.
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (daemon.generation() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  std::this_thread::sleep_for(100ms);
  stop.store(true);
  for (auto& client : clients) client.join();
  daemon.controller()->drain();

  ASSERT_GE(daemon.generation(), 1u) << "pressure must force a retraining refresh";
  ASSERT_GE(daemon.controller()->refreshes(), 1u);

  // The pinned bound: every score round trip (including the ones taken
  // WHILE the worker was retraining for >= kRebuildFloor) stayed far below
  // the rebuild cost. Inline retraining on the scoring path would have
  // stalled at least one request past the floor.
  EXPECT_LT(max_latency_us.load(), std::chrono::duration_cast<std::chrono::microseconds>(
                                       kLatencyBound)
                                       .count())
      << "a score round trip stalled on the refresh";

  // Provenance: every recorded verdict replays bitwise against the
  // persisted bundle of exactly the generation it names.
  std::set<std::uint64_t> generations;
  for (const auto& record : recorded) generations.insert(record.response.generation);
  EXPECT_GE(generations.size(), 2u) << "traffic must span the hot swap";
  for (const std::uint64_t generation : generations) {
    RegistryKey key = base_key;
    key.generation = generation;
    ASSERT_TRUE(daemon.registry().contains(key)) << "generation " << generation;
    const ScoringService pinned(daemon.registry().load(key), {.threads = 1});
    std::size_t replayed = 0;
    for (const auto& record : recorded) {
      if (record.response.generation != generation) continue;
      if (++replayed > 8) break;  // a sample per generation keeps the test fast
      expect_identical_response(record.response, pinned.score(record.request));
    }
    EXPECT_GE(replayed, 1u);
  }

  daemon.stop();
  std::filesystem::remove_all(config.registry_root);
}

TEST(ServeDaemon, MalformedFramesGetTypedErrorFramesNeverACrash) {
  auto& fw = framework();
  DaemonConfig config;
  const std::filesystem::path socket_path = unique_path("go_d_malformed", ".sock");
  config.listen = common::Endpoint::unix_socket(socket_path);
  config.registry_root = unique_path("go_d_malformed", "_reg");
  config.adaptive_enabled = false;
  std::filesystem::remove_all(config.registry_root);
  Daemon daemon(build_serving_model(fw, detect::DetectorKind::kKnn), config);
  daemon.start();

  const auto read_error = [](common::Socket& socket) {
    const auto frame = wire::recv_frame(socket);
    if (!frame.has_value()) ADD_FAILURE() << "expected an error frame, got EOF";
    EXPECT_EQ(frame->type, wire::MessageType::kError);
    return wire::decode_error(frame->payload);
  };
  const auto header = [](std::uint32_t magic, std::uint32_t version, std::uint32_t type,
                         std::uint64_t length) {
    std::string bytes(20, '\0');
    std::memcpy(bytes.data(), &magic, 4);
    std::memcpy(bytes.data() + 4, &version, 4);
    std::memcpy(bytes.data() + 8, &type, 4);
    std::memcpy(bytes.data() + 12, &length, 8);
    return bytes;
  };

  {  // Garbage magic: typed error, connection closed.
    common::Socket raw = common::connect_unix(socket_path);
    raw.write_all("XXXXXXXXXXXXXXXXXXXX", 20);
    EXPECT_EQ(read_error(raw).code, wire::ErrorCode::kMalformedFrame);
    char byte;
    EXPECT_EQ(raw.read_exact(&byte, 1), common::Socket::ReadResult::kClosed);
  }
  {  // Foreign protocol version: its own error code, connection closed.
    common::Socket raw = common::connect_unix(socket_path);
    const std::string bytes = header(wire::kMagic, 99, 1, 0);
    raw.write_all(bytes.data(), bytes.size());
    EXPECT_EQ(read_error(raw).code, wire::ErrorCode::kUnsupportedVersion);
    char byte;
    EXPECT_EQ(raw.read_exact(&byte, 1), common::Socket::ReadResult::kClosed);
  }
  {  // Absurd payload length: rejected before any allocation.
    common::Socket raw = common::connect_unix(socket_path);
    const std::string bytes = header(wire::kMagic, wire::kVersion, 1, 1ull << 40);
    raw.write_all(bytes.data(), bytes.size());
    EXPECT_EQ(read_error(raw).code, wire::ErrorCode::kMalformedFrame);
  }
  {  // Well-framed but undecodable Score payload: typed error, connection
     // SURVIVES (frame boundaries are intact) and serves the next request.
    common::Socket raw = common::connect_unix(socket_path);
    const std::string junk = "\xff\xff\xff\xff";
    const std::string bytes = header(wire::kMagic, wire::kVersion, 1, junk.size());
    raw.write_all(bytes.data(), bytes.size());
    raw.write_all(junk.data(), junk.size());
    EXPECT_EQ(read_error(raw).code, wire::ErrorCode::kMalformedFrame);
    wire::send_frame(raw, wire::MessageType::kStats, {});
    const auto stats = wire::recv_frame(raw);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->type, wire::MessageType::kStatsReply);
  }
  {  // Unknown-but-well-framed message type: the forward-compatibility
     // rule — bad-request, connection SURVIVES (a future client must not
     // read as corruption).
    common::Socket raw = common::connect_unix(socket_path);
    const std::string bytes = header(wire::kMagic, wire::kVersion, 1234, 0);
    raw.write_all(bytes.data(), bytes.size());
    EXPECT_EQ(read_error(raw).code, wire::ErrorCode::kBadRequest);
    wire::send_frame(raw, wire::MessageType::kStats, {});
    const auto stats = wire::recv_frame(raw);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->type, wire::MessageType::kStatsReply);
  }
  {  // A tiny Score payload claiming 2^61 windows: the typed error frame,
     // not std::length_error/bad_alloc — and the connection survives.
    common::Socket raw = common::connect_unix(socket_path);
    std::ostringstream payload;
    nn::write_string(payload, "SA_0");
    nn::write_u64(payload, 1ull << 61);
    const std::string body = std::move(payload).str();
    const std::string bytes =
        header(wire::kMagic, wire::kVersion,
               static_cast<std::uint32_t>(wire::MessageType::kScore), body.size());
    raw.write_all(bytes.data(), bytes.size());
    raw.write_all(body.data(), body.size());
    EXPECT_EQ(read_error(raw).code, wire::ErrorCode::kMalformedFrame);
    wire::send_frame(raw, wire::MessageType::kStats, {});
    const auto stats = wire::recv_frame(raw);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->type, wire::MessageType::kStatsReply);
  }
  {  // Truncated payload (peer dies mid-frame): daemon must not crash.
    common::Socket raw = common::connect_unix(socket_path);
    const std::string bytes = header(wire::kMagic, wire::kVersion, 1, 1024);
    raw.write_all(bytes.data(), bytes.size());
    raw.write_all("partial", 7);
    raw.close();
  }

  // Unknown entity: a BadRequest error frame typed through the client, and
  // the SAME connection keeps scoring.
  DaemonClient client(socket_path);
  ScoreRequest bogus;
  bogus.entity = "NO_SUCH_ENTITY";
  bogus.windows.push_back({nn::Matrix(4, fw.domain().spec().num_channels), {}});
  EXPECT_THROW((void)client.score(bogus), common::PreconditionError);
  const ScoreResponse good = client.score(entity_request(0, false));
  EXPECT_FALSE(good.windows.empty());

  daemon.stop();
  std::filesystem::remove_all(config.registry_root);
}

TEST(ServeDaemon, UnknownGenerationPromoteIsTypedBadRequestAndServingContinues) {
  auto& fw = framework();
  DaemonConfig config;
  const std::filesystem::path socket_path = unique_path("go_d_promote", ".sock");
  config.listen = common::Endpoint::unix_socket(socket_path);
  config.registry_root = unique_path("go_d_promote", "_reg");
  config.adaptive_enabled = false;  // no canary staged, ever
  std::filesystem::remove_all(config.registry_root);
  Daemon daemon(build_serving_model(fw, detect::DetectorKind::kKnn), config);
  daemon.start();

  DaemonClient client(socket_path);
  // No candidate staged: the bare form and an unknown generation are both
  // typed BadRequest (PreconditionError through the client), never a crash.
  EXPECT_THROW((void)client.promote(), common::PreconditionError);
  EXPECT_THROW((void)client.promote(424242), common::PreconditionError);
  EXPECT_THROW((void)client.rollback(), common::PreconditionError);
  // The retry-safe form answers applied=false instead of erroring: a
  // rollback naming an explicit generation is a no-op when the candidate is
  // already gone (the duplicate-promote half lives in serve_canary_test,
  // where a promote actually lands first).
  const wire::RollbackReply gone = client.rollback(424242);
  EXPECT_FALSE(gone.applied);
  EXPECT_EQ(gone.generation, daemon.generation());

  // The SAME connection keeps scoring after every refusal.
  const ScoreResponse good = client.score(entity_request(0, false));
  EXPECT_FALSE(good.windows.empty());

  daemon.stop();
  std::filesystem::remove_all(config.registry_root);
}

TEST(ServeDaemon, CleanShutdownDrainsConnections) {
  auto& fw = framework();
  DaemonConfig config;
  const std::filesystem::path socket_path = unique_path("go_d_shutdown", ".sock");
  config.listen = common::Endpoint::unix_socket(socket_path);
  config.registry_root = unique_path("go_d_shutdown", "_reg");
  config.adaptive_enabled = false;
  std::filesystem::remove_all(config.registry_root);
  Daemon daemon(build_serving_model(fw, detect::DetectorKind::kKnn), config);
  daemon.start();

  // An idle connection (no in-flight request) and a busy one.
  DaemonClient idle(socket_path);
  std::atomic<bool> busy_done{false};
  std::thread busy([&] {
    DaemonClient client(socket_path);
    // In-flight work completes even when the shutdown lands mid-request.
    for (int i = 0; i < 20; ++i) {
      try {
        const ScoreResponse response = client.score(entity_request(0, false));
        EXPECT_FALSE(response.windows.empty());
      } catch (const std::exception&) {
        break;  // daemon drained and closed between requests — clean end
      }
    }
    busy_done.store(true);
  });

  DaemonClient admin(socket_path);
  admin.shutdown();  // returns only after the daemon acknowledged
  daemon.wait();     // drains: joins every connection handler

  EXPECT_FALSE(daemon.running());
  EXPECT_FALSE(std::filesystem::exists(socket_path));
  EXPECT_THROW((void)DaemonClient(socket_path), common::SocketError);

  busy.join();
  EXPECT_TRUE(busy_done.load()) << "the busy client must have ended cleanly";
  std::filesystem::remove_all(config.registry_root);
}

#ifdef GOODONES_CLIENT_BIN
TEST(ServeDaemon, CliClientScoresACsvAndPrintsGeneration) {
  auto& fw = framework();
  DaemonConfig config;
  const std::filesystem::path socket_path = unique_path("go_d_cli", ".sock");
  config.listen = common::Endpoint::unix_socket(socket_path);
  config.registry_root = unique_path("go_d_cli", "_reg");
  config.adaptive_enabled = false;
  std::filesystem::remove_all(config.registry_root);
  Daemon daemon(build_serving_model(fw, detect::DetectorKind::kKnn), config);
  daemon.start();

  // One real held-out window as the CSV the quickstart describes.
  const ScoreRequest request = entity_request(0, false);
  const nn::Matrix& features = request.windows.front().features;
  std::vector<std::string> header{"window"};
  for (std::size_t c = 0; c < features.cols(); ++c) {
    header.push_back("ch" + std::to_string(c));
  }
  common::CsvTable csv(header);
  for (std::size_t t = 0; t < features.rows(); ++t) {
    std::vector<std::string> row{"0"};
    for (std::size_t c = 0; c < features.cols(); ++c) {
      std::ostringstream value;
      value.precision(17);
      value << features(t, c);
      row.push_back(value.str());
    }
    csv.add_row(std::move(row));
  }
  const auto csv_path = unique_path("go_d_cli", ".csv");
  const auto out_path = unique_path("go_d_cli", ".out");
  csv.write(csv_path);

  const std::string command = std::string(GOODONES_CLIENT_BIN) + " " +
                              socket_path.string() + " score " + request.entity +
                              " " + csv_path.string() + " > " + out_path.string();
  ASSERT_EQ(std::system(command.c_str()), 0);

  std::ifstream out(out_path);
  std::stringstream captured;
  captured << out.rdbuf();
  const std::string text = captured.str();
  EXPECT_NE(text.find("generation 0"), std::string::npos) << text;
  EXPECT_NE(text.find("window 0"), std::string::npos) << text;

  daemon.stop();
  std::filesystem::remove(csv_path);
  std::filesystem::remove(out_path);
  std::filesystem::remove_all(config.registry_root);
}
#endif  // GOODONES_CLIENT_BIN

}  // namespace
}  // namespace goodones::serve
