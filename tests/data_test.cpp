#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/labels.hpp"
#include "data/scaler.hpp"
#include "data/timeseries.hpp"
#include "data/window.hpp"
#include "domains/bgms/cohort.hpp"
#include "domains/bgms/glucose_state.hpp"

namespace goodones::data {
namespace {

using bgms::classify;
using bgms::derive_meal_context;
using bgms::glycemic_thresholds;
using bgms::hyper_threshold;
using bgms::kPostprandialSteps;

constexpr std::size_t kChannels = 4;  // BGMS layout, used as a stand-in width

TEST(GlycemicThresholds, FastingThresholds) {
  EXPECT_EQ(classify(69.9, Regime::kBaseline), StateLabel::kLow);
  EXPECT_EQ(classify(70.0, Regime::kBaseline), StateLabel::kNormal);
  EXPECT_EQ(classify(125.0, Regime::kBaseline), StateLabel::kNormal);
  EXPECT_EQ(classify(125.1, Regime::kBaseline), StateLabel::kHigh);
}

TEST(GlycemicThresholds, PostprandialThresholds) {
  EXPECT_EQ(classify(150.0, Regime::kActive), StateLabel::kNormal);
  EXPECT_EQ(classify(180.0, Regime::kActive), StateLabel::kNormal);
  EXPECT_EQ(classify(180.1, Regime::kActive), StateLabel::kHigh);
  EXPECT_EQ(classify(60.0, Regime::kActive), StateLabel::kLow);
}

TEST(GlycemicThresholds, HyperThresholdByContext) {
  EXPECT_DOUBLE_EQ(hyper_threshold(Regime::kBaseline), 125.0);
  EXPECT_DOUBLE_EQ(hyper_threshold(Regime::kActive), 180.0);
}

TEST(GlycemicThresholds, AbnormalPredicate) {
  EXPECT_TRUE(is_abnormal(StateLabel::kLow));
  EXPECT_TRUE(is_abnormal(StateLabel::kHigh));
  EXPECT_FALSE(is_abnormal(StateLabel::kNormal));
}

TEST(GlycemicThresholds, Names) {
  EXPECT_STREQ(to_string(StateLabel::kLow), "Low");
  EXPECT_STREQ(to_string(Regime::kActive), "Active");
}

TEST(MealRegime, DerivationWindowIsTwoHours) {
  std::vector<double> carbs(60, 0.0);
  carbs[10] = 45.0;
  const auto regimes = derive_meal_context(carbs);
  for (std::size_t t = 0; t < 10; ++t) EXPECT_EQ(regimes[t], Regime::kBaseline);
  // Postprandial from the meal step through kPostprandialSteps after it.
  for (std::size_t t = 10; t <= 10 + kPostprandialSteps; ++t) {
    EXPECT_EQ(regimes[t], Regime::kActive) << "t=" << t;
  }
  EXPECT_EQ(regimes[10 + kPostprandialSteps + 1], Regime::kBaseline);
}

TEST(MealRegime, BackToBackMealsExtendWindow) {
  std::vector<double> carbs(80, 0.0);
  carbs[5] = 30.0;
  carbs[25] = 20.0;  // second meal within the first's window
  const auto regimes = derive_meal_context(carbs);
  for (std::size_t t = 5; t <= 25 + kPostprandialSteps; ++t) {
    EXPECT_EQ(regimes[t], Regime::kActive);
  }
}

TEST(MealRegime, NoMealsAllFasting) {
  const std::vector<double> carbs(30, 0.0);
  for (const auto r : derive_meal_context(carbs)) EXPECT_EQ(r, Regime::kBaseline);
}

TEST(NormalRatio, CountsNormalFraction) {
  const std::vector<double> glucose{100.0, 60.0, 130.0, 100.0};
  const std::vector<Regime> regimes(4, Regime::kBaseline);
  // 100 normal, 60 hypo, 130 fasting-hyper, 100 normal -> 2/4.
  EXPECT_DOUBLE_EQ(normal_ratio(glucose, regimes, glycemic_thresholds()), 0.5);
}

TEST(NormalRatio, RegimeChangesClassification) {
  const std::vector<double> glucose{150.0};
  const std::vector<Regime> fasting{Regime::kBaseline};
  const std::vector<Regime> post{Regime::kActive};
  EXPECT_DOUBLE_EQ(normal_ratio(glucose, fasting, glycemic_thresholds()), 0.0);  // 150 > 125
  EXPECT_DOUBLE_EQ(normal_ratio(glucose, post, glycemic_thresholds()), 1.0);     // 150 < 180
}

TEST(NormalRatio, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(normal_ratio({}, {}, glycemic_thresholds()), 0.0);
}

TEST(Series, ConversionPreservesChannels) {
  bgms::CohortConfig config;
  config.train_steps = 100;
  config.test_steps = 10;
  const auto trace = bgms::generate_patient({bgms::Subset::kA, 0}, config);
  const TelemetrySeries series = bgms::to_series(trace.train);
  ASSERT_EQ(series.steps(), 100u);
  ASSERT_EQ(series.values.cols(), bgms::kNumChannels);
  for (std::size_t t = 0; t < 100; ++t) {
    ASSERT_DOUBLE_EQ(series.values(t, bgms::kCgm), trace.train[t].cgm);
    ASSERT_DOUBLE_EQ(series.values(t, bgms::kCarbs), trace.train[t].carbs);
    ASSERT_DOUBLE_EQ(series.true_target[t], trace.train[t].true_glucose);
  }
  EXPECT_EQ(series.regimes.size(), 100u);
}

TEST(Windows, CountAndGeometry) {
  TelemetrySeries series;
  series.values = nn::Matrix(100, kChannels);
  series.true_target.assign(100, 110.0);
  series.regimes.assign(100, Regime::kBaseline);
  WindowConfig config;
  config.seq_len = 12;
  config.step = 1;
  config.horizon = 6;
  const auto windows = make_windows(series, config);
  // Starts 0..(100-12-6) inclusive.
  EXPECT_EQ(windows.size(), 83u);
  EXPECT_EQ(windows.front().features.rows(), 12u);
  EXPECT_EQ(windows.front().end_index, 11u);
  EXPECT_EQ(windows.back().end_index, 93u);
}

TEST(Windows, TargetComesFromHorizon) {
  TelemetrySeries series;
  series.values = nn::Matrix(30, kChannels);
  series.true_target.resize(30);
  for (std::size_t t = 0; t < 30; ++t) series.true_target[t] = static_cast<double>(t);
  series.regimes.assign(30, Regime::kBaseline);
  series.regimes[17] = Regime::kActive;

  WindowConfig config;
  config.seq_len = 10;
  config.step = 1;
  config.horizon = 8;
  const auto windows = make_windows(series, config);
  ASSERT_FALSE(windows.empty());
  // First window covers steps 0..9; target at index 9 + 8 = 17.
  EXPECT_DOUBLE_EQ(windows.front().target_value, 17.0);
  EXPECT_EQ(windows.front().regime, Regime::kActive);
}

TEST(Windows, StrideSkipsStarts) {
  TelemetrySeries series;
  series.values = nn::Matrix(50, kChannels);
  series.true_target.assign(50, 100.0);
  series.regimes.assign(50, Regime::kBaseline);
  WindowConfig config;
  config.seq_len = 5;
  config.step = 4;
  config.horizon = 2;
  const auto windows = make_windows(series, config);
  for (std::size_t i = 1; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].end_index - windows[i - 1].end_index, 4u);
  }
}

TEST(Windows, TooShortSeriesYieldsNothing) {
  TelemetrySeries series;
  series.values = nn::Matrix(10, kChannels);
  series.true_target.assign(10, 100.0);
  series.regimes.assign(10, Regime::kBaseline);
  WindowConfig config;
  config.seq_len = 12;
  config.horizon = 6;
  EXPECT_TRUE(make_windows(series, config).empty());
}

TEST(Flatten, RowMajorOrder) {
  nn::Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const auto flat = flatten(m);
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_DOUBLE_EQ(flat[0], 1.0);
  EXPECT_DOUBLE_EQ(flat[1], 2.0);
  EXPECT_DOUBLE_EQ(flat[2], 3.0);
  EXPECT_DOUBLE_EQ(flat[3], 4.0);
}

TEST(MinMaxScaler, TransformRoundTrip) {
  nn::Matrix data{{0.0, 10.0}, {5.0, 20.0}, {10.0, 30.0}};
  MinMaxScaler scaler;
  scaler.fit(data);
  const nn::Matrix scaled = scaler.transform(data);
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(scaled(1, 1), 0.5);
  const nn::Matrix restored = scaler.inverse_transform(scaled);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) ASSERT_NEAR(restored(r, c), data(r, c), 1e-12);
  }
}

TEST(MinMaxScaler, OutOfRangeMapsOutsideUnit) {
  nn::Matrix data{{0.0}, {10.0}};
  MinMaxScaler scaler;
  scaler.fit(data);
  nn::Matrix extreme{{20.0}};
  EXPECT_DOUBLE_EQ(scaler.transform(extreme)(0, 0), 2.0);  // deliberately unclamped
}

TEST(MinMaxScaler, ConstantColumnMapsToHalf) {
  nn::Matrix data{{5.0}, {5.0}};
  MinMaxScaler scaler;
  scaler.fit(data);
  EXPECT_DOUBLE_EQ(scaler.transform(data)(0, 0), 0.5);
}

TEST(MinMaxScaler, PartialFitWidensRange) {
  MinMaxScaler scaler;
  nn::Matrix first{{0.0}, {10.0}};
  nn::Matrix second{{-10.0}, {5.0}};
  scaler.partial_fit(first);
  scaler.partial_fit(second);
  EXPECT_DOUBLE_EQ(scaler.column_min(0), -10.0);
  EXPECT_DOUBLE_EQ(scaler.column_max(0), 10.0);
}

TEST(MinMaxScaler, SetColumnRangePins) {
  MinMaxScaler scaler;
  nn::Matrix data{{100.0}, {200.0}};
  scaler.fit(data);
  scaler.set_column_range(0, 40.0, 499.0);
  EXPECT_DOUBLE_EQ(scaler.column_min(0), 40.0);
  EXPECT_NEAR(scaler.transform_value(40.0, 0), 0.0, 1e-12);
  EXPECT_NEAR(scaler.transform_value(499.0, 0), 1.0, 1e-12);
}

TEST(MinMaxScaler, UnfittedUseThrows) {
  MinMaxScaler scaler;
  EXPECT_THROW((void)scaler.transform(nn::Matrix(1, 1)), common::PreconditionError);
}

TEST(StandardScaler, ZeroMeanUnitVariance) {
  nn::Matrix data(100, 2);
  common::Rng rng(5);
  for (std::size_t r = 0; r < 100; ++r) {
    data(r, 0) = rng.normal(50.0, 10.0);
    data(r, 1) = rng.normal(-3.0, 0.5);
  }
  StandardScaler scaler;
  scaler.fit(data);
  const nn::Matrix z = scaler.transform(data);
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t r = 0; r < 100; ++r) {
      sum += z(r, c);
      sum_sq += z(r, c) * z(r, c);
    }
    EXPECT_NEAR(sum / 100.0, 0.0, 1e-10);
    EXPECT_NEAR(sum_sq / 99.0, 1.0, 0.05);
  }
}

TEST(StandardScaler, ConstantColumnPassesThroughCentered) {
  nn::Matrix data{{5.0}, {5.0}, {5.0}};
  StandardScaler scaler;
  scaler.fit(data);
  EXPECT_DOUBLE_EQ(scaler.transform(data)(0, 0), 0.0);
}

}  // namespace
}  // namespace goodones::data
