#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/glucose_state.hpp"
#include "data/scaler.hpp"
#include "data/timeseries.hpp"
#include "data/window.hpp"
#include "sim/cohort.hpp"

namespace goodones::data {
namespace {

TEST(GlycemicState, FastingThresholds) {
  EXPECT_EQ(classify(69.9, MealContext::kFasting), GlycemicState::kHypo);
  EXPECT_EQ(classify(70.0, MealContext::kFasting), GlycemicState::kNormal);
  EXPECT_EQ(classify(125.0, MealContext::kFasting), GlycemicState::kNormal);
  EXPECT_EQ(classify(125.1, MealContext::kFasting), GlycemicState::kHyper);
}

TEST(GlycemicState, PostprandialThresholds) {
  EXPECT_EQ(classify(150.0, MealContext::kPostprandial), GlycemicState::kNormal);
  EXPECT_EQ(classify(180.0, MealContext::kPostprandial), GlycemicState::kNormal);
  EXPECT_EQ(classify(180.1, MealContext::kPostprandial), GlycemicState::kHyper);
  EXPECT_EQ(classify(60.0, MealContext::kPostprandial), GlycemicState::kHypo);
}

TEST(GlycemicState, HyperThresholdByContext) {
  EXPECT_DOUBLE_EQ(hyper_threshold(MealContext::kFasting), 125.0);
  EXPECT_DOUBLE_EQ(hyper_threshold(MealContext::kPostprandial), 180.0);
}

TEST(GlycemicState, AbnormalPredicate) {
  EXPECT_TRUE(is_abnormal(GlycemicState::kHypo));
  EXPECT_TRUE(is_abnormal(GlycemicState::kHyper));
  EXPECT_FALSE(is_abnormal(GlycemicState::kNormal));
}

TEST(GlycemicState, Names) {
  EXPECT_STREQ(to_string(GlycemicState::kHypo), "Hypo");
  EXPECT_STREQ(to_string(MealContext::kPostprandial), "Postprandial");
}

TEST(MealContext, DerivationWindowIsTwoHours) {
  std::vector<double> carbs(60, 0.0);
  carbs[10] = 45.0;
  const auto context = derive_meal_context(carbs);
  for (std::size_t t = 0; t < 10; ++t) EXPECT_EQ(context[t], MealContext::kFasting);
  // Postprandial from the meal step through kPostprandialSteps after it.
  for (std::size_t t = 10; t <= 10 + kPostprandialSteps; ++t) {
    EXPECT_EQ(context[t], MealContext::kPostprandial) << "t=" << t;
  }
  EXPECT_EQ(context[10 + kPostprandialSteps + 1], MealContext::kFasting);
}

TEST(MealContext, BackToBackMealsExtendWindow) {
  std::vector<double> carbs(80, 0.0);
  carbs[5] = 30.0;
  carbs[25] = 20.0;  // second meal within the first's window
  const auto context = derive_meal_context(carbs);
  for (std::size_t t = 5; t <= 25 + kPostprandialSteps; ++t) {
    EXPECT_EQ(context[t], MealContext::kPostprandial);
  }
}

TEST(MealContext, NoMealsAllFasting) {
  const std::vector<double> carbs(30, 0.0);
  for (const auto c : derive_meal_context(carbs)) EXPECT_EQ(c, MealContext::kFasting);
}

TEST(NormalRatio, CountsNormalFraction) {
  const std::vector<double> glucose{100.0, 60.0, 130.0, 100.0};
  const std::vector<MealContext> context(4, MealContext::kFasting);
  // 100 normal, 60 hypo, 130 fasting-hyper, 100 normal -> 2/4.
  EXPECT_DOUBLE_EQ(normal_to_abnormal_ratio(glucose, context), 0.5);
}

TEST(NormalRatio, ContextChangesClassification) {
  const std::vector<double> glucose{150.0};
  const std::vector<MealContext> fasting{MealContext::kFasting};
  const std::vector<MealContext> post{MealContext::kPostprandial};
  EXPECT_DOUBLE_EQ(normal_to_abnormal_ratio(glucose, fasting), 0.0);   // 150 > 125
  EXPECT_DOUBLE_EQ(normal_to_abnormal_ratio(glucose, post), 1.0);     // 150 < 180
}

TEST(NormalRatio, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(normal_to_abnormal_ratio({}, {}), 0.0);
}

TEST(Series, ConversionPreservesChannels) {
  sim::CohortConfig config;
  config.train_steps = 100;
  config.test_steps = 10;
  const auto trace = sim::generate_patient({sim::Subset::kA, 0}, config);
  const TelemetrySeries series = to_series(trace.train);
  ASSERT_EQ(series.steps(), 100u);
  ASSERT_EQ(series.values.cols(), kNumChannels);
  for (std::size_t t = 0; t < 100; ++t) {
    ASSERT_DOUBLE_EQ(series.values(t, kCgm), trace.train[t].cgm);
    ASSERT_DOUBLE_EQ(series.values(t, kCarbs), trace.train[t].carbs);
    ASSERT_DOUBLE_EQ(series.true_glucose[t], trace.train[t].true_glucose);
  }
  EXPECT_EQ(series.context.size(), 100u);
}

TEST(Windows, CountAndGeometry) {
  TelemetrySeries series;
  series.values = nn::Matrix(100, kNumChannels);
  series.true_glucose.assign(100, 110.0);
  series.context.assign(100, MealContext::kFasting);
  WindowConfig config;
  config.seq_len = 12;
  config.step = 1;
  config.horizon = 6;
  const auto windows = make_windows(series, config);
  // Starts 0..(100-12-6) inclusive.
  EXPECT_EQ(windows.size(), 83u);
  EXPECT_EQ(windows.front().features.rows(), 12u);
  EXPECT_EQ(windows.front().end_index, 11u);
  EXPECT_EQ(windows.back().end_index, 93u);
}

TEST(Windows, TargetComesFromHorizon) {
  TelemetrySeries series;
  series.values = nn::Matrix(30, kNumChannels);
  series.true_glucose.resize(30);
  for (std::size_t t = 0; t < 30; ++t) series.true_glucose[t] = static_cast<double>(t);
  series.context.assign(30, MealContext::kFasting);
  series.context[17] = MealContext::kPostprandial;

  WindowConfig config;
  config.seq_len = 10;
  config.step = 1;
  config.horizon = 8;
  const auto windows = make_windows(series, config);
  ASSERT_FALSE(windows.empty());
  // First window covers steps 0..9; target at index 9 + 8 = 17.
  EXPECT_DOUBLE_EQ(windows.front().target_glucose, 17.0);
  EXPECT_EQ(windows.front().context, MealContext::kPostprandial);
}

TEST(Windows, StrideSkipsStarts) {
  TelemetrySeries series;
  series.values = nn::Matrix(50, kNumChannels);
  series.true_glucose.assign(50, 100.0);
  series.context.assign(50, MealContext::kFasting);
  WindowConfig config;
  config.seq_len = 5;
  config.step = 4;
  config.horizon = 2;
  const auto windows = make_windows(series, config);
  for (std::size_t i = 1; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].end_index - windows[i - 1].end_index, 4u);
  }
}

TEST(Windows, TooShortSeriesYieldsNothing) {
  TelemetrySeries series;
  series.values = nn::Matrix(10, kNumChannels);
  series.true_glucose.assign(10, 100.0);
  series.context.assign(10, MealContext::kFasting);
  WindowConfig config;
  config.seq_len = 12;
  config.horizon = 6;
  EXPECT_TRUE(make_windows(series, config).empty());
}

TEST(Flatten, RowMajorOrder) {
  nn::Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const auto flat = flatten(m);
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_DOUBLE_EQ(flat[0], 1.0);
  EXPECT_DOUBLE_EQ(flat[1], 2.0);
  EXPECT_DOUBLE_EQ(flat[2], 3.0);
  EXPECT_DOUBLE_EQ(flat[3], 4.0);
}

TEST(MinMaxScaler, TransformRoundTrip) {
  nn::Matrix data{{0.0, 10.0}, {5.0, 20.0}, {10.0, 30.0}};
  MinMaxScaler scaler;
  scaler.fit(data);
  const nn::Matrix scaled = scaler.transform(data);
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(scaled(1, 1), 0.5);
  const nn::Matrix restored = scaler.inverse_transform(scaled);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) ASSERT_NEAR(restored(r, c), data(r, c), 1e-12);
  }
}

TEST(MinMaxScaler, OutOfRangeMapsOutsideUnit) {
  nn::Matrix data{{0.0}, {10.0}};
  MinMaxScaler scaler;
  scaler.fit(data);
  nn::Matrix extreme{{20.0}};
  EXPECT_DOUBLE_EQ(scaler.transform(extreme)(0, 0), 2.0);  // deliberately unclamped
}

TEST(MinMaxScaler, ConstantColumnMapsToHalf) {
  nn::Matrix data{{5.0}, {5.0}};
  MinMaxScaler scaler;
  scaler.fit(data);
  EXPECT_DOUBLE_EQ(scaler.transform(data)(0, 0), 0.5);
}

TEST(MinMaxScaler, PartialFitWidensRange) {
  MinMaxScaler scaler;
  nn::Matrix first{{0.0}, {10.0}};
  nn::Matrix second{{-10.0}, {5.0}};
  scaler.partial_fit(first);
  scaler.partial_fit(second);
  EXPECT_DOUBLE_EQ(scaler.column_min(0), -10.0);
  EXPECT_DOUBLE_EQ(scaler.column_max(0), 10.0);
}

TEST(MinMaxScaler, SetColumnRangePins) {
  MinMaxScaler scaler;
  nn::Matrix data{{100.0}, {200.0}};
  scaler.fit(data);
  scaler.set_column_range(0, 40.0, 499.0);
  EXPECT_DOUBLE_EQ(scaler.column_min(0), 40.0);
  EXPECT_NEAR(scaler.transform_value(40.0, 0), 0.0, 1e-12);
  EXPECT_NEAR(scaler.transform_value(499.0, 0), 1.0, 1e-12);
}

TEST(MinMaxScaler, UnfittedUseThrows) {
  MinMaxScaler scaler;
  EXPECT_THROW((void)scaler.transform(nn::Matrix(1, 1)), common::PreconditionError);
}

TEST(StandardScaler, ZeroMeanUnitVariance) {
  nn::Matrix data(100, 2);
  common::Rng rng(5);
  for (std::size_t r = 0; r < 100; ++r) {
    data(r, 0) = rng.normal(50.0, 10.0);
    data(r, 1) = rng.normal(-3.0, 0.5);
  }
  StandardScaler scaler;
  scaler.fit(data);
  const nn::Matrix z = scaler.transform(data);
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t r = 0; r < 100; ++r) {
      sum += z(r, c);
      sum_sq += z(r, c) * z(r, c);
    }
    EXPECT_NEAR(sum / 100.0, 0.0, 1e-10);
    EXPECT_NEAR(sum_sq / 99.0, 1.0, 0.05);
  }
}

TEST(StandardScaler, ConstantColumnPassesThroughCentered) {
  nn::Matrix data{{5.0}, {5.0}, {5.0}};
  StandardScaler scaler;
  scaler.fit(data);
  EXPECT_DOUBLE_EQ(scaler.transform(data)(0, 0), 0.0);
}

}  // namespace
}  // namespace goodones::data
