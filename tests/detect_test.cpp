#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "detect/factory.hpp"
#include "detect/knn.hpp"
#include "detect/madgan.hpp"
#include "detect/ocsvm.hpp"

namespace goodones::detect {
namespace {

/// Synthetic telemetry windows: benign = flat traces near `level` with small
/// noise; malicious = traces pushed into a far-away band (mimicking the CGM
/// manipulation, which forces values >= 125/180 while benign sits ~0.15 in
/// scaled units).
nn::Matrix make_window(common::Rng& rng, double level, double noise, std::size_t steps = 12,
                       std::size_t channels = 4) {
  nn::Matrix w(steps, channels);
  for (std::size_t t = 0; t < steps; ++t) {
    w(t, 0) = level + rng.normal(0.0, noise);
    w(t, 1) = 0.5;
    w(t, 2) = 0.0;
    w(t, 3) = 0.0;
  }
  return w;
}

std::vector<nn::Matrix> make_windows(common::Rng& rng, std::size_t n, double level,
                                     double noise) {
  std::vector<nn::Matrix> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(make_window(rng, level, noise));
  return out;
}

TEST(Knn, SeparatesWellSeparatedClasses) {
  common::Rng rng(5);
  const auto benign = make_windows(rng, 120, 0.15, 0.02);
  const auto malicious = make_windows(rng, 120, 0.8, 0.02);
  KnnDetector detector;
  detector.fit(benign, malicious);

  common::Rng test_rng(6);
  int correct = 0;
  for (int i = 0; i < 40; ++i) {
    correct += detector.flags(make_window(test_rng, 0.8, 0.02)) ? 1 : 0;
    correct += !detector.flags(make_window(test_rng, 0.15, 0.02)) ? 1 : 0;
  }
  EXPECT_GE(correct, 78);  // ~100% on this trivially separable data
}

TEST(Knn, ScoreIsNeighborFraction) {
  common::Rng rng(7);
  const auto benign = make_windows(rng, 50, 0.1, 0.01);
  const auto malicious = make_windows(rng, 50, 0.9, 0.01);
  KnnDetector detector;
  detector.fit(benign, malicious);
  common::Rng test_rng(8);
  const double benign_score = detector.anomaly_score(make_window(test_rng, 0.1, 0.01));
  const double malicious_score = detector.anomaly_score(make_window(test_rng, 0.9, 0.01));
  EXPECT_GE(benign_score, 0.0);
  EXPECT_LE(benign_score, 1.0);
  EXPECT_LT(benign_score, 0.5);
  EXPECT_GT(malicious_score, 0.5);
}

TEST(Knn, SubsamplingCapsTrainingSet) {
  common::Rng rng(9);
  KnnConfig config;
  config.max_points_per_class = 30;
  KnnDetector detector(config);
  detector.fit(make_windows(rng, 100, 0.2, 0.05), make_windows(rng, 80, 0.8, 0.05));
  EXPECT_EQ(detector.train_size(), 60u);
}

TEST(Knn, RequiresBothClasses) {
  common::Rng rng(11);
  KnnDetector detector;
  const auto benign = make_windows(rng, 10, 0.2, 0.02);
  EXPECT_THROW(detector.fit(benign, {}), common::PreconditionError);
  EXPECT_THROW(detector.fit({}, benign), common::PreconditionError);
}

TEST(Knn, RejectsBadConfig) {
  KnnConfig config;
  config.k = 0;
  EXPECT_THROW(KnnDetector{config}, common::PreconditionError);
}

TEST(Knn, NameMatchesPaper) {
  EXPECT_EQ(KnnDetector{}.name(), "kNN");
}

class OcsvmKernelSweep : public ::testing::TestWithParam<Kernel> {};

TEST_P(OcsvmKernelSweep, FlagsFarOutliers) {
  common::Rng rng(13);
  const auto benign = make_windows(rng, 200, 0.2, 0.03);
  OcsvmConfig config;
  config.kernel = GetParam();
  config.coef0 = 0.25;  // non-saturating for sigmoid
  config.nu = 0.1;
  OneClassSvm detector(config);
  detector.fit(benign, {});

  common::Rng test_rng(14);
  int flagged_outliers = 0;
  for (int i = 0; i < 25; ++i) {
    flagged_outliers += detector.flags(make_window(test_rng, 0.95, 0.01)) ? 1 : 0;
  }
  EXPECT_GE(flagged_outliers, 22) << "kernel " << static_cast<int>(GetParam());
}

// Only the kernels the reproduction uses are expected to discriminate:
// linear/poly one-class SVMs are degenerate on z-scored (centered) data
// because the learned direction collapses toward the near-zero data mean.
INSTANTIATE_TEST_SUITE_P(Kernels, OcsvmKernelSweep,
                         ::testing::Values(Kernel::kRbf, Kernel::kSigmoid));

class OcsvmDegenerateKernelSweep : public ::testing::TestWithParam<Kernel> {};

TEST_P(OcsvmDegenerateKernelSweep, FitsAndScoresFinitely) {
  common::Rng rng(13);
  OcsvmConfig config;
  config.kernel = GetParam();
  config.coef0 = 0.25;
  config.nu = 0.1;
  OneClassSvm detector(config);
  detector.fit(make_windows(rng, 150, 0.2, 0.03), {});
  common::Rng test_rng(14);
  EXPECT_TRUE(std::isfinite(detector.anomaly_score(make_window(test_rng, 0.95, 0.01))));
  EXPECT_GT(detector.num_support_vectors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(DegenerateKernels, OcsvmDegenerateKernelSweep,
                         ::testing::Values(Kernel::kLinear, Kernel::kPoly));

TEST(Ocsvm, NuControlsTrainingOutlierFraction) {
  // Schölkopf's nu-property: at most a nu fraction of training points end up
  // outside the learned region (approximately, for separable-ish data).
  common::Rng rng(17);
  const auto benign = make_windows(rng, 400, 0.3, 0.05);
  OcsvmConfig config;
  config.kernel = Kernel::kRbf;
  config.nu = 0.5;  // the paper's setting
  OneClassSvm detector(config);
  detector.fit(benign, {});

  std::size_t flagged = 0;
  for (const auto& w : benign) flagged += detector.flags(w) ? 1 : 0;
  const double fraction = static_cast<double>(flagged) / static_cast<double>(benign.size());
  EXPECT_NEAR(fraction, 0.5, 0.12);
}

TEST(Ocsvm, ProducesSupportVectors) {
  common::Rng rng(19);
  OcsvmConfig config;
  config.kernel = Kernel::kRbf;
  config.nu = 0.3;
  OneClassSvm detector(config);
  detector.fit(make_windows(rng, 150, 0.25, 0.04), {});
  EXPECT_GT(detector.num_support_vectors(), 0u);
  EXPECT_LE(detector.num_support_vectors(), 150u);
  EXPECT_GT(detector.iterations_used(), 0u);
}

TEST(Ocsvm, ScoreSignMatchesDecision) {
  common::Rng rng(23);
  OcsvmConfig config;
  config.kernel = Kernel::kRbf;
  config.nu = 0.2;
  OneClassSvm detector(config);
  detector.fit(make_windows(rng, 150, 0.2, 0.03), {});
  common::Rng test_rng(24);
  for (int i = 0; i < 20; ++i) {
    const auto w = make_window(test_rng, test_rng.uniform(0.0, 1.0), 0.05);
    EXPECT_EQ(detector.flags(w), detector.anomaly_score(w) > 0.0);
  }
}

TEST(Ocsvm, RequiresAtLeastTwoPoints) {
  common::Rng rng(29);
  OneClassSvm detector;
  EXPECT_THROW(detector.fit(make_windows(rng, 1, 0.2, 0.02), {}), common::PreconditionError);
}

TEST(Ocsvm, RejectsBadNu) {
  OcsvmConfig config;
  config.nu = 0.0;
  EXPECT_THROW(OneClassSvm{config}, common::PreconditionError);
  config.nu = 1.5;
  EXPECT_THROW(OneClassSvm{config}, common::PreconditionError);
}

TEST(Ocsvm, PaperConfigSigmoidCoef10StillRuns) {
  // Appendix-B parameters verbatim: the sigmoid kernel saturates (see
  // ocsvm.hpp) but fitting and scoring must remain well-defined.
  common::Rng rng(31);
  OcsvmConfig config;  // kernel=sigmoid, coef0=10, nu=0.5 are the defaults
  OneClassSvm detector(config);
  detector.fit(make_windows(rng, 100, 0.3, 0.05), {});
  common::Rng test_rng(32);
  EXPECT_TRUE(std::isfinite(detector.anomaly_score(make_window(test_rng, 0.9, 0.01))));
}

MadGanConfig tiny_madgan_config() {
  MadGanConfig config;
  config.epochs = 6;
  config.hidden = 12;
  config.latent_dim = 3;
  config.max_train_windows = 220;
  config.calibration_windows = 64;
  config.inversion_steps = 10;
  config.seed = 77;
  return config;
}

TEST(MadGan, MaliciousScoresExceedBenign) {
  common::Rng rng(37);
  const auto benign = make_windows(rng, 300, 0.2, 0.03);
  MadGan detector(tiny_madgan_config());
  detector.fit(benign, {});

  common::Rng test_rng(38);
  double benign_mean = 0.0;
  double malicious_mean = 0.0;
  const int n = 15;
  for (int i = 0; i < n; ++i) {
    benign_mean += detector.anomaly_score(make_window(test_rng, 0.2, 0.03));
    malicious_mean += detector.anomaly_score(make_window(test_rng, 0.85, 0.02));
  }
  EXPECT_GT(malicious_mean / n, benign_mean / n);
}

TEST(MadGan, FlagsFarOutliersAfterCalibration) {
  common::Rng rng(41);
  MadGan detector(tiny_madgan_config());
  detector.fit(make_windows(rng, 300, 0.2, 0.03), {});
  common::Rng test_rng(42);
  int flagged = 0;
  for (int i = 0; i < 20; ++i) {
    flagged += detector.flags(make_window(test_rng, 0.9, 0.01)) ? 1 : 0;
  }
  EXPECT_GE(flagged, 16);
}

TEST(MadGan, BenignFalsePositiveRateNearQuantile) {
  common::Rng rng(43);
  const auto benign = make_windows(rng, 300, 0.2, 0.03);
  auto config = tiny_madgan_config();
  config.threshold_quantile = 0.95;
  MadGan detector(config);
  detector.fit(benign, {});
  common::Rng test_rng(44);
  int flagged = 0;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    flagged += detector.flags(make_window(test_rng, 0.2, 0.03)) ? 1 : 0;
  }
  EXPECT_LE(static_cast<double>(flagged) / n, 0.25);  // ~5% nominal, generous bound
}

TEST(MadGan, ScoringIsDeterministic) {
  common::Rng rng(47);
  MadGan detector(tiny_madgan_config());
  detector.fit(make_windows(rng, 200, 0.25, 0.03), {});
  common::Rng test_rng(48);
  const auto w = make_window(test_rng, 0.6, 0.02);
  EXPECT_DOUBLE_EQ(detector.anomaly_score(w), detector.anomaly_score(w));
}

TEST(MadGan, GeneratorOutputHasSignalShapeAndRange) {
  common::Rng rng(53);
  MadGan detector(tiny_madgan_config());
  detector.fit(make_windows(rng, 150, 0.3, 0.05), {});
  common::Rng gen_rng(54);
  const auto synthetic = detector.generate(gen_rng);
  EXPECT_EQ(synthetic.rows(), 12u);
  EXPECT_EQ(synthetic.cols(), 4u);
  for (std::size_t t = 0; t < synthetic.rows(); ++t) {
    for (const double v : synthetic.row(t)) {
      ASSERT_GE(v, 0.0);  // sigmoid output head
      ASSERT_LE(v, 1.0);
    }
  }
}

TEST(MadGan, ScoreRequiresFit) {
  MadGan detector(tiny_madgan_config());
  common::Rng rng(55);
  EXPECT_THROW((void)detector.anomaly_score(make_window(rng, 0.5, 0.01)),
               common::PreconditionError);
}

TEST(MadGan, DrLambdaBlendsComponents) {
  common::Rng rng(59);
  const auto benign = make_windows(rng, 200, 0.25, 0.03);
  auto config = tiny_madgan_config();
  config.dr_lambda = 1.0;  // pure discrimination
  MadGan disc_only(config);
  disc_only.fit(benign, {});
  common::Rng test_rng(60);
  const auto w = make_window(test_rng, 0.5, 0.02);
  EXPECT_NEAR(disc_only.anomaly_score(w), disc_only.discrimination_score(w), 1e-12);
}

// --- score_batch parity -----------------------------------------------------
//
// The serving path makes ONE score_batch call per (entity, request); the
// contract is that batching is purely an execution strategy — every batched
// score must be BITWISE identical to the per-window anomaly_score, for the
// overridden fast paths (kNN blocked queries, MAD-GAN batched inversion)
// and the base-class fallback (OneClassSVM) alike.

template <typename Detector>
void expect_batched_scores_bitwise_identical(const Detector& detector,
                                             const std::vector<nn::Matrix>& queries) {
  const std::vector<double> batched =
      detector.score_batch(std::span<const nn::Matrix>(queries));
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double scalar = detector.anomaly_score(queries[i]);
    EXPECT_EQ(batched[i], scalar) << "window " << i << " drifted";
    EXPECT_EQ(detector.flags_from_score(queries[i], batched[i]), detector.flags(queries[i]))
        << "window " << i;
  }
  EXPECT_TRUE(detector.score_batch(std::span<const nn::Matrix>()).empty());
}

TEST(ScoreBatchParity, KnnBlockedQueriesAreBitwiseIdentical) {
  common::Rng rng(71);
  KnnDetector detector;
  // Enough training points to span several 256-row blocks, including ties.
  detector.fit(make_windows(rng, 400, 0.2, 0.04), make_windows(rng, 350, 0.8, 0.04));
  common::Rng test_rng(72);
  std::vector<nn::Matrix> queries;
  for (int i = 0; i < 9; ++i) queries.push_back(make_window(test_rng, 0.15 + 0.09 * i, 0.03));
  expect_batched_scores_bitwise_identical(detector, queries);
}

TEST(ScoreBatchParity, OcsvmDefaultLoopIsBitwiseIdentical) {
  common::Rng rng(73);
  OneClassSvm detector;
  detector.fit(make_windows(rng, 120, 0.3, 0.05), {});
  common::Rng test_rng(74);
  std::vector<nn::Matrix> queries;
  for (int i = 0; i < 6; ++i) queries.push_back(make_window(test_rng, 0.2 + 0.12 * i, 0.03));
  expect_batched_scores_bitwise_identical(detector, queries);
}

TEST(ScoreBatchParity, MadGanBatchedInversionIsBitwiseIdentical) {
  common::Rng rng(75);
  MadGan detector(tiny_madgan_config());
  detector.fit(make_windows(rng, 200, 0.25, 0.03), {});
  common::Rng test_rng(76);
  std::vector<nn::Matrix> queries;
  for (int i = 0; i < 7; ++i) queries.push_back(make_window(test_rng, 0.1 + 0.12 * i, 0.03));
  expect_batched_scores_bitwise_identical(detector, queries);
  // Batch of one is the degenerate case the packing must also get right.
  expect_batched_scores_bitwise_identical(
      detector, std::vector<nn::Matrix>{queries.front()});
}

TEST(Factory, BuildsAllKindsWithMatchingNames) {
  const DetectorSuiteConfig config;
  EXPECT_EQ(make_detector(DetectorKind::kKnn, config)->name(), "kNN");
  EXPECT_EQ(make_detector(DetectorKind::kOcsvm, config)->name(), "OneClassSVM");
  EXPECT_EQ(make_detector(DetectorKind::kMadGan, config)->name(), "MAD-GAN");
  EXPECT_STREQ(to_string(DetectorKind::kMadGan), "MAD-GAN");
}

}  // namespace
}  // namespace goodones::detect
