#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace goodones::common {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 9.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 9.25);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -2);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -2);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(50.0, 4.0);
  EXPECT_NEAR(sum / n, 50.0, 0.2);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, ShuffleSmallInputsNoCrash) {
  Rng rng(37);
  std::vector<int> empty;
  rng.shuffle(empty);
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one.front(), 42);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  const auto sample = rng.sample_without_replacement(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(43);
  const auto sample = rng.sample_without_replacement(5, 5);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversized) {
  Rng rng(43);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4), std::logic_error);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(47);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(47);
  (void)parent_copy.next_u64();  // advance like the fork did
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += child.next_u64() == parent_copy.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(SplitMix, KnownFirstOutputsDiffer) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 1;
  EXPECT_NE(splitmix64_next(s1), splitmix64_next(s2));
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeForAllSeeds) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST_P(RngSeedSweep, NormalIsFiniteForAllSeeds) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(std::isfinite(rng.normal()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xFFFFFFFFFFFFFFFFULL,
                                           0xDEADBEEFULL, 2025ULL));

}  // namespace
}  // namespace goodones::common
