// End-to-end pipeline tests on a miniature configuration: cohort -> models
// -> attack -> risk profiles -> clustering -> selective training -> metrics.
// Kept deliberately small so the whole file runs in tens of seconds.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include <cmath>

#include "common/error.hpp"
#include "core/cache.hpp"
#include "core/framework.hpp"
#include "domains/bgms/adapter.hpp"

namespace goodones::core {
namespace {

std::shared_ptr<const DomainAdapter> bgms_domain() {
  static const auto domain = std::make_shared<bgms::BgmsDomain>();
  return domain;
}

FrameworkConfig mini_config() {
  FrameworkConfig config = bgms_domain()->prepare(FrameworkConfig::fast());
  config.population.train_steps = 1200;
  config.population.test_steps = 400;
  config.registry.forecaster.hidden = 10;
  config.registry.forecaster.head_hidden = 8;
  config.registry.forecaster.epochs = 3;
  config.registry.train_window_step = 6;
  config.registry.aggregate_window_step = 40;
  config.profiling_campaign.window_step = 10;
  config.evaluation_campaign.window_step = 10;
  // The miniature forecaster is weak; lower the harm bar so the simulated
  // attack still produces successes to train and evaluate on.
  config.profiling_campaign.attack.harm_threshold = 220.0;
  config.evaluation_campaign.attack.harm_threshold = 220.0;
  config.detector_benign_stride = 10;
  config.detectors.knn.max_points_per_class = 600;
  config.detectors.ocsvm.max_train_points = 300;
  config.detectors.madgan.epochs = 3;
  config.detectors.madgan.max_train_windows = 200;
  config.detectors.madgan.inversion_steps = 6;
  config.detectors.madgan.calibration_windows = 48;
  config.random_runs = 2;
  config.seed = 424242;
  return config;
}

/// One shared framework instance: the pipeline stages are exercised once
/// and inspected by several tests.
RiskProfilingFramework& shared_framework() {
  static RiskProfilingFramework framework(bgms_domain(), mini_config());
  return framework;
}

TEST(Framework, CohortHasTwelveEntities) {
  EXPECT_EQ(shared_framework().entities().size(), 12u);
  EXPECT_EQ(shared_framework().entities()[5].name, "A_5");
  EXPECT_EQ(shared_framework().entities()[6].subset, 1u);
}

TEST(Framework, ProfilingProducesTwelveProfiles) {
  const auto& profiling = shared_framework().profiling();
  ASSERT_EQ(profiling.profiles.size(), 12u);
  for (const auto& profile : profiling.profiles) {
    EXPECT_FALSE(profile.values.empty());
    for (const double r : profile.values) {
      ASSERT_GE(r, 0.0);
      ASSERT_TRUE(std::isfinite(r));
    }
  }
}

TEST(Framework, ClustersPartitionTheCohort) {
  const auto& clusters = shared_framework().profiling().clusters;
  std::set<std::size_t> all;
  for (const auto p : clusters.less_vulnerable) all.insert(p);
  for (const auto p : clusters.more_vulnerable) all.insert(p);
  EXPECT_EQ(all.size(), 12u);
  EXPECT_FALSE(clusters.less_vulnerable.empty());
  EXPECT_FALSE(clusters.more_vulnerable.empty());
}

TEST(Framework, LessVulnerableClusterHasLowerAttackSuccess) {
  const auto& profiling = shared_framework().profiling();
  double less = 0.0;
  double more = 0.0;
  for (const auto p : profiling.clusters.less_vulnerable) {
    less += profiling.train_attack_rates[p].overall_rate();
  }
  for (const auto p : profiling.clusters.more_vulnerable) {
    more += profiling.train_attack_rates[p].overall_rate();
  }
  less /= static_cast<double>(profiling.clusters.less_vulnerable.size());
  more /= static_cast<double>(profiling.clusters.more_vulnerable.size());
  EXPECT_LE(less, more);
}

TEST(Framework, DendrogramsCoverEachSubset) {
  const auto& profiling = shared_framework().profiling();
  ASSERT_EQ(profiling.dendrograms.size(), 2u);
  EXPECT_EQ(profiling.dendrograms[0].num_leaves(), 6u);
  EXPECT_EQ(profiling.dendrograms[1].num_leaves(), 6u);
  ASSERT_EQ(profiling.subset_members.size(), 2u);
  EXPECT_EQ(profiling.subset_members[0].front(), 0u);
  EXPECT_EQ(profiling.subset_members[1].front(), 6u);
}

TEST(Framework, BenignRatiosAreProbabilities) {
  const auto& ratios = shared_framework().profiling().benign_normal_ratio;
  ASSERT_EQ(ratios.size(), 12u);
  for (const double r : ratios) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(Framework, StablePatientsHaveHigherNormalRatio) {
  // Cohort design: A_5 (index 5) and B_2 (index 8) are the most stable; the
  // paper's Fig. 4 shows exactly this ordering vs the dysregulated A_2.
  const auto& ratios = shared_framework().profiling().benign_normal_ratio;
  EXPECT_GT(ratios[5], ratios[2]);
  EXPECT_GT(ratios[8], ratios[2]);
}

TEST(Framework, TestOutcomesAvailablePerEntity) {
  auto& framework = shared_framework();
  const auto& outcomes = framework.test_outcomes(0);
  EXPECT_FALSE(outcomes.empty());
  for (const auto& outcome : outcomes) {
    EXPECT_NE(outcome.true_state, data::StateLabel::kHigh);
  }
  EXPECT_THROW((void)framework.test_outcomes(12), common::PreconditionError);
}

TEST(Framework, ScaledWindowsAreInUnitBox) {
  auto& framework = shared_framework();
  const auto windows = framework.benign_train_windows(3);
  ASSERT_FALSE(windows.empty());
  for (const auto& w : windows) {
    for (std::size_t t = 0; t < w.rows(); ++t) {
      for (const double v : w.row(t)) {
        ASSERT_GE(v, -0.01);
        ASSERT_LE(v, 1.01);
      }
    }
  }
}

TEST(Framework, EvaluateStrategyProducesCoherentConfusion) {
  auto& framework = shared_framework();
  const auto eval = framework.evaluate_strategy(detect::DetectorKind::kKnn, {0, 5, 8});
  EXPECT_EQ(eval.per_victim.size(), 12u);
  ConfusionMatrix recomputed;
  for (const auto& cm : eval.per_victim) recomputed.merge(cm);
  EXPECT_EQ(recomputed.total(), eval.pooled.total());
  EXPECT_EQ(recomputed.tp, eval.pooled.tp);
  EXPECT_GT(eval.pooled.total(), 0u);
  EXPECT_GT(eval.train_benign, 0u);
  EXPECT_GT(eval.train_malicious, 0u);
}

TEST(Framework, ExperimentGridCoversDetectorAndStrategies) {
  auto& framework = shared_framework();
  const auto results =
      framework.run_detector_experiments({detect::DetectorKind::kKnn});
  ASSERT_EQ(results.entries.size(), 4u);  // one per strategy
  for (const Strategy strategy : all_strategies()) {
    const auto& entry = results.entry(detect::DetectorKind::kKnn, strategy);
    EXPECT_GT(entry.pooled.total(), 0u);
  }
  // Random strategy detail: one record per run.
  EXPECT_EQ(results.random_runs.size(), mini_config().random_runs);
  EXPECT_THROW((void)results.entry(detect::DetectorKind::kMadGan, Strategy::kAllVictims),
               common::PreconditionError);
}

TEST(Cache, ExperimentsRoundTripThroughCsv) {
  ExperimentResults results;
  StrategyEvaluation eval;
  eval.detector = detect::DetectorKind::kOcsvm;
  eval.strategy = Strategy::kLessVulnerable;
  eval.pooled.tp = 10;
  eval.pooled.fp = 2;
  eval.pooled.fn = 3;
  eval.pooled.tn = 85;
  eval.per_victim.resize(12);
  eval.per_victim[4].tp = 10;
  eval.train_benign = 111;
  eval.train_malicious = 22;
  eval.fit_seconds = 1.5;
  eval.score_seconds = 2.5;
  results.entries.push_back(eval);

  StrategyEvaluation run = eval;
  run.strategy = Strategy::kRandomSamples;
  run.run = 3;
  results.random_runs.push_back(run);

  FrameworkConfig config = FrameworkConfig::fast();
  config.seed = 987654321;  // unique cache slot for this test
  save_experiments(results, config, "bgms");
  const auto loaded = load_experiments(config, "bgms");
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->entries.size(), 1u);
  const auto& entry = loaded->entries.front();
  EXPECT_EQ(entry.detector, detect::DetectorKind::kOcsvm);
  EXPECT_EQ(entry.strategy, Strategy::kLessVulnerable);
  EXPECT_EQ(entry.pooled.tp, 10u);
  EXPECT_EQ(entry.per_victim[4].tp, 10u);
  EXPECT_EQ(entry.train_benign, 111u);
  EXPECT_DOUBLE_EQ(entry.fit_seconds, 1.5);
  ASSERT_EQ(loaded->random_runs.size(), 1u);
  EXPECT_EQ(loaded->random_runs.front().run, 3u);

  std::filesystem::remove(experiments_cache_path(config, "bgms"));
}

TEST(Cache, MissingFileReturnsNullopt) {
  FrameworkConfig config = FrameworkConfig::fast();
  config.seed = 1122334455;  // never saved
  EXPECT_FALSE(load_experiments(config, "bgms").has_value());
}

}  // namespace
}  // namespace goodones::core
