// Tests for the attack semantics introduced by the reproduction: the
// overdose success threshold, treatment-relevant induced states, stealth
// escalation, and the deterministic per-window candidate jitter.
#include <gtest/gtest.h>

#include <set>

#include "attack/campaign.hpp"
#include "attack/evasion.hpp"
#include "common/thread_pool.hpp"
#include "domains/bgms/cohort.hpp"
#include "predict/forecaster.hpp"

namespace goodones::attack {
namespace {

using bgms::kCgm;

class MeanCgmModel final : public predict::Forecaster {
 public:
  explicit MeanCgmModel(double gain = 1.0) : gain_(gain) {}
  double predict(const nn::Matrix& x) const override {
    double sum = 0.0;
    for (std::size_t t = 0; t < x.rows(); ++t) sum += x(t, kCgm);
    return gain_ * sum / static_cast<double>(x.rows());
  }
  nn::Matrix input_gradient(const nn::Matrix& x) const override {
    nn::Matrix g(x.rows(), x.cols());
    for (std::size_t t = 0; t < x.rows(); ++t) {
      g(t, kCgm) = gain_ / static_cast<double>(x.rows());
    }
    return g;
  }

 private:
  double gain_;
};

data::Window make_window(double level, data::Regime regime = data::Regime::kBaseline) {
  data::Window w;
  w.features = nn::Matrix(12, bgms::kNumChannels);
  for (std::size_t t = 0; t < 12; ++t) w.features(t, kCgm) = level;
  w.target_value = level;
  w.regime = regime;
  return w;
}

TEST(AttackConfig, SuccessThresholdNeverBelowDiagnostic) {
  AttackConfig config;
  config.harm_threshold = 100.0;  // below both diagnostic thresholds
  EXPECT_DOUBLE_EQ(config.success_threshold(data::Regime::kBaseline), 125.0);
  EXPECT_DOUBLE_EQ(config.success_threshold(data::Regime::kActive), 180.0);
  config.harm_threshold = 370.0;
  EXPECT_DOUBLE_EQ(config.success_threshold(data::Regime::kBaseline), 370.0);
}

TEST(AttackConfig, InducedStateFollowsOverdoseLevel) {
  const AttackConfig config;  // overdose 370
  using data::Regime;
  using data::StateLabel;
  EXPECT_EQ(config.induced_state(400.0, Regime::kBaseline), StateLabel::kHigh);
  // Elevated but sub-critical: treatment-wise still "Normal".
  EXPECT_EQ(config.induced_state(300.0, Regime::kBaseline), StateLabel::kNormal);
  EXPECT_EQ(config.induced_state(60.0, Regime::kBaseline), StateLabel::kLow);
  EXPECT_EQ(config.induced_state(100.0, Regime::kBaseline), StateLabel::kNormal);
}

TEST(AttackConfig, BoxMinPerScenario) {
  const AttackConfig config;
  EXPECT_DOUBLE_EQ(config.box_min(data::Regime::kBaseline), 125.0);
  EXPECT_DOUBLE_EQ(config.box_min(data::Regime::kActive), 180.0);
}

TEST(Stealth, AggressiveAttackerReachesHigherPredictions) {
  const MeanCgmModel model;
  AttackConfig aggressive;
  aggressive.stealth_fraction = 0.0;
  aggressive.harm_threshold = 10000.0;  // unreachable: both use full budget
  AttackConfig stealthy = aggressive;
  stealthy.stealth_fraction = 0.6;

  const auto window = make_window(100.0);
  const auto strong = EvasionAttack{aggressive}.attack_window(model, window);
  const auto subtle = EvasionAttack{stealthy}.attack_window(model, window);
  EXPECT_GE(strong.adversarial_prediction, subtle.adversarial_prediction);
}

TEST(Stealth, StealthyAttackerUsesSmallerValuesWhenGoalReachable) {
  const MeanCgmModel model(2.0);  // strong gain: one edit can cross
  AttackConfig config;
  config.harm_threshold = 250.0;
  config.stealth_fraction = 0.6;
  const auto result = EvasionAttack{config}.attack_window(model, make_window(110.0));
  ASSERT_TRUE(result.success);
  // The chosen manipulated values must not all be the box maximum.
  double max_used = 0.0;
  for (std::size_t t = 0; t < 12; ++t) {
    const double v = result.adversarial_features(t, kCgm);
    if (v != 110.0) max_used = std::max(max_used, v);
  }
  EXPECT_LT(max_used, 499.0);
}

TEST(Jitter, ManipulatedValuesVaryAcrossWindows) {
  const MeanCgmModel model(2.0);
  AttackConfig config;
  config.harm_threshold = 250.0;
  const EvasionAttack attack{config};
  std::set<double> used_values;
  for (int i = 0; i < 12; ++i) {
    const auto window = make_window(100.0 + i * 1.7);
    const auto result = attack.attack_window(model, window);
    for (std::size_t t = 0; t < 12; ++t) {
      const double v = result.adversarial_features(t, kCgm);
      if (v != window.features(t, kCgm)) used_values.insert(v);
    }
  }
  // Without jitter the grid would allow at most value_candidates distinct
  // values; with per-window jitter nearly every window contributes new ones.
  EXPECT_GT(used_values.size(), 8u);
}

TEST(Jitter, DeterministicPerWindow) {
  const MeanCgmModel model(2.0);
  AttackConfig config;
  config.harm_threshold = 250.0;
  const EvasionAttack attack{config};
  const auto window = make_window(104.0);
  const auto a = attack.attack_window(model, window);
  const auto b = attack.attack_window(model, window);
  for (std::size_t t = 0; t < 12; ++t) {
    ASSERT_DOUBLE_EQ(a.adversarial_features(t, kCgm),
                     b.adversarial_features(t, kCgm));
  }
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.edits, b.edits);
}

TEST(Jitter, BoxMaximumAlwaysAvailable) {
  // The aggressive attacker must be able to reach the box max regardless of
  // jitter: a weak-gain model forces full escalation, and the final values
  // must include 499 exactly.
  const MeanCgmModel model(0.9);
  AttackConfig config;
  config.stealth_fraction = 0.0;
  config.harm_threshold = 10000.0;
  config.max_edits = 12;
  const auto result = EvasionAttack{config}.attack_window(model, make_window(100.0));
  bool found_max = false;
  for (std::size_t t = 0; t < 12; ++t) {
    found_max = found_max || result.adversarial_features(t, kCgm) == 499.0;
  }
  EXPECT_TRUE(found_max);
}

TEST(Campaign, BenignPredictionAlreadyPastHarmBarCountsAsSuccess) {
  const MeanCgmModel model(4.0);  // benign 100 -> prediction 400 > 370
  std::vector<data::Window> windows{make_window(100.0)};
  CampaignConfig config;
  config.window_step = 1;
  common::ThreadPool pool(2);
  const auto outcomes = run_campaign(model, windows, config, pool);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].attack.success);
  EXPECT_EQ(outcomes[0].attack.edits, 0u);
}

TEST(Campaign, InducedStateRecordedWithOverdoseSemantics) {
  const MeanCgmModel model(1.2);
  std::vector<data::Window> windows{make_window(100.0)};
  CampaignConfig config;
  config.window_step = 1;
  config.attack.max_edits = 2;  // cannot reach 370 with mean model: ceiling ~1.2*233
  common::ThreadPool pool(2);
  const auto outcomes = run_campaign(model, windows, config, pool);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].attack.success);
  // Elevated but sub-critical: induced state stays Normal -> severity 1.
  EXPECT_EQ(outcomes[0].adversarial_predicted_state, data::StateLabel::kNormal);
}

class StealthFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(StealthFractionSweep, SuccessIsMonotoneInBudgetAndDeterministic) {
  const MeanCgmModel model(1.6);
  AttackConfig config;
  config.stealth_fraction = GetParam();
  config.harm_threshold = 300.0;
  config.max_edits = 12;
  const EvasionAttack attack{config};
  const auto window = make_window(105.0);
  const auto result = attack.attack_window(model, window);
  EXPECT_TRUE(result.success);
  EXPECT_GE(result.adversarial_prediction, result.benign_prediction);
  const auto again = attack.attack_window(model, window);
  EXPECT_DOUBLE_EQ(result.adversarial_prediction, again.adversarial_prediction);
}

INSTANTIATE_TEST_SUITE_P(Fractions, StealthFractionSweep,
                         ::testing::Values(0.0, 0.3, 0.6, 0.9));

}  // namespace
}  // namespace goodones::attack
