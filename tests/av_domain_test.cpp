// Five-step pipeline test for the autonomous-vehicle steering domain (the
// third registered scenario, promoted from examples/av_risk_profiles):
// registry lookup, fleet generation, steps 1-4 profiles/clusters, step 5
// selective detector training, and the serving-bundle build on top — the
// adaptive loop's third workload.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "core/framework.hpp"
#include "domains/av/adapter.hpp"
#include "domains/av/traffic.hpp"
#include "domains/registry.hpp"
#include "serve/model_registry.hpp"

namespace goodones::core {
namespace {

std::shared_ptr<const DomainAdapter> tiny_av_fleet() {
  static const auto domain = std::make_shared<av::AvDomain>(3);
  return domain;
}

FrameworkConfig tiny_av_config() {
  FrameworkConfig config = tiny_av_fleet()->prepare(FrameworkConfig::fast());
  config.population.train_steps = 1500;
  config.population.test_steps = 500;
  config.population.seed = 99;
  config.registry.forecaster.hidden = 8;
  config.registry.forecaster.head_hidden = 6;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 8;
  config.registry.aggregate_window_step = 50;
  config.profiling_campaign.window_step = 12;
  config.evaluation_campaign.window_step = 12;
  config.detector_benign_stride = 12;
  config.detectors.knn.max_points_per_class = 500;
  config.random_runs = 1;
  config.random_victims = 2;
  config.seed = 1729;
  return config;
}

RiskProfilingFramework& av_framework() {
  static RiskProfilingFramework framework(tiny_av_fleet(), tiny_av_config());
  return framework;
}

TEST(AvDomain, IsRegistered) {
  const auto names = domains::available_domains();
  EXPECT_NE(std::find(names.begin(), names.end(), "av"), names.end());
  const auto domain = domains::make_domain("av");
  EXPECT_EQ(domain->spec().name, "av");
  EXPECT_EQ(domain->spec().target_channel, av::kSteering);
  EXPECT_EQ(domain->spec().num_channels, av::kNumChannels);
}

TEST(AvDomain, SimulatorIsDeterministicAndBounded) {
  const auto fleet = av::fleet_parameters(3);
  ASSERT_EQ(fleet.size(), 6u);
  const auto a = av::simulate_vehicle(fleet[0], 400, 7);
  const auto b = av::simulate_vehicle(fleet[0], 400, 7);
  ASSERT_EQ(a.values.rows(), 400u);
  for (std::size_t t = 0; t < a.values.rows(); ++t) {
    EXPECT_EQ(a.values(t, av::kSteering), b.values(t, av::kSteering));
    EXPECT_GE(a.values(t, av::kSteering), av::kMinSteering);
    EXPECT_LE(a.values(t, av::kSteering), av::kMaxSteering);
  }
}

TEST(AvDomain, GeneratesTwoSubsetFleet) {
  const auto& entities = av_framework().entities();
  ASSERT_EQ(entities.size(), 6u);  // 3 vehicles per subset
  EXPECT_EQ(entities[0].name, "VA_0");
  EXPECT_EQ(entities[3].name, "VB_0");
  EXPECT_EQ(entities[0].subset, 0u);
  EXPECT_EQ(entities[3].subset, 1u);
  for (const auto& e : entities) {
    EXPECT_EQ(e.train.num_channels(), av::kNumChannels);
    EXPECT_EQ(e.train.steps(), 1500u);
    EXPECT_EQ(e.test.steps(), 500u);
  }
}

TEST(AvDomain, Steps1Through4ProduceProfilesAndClusters) {
  const auto& profiling = av_framework().profiling();
  ASSERT_EQ(profiling.profiles.size(), 6u);
  for (const auto& profile : profiling.profiles) {
    EXPECT_FALSE(profile.values.empty());
    for (const double r : profile.values) {
      ASSERT_GE(r, 0.0);
      ASSERT_TRUE(std::isfinite(r));
    }
  }
  ASSERT_EQ(profiling.dendrograms.size(), 2u);
  EXPECT_EQ(profiling.dendrograms[0].num_leaves(), 3u);
  std::set<std::size_t> all;
  for (const auto n : profiling.clusters.less_vulnerable) all.insert(n);
  for (const auto n : profiling.clusters.more_vulnerable) all.insert(n);
  EXPECT_EQ(all.size(), 6u);
  EXPECT_FALSE(profiling.clusters.less_vulnerable.empty());
  EXPECT_FALSE(profiling.clusters.more_vulnerable.empty());
}

TEST(AvDomain, Step5TrainsAndEvaluatesSelectiveDetector) {
  auto& framework = av_framework();
  const auto eval = framework.evaluate_strategy(
      detect::DetectorKind::kKnn, framework.profiling().clusters.less_vulnerable);
  EXPECT_EQ(eval.per_victim.size(), 6u);
  EXPECT_GT(eval.pooled.total(), 0u);
  EXPECT_GT(eval.train_benign, 0u);
  EXPECT_GT(eval.train_malicious, 0u);
  EXPECT_GE(eval.pooled.recall(), 0.0);
  EXPECT_LE(eval.pooled.recall(), 1.0);
}

TEST(AvDomain, SampleFeaturesUseManeuverContextChannel) {
  auto& framework = av_framework();
  const auto samples = framework.benign_train_samples(0);
  ASSERT_FALSE(samples.empty());
  // 3 channels + 1 rolling context sum (the maneuver channel).
  EXPECT_EQ(samples.front().cols(), av::kNumChannels + 1);
}

TEST(AvDomain, ServesThroughTheBundlePath) {
  auto& framework = av_framework();
  const serve::ServingModel model =
      serve::build_serving_model(framework, detect::DetectorKind::kKnn);
  EXPECT_EQ(model.entity_names.size(), 6u);
  EXPECT_EQ(model.spec.name, "av");
  EXPECT_EQ(model.generation, 0u);
  EXPECT_NE(model.cluster_detectors[0], nullptr);
  EXPECT_NE(model.cluster_detectors[1], nullptr);
}

}  // namespace
}  // namespace goodones::core
