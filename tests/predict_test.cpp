#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "data/timeseries.hpp"
#include "data/window.hpp"
#include "predict/batch_planner.hpp"
#include "predict/bilstm_forecaster.hpp"
#include "predict/registry.hpp"
#include "domains/bgms/cohort.hpp"
#include "domains/bgms/patient.hpp"

namespace goodones::predict {
namespace {

bgms::CohortConfig tiny_cohort_config() {
  bgms::CohortConfig config;
  config.train_steps = 900;
  config.test_steps = 200;
  config.seed = 11;
  return config;
}

ForecasterConfig tiny_forecaster_config() {
  ForecasterConfig config;
  config.hidden = 10;
  config.head_hidden = 8;
  config.epochs = 4;
  config.seed = 21;
  return config;
}

struct Fixture {
  bgms::PatientTrace trace;
  data::TelemetrySeries train_series;
  data::TelemetrySeries test_series;
  std::vector<data::Window> train_windows;
  std::vector<data::Window> test_windows;

  Fixture() {
    trace = bgms::generate_patient({bgms::Subset::kA, 0}, tiny_cohort_config());
    train_series = bgms::to_series(trace.train);
    test_series = bgms::to_series(trace.test);
    data::WindowConfig window;
    window.step = 2;
    train_windows = data::make_windows(train_series, window);
    test_windows = data::make_windows(test_series, window);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

TEST(ForecasterScaler, PinsTargetRange) {
  const auto scaler = fit_forecaster_scaler(fixture().train_series.values, bgms::kCgm,
                                            bgms::kMinGlucose, bgms::kMaxGlucose);
  EXPECT_DOUBLE_EQ(scaler.column_min(bgms::kCgm), bgms::kMinGlucose);
  EXPECT_DOUBLE_EQ(scaler.column_max(bgms::kCgm), bgms::kMaxGlucose);
}

TEST(Forecaster, PredictsWithinPhysiologicalRange) {
  const auto& f = fixture();
  BiLstmForecaster model(tiny_forecaster_config(),
                         fit_forecaster_scaler(f.train_series.values, bgms::kCgm, bgms::kMinGlucose,
                                           bgms::kMaxGlucose));
  model.train(f.train_windows);
  for (std::size_t i = 0; i < 20; ++i) {
    const double pred = model.predict(f.test_windows[i].features);
    EXPECT_GT(pred, 0.0);
    EXPECT_LT(pred, 600.0);
  }
}

TEST(Forecaster, TrainingBeatsUntrainedModel) {
  const auto& f = fixture();
  const auto scaler = fit_forecaster_scaler(f.train_series.values, bgms::kCgm, bgms::kMinGlucose,
                                           bgms::kMaxGlucose);
  BiLstmForecaster untrained(tiny_forecaster_config(), scaler);
  BiLstmForecaster trained(tiny_forecaster_config(), scaler);
  trained.train(f.train_windows);
  EXPECT_LT(trained.evaluate_rmse(f.test_windows),
            untrained.evaluate_rmse(f.test_windows));
}

TEST(Forecaster, BeatsGlobalMeanBaseline) {
  const auto& f = fixture();
  BiLstmForecaster model(tiny_forecaster_config(),
                         fit_forecaster_scaler(f.train_series.values, bgms::kCgm, bgms::kMinGlucose,
                                           bgms::kMaxGlucose));
  model.train(f.train_windows);

  double mean_target = 0.0;
  for (const auto& w : f.train_windows) mean_target += w.target_value;
  mean_target /= static_cast<double>(f.train_windows.size());
  double baseline_sq = 0.0;
  for (const auto& w : f.test_windows) {
    baseline_sq += (mean_target - w.target_value) * (mean_target - w.target_value);
  }
  const double baseline_rmse =
      std::sqrt(baseline_sq / static_cast<double>(f.test_windows.size()));
  EXPECT_LT(model.evaluate_rmse(f.test_windows), baseline_rmse);
}

TEST(Forecaster, DeterministicAcrossInstances) {
  const auto& f = fixture();
  const auto scaler = fit_forecaster_scaler(f.train_series.values, bgms::kCgm, bgms::kMinGlucose,
                                           bgms::kMaxGlucose);
  BiLstmForecaster a(tiny_forecaster_config(), scaler);
  BiLstmForecaster b(tiny_forecaster_config(), scaler);
  a.train(f.train_windows);
  b.train(f.train_windows);
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_DOUBLE_EQ(a.predict(f.test_windows[i].features),
                     b.predict(f.test_windows[i].features));
  }
}

TEST(Forecaster, InputGradientMatchesFiniteDifferences) {
  const auto& f = fixture();
  BiLstmForecaster model(tiny_forecaster_config(),
                         fit_forecaster_scaler(f.train_series.values, bgms::kCgm, bgms::kMinGlucose,
                                           bgms::kMaxGlucose));
  model.train(f.train_windows);

  const nn::Matrix& x = f.test_windows[3].features;
  const nn::Matrix grad = model.input_gradient(x);
  const double eps = 1e-3;  // raw units (mg/dL, grams)
  for (const auto [t, c] : {std::pair<std::size_t, std::size_t>{11, 0}, {5, 0}, {11, 3}}) {
    nn::Matrix plus = x;
    nn::Matrix minus = x;
    plus(t, c) += eps;
    minus(t, c) -= eps;
    const double numeric = (model.predict(plus) - model.predict(minus)) / (2 * eps);
    ASSERT_NEAR(grad(t, c), numeric, std::max(1e-4, std::abs(numeric) * 1e-3))
        << "t=" << t << " c=" << c;
  }
}

TEST(Forecaster, RecentCgmDominatesGradient) {
  // The forecast should respond more to the latest CGM reading than to the
  // oldest one (temporal locality of glucose dynamics).
  const auto& f = fixture();
  BiLstmForecaster model(tiny_forecaster_config(),
                         fit_forecaster_scaler(f.train_series.values, bgms::kCgm, bgms::kMinGlucose,
                                           bgms::kMaxGlucose));
  model.train(f.train_windows);
  double newest = 0.0;
  double oldest = 0.0;
  for (std::size_t i = 0; i < 30; ++i) {
    const nn::Matrix grad = model.input_gradient(f.test_windows[i].features);
    newest += std::abs(grad(grad.rows() - 1, bgms::kCgm));
    oldest += std::abs(grad(0, bgms::kCgm));
  }
  EXPECT_GT(newest, oldest);
}

TEST(Forecaster, SaveLoadRoundTrip) {
  const auto& f = fixture();
  const auto scaler = fit_forecaster_scaler(f.train_series.values, bgms::kCgm, bgms::kMinGlucose,
                                           bgms::kMaxGlucose);
  BiLstmForecaster trained(tiny_forecaster_config(), scaler);
  trained.train(f.train_windows);
  const auto path = std::filesystem::temp_directory_path() / "goodones_forecaster.bin";
  trained.save(path);

  BiLstmForecaster restored(tiny_forecaster_config(), scaler);
  ASSERT_TRUE(restored.load(path));
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_DOUBLE_EQ(restored.predict(f.test_windows[i].features),
                     trained.predict(f.test_windows[i].features));
  }
  std::filesystem::remove(path);
}

/// Minimal Forecaster that only implements the scalar interface, so the
/// predict_batch default (loop over predict) is what gets exercised.
class SumModel final : public Forecaster {
 public:
  double predict(const nn::Matrix& x) const override {
    double sum = 0.0;
    for (std::size_t t = 0; t < x.rows(); ++t) {
      for (const double v : x.row(t)) sum += v;
    }
    return sum;
  }
  nn::Matrix input_gradient(const nn::Matrix& x) const override {
    return nn::Matrix(x.rows(), x.cols(), 1.0);
  }
};

nn::Matrix random_window(std::size_t rows, std::size_t cols, common::Rng& rng) {
  nn::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (double& v : m.row(r)) v = rng.uniform(40.0, 400.0);
  }
  return m;
}

TEST(PredictBatch, DefaultImplementationLoopsOverPredict) {
  const SumModel model;
  common::Rng rng(3);
  std::vector<nn::Matrix> windows;
  for (std::size_t i = 0; i < 5; ++i) windows.push_back(random_window(4, 3, rng));
  windows.push_back(nn::Matrix(2, 3, 1.0));  // mixed shapes are fine by default

  const auto batched = model.predict_batch(windows);
  ASSERT_EQ(batched.size(), windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_DOUBLE_EQ(batched[i], model.predict(windows[i]));
  }
}

TEST(PredictBatch, DefaultImplementationHandlesEmptyBatch) {
  const SumModel model;
  // Spelled out: `{}` would be ambiguous between the value-span and the
  // zero-copy pointer-span overloads.
  EXPECT_TRUE(model.predict_batch(std::span<const nn::Matrix>{}).empty());
}

TEST(PredictBatch, BiLstmParityOnRandomWindows) {
  // Unstructured random windows: the planner finds no shared rows, so this
  // exercises the pure packed-batch path against scalar predict().
  const auto& f = fixture();
  BiLstmForecaster model(tiny_forecaster_config(),
                         fit_forecaster_scaler(f.train_series.values, bgms::kCgm,
                                               bgms::kMinGlucose, bgms::kMaxGlucose));
  model.train(f.train_windows);

  common::Rng rng(17);
  std::vector<nn::Matrix> windows;
  for (std::size_t i = 0; i < 16; ++i) {
    windows.push_back(random_window(12, bgms::kNumChannels, rng));
  }
  const auto batched = model.predict_batch(windows);
  ASSERT_EQ(batched.size(), windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_NEAR(batched[i], model.predict(windows[i]), 1e-12) << "window " << i;
  }
}

TEST(PredictBatch, BiLstmParityAcrossMixedShapes) {
  // Heterogeneous batch: two sequence lengths interleaved. group_probes must
  // split them and scatter results back to the original order.
  const auto& f = fixture();
  BiLstmForecaster model(tiny_forecaster_config(),
                         fit_forecaster_scaler(f.train_series.values, bgms::kCgm,
                                               bgms::kMinGlucose, bgms::kMaxGlucose));
  model.train(f.train_windows);

  common::Rng rng(29);
  std::vector<nn::Matrix> windows;
  for (std::size_t i = 0; i < 10; ++i) {
    windows.push_back(random_window(i % 2 == 0 ? 12 : 8, bgms::kNumChannels, rng));
  }
  const auto batched = model.predict_batch(windows);
  ASSERT_EQ(batched.size(), windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_NEAR(batched[i], model.predict(windows[i]), 1e-12) << "window " << i;
  }
}

TEST(BatchPlanner, FindsSharedPrefixAndSuffixOfProbeBatch) {
  common::Rng rng(41);
  const nn::Matrix base = random_window(12, 4, rng);
  std::vector<nn::Matrix> probes(5, base);
  for (std::size_t vi = 0; vi < probes.size(); ++vi) {
    probes[vi](7, 0) = 500.0 + static_cast<double>(vi);
  }
  const auto plan = plan_shared_rows(probes);
  EXPECT_EQ(plan.shared_prefix, 7u);
  EXPECT_EQ(plan.shared_suffix, 4u);
}

TEST(BatchPlanner, IdenticalWindowsAreAllPrefix) {
  common::Rng rng(43);
  const nn::Matrix base = random_window(6, 3, rng);
  const std::vector<nn::Matrix> copies(4, base);
  const auto plan = plan_shared_rows(copies);
  EXPECT_EQ(plan.shared_prefix, 6u);
  EXPECT_EQ(plan.shared_suffix, 0u);  // prefix already covers every row
}

TEST(BatchPlanner, SingleWindowIsFullyShared) {
  common::Rng rng(47);
  const std::vector<nn::Matrix> one{random_window(5, 2, rng)};
  const auto plan = plan_shared_rows(one);
  EXPECT_EQ(plan.shared_prefix, 5u);
  EXPECT_EQ(plan.shared_suffix, 0u);
}

TEST(BatchPlanner, GroupsByShapePreservingOrder) {
  common::Rng rng(53);
  std::vector<nn::Matrix> windows;
  windows.push_back(random_window(12, 4, rng));
  windows.push_back(random_window(8, 4, rng));
  windows.push_back(random_window(12, 4, rng));
  windows.push_back(random_window(8, 4, rng));
  const auto groups = group_probes(windows);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].indices, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(groups[1].indices, (std::vector<std::size_t>{1, 3}));
}

TEST(Registry, TrainsPersonalizedAndAggregate) {
  bgms::CohortConfig cohort_config = tiny_cohort_config();
  const auto cohort = bgms::generate_cohort(cohort_config);

  RegistryConfig config;
  config.forecaster = tiny_forecaster_config();
  config.forecaster.epochs = 2;
  config.train_window_step = 6;
  config.aggregate_window_step = 30;
  config.target_channel = bgms::kCgm;
  config.target_min = bgms::kMinGlucose;
  config.target_max = bgms::kMaxGlucose;

  std::vector<data::TelemetrySeries> series_storage;
  std::vector<std::string> names;
  series_storage.reserve(cohort.size());
  for (const auto& trace : cohort) {
    series_storage.push_back(bgms::to_series(trace.train));
    names.push_back(bgms::to_string(trace.params.id));
  }
  std::vector<const data::TelemetrySeries*> train_series;
  for (const auto& series : series_storage) train_series.push_back(&series);

  common::ThreadPool pool(8);
  const ModelRegistry registry = ModelRegistry::train(train_series, names, config, pool);
  EXPECT_EQ(registry.num_personalized(), 12u);

  data::WindowConfig window;
  window.step = 40;
  const auto series = bgms::to_series(cohort[0].test);
  const auto windows = data::make_windows(series, window);
  ASSERT_FALSE(windows.empty());
  // Both model kinds produce finite, plausible outputs.
  for (const auto& w : windows) {
    EXPECT_TRUE(std::isfinite(registry.personalized(0).predict(w.features)));
    EXPECT_TRUE(std::isfinite(registry.aggregate().predict(w.features)));
  }
}

TEST(Registry, OutOfRangeIndexThrows) {
  ModelRegistry registry;
  EXPECT_THROW((void)registry.personalized(0), common::PreconditionError);
}

}  // namespace
}  // namespace goodones::predict
