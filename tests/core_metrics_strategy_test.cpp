#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/strategy.hpp"

namespace goodones::core {
namespace {

TEST(ConfusionMatrix, AddRoutesToCells) {
  ConfusionMatrix cm;
  cm.add(true, true);    // tp
  cm.add(true, false);   // fn
  cm.add(false, true);   // fp
  cm.add(false, false);  // tn
  EXPECT_EQ(cm.tp, 1u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 1u);
  EXPECT_EQ(cm.total(), 4u);
}

TEST(ConfusionMatrix, MetricsKnownValues) {
  ConfusionMatrix cm;
  cm.tp = 8;
  cm.fn = 2;
  cm.fp = 4;
  cm.tn = 86;
  EXPECT_DOUBLE_EQ(cm.recall(), 0.8);
  EXPECT_DOUBLE_EQ(cm.precision(), 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(cm.false_negative_rate(), 0.2);
  EXPECT_DOUBLE_EQ(cm.false_positive_rate(), 4.0 / 90.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 94.0 / 100.0);
  const double f1 = 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0);
  EXPECT_NEAR(cm.f1(), f1, 1e-12);
}

TEST(ConfusionMatrix, RecallPlusFnrIsOne) {
  ConfusionMatrix cm;
  cm.tp = 3;
  cm.fn = 7;
  EXPECT_DOUBLE_EQ(cm.recall() + cm.false_negative_rate(), 1.0);
}

TEST(ConfusionMatrix, DegenerateCases) {
  ConfusionMatrix empty;
  EXPECT_DOUBLE_EQ(empty.recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.precision(), 1.0);  // vacuously precise
  EXPECT_DOUBLE_EQ(empty.f1(), 0.0);

  ConfusionMatrix missed_everything;
  missed_everything.fn = 5;
  EXPECT_DOUBLE_EQ(missed_everything.precision(), 0.0);
  EXPECT_DOUBLE_EQ(missed_everything.recall(), 0.0);
}

TEST(ConfusionMatrix, MergeAccumulates) {
  ConfusionMatrix a;
  a.tp = 1;
  a.fp = 2;
  ConfusionMatrix b;
  b.tp = 3;
  b.tn = 4;
  a.merge(b);
  EXPECT_EQ(a.tp, 4u);
  EXPECT_EQ(a.fp, 2u);
  EXPECT_EQ(a.tn, 4u);
}

TEST(Strategy, NamesAndOrder) {
  const auto strategies = all_strategies();
  EXPECT_STREQ(to_string(strategies[0]), "Less Vulnerable");
  EXPECT_STREQ(to_string(strategies[1]), "More Vulnerable");
  EXPECT_STREQ(to_string(strategies[2]), "Random Samples");
  EXPECT_STREQ(to_string(strategies[3]), "All Victims");
}

VulnerabilityClusters paper_clusters() {
  VulnerabilityClusters clusters;
  clusters.less_vulnerable = {5, 7, 8};  // A_5, B_1, B_2
  clusters.more_vulnerable = {0, 1, 2, 3, 4, 6, 9, 10, 11};
  return clusters;
}

TEST(Strategy, LessAndMoreVulnerableSelectClusters) {
  const auto clusters = paper_clusters();
  EXPECT_EQ(select_victims(Strategy::kLessVulnerable, clusters, 12, 3, 0),
            clusters.less_vulnerable);
  EXPECT_EQ(select_victims(Strategy::kMoreVulnerable, clusters, 12, 3, 0),
            clusters.more_vulnerable);
}

TEST(Strategy, AllVictimsSelectsEveryone) {
  const auto selected = select_victims(Strategy::kAllVictims, paper_clusters(), 12, 3, 0);
  ASSERT_EQ(selected.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(selected[i], i);
}

TEST(Strategy, RandomSamplesAreDistinctAndDeterministic) {
  const auto clusters = paper_clusters();
  const auto first = select_victims(Strategy::kRandomSamples, clusters, 12, 3, 77);
  const auto again = select_victims(Strategy::kRandomSamples, clusters, 12, 3, 77);
  EXPECT_EQ(first, again);
  ASSERT_EQ(first.size(), 3u);
  const std::set<std::size_t> unique(first.begin(), first.end());
  EXPECT_EQ(unique.size(), 3u);
  for (const auto p : first) EXPECT_LT(p, 12u);
}

TEST(Strategy, DifferentRunSeedsVaryTheSample) {
  const auto clusters = paper_clusters();
  std::set<std::vector<std::size_t>> samples;
  for (std::uint64_t run = 0; run < 10; ++run) {
    samples.insert(select_victims(Strategy::kRandomSamples, clusters, 12, 3, 1000 + run));
  }
  EXPECT_GT(samples.size(), 3u);
}

TEST(Strategy, EmptyClusterThrows) {
  VulnerabilityClusters empty;
  EXPECT_THROW((void)select_victims(Strategy::kLessVulnerable, empty, 12, 3, 0),
               common::PreconditionError);
}

TEST(Config, PresetsDiffer) {
  const auto fast = FrameworkConfig::fast();
  const auto full = FrameworkConfig::full();
  EXPECT_LT(fast.population.train_steps, full.population.train_steps);
  EXPECT_LT(fast.detectors.madgan.epochs, full.detectors.madgan.epochs);
  EXPECT_EQ(full.detectors.madgan.epochs, 100u);  // paper Appendix B
  EXPECT_EQ(full.random_runs, 10u);               // paper: 10 repetitions
  EXPECT_NE(config_fingerprint(fast), config_fingerprint(full));
}

TEST(Config, PaperGeometryDefaults) {
  const FrameworkConfig config;
  EXPECT_EQ(config.window.seq_len, 12u);  // paper Appendix B sequence length
  EXPECT_EQ(config.window.horizon, 6u);   // 30-minute forecast at 5-min cadence
  EXPECT_EQ(config.detectors.knn.k, 7u);  // paper Appendix B
  EXPECT_DOUBLE_EQ(config.detectors.ocsvm.nu, 0.5);
  EXPECT_EQ(config.random_victims, 3u);
}

TEST(Config, FingerprintIsStable) {
  EXPECT_EQ(config_fingerprint(FrameworkConfig::fast()),
            config_fingerprint(FrameworkConfig::fast()));
}

TEST(Config, FingerprintSensitiveToEachKnob) {
  const auto base = FrameworkConfig::fast();
  auto modified = base;
  modified.seed += 1;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(modified));

  modified = base;
  modified.detectors.knn.k = 9;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(modified));

  modified = base;
  modified.detectors.ocsvm.coef0 += 0.5;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(modified));

  modified = base;
  modified.evaluation_campaign.attack.value_candidates += 1;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(modified));

  modified = base;
  modified.linkage = cluster::Linkage::kWard;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(modified));
}

}  // namespace
}  // namespace goodones::core
