// End-to-end tests for canary (shadow) deployments of candidate generations:
//
//   * The primary contract: responses are BITWISE identical whether or not
//     a candidate is mirroring — the canary path runs strictly after the
//     primary response is assembled and never touches its bytes.
//   * Mirrored-sampling determinism: the splitmix draw over (entity,
//     request sequence) means two identical request streams mirror
//     identical subsets — canaries are replayable, never wall-clock noise.
//   * The policy loop: a deliberately-degraded candidate (its cluster
//     detectors invert every verdict) trips auto-rollback; a clean clone
//     auto-promotes; either way the decision is recorded through the
//     lifecycle observer exactly once.
//   * Daemon integration: in canary mode a Refresh frame stages the rebuild
//     as a candidate, Promote publishes it, and every verdict recorded
//     across the promote replays bitwise against the registry bundle of the
//     generation it names — provenance survives measured rollouts. The
//     registry's promotion lineage records install and promote.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/error.hpp"
#include "common/socket.hpp"
#include "core/framework.hpp"
#include "data/window.hpp"
#include "detect/detector.hpp"
#include "domains/synthtel/adapter.hpp"
#include "serve/daemon.hpp"

namespace goodones::serve {
namespace {

std::shared_ptr<const core::DomainAdapter> mini_fleet() {
  static const auto domain = std::make_shared<synthtel::SynthtelDomain>(2);
  return domain;
}

core::FrameworkConfig mini_config() {
  core::FrameworkConfig config = mini_fleet()->prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 1200;
  config.population.test_steps = 400;
  config.population.seed = 23;
  config.registry.forecaster.hidden = 8;
  config.registry.forecaster.head_hidden = 6;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 8;
  config.registry.aggregate_window_step = 50;
  config.profiling_campaign.window_step = 10;
  config.evaluation_campaign.window_step = 10;
  config.detector_benign_stride = 10;
  config.detectors.knn.max_points_per_class = 400;
  config.random_runs = 1;
  config.random_victims = 2;
  config.seed = 555;
  return config;
}

core::RiskProfilingFramework& framework() {
  static core::RiskProfilingFramework instance(mini_fleet(), mini_config());
  return instance;
}

std::filesystem::path unique_path(const char* stem, const char* suffix) {
  return std::filesystem::temp_directory_path() /
         (std::string(stem) + "_" + std::to_string(::getpid()) + suffix);
}

/// Clean held-out windows, or the same windows pinned to the attack-box
/// ceiling (sustained evasion pressure).
ScoreRequest entity_request(std::size_t entity, bool manipulated) {
  auto& fw = framework();
  const auto& entities = fw.entities();
  data::WindowConfig window_config = fw.config().window;
  window_config.step = 30;
  ScoreRequest request;
  request.entity = entities[entity].name;
  const auto windows = data::make_windows(entities[entity].test, window_config);
  const core::DomainSpec& spec = fw.domain().spec();
  for (std::size_t i = 0; i < windows.size() && i < 4; ++i) {
    TelemetryWindow window{windows[i].features, windows[i].regime};
    if (manipulated) {
      for (std::size_t t = 0; t < window.features.rows(); ++t) {
        window.features(t, spec.target_channel) = spec.attack_box_max;
      }
    }
    request.windows.push_back(std::move(window));
  }
  return request;
}

void expect_identical_response(const ScoreResponse& a, const ScoreResponse& b) {
  EXPECT_EQ(a.entity_index, b.entity_index);
  EXPECT_EQ(a.cluster, b.cluster);
  EXPECT_EQ(a.generation, b.generation);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t w = 0; w < a.windows.size(); ++w) {
    EXPECT_EQ(a.windows[w].forecast, b.windows[w].forecast) << "w=" << w;
    EXPECT_EQ(a.windows[w].residual, b.windows[w].residual) << "w=" << w;
    EXPECT_EQ(a.windows[w].observed_state, b.windows[w].observed_state) << "w=" << w;
    EXPECT_EQ(a.windows[w].predicted_state, b.windows[w].predicted_state) << "w=" << w;
    EXPECT_EQ(a.windows[w].anomaly_score, b.windows[w].anomaly_score) << "w=" << w;
    EXPECT_EQ(a.windows[w].flagged, b.windows[w].flagged) << "w=" << w;
    EXPECT_EQ(a.windows[w].risk, b.windows[w].risk) << "w=" << w;
  }
}

/// The once-trained bundle every test clones from (training is the
/// expensive part; clones score bitwise-identically).
const ServingModel& base_bundle() {
  static const ServingModel bundle =
      build_serving_model(framework(), detect::DetectorKind::kKnn);
  return bundle;
}

/// Wraps a fitted detector and INVERTS every flag decision while keeping
/// scores untouched — the deliberately-degraded candidate: maximal
/// flag-rate drift with zero score drift, exactly what the canary policy
/// must catch. Never persisted (save/load keep the throwing defaults).
class InvertedDetector final : public detect::AnomalyDetector {
 public:
  explicit InvertedDetector(std::unique_ptr<detect::AnomalyDetector> inner)
      : inner_(std::move(inner)) {}

  detect::InputGranularity granularity() const override { return inner_->granularity(); }
  void fit(const std::vector<nn::Matrix>& benign,
           const std::vector<nn::Matrix>& malicious) override {
    inner_->fit(benign, malicious);
  }
  double anomaly_score(const nn::Matrix& window) const override {
    return inner_->anomaly_score(window);
  }
  bool flags(const nn::Matrix& window) const override { return !inner_->flags(window); }
  std::vector<double> score_batch(std::span<const nn::Matrix> windows) const override {
    return inner_->score_batch(windows);
  }
  bool flags_from_score(const nn::Matrix& window, double score) const override {
    return !inner_->flags_from_score(window, score);
  }
  std::string name() const override { return "inverted(" + inner_->name() + ")"; }
  std::size_t input_width() const noexcept override { return inner_->input_width(); }

 private:
  std::unique_ptr<detect::AnomalyDetector> inner_;
};

ServingModel candidate_clone(std::uint64_t generation, bool degraded = false) {
  ServingModel candidate = clone_serving_model(base_bundle());
  candidate.generation = generation;
  if (degraded) {
    for (auto& detector : candidate.cluster_detectors) {
      detector = std::make_unique<InvertedDetector>(std::move(detector));
    }
  }
  return candidate;
}

/// Thread-safe canary-event log for the lifecycle assertions.
struct EventLog {
  std::mutex mutex;
  std::vector<CanaryEvent> events;
  void attach(ScoringService& service) {
    service.set_canary_observer([this](const CanaryEvent& event) {
      const std::lock_guard<std::mutex> lock(mutex);
      events.push_back(event);
    });
  }
  std::vector<CanaryEvent> snapshot() {
    const std::lock_guard<std::mutex> lock(mutex);
    return events;
  }
};

TEST(ServeCanary, PrimaryResponsesBitwiseIdenticalWithCanaryOnAndOff) {
  const ScoringService plain(clone_serving_model(base_bundle()), {.threads = 1});

  ScoringServiceConfig canary_config{.threads = 1};
  canary_config.canary.sample_per_million = 1000000;  // mirror EVERYTHING
  canary_config.canary.auto_decide = false;           // and never resolve
  ScoringService canaried(clone_serving_model(base_bundle()), canary_config);
  canaried.install_candidate(candidate_clone(1));
  ASSERT_EQ(canaried.candidate_generation(), 1u);

  const std::size_t n_entities = plain.model()->entity_names.size();
  for (int iter = 0; iter < 6; ++iter) {
    for (std::size_t e = 0; e < n_entities; ++e) {
      const ScoreRequest request = entity_request(e, iter % 2 == 0);
      expect_identical_response(canaried.score(request), plain.score(request));
    }
  }
  // The candidate really was mirroring the whole time.
  const CanaryMetrics metrics = canaried.canary_metrics();
  EXPECT_EQ(metrics.state, CanaryState::kMirroring);
  EXPECT_GT(metrics.mirrored_windows, 0u);
  EXPECT_EQ(metrics.mirrored_requests, 6u * n_entities);
  // A clean clone drifts by nothing: zero flips, zero flag drift.
  for (const CanaryClusterMetrics& cluster : metrics.clusters) {
    EXPECT_EQ(cluster.state_flips, 0u);
    EXPECT_EQ(cluster.flag_rate_delta(), 0.0);
    EXPECT_EQ(cluster.risk_distance(), 0.0);
  }
}

TEST(ServeCanary, IdenticalStreamsMirrorIdenticalSubsets) {
  ScoringServiceConfig config{.threads = 1};
  config.canary.sample_per_million = 250000;  // a strict subset
  config.canary.auto_decide = false;
  ScoringService first(clone_serving_model(base_bundle()), config);
  ScoringService second(clone_serving_model(base_bundle()), config);
  first.install_candidate(candidate_clone(1));
  second.install_candidate(candidate_clone(1));

  const std::size_t n_entities = first.model()->entity_names.size();
  for (int iter = 0; iter < 40; ++iter) {
    for (std::size_t e = 0; e < n_entities; ++e) {
      const ScoreRequest request = entity_request(e, iter % 3 == 0);
      (void)first.score(request);
      (void)second.score(request);
    }
  }

  const CanaryMetrics a = first.canary_metrics();
  const CanaryMetrics b = second.canary_metrics();
  EXPECT_GT(a.mirrored_requests, 0u);
  EXPECT_LT(a.mirrored_requests, 40u * n_entities);  // genuinely a subset
  EXPECT_EQ(a.mirrored_requests, b.mirrored_requests);
  EXPECT_EQ(a.mirrored_windows, b.mirrored_windows);
  for (std::size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c].mirrored_windows, b.clusters[c].mirrored_windows);
    EXPECT_EQ(a.clusters[c].primary_flags, b.clusters[c].primary_flags);
    EXPECT_EQ(a.clusters[c].candidate_flags, b.clusters[c].candidate_flags);
    EXPECT_EQ(a.clusters[c].state_flips, b.clusters[c].state_flips);
    auto risks_a = a.clusters[c].primary_risks;
    auto risks_b = b.clusters[c].primary_risks;
    std::sort(risks_a.begin(), risks_a.end());
    std::sort(risks_b.begin(), risks_b.end());
    EXPECT_EQ(risks_a, risks_b);
  }
}

TEST(ServeCanary, DegradedCandidateTripsAutoRollback) {
  ScoringServiceConfig config{.threads = 1};
  config.canary.sample_per_million = 1000000;
  config.canary.min_mirrored_windows = 8;
  config.canary.breach_strikes = 2;
  config.canary.max_flag_rate_delta = 0.05;
  ScoringService service(clone_serving_model(base_bundle()), config);
  EventLog log;
  log.attach(service);

  service.install_candidate(candidate_clone(1, /*degraded=*/true));
  ASSERT_EQ(service.candidate_generation(), 1u);

  // Drive clean traffic; the inverted candidate flags everything the
  // primary clears, so every evaluation past the evidence gate breaches.
  for (int iter = 0; iter < 32 && service.candidate_generation() != 0; ++iter) {
    (void)service.score(entity_request(iter % 2, false));
  }

  EXPECT_EQ(service.candidate_generation(), 0u) << "rollback never fired";
  EXPECT_EQ(service.generation(), 0u) << "the degraded bundle must NOT serve";
  const CanaryMetrics metrics = service.canary_metrics();
  EXPECT_EQ(metrics.state, CanaryState::kIdle);
  EXPECT_GE(metrics.breach_streak, 2u);

  const std::vector<CanaryEvent> events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].action, CanaryEvent::Action::kInstalled);
  EXPECT_EQ(events[1].action, CanaryEvent::Action::kRolledBack);
  EXPECT_EQ(events[1].candidate_generation, 1u);
  EXPECT_TRUE(events[1].automatic);

  // Post-rollback the canary machinery is quiescent: manual verbs are
  // retry-safe no-ops and nothing new mirrors.
  EXPECT_FALSE(service.promote_candidate());
  EXPECT_FALSE(service.rollback_candidate(1));
  const std::uint64_t mirrored = metrics.mirrored_windows;
  (void)service.score(entity_request(0, false));
  EXPECT_EQ(service.canary_metrics().mirrored_windows, mirrored);
}

TEST(ServeCanary, CleanCandidateAutoPromotesAndServesBitwise) {
  ScoringServiceConfig config{.threads = 1};
  config.canary.sample_per_million = 1000000;
  config.canary.min_mirrored_windows = 8;
  config.canary.breach_strikes = 2;
  ScoringService service(clone_serving_model(base_bundle()), config);
  EventLog log;
  log.attach(service);

  service.install_candidate(candidate_clone(1));
  for (int iter = 0; iter < 32 && service.generation() != 1; ++iter) {
    (void)service.score(entity_request(iter % 2, iter % 2 == 1));
  }

  EXPECT_EQ(service.generation(), 1u) << "promotion never fired";
  EXPECT_EQ(service.candidate_generation(), 0u);
  const std::vector<CanaryEvent> events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].action, CanaryEvent::Action::kPromoted);
  EXPECT_EQ(events[1].candidate_generation, 1u);
  EXPECT_EQ(events[1].primary_generation, 0u);
  EXPECT_TRUE(events[1].automatic);
  EXPECT_GE(events[1].mirrored_windows, config.canary.min_mirrored_windows);

  // The promoted generation serves bitwise-identically to a service pinned
  // to the same candidate bundle — promotion is the plain swap_model
  // publication, nothing about the canary leaks into scoring.
  const ScoringService pinned(candidate_clone(1), {.threads = 1});
  for (std::size_t e = 0; e < service.model()->entity_names.size(); ++e) {
    const ScoreRequest request = entity_request(e, e % 2 == 0);
    expect_identical_response(service.score(request), pinned.score(request));
  }
}

TEST(ServeCanary, DaemonStagesPromotesAndReplaysBitwiseAcrossGenerations) {
  auto& fw = framework();
  DaemonConfig config;
  const std::filesystem::path socket_path = unique_path("go_canary_d", ".sock");
  config.listen = common::Endpoint::unix_socket(socket_path);
  config.registry_root = unique_path("go_canary_d", "_reg");
  std::filesystem::remove_all(config.registry_root);
  config.adaptive.canary = true;
  config.adaptive.auto_refresh = false;  // the operator drives this rollout
  config.scoring.canary.sample_per_million = 1000000;
  config.scoring.canary.auto_decide = false;  // manual promote is the test
  Daemon daemon(clone_serving_model(base_bundle()), config);
  daemon.start();

  struct Recorded {
    ScoreRequest request;
    ScoreResponse response;
  };
  std::vector<Recorded> recorded;
  DaemonClient client(socket_path);
  const std::size_t n_entities = daemon.service().model()->entity_names.size();
  const auto drive = [&](int iters) {
    for (int iter = 0; iter < iters; ++iter) {
      for (std::size_t e = 0; e < n_entities; ++e) {
        ScoreRequest request = entity_request(e, iter % 2 == 0);
        ScoreResponse response = client.score(request);
        recorded.push_back({std::move(request), std::move(response)});
      }
    }
  };

  // Phase 1: gen-0 traffic (also the profiler evidence a refresh needs).
  drive(4);
  ASSERT_EQ(daemon.generation(), 0u);

  // Refresh in canary mode FORCES a rebuild and stages it — primary stays.
  const wire::RefreshReply refreshed = client.refresh();
  EXPECT_TRUE(refreshed.refreshed);
  EXPECT_EQ(refreshed.generation, 0u) << "staging must not touch the primary";
  EXPECT_EQ(daemon.service().candidate_generation(), 1u);
  // While a candidate is staged, further refreshes defer.
  EXPECT_FALSE(client.refresh().refreshed);

  // Phase 2: mirrored traffic (responses still generation 0, bitwise).
  drive(4);
  EXPECT_GT(daemon.service().canary_metrics().mirrored_windows, 0u);

  // The Stats frame surfaces the canary gauges.
  const wire::StatsSnapshot stats = client.stats();
  const auto gauge = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [key, value] : stats) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "missing gauge " << name;
    return 0;
  };
  EXPECT_EQ(gauge("serve.canary.mirroring"), 1u);
  EXPECT_EQ(gauge("serve.canary.candidate_generation"), 1u);
  EXPECT_GT(gauge("serve.canary.window_total"), 0u);

  // Manual promote publishes the candidate; the duplicate is retry-safe.
  const wire::PromoteReply promoted = client.promote();
  EXPECT_TRUE(promoted.applied);
  EXPECT_EQ(promoted.generation, 1u);
  EXPECT_EQ(daemon.generation(), 1u);
  const wire::PromoteReply duplicate = client.promote(1);
  EXPECT_FALSE(duplicate.applied);
  EXPECT_EQ(duplicate.generation, 1u);

  // Phase 3: gen-1 traffic.
  drive(4);

  // Every verdict replays bitwise against the registry bundle of exactly
  // the generation it names — on both sides of the promote.
  std::set<std::uint64_t> generations;
  for (const auto& record : recorded) generations.insert(record.response.generation);
  EXPECT_EQ(generations, (std::set<std::uint64_t>{0, 1}));
  RegistryKey base_key = registry_key(fw, detect::DetectorKind::kKnn);
  for (const std::uint64_t generation : generations) {
    RegistryKey key = base_key;
    key.generation = generation;
    ASSERT_TRUE(daemon.registry().contains(key)) << "generation " << generation;
    const ScoringService pinned(daemon.registry().load(key), {.threads = 1});
    std::size_t replayed = 0;
    for (const auto& record : recorded) {
      if (record.response.generation != generation) continue;
      if (++replayed > 8) break;
      expect_identical_response(record.response, pinned.score(record.request));
    }
    EXPECT_GE(replayed, 1u);
  }

  // The promotion lineage survives in the registry: install then promote.
  ASSERT_TRUE(daemon.registry().contains_lineage(base_key));
  const std::vector<LineageEvent> lineage = daemon.registry().load_lineage(base_key);
  ASSERT_EQ(lineage.size(), 2u);
  EXPECT_EQ(lineage[0].action, LineageAction::kInstalled);
  EXPECT_EQ(lineage[0].generation, 1u);
  EXPECT_EQ(lineage[1].action, LineageAction::kPromoted);
  EXPECT_EQ(lineage[1].generation, 1u);
  EXPECT_EQ(lineage[1].primary_generation, 0u);
  EXPECT_GT(lineage[1].mirrored_windows, 0u);

  daemon.stop();
  std::filesystem::remove_all(config.registry_root);
}

#ifdef GOODONES_CLIENT_BIN
TEST(ServeCanary, CliVerbsDriveTheCanaryLifecycle) {
  DaemonConfig config;
  const std::filesystem::path socket_path = unique_path("go_canary_cli", ".sock");
  config.listen = common::Endpoint::unix_socket(socket_path);
  config.registry_root = unique_path("go_canary_cli", "_reg");
  std::filesystem::remove_all(config.registry_root);
  config.adaptive.canary = true;
  config.adaptive.auto_refresh = false;
  config.scoring.canary.auto_decide = false;
  Daemon daemon(clone_serving_model(base_bundle()), config);
  daemon.start();

  // Profiler evidence so the forced refresh can stage a candidate.
  DaemonClient warm(socket_path);
  for (std::size_t e = 0; e < daemon.service().model()->entity_names.size(); ++e) {
    (void)warm.score(entity_request(e, false));
  }
  ASSERT_TRUE(warm.refresh().refreshed);
  ASSERT_EQ(daemon.service().candidate_generation(), 1u);

  const auto run = [&](const std::string& verb) {
    const auto out_path = unique_path("go_canary_cli", ".out");
    const std::string command = std::string(GOODONES_CLIENT_BIN) + " " +
                                socket_path.string() + " " + verb + " > " +
                                out_path.string();
    EXPECT_EQ(std::system(command.c_str()), 0) << verb;
    std::ifstream out(out_path);
    std::stringstream captured;
    captured << out.rdbuf();
    std::filesystem::remove(out_path);
    return captured.str();
  };

  const std::string status = run("canary-status");
  EXPECT_NE(status.find("serve.canary.candidate_generation 1"), std::string::npos)
      << status;
  const std::string promoted = run("promote");
  EXPECT_NE(promoted.find("promoted: primary is now generation 1"), std::string::npos)
      << promoted;
  EXPECT_EQ(daemon.generation(), 1u);
  const std::string rolled = run("rollback 99");
  EXPECT_NE(rolled.find("nothing to apply"), std::string::npos) << rolled;

  daemon.stop();
  std::filesystem::remove_all(config.registry_root);
}
#endif  // GOODONES_CLIENT_BIN

}  // namespace
}  // namespace goodones::serve
