// Edge-case coverage for the columnar telemetry store: segment roll-over at
// exact capacity, persist → reopen bitwise identity, WindowViews outliving
// reopen and destruction of the store that cut them, typed
// SerializationError on truncated/corrupt/foreign segment files (never a
// crash), and mmap-vs-read-fallback byte equality. Window BYTE parity
// against data::make_windows runs across all three registered domains —
// combined with the shared scoring core, that is what makes
// WindowView-vs-materialized-Window scoring parity hold fleet-wide (the
// serving-level half lives in serve_ingest_test.cpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "data/column_store.hpp"
#include "data/window.hpp"
#include "domains/registry.hpp"

namespace goodones::data {
namespace {

/// Deterministic, channel- and tick-dependent value so any misplaced byte
/// shows up as a wrong double somewhere.
double tick_value(std::uint64_t tick, std::size_t channel) {
  return static_cast<double>(tick) * 1000.0 + static_cast<double>(channel) + 0.25;
}

Regime tick_regime(std::uint64_t tick) {
  return tick % 3 == 0 ? Regime::kActive : Regime::kBaseline;
}

void append_ticks(ColumnStore& store, const std::string& entity, std::uint64_t first,
                  std::uint64_t count) {
  std::vector<double> values(store.num_channels());
  for (std::uint64_t tick = first; tick < first + count; ++tick) {
    for (std::size_t c = 0; c < values.size(); ++c) values[c] = tick_value(tick, c);
    store.append(entity, values, tick_regime(tick));
  }
}

void expect_window(const WindowView& view, std::uint64_t end_tick, std::size_t seq_len,
                   std::size_t channels) {
  ASSERT_EQ(view.rows(), seq_len);
  ASSERT_EQ(view.cols(), channels);
  EXPECT_EQ(view.end_tick(), end_tick);
  EXPECT_EQ(view.regime(), tick_regime(end_tick));
  const std::uint64_t first = end_tick + 1 - seq_len;
  for (std::size_t t = 0; t < seq_len; ++t) {
    for (std::size_t c = 0; c < channels; ++c) {
      ASSERT_EQ(view.at(t, c), tick_value(first + t, c)) << "t=" << t << " c=" << c;
    }
  }
  // gather/materialize must reproduce exactly the bytes at() reads.
  const nn::Matrix gathered = view.materialize();
  ASSERT_EQ(gathered.rows(), seq_len);
  ASSERT_EQ(gathered.cols(), channels);
  for (std::size_t t = 0; t < seq_len; ++t) {
    for (std::size_t c = 0; c < channels; ++c) {
      ASSERT_EQ(gathered(t, c), view.at(t, c));
    }
  }
}

std::filesystem::path scratch_root(const std::string& name) {
  const auto root = std::filesystem::temp_directory_path() / ("goodones_colstore_" + name);
  std::filesystem::remove_all(root);
  return root;
}

TEST(ColumnStore, RollOverAtExactCapacity) {
  ColumnStoreConfig config;
  config.segment_capacity = 8;
  ColumnStore store(config, 2);

  // Exactly one capacity: one sealed segment, no active remainder.
  append_ticks(store, "E", 0, 8);
  EXPECT_EQ(store.ticks("E"), 8u);
  EXPECT_EQ(store.stats().segments, 1u);

  // One more tick rolls into a fresh segment; windows spanning the boundary
  // stitch pieces from both.
  append_ticks(store, "E", 8, 9);
  EXPECT_EQ(store.ticks("E"), 17u);
  EXPECT_EQ(store.stats().segments, 3u);  // two sealed + the active remainder

  const WindowView straddling = store.window_at("E", 9, 6);  // ticks 4..9
  EXPECT_EQ(straddling.num_pieces(), 2u);
  expect_window(straddling, 9, 6, 2);
  expect_window(store.window_at("E", 16, 12), 16, 12, 2);  // three segments
}

TEST(ColumnStore, LatestWindowsAreStride1NewestLast) {
  ColumnStoreConfig config;
  config.segment_capacity = 16;
  ColumnStore store(config, 3);
  append_ticks(store, "E", 0, 20);

  const std::vector<WindowView> views = store.latest_windows("E", 4, 3);
  ASSERT_EQ(views.size(), 3u);
  expect_window(views[0], 17, 4, 3);
  expect_window(views[1], 18, 4, 3);
  expect_window(views[2], 19, 4, 3);
}

TEST(ColumnStore, PreconditionErrorsAreTyped) {
  ColumnStoreConfig config;
  ColumnStore store(config, 2);
  append_ticks(store, "E", 0, 5);

  EXPECT_THROW((void)store.window_at("E", 1, 4), common::PreconditionError);   // underflow
  EXPECT_THROW((void)store.window_at("E", 5, 2), common::PreconditionError);   // past end
  EXPECT_THROW((void)store.window_at("NOPE", 3, 2), common::PreconditionError);
  EXPECT_THROW((void)store.latest_windows("E", 4, 3), common::PreconditionError);
  EXPECT_THROW((void)store.window_at("E", 3, 0), common::PreconditionError);
  const std::vector<double> wrong_width = {1.0};
  EXPECT_THROW(store.append("E", wrong_width, Regime::kBaseline),
               common::PreconditionError);
  const std::vector<double> ok = {1.0, 2.0};
  EXPECT_THROW(store.append("", ok, Regime::kBaseline), common::PreconditionError);
  EXPECT_THROW(store.append("a/b", ok, Regime::kBaseline), common::PreconditionError);
  EXPECT_THROW(store.append("..", ok, Regime::kBaseline), common::PreconditionError);
}

TEST(ColumnStore, PersistReopenBitwiseIdenticalAndViewOutlivesReopen) {
  const auto root = scratch_root("reopen");
  ColumnStoreConfig config;
  config.root = root;
  config.segment_capacity = 8;

  WindowView survivor;
  {
    ColumnStore store(config, 2);
    append_ticks(store, "E", 0, 21);  // two sealed segments + partial active
    store.flush();
    survivor = store.window_at("E", 20, 12);
  }
  // The store that cut it is gone; the view still pins its segments.
  expect_window(survivor, 20, 12, 2);

  ColumnStore reopened(config, 2);
  EXPECT_EQ(reopened.ticks("E"), 21u);
  EXPECT_EQ(reopened.entity_names(), std::vector<std::string>{"E"});
  for (std::uint64_t end = 11; end < 21; ++end) {
    expect_window(reopened.window_at("E", end, 12), end, 12, 2);
  }
  // The reopened partial segment resumes appending where it left off.
  append_ticks(reopened, "E", 21, 4);
  expect_window(reopened.window_at("E", 24, 12), 24, 12, 2);

  std::filesystem::remove_all(root);
}

TEST(ColumnStore, MmapAndReadFallbackBitwiseEqual) {
  const auto root = scratch_root("fallback");
  ColumnStoreConfig config;
  config.root = root;
  config.segment_capacity = 8;
  {
    ColumnStore store(config, 3);
    append_ticks(store, "E", 0, 16);
  }

  ColumnStore mapped(config, 3);
  ColumnStoreConfig no_mmap = config;
  no_mmap.mmap_reads = false;
  ColumnStore slurped(no_mmap, 3);
  EXPECT_EQ(slurped.stats().bytes_mapped, mapped.stats().bytes_mapped);
  for (std::uint64_t end = 5; end < 16; ++end) {
    const nn::Matrix a = mapped.window_at("E", end, 6).materialize();
    const nn::Matrix b = slurped.window_at("E", end, 6).materialize();
    for (std::size_t t = 0; t < a.rows(); ++t) {
      for (std::size_t c = 0; c < a.cols(); ++c) ASSERT_EQ(a(t, c), b(t, c));
    }
  }
  std::filesystem::remove_all(root);
}

TEST(ColumnStore, StatsTrackEntitiesTicksSegmentsAndMappedBytes) {
  const auto root = scratch_root("stats");
  ColumnStoreConfig config;
  config.root = root;
  config.segment_capacity = 4;
  ColumnStore store(config, 2);
  append_ticks(store, "A", 0, 9);
  append_ticks(store, "B", 0, 4);

  const ColumnStore::Stats stats = store.stats();
  EXPECT_EQ(stats.entities, 2u);
  EXPECT_EQ(stats.ticks, 13u);
  EXPECT_EQ(stats.segments, 4u);  // A: 2 sealed + active; B: 1 sealed
  // Three sealed files are mapped (header + columns + regimes + CRC each).
  EXPECT_GE(stats.bytes_mapped, 3u * (40 + 4 * 2 * 8 + 4 + 4));
  std::filesystem::remove_all(root);
}

class ColumnStoreCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = scratch_root("corrupt");
    config_.root = root_;
    config_.segment_capacity = 8;
    ColumnStore store(config_, 2);
    append_ticks(store, "E", 0, 8);  // exactly one sealed file
    segment_ = root_ / "E" / "seg_000000.col";
    ASSERT_TRUE(std::filesystem::exists(segment_));
  }

  void TearDown() override { std::filesystem::remove_all(root_); }

  std::vector<char> read_file() const {
    std::ifstream in(segment_, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  }

  void write_file(const std::vector<char>& bytes) const {
    std::ofstream out(segment_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path root_;
  std::filesystem::path segment_;
  ColumnStoreConfig config_;
};

TEST_F(ColumnStoreCorruption, TruncatedFileRaisesSerializationError) {
  std::vector<char> bytes = read_file();
  bytes.resize(bytes.size() / 2);
  write_file(bytes);
  EXPECT_THROW(ColumnStore(config_, 2), common::SerializationError);
}

TEST_F(ColumnStoreCorruption, FlippedPayloadByteFailsCrc) {
  std::vector<char> bytes = read_file();
  bytes[48] ^= 0x01;  // inside the first channel column
  write_file(bytes);
  EXPECT_THROW(ColumnStore(config_, 2), common::SerializationError);
}

TEST_F(ColumnStoreCorruption, BadMagicRaisesSerializationError) {
  std::vector<char> bytes = read_file();
  bytes[0] = 'X';
  write_file(bytes);
  EXPECT_THROW(ColumnStore(config_, 2), common::SerializationError);
}

TEST_F(ColumnStoreCorruption, ChannelMismatchRaisesSerializationError) {
  EXPECT_THROW(ColumnStore(config_, 3), common::SerializationError);
}

TEST_F(ColumnStoreCorruption, EmptyFileRaisesSerializationError) {
  write_file({});
  EXPECT_THROW(ColumnStore(config_, 2), common::SerializationError);
}

TEST_F(ColumnStoreCorruption, MissingChainSegmentRaisesSerializationError) {
  // Grow a second sealed file, then delete the first: the chain has a gap.
  {
    ColumnStore store(config_, 2);
    append_ticks(store, "E", 8, 8);
  }
  ASSERT_TRUE(std::filesystem::exists(root_ / "E" / "seg_000001.col"));
  std::filesystem::remove(segment_);
  EXPECT_THROW(ColumnStore(config_, 2), common::SerializationError);
}

/// Byte parity across every registered domain: windows cut from a store
/// loaded with the domain's real telemetry are bitwise-identical to the
/// materialized data::make_windows features over the same series.
TEST(ColumnStore, WindowBytesMatchMakeWindowsAcrossDomains) {
  for (const std::string& name : domains::available_domains()) {
    SCOPED_TRACE(name);
    const auto domain = domains::make_domain(name);
    core::PopulationConfig population;
    population.train_steps = 40;
    population.test_steps = 80;
    population.seed = 13;
    std::vector<core::EntityData> entities = domain->make_entities(population);
    ASSERT_FALSE(entities.empty());
    if (entities.size() > 2) entities.resize(2);  // two per domain is plenty

    ColumnStoreConfig config;
    config.segment_capacity = 32;  // force straddling windows
    ColumnStore store(config, domain->spec().num_channels);
    WindowConfig window_config;
    window_config.seq_len = kDefaultSeqLen;
    window_config.step = 5;
    for (const core::EntityData& entity : entities) {
      store.append_block(entity.name, entity.test.values, entity.test.regimes);
      const std::vector<Window> reference =
          make_windows(entity.test, window_config);
      ASSERT_FALSE(reference.empty());
      for (const Window& window : reference) {
        const WindowView view =
            store.window_at(entity.name, window.end_index, window_config.seq_len);
        const nn::Matrix gathered = view.materialize();
        ASSERT_EQ(gathered.rows(), window.features.rows());
        ASSERT_EQ(gathered.cols(), window.features.cols());
        for (std::size_t t = 0; t < gathered.rows(); ++t) {
          for (std::size_t c = 0; c < gathered.cols(); ++c) {
            ASSERT_EQ(gathered(t, c), window.features(t, c))
                << entity.name << " end=" << window.end_index << " t=" << t
                << " c=" << c;
          }
        }
        // The view's regime is the last ROW's regime (prediction input);
        // make_windows records the regime horizon steps later. Pin the
        // view's own contract against the raw series instead.
        EXPECT_EQ(view.regime(), entity.test.regimes[window.end_index]);
      }
    }
  }
}

}  // namespace
}  // namespace goodones::data
