#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "domains/bgms/cohort.hpp"
#include "domains/bgms/glucose_model.hpp"
#include "domains/bgms/patient.hpp"

namespace goodones::bgms {
namespace {

TEST(PatientId, Formatting) {
  EXPECT_EQ(to_string(PatientId{Subset::kA, 5}), "A_5");
  EXPECT_EQ(to_string(PatientId{Subset::kB, 0}), "B_0");
}

TEST(Cohort, HasTwelveFixedPatients) {
  const auto params = cohort_parameters();
  ASSERT_EQ(params.size(), 12u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(params[i].id.subset, Subset::kA);
    EXPECT_EQ(params[i].id.index, i);
    EXPECT_EQ(params[6 + i].id.subset, Subset::kB);
    EXPECT_EQ(params[6 + i].id.index, i);
  }
}

TEST(Cohort, PatientParametersLookupMatchesTable) {
  const auto a5 = patient_parameters({Subset::kA, 5});
  const auto all = cohort_parameters();
  EXPECT_DOUBLE_EQ(a5.basal_glucose, all[5].basal_glucose);
  EXPECT_THROW((void)patient_parameters({Subset::kA, 6}), common::PreconditionError);
}

TEST(Simulator, ProducesRequestedLength) {
  GlucoseSimulator simulator(patient_parameters({Subset::kA, 0}), 1);
  EXPECT_EQ(simulator.run(500).size(), 500u);
}

TEST(Simulator, RejectsZeroSteps) {
  GlucoseSimulator simulator(patient_parameters({Subset::kA, 0}), 1);
  EXPECT_THROW((void)simulator.run(0), common::PreconditionError);
}

TEST(Simulator, GlucoseWithinPhysiologicalBounds) {
  for (const auto& params : cohort_parameters()) {
    GlucoseSimulator simulator(params, 7);
    for (const auto& sample : simulator.run(2000)) {
      ASSERT_GE(sample.cgm, kMinGlucose);
      ASSERT_LE(sample.cgm, kMaxGlucose);
      ASSERT_GE(sample.true_glucose, kMinGlucose);
      ASSERT_LE(sample.true_glucose, kMaxGlucose);
    }
  }
}

TEST(Simulator, DeterministicForSameSeed) {
  const auto params = patient_parameters({Subset::kB, 2});
  GlucoseSimulator a(params, 99);
  GlucoseSimulator b(params, 99);
  const auto trace_a = a.run(300);
  const auto trace_b = b.run(300);
  for (std::size_t t = 0; t < 300; ++t) {
    ASSERT_DOUBLE_EQ(trace_a[t].cgm, trace_b[t].cgm);
    ASSERT_DOUBLE_EQ(trace_a[t].bolus, trace_b[t].bolus);
  }
}

TEST(Simulator, DifferentSeedsProduceDifferentTraces) {
  const auto params = patient_parameters({Subset::kA, 1});
  const auto trace_a = GlucoseSimulator(params, 1).run(200);
  const auto trace_b = GlucoseSimulator(params, 2).run(200);
  int differences = 0;
  for (std::size_t t = 0; t < 200; ++t) {
    differences += trace_a[t].cgm != trace_b[t].cgm ? 1 : 0;
  }
  EXPECT_GT(differences, 150);
}

TEST(Simulator, MealsGenerateCarbsAndBoluses) {
  GlucoseSimulator simulator(patient_parameters({Subset::kA, 0}), 3);
  const auto trace = simulator.run(kStepsPerDay * 7);  // one week
  double total_carbs = 0.0;
  double total_bolus = 0.0;
  int meal_events = 0;
  for (const auto& sample : trace) {
    total_carbs += sample.carbs;
    total_bolus += sample.bolus;
    meal_events += sample.carbs > 0.0 ? 1 : 0;
  }
  EXPECT_GT(meal_events, 7 * 2);  // at least ~2 meals a day materialize
  EXPECT_GT(total_carbs, 7 * 60.0);
  EXPECT_GT(total_bolus, 0.0);
}

TEST(Simulator, BasalIsAlwaysReported) {
  GlucoseSimulator simulator(patient_parameters({Subset::kB, 4}), 5);
  for (const auto& sample : simulator.run(200)) ASSERT_GT(sample.basal, 0.0);
}

TEST(Simulator, StablePatientHasLowerVariabilityThanDysregulated) {
  // A_5 (stability 0.92) must show tighter glucose control than A_2 (0.08):
  // lower variance and a mean closer to the normal band.
  const auto stable = GlucoseSimulator(patient_parameters({Subset::kA, 5}), 11).run(5000);
  const auto dysregulated =
      GlucoseSimulator(patient_parameters({Subset::kA, 2}), 11).run(5000);

  common::RunningStats stable_stats;
  common::RunningStats dysregulated_stats;
  for (const auto& s : stable) stable_stats.add(s.true_glucose);
  for (const auto& s : dysregulated) dysregulated_stats.add(s.true_glucose);

  EXPECT_LT(stable_stats.stddev(), dysregulated_stats.stddev());
  EXPECT_LT(stable_stats.mean(), dysregulated_stats.mean());
}

TEST(CohortGeneration, SplitsTrainAndTest) {
  CohortConfig config;
  config.train_steps = 400;
  config.test_steps = 100;
  config.seed = 3;
  const auto cohort = generate_cohort(config);
  ASSERT_EQ(cohort.size(), 12u);
  for (const auto& trace : cohort) {
    EXPECT_EQ(trace.train.size(), 400u);
    EXPECT_EQ(trace.test.size(), 100u);
  }
}

TEST(CohortGeneration, TestContinuesTrainChronologically) {
  CohortConfig config;
  config.train_steps = 300;
  config.test_steps = 50;
  config.seed = 3;
  const auto single = generate_patient({Subset::kA, 0}, config);

  CohortConfig longer = config;
  longer.train_steps = 350;
  longer.test_steps = 0;
  // Regenerate with the same seed: the first 300 samples must be identical
  // (the split is a cut, not a re-simulation).
  GlucoseSimulator simulator(patient_parameters({Subset::kA, 0}), config.seed);
  const auto full = simulator.run(350);
  for (std::size_t t = 0; t < 300; ++t) {
    ASSERT_DOUBLE_EQ(single.train[t].cgm, full[t].cgm);
  }
  for (std::size_t t = 0; t < 50; ++t) {
    ASSERT_DOUBLE_EQ(single.test[t].cgm, full[300 + t].cgm);
  }
}

TEST(CohortGeneration, PatientsDifferFromEachOther) {
  CohortConfig config;
  config.train_steps = 200;
  config.test_steps = 10;
  const auto cohort = generate_cohort(config);
  int identical = 0;
  for (std::size_t t = 0; t < 200; ++t) {
    identical += cohort[0].train[t].cgm == cohort[1].train[t].cgm ? 1 : 0;
  }
  EXPECT_LT(identical, 20);
}

/// The design table in cohort.cpp drives the paper's Table II: A_5, B_1 and
/// B_2 must be the tightly-controlled patients.
TEST(CohortDesign, StabilityOrderingMatchesPaperClusters) {
  const auto params = cohort_parameters();
  const auto& a5 = params[5];
  const auto& b1 = params[7];
  const auto& b2 = params[8];
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i == 5 || i == 7 || i == 8) continue;
    // Less-vulnerable patients sit closer to normal and revert faster.
    EXPECT_LT(a5.basal_glucose, params[i].basal_glucose) << "vs patient " << i;
    EXPECT_LT(b2.basal_glucose, params[i].basal_glucose) << "vs patient " << i;
    EXPECT_GT(a5.return_rate, params[i].return_rate) << "vs patient " << i;
    EXPECT_GT(b1.return_rate, params[i].return_rate) << "vs patient " << i;
  }
}

class CohortSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CohortSeedSweep, TracesBoundedForAllSeeds) {
  CohortConfig config;
  config.train_steps = 300;
  config.test_steps = 60;
  config.seed = GetParam();
  for (const auto& trace : generate_cohort(config)) {
    for (const auto& s : trace.train) {
      ASSERT_GE(s.cgm, kMinGlucose);
      ASSERT_LE(s.cgm, kMaxGlucose);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CohortSeedSweep, ::testing::Values(1ULL, 7ULL, 2025ULL, 31337ULL));

}  // namespace
}  // namespace goodones::bgms
