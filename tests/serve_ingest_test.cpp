// End-to-end tests for the ingest/score-latest path: raw ticks stream into
// the daemon-owned column store once, windows are cut server-side as
// zero-copy views, and the verdicts are BITWISE-identical to the legacy
// Score frame fed the same window bytes — in process, over a live daemon
// socket, through the mesh router, and across a daemon restart on a
// persisted store. Plus the protocol edges: unknown entities, short
// histories, and the serve.store.* gauges.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/socket.hpp"
#include "core/framework.hpp"
#include "data/column_store.hpp"
#include "data/window.hpp"
#include "domains/synthtel/adapter.hpp"
#include "serve/daemon.hpp"
#include "serve/router.hpp"
#include "serve/scoring_service.hpp"

namespace goodones::serve {
namespace {

std::shared_ptr<const core::DomainAdapter> mini_fleet() {
  static const auto domain = std::make_shared<synthtel::SynthtelDomain>(2);
  return domain;
}

core::FrameworkConfig mini_config() {
  core::FrameworkConfig config = mini_fleet()->prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 1200;
  config.population.test_steps = 400;
  config.population.seed = 31;
  config.registry.forecaster.hidden = 8;
  config.registry.forecaster.head_hidden = 6;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 8;
  config.registry.aggregate_window_step = 50;
  config.profiling_campaign.window_step = 10;
  config.evaluation_campaign.window_step = 10;
  config.detector_benign_stride = 10;
  config.detectors.knn.max_points_per_class = 400;
  config.random_runs = 1;
  config.random_victims = 2;
  config.seed = 909;
  return config;
}

core::RiskProfilingFramework& framework() {
  static core::RiskProfilingFramework instance(mini_fleet(), mini_config());
  return instance;
}

std::filesystem::path unique_path(const std::string& stem, const char* suffix) {
  return std::filesystem::temp_directory_path() /
         (stem + "_" + std::to_string(::getpid()) + suffix);
}

/// One entity's recorded ticks (a slice of its held-out series keeps the
/// test fast while still rolling segments).
struct Trace {
  std::string entity;
  nn::Matrix ticks;
  std::vector<data::Regime> regimes;
};

std::vector<Trace> fleet_traces(std::size_t ticks_per_entity) {
  std::vector<Trace> traces;
  for (const auto& entity : framework().entities()) {
    Trace trace;
    trace.entity = entity.name;
    const std::size_t n = std::min(ticks_per_entity, entity.test.steps());
    trace.ticks = nn::Matrix(n, entity.test.num_channels());
    for (std::size_t t = 0; t < n; ++t) {
      for (std::size_t c = 0; c < trace.ticks.cols(); ++c) {
        trace.ticks(t, c) = entity.test.values(t, c);
      }
    }
    trace.regimes.assign(entity.test.regimes.begin(), entity.test.regimes.begin() + n);
    traces.push_back(std::move(trace));
  }
  return traces;
}

/// The legacy framing of the store's `count` most recent windows: same
/// bytes, same regimes (the window's LAST row — the view contract), re-sent
/// explicitly. This is the request ScoreLatest must match bitwise.
ScoreRequest legacy_request(const Trace& trace, std::size_t seq_len, std::size_t count) {
  ScoreRequest request;
  request.entity = trace.entity;
  const std::size_t total = trace.ticks.rows();
  for (std::size_t end = total - count; end < total; ++end) {
    TelemetryWindow window;
    window.regime = trace.regimes[end];
    window.features = nn::Matrix(seq_len, trace.ticks.cols());
    for (std::size_t t = 0; t < seq_len; ++t) {
      for (std::size_t c = 0; c < trace.ticks.cols(); ++c) {
        window.features(t, c) = trace.ticks(end + 1 - seq_len + t, c);
      }
    }
    request.windows.push_back(std::move(window));
  }
  return request;
}

void expect_identical_response(const ScoreResponse& a, const ScoreResponse& b) {
  EXPECT_EQ(a.entity_index, b.entity_index);
  EXPECT_EQ(a.cluster, b.cluster);
  EXPECT_EQ(a.generation, b.generation);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t w = 0; w < a.windows.size(); ++w) {
    // Bitwise: the store path must not cost even one ulp.
    EXPECT_EQ(a.windows[w].forecast, b.windows[w].forecast) << "w=" << w;
    EXPECT_EQ(a.windows[w].residual, b.windows[w].residual) << "w=" << w;
    EXPECT_EQ(a.windows[w].observed_state, b.windows[w].observed_state) << "w=" << w;
    EXPECT_EQ(a.windows[w].predicted_state, b.windows[w].predicted_state) << "w=" << w;
    EXPECT_EQ(a.windows[w].anomaly_score, b.windows[w].anomaly_score) << "w=" << w;
    EXPECT_EQ(a.windows[w].flagged, b.windows[w].flagged) << "w=" << w;
    EXPECT_EQ(a.windows[w].risk, b.windows[w].risk) << "w=" << w;
  }
}

std::uint64_t stat_value(const wire::StatsSnapshot& stats, const std::string& name) {
  for (const auto& [key, value] : stats) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "missing stat " << name;
  return 0;
}

TEST(ServeIngest, ScoreViewsBitwiseMatchesLegacyScoreInProcess) {
  auto& fw = framework();
  const ScoringService service(build_serving_model(fw, detect::DetectorKind::kKnn),
                               {.threads = 2});

  // Small capacity: the latest windows straddle segment seals.
  data::ColumnStoreConfig store_config;
  store_config.segment_capacity = 17;
  data::ColumnStore store(store_config, fw.domain().spec().num_channels);

  constexpr std::size_t kSeqLen = data::kDefaultSeqLen;
  constexpr std::size_t kCount = 24;
  for (const Trace& trace : fleet_traces(60)) {
    store.append_block(trace.entity, trace.ticks, trace.regimes);
    const std::vector<data::WindowView> views =
        store.latest_windows(trace.entity, kSeqLen, kCount);
    const ScoreResponse from_views =
        service.score_views(trace.entity, std::span<const data::WindowView>(views));
    const ScoreResponse from_legacy = service.score(legacy_request(trace, kSeqLen, kCount));
    expect_identical_response(from_legacy, from_views);
    ASSERT_EQ(from_views.windows.size(), kCount);
  }
}

TEST(ServeIngest, ScoreLatestBitwiseMatchesLegacyScoreThroughDaemon) {
  auto& fw = framework();
  DaemonConfig config;
  const std::filesystem::path socket_path = unique_path("go_ingest_d", ".sock");
  config.listen = common::Endpoint::unix_socket(socket_path);
  config.registry_root = unique_path("go_ingest_d", "_reg");
  config.adaptive_enabled = false;
  config.store_segment_capacity = 19;  // roll segments inside the test
  std::filesystem::remove_all(config.registry_root);
  Daemon daemon(build_serving_model(fw, detect::DetectorKind::kKnn), config);
  daemon.start();
  DaemonClient client(socket_path);

  constexpr std::size_t kCount = 8;
  for (const Trace& trace : fleet_traces(50)) {
    wire::IngestRequest ingest;
    ingest.entity = trace.entity;
    ingest.ticks = trace.ticks;
    ingest.regimes = trace.regimes;
    const wire::IngestReply reply = client.ingest(ingest);
    EXPECT_EQ(reply.accepted, trace.ticks.rows());
    EXPECT_EQ(reply.total_ticks, trace.ticks.rows());

    wire::ScoreLatestRequest latest;
    latest.entity = trace.entity;
    latest.count = kCount;
    const ScoreResponse from_store = client.score_latest(latest);
    const ScoreResponse from_legacy =
        client.score(legacy_request(trace, data::kDefaultSeqLen, kCount));
    expect_identical_response(from_legacy, from_store);
    ASSERT_EQ(from_store.windows.size(), kCount);
  }

  // The store gauges ride the Stats frame.
  const wire::StatsSnapshot stats = client.stats();
  EXPECT_EQ(stat_value(stats, "serve.store.entities"), fw.entities().size());
  EXPECT_EQ(stat_value(stats, "serve.store.ticks"), fw.entities().size() * 50);
  EXPECT_GE(stat_value(stats, "serve.store.segments"), fw.entities().size() * 2);
  EXPECT_GE(stat_value(stats, "serve.daemon.ingests"), fw.entities().size());

  // Unknown entity and short history surface as typed BadRequest, and the
  // connection stays usable afterwards.
  wire::IngestRequest bogus;
  bogus.entity = "NO_SUCH_NODE";
  bogus.ticks = nn::Matrix(1, fw.domain().spec().num_channels);
  bogus.regimes = {data::Regime::kBaseline};
  EXPECT_THROW((void)client.ingest(bogus), common::PreconditionError);
  wire::ScoreLatestRequest too_many;
  too_many.entity = fw.entities().front().name;
  too_many.count = 1000;  // far more windows than 50 ticks hold
  EXPECT_THROW((void)client.score_latest(too_many), common::PreconditionError);
  EXPECT_EQ(client.health().generation, daemon.generation());

  daemon.stop();
  std::filesystem::remove_all(config.registry_root);
}

TEST(ServeIngest, PersistedStoreServesIdenticalVerdictsAcrossRestart) {
  auto& fw = framework();
  ServingModel bundle = build_serving_model(fw, detect::DetectorKind::kKnn);
  const std::filesystem::path store_root = unique_path("go_ingest_store", "_col");
  const std::filesystem::path registry_root = unique_path("go_ingest_store", "_reg");
  std::filesystem::remove_all(store_root);
  std::filesystem::remove_all(registry_root);

  DaemonConfig config;
  config.listen = common::Endpoint::unix_socket(unique_path("go_ingest_store", ".sock"));
  config.registry_root = registry_root;
  config.adaptive_enabled = false;
  config.store_root = store_root;
  config.store_segment_capacity = 13;

  const std::vector<Trace> traces = fleet_traces(40);
  std::vector<ScoreResponse> before;
  {
    Daemon daemon(clone_serving_model(bundle), config);
    daemon.start();
    DaemonClient client(config.listen);
    for (const Trace& trace : traces) {
      wire::IngestRequest ingest;
      ingest.entity = trace.entity;
      ingest.ticks = trace.ticks;
      ingest.regimes = trace.regimes;
      (void)client.ingest(ingest);
      wire::ScoreLatestRequest latest;
      latest.entity = trace.entity;
      latest.count = 4;
      before.push_back(client.score_latest(latest));
    }
    daemon.stop();  // destructor flushes the partial active segments
  }

  // A fresh daemon on the same root serves the same history: identical
  // verdicts without re-ingesting a single tick.
  Daemon daemon(std::move(bundle), config);
  daemon.start();
  DaemonClient client(config.listen);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(daemon.store().ticks(traces[i].entity), traces[i].ticks.rows());
    wire::ScoreLatestRequest latest;
    latest.entity = traces[i].entity;
    latest.count = 4;
    expect_identical_response(before[i], client.score_latest(latest));
  }
  daemon.stop();
  std::filesystem::remove_all(store_root);
  std::filesystem::remove_all(registry_root);
}

TEST(ServeIngest, IngestAndScoreLatestRouteThroughMeshBitwise) {
  auto& fw = framework();
  ServingModel bundle = build_serving_model(fw, detect::DetectorKind::kKnn);
  const std::vector<std::string> entities = bundle.entity_names;

  // Two shards, each loaded with the FULL bundle so any ring placement is
  // valid — this test pins routing + bitwise transport of the new frames;
  // serve_mesh_test covers sliced bundles.
  RouterConfig router_config;
  router_config.listen = common::Endpoint::tcp("127.0.0.1", 0);
  router_config.vnodes = 64;
  router_config.health_interval_ms = 50;
  router_config.accept_poll_ms = 20;

  std::vector<std::filesystem::path> roots;
  std::vector<std::unique_ptr<Daemon>> shards;
  const char* const kShardNames[2] = {"alpha", "beta"};
  for (std::size_t s = 0; s < 2; ++s) {
    roots.push_back(unique_path(std::string("go_ingest_mesh_s") + kShardNames[s], "_reg"));
    std::filesystem::remove_all(roots[s]);
    DaemonConfig config;
    config.listen = common::Endpoint::tcp("127.0.0.1", 0);
    config.registry_root = roots[s];
    config.adaptive_enabled = false;
    config.accept_poll_ms = 20;
    shards.push_back(std::make_unique<Daemon>(clone_serving_model(bundle), config));
    shards[s]->start();
    router_config.backends.push_back({kShardNames[s], shards[s]->endpoint()});
  }
  Router router(router_config);
  router.start();
  DaemonClient client(router.endpoint());

  constexpr std::size_t kCount = 6;
  for (const Trace& trace : fleet_traces(30)) {
    wire::IngestRequest ingest;
    ingest.entity = trace.entity;
    ingest.ticks = trace.ticks;
    ingest.regimes = trace.regimes;
    const wire::IngestReply reply = client.ingest(ingest);
    EXPECT_EQ(reply.accepted, trace.ticks.rows());

    // The entity's ticks landed on exactly its owning shard — ingest is
    // routed by the same consistent hash as scoring.
    const std::string owner = router.shard_for(trace.entity);
    for (std::size_t s = 0; s < 2; ++s) {
      const std::uint64_t expected =
          owner == kShardNames[s] ? trace.ticks.rows() : 0u;
      EXPECT_EQ(shards[s]->store().ticks(trace.entity), expected)
          << trace.entity << " on " << kShardNames[s];
    }

    wire::ScoreLatestRequest latest;
    latest.entity = trace.entity;
    latest.count = kCount;
    const ScoreResponse from_mesh = client.score_latest(latest);
    const ScoreResponse from_legacy =
        client.score(legacy_request(trace, data::kDefaultSeqLen, kCount));
    expect_identical_response(from_legacy, from_mesh);
  }

  router.stop();
  for (auto& shard : shards) shard->stop();
  for (const auto& root : roots) std::filesystem::remove_all(root);
}

#ifdef GOODONES_CLIENT_BIN
TEST(ServeIngest, CliClientIngestsAndScoresLatest) {
  auto& fw = framework();
  DaemonConfig config;
  const std::filesystem::path socket_path = unique_path("go_ingest_cli", ".sock");
  config.listen = common::Endpoint::unix_socket(socket_path);
  config.registry_root = unique_path("go_ingest_cli", "_reg");
  config.adaptive_enabled = false;
  std::filesystem::remove_all(config.registry_root);
  Daemon daemon(build_serving_model(fw, detect::DetectorKind::kKnn), config);
  daemon.start();

  // A ticks CSV: channel columns only, one row per tick.
  const Trace trace = fleet_traces(20).front();
  std::vector<std::string> header;
  for (std::size_t c = 0; c < trace.ticks.cols(); ++c) {
    header.push_back("ch" + std::to_string(c));
  }
  common::CsvTable csv(header);
  for (std::size_t t = 0; t < trace.ticks.rows(); ++t) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < trace.ticks.cols(); ++c) {
      std::ostringstream value;
      value.precision(17);
      value << trace.ticks(t, c);
      row.push_back(value.str());
    }
    csv.add_row(std::move(row));
  }
  const auto csv_path = unique_path("go_ingest_cli", ".csv");
  const auto out_path = unique_path("go_ingest_cli", ".out");
  csv.write(csv_path);

  const std::string base = std::string(GOODONES_CLIENT_BIN) + " " + socket_path.string();
  ASSERT_EQ(std::system((base + " ingest " + trace.entity + " " + csv_path.string() +
                         " > " + out_path.string())
                            .c_str()),
            0);
  {
    std::ifstream out(out_path);
    std::stringstream captured;
    captured << out.rdbuf();
    EXPECT_NE(captured.str().find("ingested 20 ticks"), std::string::npos)
        << captured.str();
  }
  ASSERT_EQ(std::system((base + " score-latest " + trace.entity + " 2 > " +
                         out_path.string())
                            .c_str()),
            0);
  {
    std::ifstream out(out_path);
    std::stringstream captured;
    captured << out.rdbuf();
    EXPECT_NE(captured.str().find("window 1"), std::string::npos) << captured.str();
    EXPECT_NE(captured.str().find("generation 0"), std::string::npos) << captured.str();
  }

  daemon.stop();
  std::filesystem::remove(csv_path);
  std::filesystem::remove(out_path);
  std::filesystem::remove_all(config.registry_root);
}
#endif  // GOODONES_CLIENT_BIN

}  // namespace
}  // namespace goodones::serve
