#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "domains/bgms/glucose_state.hpp"
#include "risk/profile.hpp"
#include "risk/severity.hpp"

namespace goodones::risk {
namespace {

using StateLabel = data::StateLabel;
using bgms::glycemic_thresholds;

TEST(Severity, TableMatchesPaperTableI) {
  const auto& table = severity_table();
  ASSERT_EQ(table.size(), 6u);
  EXPECT_DOUBLE_EQ(table[0].coefficient, 64.0);  // Hypo -> Hyper
  EXPECT_EQ(table[0].benign, StateLabel::kLow);
  EXPECT_EQ(table[0].adversarial, StateLabel::kHigh);
  EXPECT_DOUBLE_EQ(table[1].coefficient, 32.0);  // Normal -> Hyper
  EXPECT_DOUBLE_EQ(table[2].coefficient, 16.0);  // Hypo -> Normal
  EXPECT_DOUBLE_EQ(table[3].coefficient, 8.0);   // Hyper -> Hypo
  EXPECT_DOUBLE_EQ(table[4].coefficient, 4.0);   // Hyper -> Normal
  EXPECT_DOUBLE_EQ(table[5].coefficient, 2.0);   // Normal -> Hypo
}

TEST(Severity, CoefficientsAreExponential) {
  const auto& table = severity_table();
  for (std::size_t i = 0; i + 1 < table.size(); ++i) {
    EXPECT_DOUBLE_EQ(table[i].coefficient, 2.0 * table[i + 1].coefficient);
  }
}

TEST(Severity, LookupMatchesTable) {
  EXPECT_DOUBLE_EQ(severity_coefficient(StateLabel::kLow, StateLabel::kHigh), 64.0);
  EXPECT_DOUBLE_EQ(severity_coefficient(StateLabel::kNormal, StateLabel::kHigh), 32.0);
  EXPECT_DOUBLE_EQ(severity_coefficient(StateLabel::kNormal, StateLabel::kLow), 2.0);
}

TEST(Severity, IdentityTransitionsCarryUnitWeight) {
  for (const auto state :
       {StateLabel::kLow, StateLabel::kNormal, StateLabel::kHigh}) {
    EXPECT_DOUBLE_EQ(severity_coefficient(state, state), 1.0);
  }
}

TEST(Severity, WorstCaseIsHypoToHyper) {
  const double worst = severity_coefficient(StateLabel::kLow, StateLabel::kHigh);
  for (const auto& entry : severity_table()) {
    EXPECT_LE(entry.coefficient, worst);
  }
}

TEST(Risk, DeviationMagnitudeIsSquaredDifference) {
  EXPECT_DOUBLE_EQ(deviation_magnitude(90.0, 210.0), 120.0 * 120.0);
  EXPECT_DOUBLE_EQ(deviation_magnitude(210.0, 90.0), 120.0 * 120.0);  // symmetric
  EXPECT_DOUBLE_EQ(deviation_magnitude(100.0, 100.0), 0.0);
}

attack::WindowOutcome make_outcome(double benign_pred, double adv_pred,
                                   data::Regime regime) {
  attack::WindowOutcome outcome;
  outcome.benign.regime = regime;
  outcome.attack.benign_prediction = benign_pred;
  outcome.attack.adversarial_prediction = adv_pred;
  outcome.benign_predicted_state = glycemic_thresholds().classify(benign_pred, regime);
  outcome.adversarial_predicted_state = glycemic_thresholds().classify(adv_pred, regime);
  return outcome;
}

TEST(Risk, InstantaneousRiskCombinesSeverityAndDeviation) {
  // Normal(100) -> fasting Hyper(200): S=32, Z=100^2.
  const auto outcome = make_outcome(100.0, 200.0, data::Regime::kBaseline);
  EXPECT_DOUBLE_EQ(instantaneous_risk(outcome), 32.0 * 100.0 * 100.0);
}

TEST(Risk, HypoToHyperIsWorst) {
  const auto hypo = make_outcome(60.0, 200.0, data::Regime::kBaseline);
  const auto normal = make_outcome(100.0, 240.0, data::Regime::kBaseline);
  // Same deviation magnitude (140), hypo origin doubles the severity.
  EXPECT_DOUBLE_EQ(instantaneous_risk(hypo), 64.0 * 140.0 * 140.0);
  EXPECT_DOUBLE_EQ(instantaneous_risk(normal), 32.0 * 140.0 * 140.0);
  EXPECT_GT(instantaneous_risk(hypo), instantaneous_risk(normal));
}

TEST(Risk, FailedAttackSmallDeviationLowRisk) {
  const auto outcome = make_outcome(100.0, 105.0, data::Regime::kBaseline);
  EXPECT_DOUBLE_EQ(instantaneous_risk(outcome), 1.0 * 25.0);  // identity S=1
}

TEST(Profile, BuildPreservesOrderAndLength) {
  std::vector<attack::WindowOutcome> outcomes;
  outcomes.push_back(make_outcome(100.0, 200.0, data::Regime::kBaseline));
  outcomes.push_back(make_outcome(100.0, 100.0, data::Regime::kBaseline));
  outcomes.push_back(make_outcome(60.0, 200.0, data::Regime::kBaseline));

  const RiskProfile profile = build_profile("A_1", outcomes);
  ASSERT_EQ(profile.values.size(), 3u);
  EXPECT_DOUBLE_EQ(profile.values[0], 32.0 * 100.0 * 100.0);
  EXPECT_DOUBLE_EQ(profile.values[1], 0.0);
  EXPECT_DOUBLE_EQ(profile.values[2], 64.0 * 140.0 * 140.0);
  EXPECT_DOUBLE_EQ(profile.peak(), 64.0 * 140.0 * 140.0);
  EXPECT_GT(profile.mean(), 0.0);
}

TEST(Profile, LogScalingCompresses) {
  RiskProfile profile;
  profile.values = {0.0, std::exp(1.0) - 1.0, 1e6};
  const auto scaled = profile.log_scaled();
  EXPECT_DOUBLE_EQ(scaled[0], 0.0);
  EXPECT_NEAR(scaled[1], 1.0, 1e-12);
  EXPECT_LT(scaled[2], 15.0);
}

TEST(Profile, AlignTruncatesToShortest) {
  std::vector<RiskProfile> profiles(3);
  profiles[0].values = {1.0, 2.0, 3.0, 4.0};
  profiles[1].values = {1.0, 2.0};
  profiles[2].values = {5.0, 6.0, 7.0};
  const auto aligned = align_profiles(std::move(profiles));
  for (const auto& p : aligned) EXPECT_EQ(p.values.size(), 2u);
  EXPECT_DOUBLE_EQ(aligned[2].values[1], 6.0);
}

TEST(Profile, AlignRejectsEmptyInputs) {
  EXPECT_THROW((void)align_profiles({}), common::PreconditionError);
  std::vector<RiskProfile> with_empty(2);
  with_empty[0].values = {1.0};
  EXPECT_THROW((void)align_profiles(std::move(with_empty)), common::PreconditionError);
}

/// Property sweep: risk must be monotone in the adversarial deviation.
class RiskMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(RiskMonotonicity, LargerDeviationNeverLowersRisk) {
  const double base_pred = GetParam();
  double previous = -1.0;
  for (double adv = base_pred; adv <= 499.0; adv += 25.0) {
    const auto outcome = make_outcome(base_pred, adv, data::Regime::kBaseline);
    const double risk = instantaneous_risk(outcome);
    ASSERT_GE(risk, previous) << "adv=" << adv;
    previous = risk;
  }
}

INSTANTIATE_TEST_SUITE_P(BenignLevels, RiskMonotonicity,
                         ::testing::Values(60.0, 80.0, 100.0, 120.0));

}  // namespace
}  // namespace goodones::risk
