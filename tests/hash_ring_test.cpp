// Property tests for the consistent-hash ring (serve/hash_ring.hpp) — the
// mesh's placement function. Three properties carry the router's failure
// semantics and are pinned here over 1k synthetic entities:
//
//   * Determinism: placement depends only on (shard set, vnodes, key) —
//     never on insertion order or process. The mesh test pre-slices
//     bundles per shard BEFORE the router exists; this is the property
//     that makes that legal.
//   * Bounded movement: adding a shard steals keys only FOR the new shard
//     (≈ K/(N+1) of them); removing one moves only ITS keys. Unrelated
//     keys never remap.
//   * Balance: with the default 128 vnodes, the heaviest shard stays
//     within a documented factor of fair share (theory: relative spread
//     ~1/sqrt(vnodes) ≈ 9%; the pinned factor below is generous).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "serve/hash_ring.hpp"

namespace goodones::serve {
namespace {

std::vector<std::string> synthetic_entities(std::size_t n) {
  std::vector<std::string> entities;
  entities.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    entities.push_back("SA_" + std::to_string(i));  // fleet naming convention
  }
  return entities;
}

constexpr std::size_t kEntities = 1000;

TEST(HashRing, PlacementIsDeterministicAndInsertionOrderIndependent) {
  const auto entities = synthetic_entities(kEntities);

  HashRing forward;
  for (const char* shard : {"shard-a", "shard-b", "shard-c"}) forward.add(shard);

  HashRing reversed;
  for (const char* shard : {"shard-c", "shard-b", "shard-a"}) reversed.add(shard);

  HashRing rebuilt;  // a third history: add, remove, re-add
  rebuilt.add("shard-b");
  rebuilt.add("doomed");
  rebuilt.add("shard-a");
  ASSERT_TRUE(rebuilt.remove("doomed"));
  rebuilt.add("shard-c");

  for (const auto& entity : entities) {
    const std::string owner = forward.owner(entity);
    EXPECT_EQ(owner, reversed.owner(entity)) << entity;
    EXPECT_EQ(owner, rebuilt.owner(entity)) << entity;
    // Stable across repeated queries (pure function, no internal state).
    EXPECT_EQ(owner, forward.owner(entity)) << entity;
  }
}

TEST(HashRing, BalanceWithinDocumentedFactorAcross1kEntities) {
  const auto entities = synthetic_entities(kEntities);
  for (const std::size_t n_shards : {2u, 3u, 5u, 8u}) {
    HashRing ring;  // default 128 vnodes — the mesh default
    for (std::size_t s = 0; s < n_shards; ++s) ring.add("shard-" + std::to_string(s));

    std::map<std::string, std::size_t> load;
    for (const auto& entity : entities) ++load[ring.owner(entity)];

    const double fair = static_cast<double>(kEntities) / static_cast<double>(n_shards);
    for (const auto& [shard, count] : load) {
      // Documented factor: no shard above 1.5x or below 0.5x fair share at
      // 128 vnodes (theory predicts ~±9% spread; 1.5x leaves slack for the
      // 1k-key sampling noise on top and still catches a broken hash,
      // which lands everything on one shard).
      EXPECT_LT(static_cast<double>(count), 1.5 * fair) << shard << " n=" << n_shards;
      EXPECT_GT(static_cast<double>(count), 0.5 * fair) << shard << " n=" << n_shards;
    }
    EXPECT_EQ(load.size(), n_shards) << "every shard must own something";
  }
}

TEST(HashRing, AddingAShardOnlyMovesKeysToTheNewShard) {
  const auto entities = synthetic_entities(kEntities);
  const std::size_t n_before = 4;

  HashRing ring;
  for (std::size_t s = 0; s < n_before; ++s) ring.add("shard-" + std::to_string(s));
  std::map<std::string, std::string> before;
  for (const auto& entity : entities) before[entity] = ring.owner(entity);

  ring.add("shard-new");
  std::size_t moved = 0;
  for (const auto& entity : entities) {
    const std::string& owner = ring.owner(entity);
    if (owner != before[entity]) {
      ++moved;
      // The bounded-movement property: a remapped key may only have moved
      // TO the new shard. Any other move would churn entities between
      // shards that had nothing to do with the change.
      EXPECT_EQ(owner, "shard-new") << entity << " moved " << before[entity] << " -> "
                                    << owner;
    }
  }
  // Expected movement is K/(N+1) = 200; pin a generous ceiling (2x) and a
  // floor (the new shard must actually take real load).
  EXPECT_LT(moved, 2 * kEntities / (n_before + 1)) << "excessive key movement";
  EXPECT_GT(moved, kEntities / (4 * (n_before + 1))) << "new shard took almost nothing";
}

TEST(HashRing, RemovingAShardOnlyMovesItsOwnKeys) {
  const auto entities = synthetic_entities(kEntities);

  HashRing ring;
  for (std::size_t s = 0; s < 5; ++s) ring.add("shard-" + std::to_string(s));
  std::map<std::string, std::string> before;
  for (const auto& entity : entities) before[entity] = ring.owner(entity);

  ASSERT_TRUE(ring.remove("shard-2"));
  EXPECT_FALSE(ring.remove("shard-2")) << "second remove must report absence";

  for (const auto& entity : entities) {
    const std::string& owner = ring.owner(entity);
    if (before[entity] == "shard-2") {
      EXPECT_NE(owner, "shard-2") << entity;  // orphans must re-home
    } else {
      // Everyone else's keys stay put — the drain-a-shard guarantee.
      EXPECT_EQ(owner, before[entity]) << entity;
    }
  }
}

TEST(HashRing, EdgesAndPreconditions) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW((void)ring.owner("SA_0"), common::PreconditionError);

  ring.add("only");
  EXPECT_EQ(ring.owner("anything"), "only");
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_TRUE(ring.contains("only"));
  EXPECT_THROW(ring.add("only"), common::PreconditionError);  // duplicate

  const std::vector<std::string> listed = ring.shards();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed.front(), "only");

  EXPECT_TRUE(ring.remove("only"));
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW((void)ring.owner("anything"), common::PreconditionError);
}

}  // namespace
}  // namespace goodones::serve
