// Unit tests for the transport seam (common/socket.hpp): Endpoint parsing,
// the TCP listener (ephemeral-port resolution, byte round trips, receive
// timeouts) and connect_with_backoff — a dial that starts before the
// listener exists must succeed once the listener appears, and one whose
// peer never appears must fail after exactly the configured attempt budget.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/error.hpp"
#include "common/socket.hpp"

namespace goodones::common {
namespace {

using namespace std::chrono_literals;

TEST(Endpoint, ParsesBothTransportsAndRoundTrips) {
  const Endpoint unix_ep = Endpoint::parse("unix:/run/goodones.sock");
  EXPECT_EQ(unix_ep.kind(), Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.path(), "/run/goodones.sock");
  EXPECT_EQ(unix_ep.to_string(), "unix:/run/goodones.sock");
  EXPECT_EQ(Endpoint::parse(unix_ep.to_string()), unix_ep);

  const Endpoint tcp_ep = Endpoint::parse("tcp:127.0.0.1:7461");
  EXPECT_EQ(tcp_ep.kind(), Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp_ep.host(), "127.0.0.1");
  EXPECT_EQ(tcp_ep.port(), 7461);
  EXPECT_EQ(Endpoint::parse(tcp_ep.to_string()), tcp_ep);

  // The pre-mesh CLI shorthand: a bare path is a unix endpoint.
  const Endpoint bare = Endpoint::parse("/tmp/bare.sock");
  EXPECT_EQ(bare.kind(), Endpoint::Kind::kUnix);
  EXPECT_EQ(bare.path(), "/tmp/bare.sock");

  EXPECT_TRUE(Endpoint().empty());
  EXPECT_FALSE(tcp_ep.empty());
}

TEST(Endpoint, RejectsMalformedText) {
  EXPECT_THROW((void)Endpoint::parse(""), SocketError);
  EXPECT_THROW((void)Endpoint::parse("unix:"), SocketError);
  EXPECT_THROW((void)Endpoint::parse("tcp:127.0.0.1"), SocketError);       // no port
  EXPECT_THROW((void)Endpoint::parse("tcp:host:notaport"), SocketError);
  EXPECT_THROW((void)Endpoint::parse("tcp:host:65536"), SocketError);      // > u16
  EXPECT_THROW((void)Endpoint::parse("tcp::7461"), SocketError);           // no host
}

TEST(TcpListener, EphemeralPortResolvesAndBytesRoundTrip) {
  // Port 0: the kernel picks; the listener must report the real port.
  TcpListener listener("127.0.0.1", 0);
  const Endpoint& bound = listener.endpoint();
  ASSERT_EQ(bound.kind(), Endpoint::Kind::kTcp);
  ASSERT_GT(bound.port(), 0) << "ephemeral port must be resolved after bind";

  Socket client = connect_tcp(bound.host(), bound.port());
  Socket server = listener.accept(/*timeout_ms=*/2000);
  ASSERT_TRUE(client.valid());
  ASSERT_TRUE(server.valid());

  const std::string message = "mesh bytes, either direction";
  client.write_all(message.data(), message.size());
  std::string echoed(message.size(), '\0');
  ASSERT_EQ(server.read_exact(echoed.data(), echoed.size()), Socket::ReadResult::kOk);
  EXPECT_EQ(echoed, message);

  server.write_all(echoed.data(), echoed.size());
  std::string back(message.size(), '\0');
  ASSERT_EQ(client.read_exact(back.data(), back.size()), Socket::ReadResult::kOk);
  EXPECT_EQ(back, message);

  // Clean close is a kClosed read, not an error.
  client.close();
  char byte;
  EXPECT_EQ(server.read_exact(&byte, 1), Socket::ReadResult::kClosed);
}

TEST(TcpListener, AcceptTimesOutWhenNobodyDials) {
  TcpListener listener("127.0.0.1", 0);
  const auto start = std::chrono::steady_clock::now();
  Socket socket = listener.accept(/*timeout_ms=*/50);
  EXPECT_FALSE(socket.valid());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 40ms);
}

TEST(Socket, RecvTimeoutSurfacesAsSocketError) {
  TcpListener listener("127.0.0.1", 0);
  Socket client = connect_tcp("127.0.0.1", listener.endpoint().port());
  Socket server = listener.accept(2000);
  ASSERT_TRUE(server.valid());

  client.set_recv_timeout_ms(80);
  char byte;
  // The peer stays silent (but connected): the timeout must throw, not wedge.
  EXPECT_THROW((void)client.read_exact(&byte, 1), SocketError);
}

TEST(ConnectWithBackoff, SucceedsWhenTheListenerAppearsLate) {
  // Reserve a port, then close the listener so the first dials fail.
  Endpoint target;
  {
    TcpListener reserve("127.0.0.1", 0);
    target = reserve.endpoint();
  }

  BackoffConfig backoff;
  backoff.initial_delay_ms = 25;
  backoff.max_delay_ms = 100;
  backoff.max_attempts = 40;  // plenty: the listener appears ~120ms in
  backoff.seed = 7;

  std::thread late_listener([&] {
    std::this_thread::sleep_for(120ms);
    TcpListener listener(target.host(), target.port());
    Socket accepted = listener.accept(/*timeout_ms=*/5000);
    EXPECT_TRUE(accepted.valid());
    const char ack = '!';
    accepted.write_all(&ack, 1);
  });

  Socket socket = connect_with_backoff(target, backoff);
  ASSERT_TRUE(socket.valid());
  char ack = '\0';
  EXPECT_EQ(socket.read_exact(&ack, 1), Socket::ReadResult::kOk);
  EXPECT_EQ(ack, '!');
  late_listener.join();
}

TEST(ConnectWithBackoff, ExhaustsItsBoundedAttemptBudget) {
  Endpoint target;
  {
    TcpListener reserve("127.0.0.1", 0);
    target = reserve.endpoint();
  }

  BackoffConfig backoff;
  backoff.initial_delay_ms = 5;
  backoff.max_delay_ms = 10;
  backoff.max_attempts = 3;

  const auto start = std::chrono::steady_clock::now();
  try {
    (void)connect_with_backoff(target, backoff);
    FAIL() << "nothing listens there; the dial must throw";
  } catch (const SocketError& error) {
    // The error names the attempt budget it burned (operator-facing).
    EXPECT_NE(std::string(error.what()).find("3 attempts"), std::string::npos)
        << error.what();
  }
  // Bounded: two sleeps of <= 10ms plus connect overhead, not an unbounded
  // retry loop.
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
}

TEST(ConnectWithBackoff, JitterIsDeterministicPerSeed) {
  // Same (endpoint, seed) => same schedule => same total elapsed order of
  // magnitude; different seeds must not break the attempt budget either.
  Endpoint target;
  {
    TcpListener reserve("127.0.0.1", 0);
    target = reserve.endpoint();
  }
  for (const std::uint64_t seed : {0ull, 1ull, 0xdeadbeefull}) {
    BackoffConfig backoff;
    backoff.initial_delay_ms = 1;
    backoff.max_delay_ms = 2;
    backoff.max_attempts = 2;
    backoff.seed = seed;
    EXPECT_THROW((void)connect_with_backoff(target, backoff), SocketError);
  }
}

TEST(UnixListener, RemovesSocketFileOnDestruction) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("go_sock_unit_" + std::to_string(::getpid()) + ".sock");
  {
    UnixListener listener(path);
    EXPECT_TRUE(std::filesystem::exists(path));
    Socket client = connect_unix(path);
    Socket server = listener.accept(2000);
    ASSERT_TRUE(server.valid());
    const char byte = 'x';
    client.write_all(&byte, 1);
    char got = '\0';
    ASSERT_EQ(server.read_exact(&got, 1), Socket::ReadResult::kOk);
    EXPECT_EQ(got, 'x');
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(MakeListener, PicksTheTransportFromTheEndpoint) {
  const auto tcp_listener = make_listener(Endpoint::tcp("127.0.0.1", 0));
  EXPECT_EQ(tcp_listener->endpoint().kind(), Endpoint::Kind::kTcp);
  EXPECT_GT(tcp_listener->endpoint().port(), 0);

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("go_sock_seam_" + std::to_string(::getpid()) + ".sock");
  const auto unix_listener = make_listener(Endpoint::unix_socket(path));
  EXPECT_EQ(unix_listener->endpoint().kind(), Endpoint::Kind::kUnix);

  EXPECT_THROW((void)make_listener(Endpoint()), SocketError);
}

}  // namespace
}  // namespace goodones::common
