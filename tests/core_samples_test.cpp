// Tests for the framework's sample-granularity data assembly: benign
// telemetry samples with one-hour context, manipulated-sample extraction,
// and the detector-granularity dispatch in evaluate_strategy.
#include <gtest/gtest.h>

#include <cmath>

#include "core/framework.hpp"
#include "detect/factory.hpp"
#include "domains/bgms/adapter.hpp"

namespace goodones::core {
namespace {

std::shared_ptr<const DomainAdapter> bgms_domain() {
  static const auto domain = std::make_shared<bgms::BgmsDomain>();
  return domain;
}

FrameworkConfig sample_test_config() {
  FrameworkConfig config = bgms_domain()->prepare(FrameworkConfig::fast());
  config.population.train_steps = 1200;
  config.population.test_steps = 400;
  config.registry.forecaster.hidden = 10;
  config.registry.forecaster.head_hidden = 8;
  config.registry.forecaster.epochs = 3;
  config.registry.train_window_step = 6;
  config.registry.aggregate_window_step = 40;
  config.profiling_campaign.window_step = 10;
  config.evaluation_campaign.window_step = 10;
  config.profiling_campaign.attack.harm_threshold = 220.0;
  config.evaluation_campaign.attack.harm_threshold = 220.0;
  config.detector_benign_stride = 10;
  config.detectors.ocsvm.max_train_points = 300;
  config.seed = 777;
  return config;
}

RiskProfilingFramework& sample_framework() {
  static RiskProfilingFramework framework(bgms_domain(), sample_test_config());
  return framework;
}

TEST(Samples, BenignSamplesHaveContextColumns) {
  auto& framework = sample_framework();
  const auto samples = framework.benign_train_samples(0);
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    EXPECT_EQ(s.rows(), 1u);
    EXPECT_EQ(s.cols(), bgms::kNumChannels + 2);
    for (const double v : s.row(0)) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Samples, StrideControlsCount) {
  auto& framework = sample_framework();
  const auto samples = framework.benign_test_samples(3);
  // test series has 400 steps at stride 10.
  EXPECT_EQ(samples.size(), 40u);
}

TEST(Samples, ContextSumsAreNonNegativeAndBoundedByMeals) {
  auto& framework = sample_framework();
  for (const auto& s : framework.benign_train_samples(2)) {
    // Columns 4 and 5 are scaled 1-hour carb and bolus sums; the scaler maps
    // zero to >= 0 and sums are never negative.
    EXPECT_GE(s(0, 4), -1e-12);
    EXPECT_GE(s(0, 5), -1e-12);
  }
}

TEST(Samples, MaliciousSamplesOnlyFromSuccessfulAttacks) {
  auto& framework = sample_framework();
  std::size_t total = 0;
  for (std::size_t p = 0; p < framework.entities().size(); ++p) {
    const auto& outcomes = framework.test_outcomes(p);
    std::size_t expected = 0;
    for (const auto& o : outcomes) {
      if (!o.attack.success) continue;
      for (std::size_t t = 0; t < o.attack.adversarial_features.rows(); ++t) {
        expected += o.attack.adversarial_features(t, bgms::kCgm) !=
                            o.benign.features(t, bgms::kCgm)
                        ? 1
                        : 0;
      }
    }
    const auto samples = framework.malicious_samples(outcomes);
    EXPECT_EQ(samples.size(), expected) << "patient " << p;
    total += samples.size();
  }
  EXPECT_GT(total, 0u);
}

TEST(Samples, MaliciousCgmIsInsideConstraintBox) {
  auto& framework = sample_framework();
  const auto& scaler = framework.detector_scaler();
  const double lo = scaler.transform_value(125.0, bgms::kCgm);
  const double hi = scaler.transform_value(499.0, bgms::kCgm);
  for (std::size_t p = 0; p < framework.entities().size(); ++p) {
    for (const auto& s : framework.malicious_samples(framework.test_outcomes(p))) {
      EXPECT_GE(s(0, bgms::kCgm), lo - 1e-9);
      EXPECT_LE(s(0, bgms::kCgm), hi + 1e-9);
    }
  }
}

TEST(Samples, SampleLevelStrategyUsesSampleCounts) {
  auto& framework = sample_framework();
  const auto eval = framework.evaluate_strategy(detect::DetectorKind::kOcsvm, {0, 1, 2});
  // Three patients x (1200/10) samples each.
  EXPECT_EQ(eval.train_benign, 3u * 120u);
  EXPECT_GT(eval.pooled.total(), 0u);
}

TEST(Samples, WindowLevelStrategyUsesWindowCounts) {
  auto& framework = sample_framework();
  auto config = sample_test_config();
  // MAD-GAN on this miniature set: just verify the data paths and counting.
  FrameworkConfig tiny = config;
  (void)tiny;
  const auto windows = framework.benign_train_windows(0);
  EXPECT_FALSE(windows.empty());
  EXPECT_EQ(windows.front().rows(), config.window.seq_len);
  EXPECT_EQ(windows.front().cols(), bgms::kNumChannels);
}

TEST(Samples, GranularityReportedByDetectors) {
  const detect::DetectorSuiteConfig config;
  EXPECT_EQ(detect::make_detector(detect::DetectorKind::kKnn, config)->granularity(),
            detect::InputGranularity::kSample);
  EXPECT_EQ(detect::make_detector(detect::DetectorKind::kOcsvm, config)->granularity(),
            detect::InputGranularity::kSample);
  EXPECT_EQ(detect::make_detector(detect::DetectorKind::kMadGan, config)->granularity(),
            detect::InputGranularity::kWindow);
}

TEST(Samples, SupervisedTrainingIncludesAugmentation) {
  auto& framework = sample_framework();
  const auto eval = framework.evaluate_strategy(detect::DetectorKind::kKnn, {5});
  // Even when patient 5 (most resilient) yields no successful attacks, the
  // defender-side box augmentation populates the malicious class.
  EXPECT_GT(eval.train_malicious, 0u);
}

}  // namespace
}  // namespace goodones::core
