#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace goodones::common {
namespace {

TEST(ThreadPool, ExecutesSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.submit([&] { value = 42; }).get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 50) throw std::runtime_error("halt");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ResultsMatchSerialComputation) {
  ThreadPool pool(8);
  std::vector<double> out(500);
  parallel_for(pool, out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_DOUBLE_EQ(out[i], 2.0 * i);
}

}  // namespace
}  // namespace goodones::common
