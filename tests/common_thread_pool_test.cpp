#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace goodones::common {
namespace {

TEST(ThreadPool, ExecutesSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.submit([&] { value = 42; }).get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 50) throw std::runtime_error("halt");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, PropagatesExceptionFromEveryChunkPosition) {
  // Chunked dispatch must not lose a throw from any position: first index,
  // a middle chunk, and the very last index.
  ThreadPool pool(4);
  for (const std::size_t bad : {std::size_t{0}, std::size_t{499}, std::size_t{999}}) {
    EXPECT_THROW(parallel_for(pool, 1000,
                              [bad](std::size_t i) {
                                if (i == bad) throw std::runtime_error("halt");
                              }),
                 std::runtime_error)
        << "throwing index " << bad;
  }
}

TEST(ParallelFor, PoolStaysUsableAfterBodyThrows) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 64, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // The pool must have drained the failed run completely and keep working.
  std::atomic<int> counter{0};
  parallel_for(pool, 64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelFor, OtherChunksCompleteWhenOneThrows) {
  // A throw skips the rest of its own chunk but every other chunk runs to
  // completion before parallel_for rethrows.
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  EXPECT_THROW(parallel_for(pool, n,
                            [&](std::size_t i) {
                              if (i == 0) throw std::runtime_error("first chunk dies");
                              hits[i].fetch_add(1);
                            }),
               std::runtime_error);
  std::size_t executed = 0;
  for (const auto& h : hits) executed += static_cast<std::size_t>(h.load());
  // At least everything outside the throwing chunk ran exactly once.
  const std::size_t chunk_size = (n + pool.size() * 4 - 1) / (pool.size() * 4);
  EXPECT_GE(executed, n - chunk_size);
  for (const auto& h : hits) EXPECT_LE(h.load(), 1);
}

TEST(ParallelFor, ExceptionTypeIsPreserved) {
  ThreadPool pool(2);
  try {
    parallel_for(pool, 16, [](std::size_t i) {
      if (i == 7) throw std::invalid_argument("specific type");
    });
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "specific type");
  }
}

TEST(ParallelFor, SingleThreadPoolRunsAllIterations) {
  ThreadPool pool(1);
  std::vector<int> out(257, 0);
  parallel_for(pool, out.size(), [&](std::size_t i) { out[i] = 1; });
  for (const int v : out) EXPECT_EQ(v, 1);
}

TEST(ParallelFor, ResultsMatchSerialComputation) {
  ThreadPool pool(8);
  std::vector<double> out(500);
  parallel_for(pool, out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_DOUBLE_EQ(out[i], 2.0 * i);
}

}  // namespace
}  // namespace goodones::common
