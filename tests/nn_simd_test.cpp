// Pins the nn::simd dispatch layer: lane selection (env override semantics,
// clean fallback for unrunnable lanes) and the BITWISE scalar-vs-vector
// parity contract of every kernel, on randomized shapes including ragged
// tails (sizes not divisible by the vector width) and exact-zero inputs.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "nn/kernels/transcendental.hpp"
#include "nn/lstm.hpp"
#include "nn/matrix.hpp"
#include "nn/simd.hpp"

namespace goodones::nn::simd {
namespace {

// --- lane selection ----------------------------------------------------------

TEST(SimdDispatch, ScalarAlwaysCompiledAndRunnable) {
  EXPECT_TRUE(isa_compiled(Isa::kScalar));
  EXPECT_TRUE(isa_runnable(Isa::kScalar));
  ASSERT_NE(table_for(Isa::kScalar), nullptr);
  EXPECT_EQ(table_for(Isa::kScalar)->isa, Isa::kScalar);
}

TEST(SimdDispatch, ResolveHonorsScalarRequestAlways) {
  EXPECT_EQ(resolve("scalar", true, true), Isa::kScalar);
  EXPECT_EQ(resolve("scalar", false, false), Isa::kScalar);
}

TEST(SimdDispatch, ResolveHonorsRunnableVectorRequests) {
  EXPECT_EQ(resolve("avx2", true, false), Isa::kAvx2);
  EXPECT_EQ(resolve("avx2", true, true), Isa::kAvx2);
  EXPECT_EQ(resolve("neon", false, true), Isa::kNeon);
}

TEST(SimdDispatch, ResolveFallsBackWhenRequestNotRunnable) {
  // A lane this process cannot run falls back to the best runnable lane
  // instead of failing.
  EXPECT_EQ(resolve("avx2", false, true), Isa::kNeon);
  EXPECT_EQ(resolve("avx2", false, false), Isa::kScalar);
  EXPECT_EQ(resolve("neon", true, false), Isa::kAvx2);
  EXPECT_EQ(resolve("neon", false, false), Isa::kScalar);
}

TEST(SimdDispatch, ResolveAutoPicksBestRunnableLane) {
  for (const char* request : {static_cast<const char*>(nullptr), "", "bogus"}) {
    EXPECT_EQ(resolve(request, true, true), Isa::kAvx2);
    EXPECT_EQ(resolve(request, false, true), Isa::kNeon);
    EXPECT_EQ(resolve(request, false, false), Isa::kScalar);
  }
}

TEST(SimdDispatch, ActiveTableMatchesActiveIsa) {
  const KernelTable& table = active();
  EXPECT_EQ(table.isa, active_isa());
  EXPECT_TRUE(isa_runnable(table.isa));
}

TEST(SimdDispatch, SetActiveForTestingRoundTrips) {
  const Isa before = active_isa();
  const Isa prev = set_active_for_testing(Isa::kScalar);
  EXPECT_EQ(prev, before);
  EXPECT_EQ(active_isa(), Isa::kScalar);
  set_active_for_testing(before);
  EXPECT_EQ(active_isa(), before);
}

TEST(SimdDispatch, IsaNamesAreStable) {
  EXPECT_STREQ(isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(isa_name(Isa::kAvx2), "avx2");
  EXPECT_STREQ(isa_name(Isa::kNeon), "neon");
}

// --- bitwise scalar-vs-vector kernel parity ---------------------------------
//
// Every vector lane must be bitwise identical to the scalar lane — that is
// the contract that lets the whole engine run under any lane without
// perturbing a single pinned number. Shapes are randomized across vector
// widths and ragged tails; inputs mix exact +0.0 / -0.0 with ordinary
// values so branchless accumulation and sign-sensitive transcendental
// splits get exercised.

std::vector<double> random_values(std::size_t n, common::Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.10) {
      x = 0.0;
    } else if (roll < 0.15) {
      x = -0.0;
    } else {
      x = rng.uniform(-2.5, 2.5);
    }
  }
  return v;
}

std::vector<float> to_f32(const std::vector<double>& v) {
  std::vector<float> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = static_cast<float>(v[i]);
  return out;
}

void expect_bitwise(const std::vector<double>& scalar, const std::vector<double>& vec,
                    const char* what, int trial) {
  ASSERT_EQ(scalar.size(), vec.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(scalar[i]), std::bit_cast<std::uint64_t>(vec[i]))
        << what << " trial=" << trial << " i=" << i << " scalar=" << scalar[i]
        << " vector=" << vec[i];
  }
}

/// The best runnable vector lane, or nullptr when this machine only has the
/// scalar lane (parity tests then pass trivially — there is nothing to
/// compare, which is itself the correct behavior of the fallback).
const KernelTable* vector_table() {
  if (isa_runnable(Isa::kAvx2)) return table_for(Isa::kAvx2);
  if (isa_runnable(Isa::kNeon)) return table_for(Isa::kNeon);
  return nullptr;
}

class SimdKernelParity : public ::testing::Test {
 protected:
  void SetUp() override {
    vec_ = vector_table();
    if (vec_ == nullptr) GTEST_SKIP() << "no vector lane runnable on this CPU";
    scalar_ = table_for(Isa::kScalar);
  }

  const KernelTable* scalar_ = nullptr;
  const KernelTable* vec_ = nullptr;
};

TEST_F(SimdKernelParity, MatmulAccBitwise) {
  common::Rng rng(0x51D051D0);
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 17));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 37));
    const auto a = random_values(m * k, rng);
    const auto b = random_values(k * n, rng);
    auto out_s = random_values(m * n, rng);
    auto out_v = out_s;
    scalar_->matmul_acc(a.data(), b.data(), out_s.data(), m, k, n);
    vec_->matmul_acc(a.data(), b.data(), out_v.data(), m, k, n);
    expect_bitwise(out_s, out_v, "matmul_acc", trial);
  }
}

TEST_F(SimdKernelParity, MatmulBiasBitwise) {
  common::Rng rng(0xB1A5B1A5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 17));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 37));
    const auto a = random_values(m * k, rng);
    const auto b = random_values(k * n, rng);
    const auto bias = random_values(n, rng);
    std::vector<double> out_s(m * n, 123.0);  // must be fully overwritten
    std::vector<double> out_v(m * n, -77.0);
    scalar_->matmul_bias(a.data(), b.data(), bias.data(), out_s.data(), m, k, n);
    vec_->matmul_bias(a.data(), b.data(), bias.data(), out_v.data(), m, k, n);
    expect_bitwise(out_s, out_v, "matmul_bias", trial);
  }
}

TEST_F(SimdKernelParity, MatmulTaAccBitwise) {
  common::Rng rng(0x7A7A7A);
  for (int trial = 0; trial < 50; ++trial) {
    const auto r = static_cast<std::size_t>(rng.uniform_int(1, 9));
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 13));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 29));
    const auto a = random_values(r * m, rng);
    const auto b = random_values(r * n, rng);
    auto out_s = random_values(m * n, rng);
    auto out_v = out_s;
    scalar_->matmul_ta_acc(a.data(), b.data(), out_s.data(), r, m, n);
    vec_->matmul_ta_acc(a.data(), b.data(), out_v.data(), r, m, n);
    expect_bitwise(out_s, out_v, "matmul_ta_acc", trial);
  }
}

TEST_F(SimdKernelParity, MatmulTbAccBitwise) {
  common::Rng rng(0x7B7B7B);
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 9));
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 33));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 13));
    const auto a = random_values(m * k, rng);
    const auto b = random_values(n * k, rng);
    auto out_s = random_values(m * n, rng);
    auto out_v = out_s;
    scalar_->matmul_tb_acc(a.data(), b.data(), out_s.data(), m, k, n);
    vec_->matmul_tb_acc(a.data(), b.data(), out_v.data(), m, k, n);
    expect_bitwise(out_s, out_v, "matmul_tb_acc", trial);
  }
}

TEST_F(SimdKernelParity, AxpyBitwise) {
  common::Rng rng(0xA2B4);
  for (int trial = 0; trial < 50; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 41));
    const double alpha = trial % 7 == 0 ? 0.0 : rng.uniform(-2.0, 2.0);
    const auto x = random_values(n, rng);
    auto y_s = random_values(n, rng);
    auto y_v = y_s;
    scalar_->axpy(alpha, x.data(), y_s.data(), n);
    vec_->axpy(alpha, x.data(), y_v.data(), n);
    expect_bitwise(y_s, y_v, "axpy", trial);
  }
}

TEST_F(SimdKernelParity, LstmGatesBitwise) {
  common::Rng rng(0x6A7E5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto h = static_cast<std::size_t>(rng.uniform_int(1, 19));
    const auto pre = random_values(4 * h, rng);
    auto cell_s = random_values(h, rng);
    auto hidden_s = random_values(h, rng);
    auto cell_v = cell_s;
    auto hidden_v = hidden_s;
    scalar_->lstm_gates(pre.data(), h, cell_s.data(), hidden_s.data());
    vec_->lstm_gates(pre.data(), h, cell_v.data(), hidden_v.data());
    expect_bitwise(cell_s, cell_v, "lstm_gates cell", trial);
    expect_bitwise(hidden_s, hidden_v, "lstm_gates hidden", trial);
  }
}

TEST_F(SimdKernelParity, LstmGatesCachedBitwise) {
  common::Rng rng(0x6A7E5CAC);
  for (int trial = 0; trial < 50; ++trial) {
    const auto h = static_cast<std::size_t>(rng.uniform_int(1, 19));
    const auto pre = random_values(4 * h, rng);
    const auto cs0 = random_values(h, rng);
    const auto hs0 = random_values(h, rng);

    struct Out {
      std::vector<double> gi, gf, gg, go, ct, ctt, ht, cs, hs;
      explicit Out(std::size_t h, const std::vector<double>& cs0,
                   const std::vector<double>& hs0)
          : gi(h), gf(h), gg(h), go(h), ct(h), ctt(h), ht(h), cs(cs0), hs(hs0) {}
    };
    Out s(h, cs0, hs0);
    Out v(h, cs0, hs0);
    scalar_->lstm_gates_cached(pre.data(), h, s.gi.data(), s.gf.data(), s.gg.data(),
                               s.go.data(), s.ct.data(), s.ctt.data(), s.ht.data(),
                               s.cs.data(), s.hs.data());
    vec_->lstm_gates_cached(pre.data(), h, v.gi.data(), v.gf.data(), v.gg.data(),
                            v.go.data(), v.ct.data(), v.ctt.data(), v.ht.data(),
                            v.cs.data(), v.hs.data());
    expect_bitwise(s.gi, v.gi, "gates_cached gi", trial);
    expect_bitwise(s.gf, v.gf, "gates_cached gf", trial);
    expect_bitwise(s.gg, v.gg, "gates_cached gg", trial);
    expect_bitwise(s.go, v.go, "gates_cached go", trial);
    expect_bitwise(s.ct, v.ct, "gates_cached ct", trial);
    expect_bitwise(s.ctt, v.ctt, "gates_cached ctt", trial);
    expect_bitwise(s.ht, v.ht, "gates_cached ht", trial);
    expect_bitwise(s.cs, v.cs, "gates_cached cs", trial);
    expect_bitwise(s.hs, v.hs, "gates_cached hs", trial);
  }
}

TEST_F(SimdKernelParity, MixedPrecisionKernelsBitwise) {
  // The mixed lane is an approximation of the double kernels, but its
  // scalar and vector implementations must still agree bitwise with each
  // other — mixed-precision scoring must not additionally depend on the ISA.
  common::Rng rng(0xF32F32);
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 17));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 37));
    const auto a = random_values(m * k, rng);
    const auto b = to_f32(random_values(k * n, rng));
    const auto bias = to_f32(random_values(n, rng));

    auto acc_s = random_values(m * n, rng);
    auto acc_v = acc_s;
    scalar_->matmul_acc_f32w(a.data(), b.data(), acc_s.data(), m, k, n);
    vec_->matmul_acc_f32w(a.data(), b.data(), acc_v.data(), m, k, n);
    expect_bitwise(acc_s, acc_v, "matmul_acc_f32w", trial);

    std::vector<double> bias_s(m * n, 5.0);
    std::vector<double> bias_v(m * n, -5.0);
    scalar_->matmul_bias_f32w(a.data(), b.data(), bias.data(), bias_s.data(), m, k, n);
    vec_->matmul_bias_f32w(a.data(), b.data(), bias.data(), bias_v.data(), m, k, n);
    expect_bitwise(bias_s, bias_v, "matmul_bias_f32w", trial);
  }
}

// --- fast lane: cross-ISA bitwise agreement ---------------------------------
//
// The kFast kernels sit OUTSIDE the scalar-libm parity contract, but they
// carry their own: every operation in the polynomial pipeline is a
// correctly-rounded IEEE primitive executed in the same order on every lane,
// so the scalar, AVX2 and NEON fast kernels must agree bitwise with EACH
// OTHER — fast scoring must not additionally depend on the ISA.

/// Wide-range values for the fast transcendentals: saturation tails, branch
/// boundaries and signed zeros all get hit.
std::vector<double> random_wide_values(std::size_t n, common::Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.06) {
      x = 0.0;
    } else if (roll < 0.10) {
      x = -0.0;
    } else if (roll < 0.25) {
      x = rng.uniform(-0.5, 0.5);  // around the tanh small-argument branch
    } else if (roll < 0.40) {
      x = rng.uniform(-40.0, 40.0);  // saturation tails
    } else {
      x = rng.uniform(-8.0, 8.0);  // typical gate pre-activations
    }
  }
  return v;
}

TEST_F(SimdKernelParity, FastLstmGatesBitwise) {
  common::Rng rng(0xFA576A7E);
  for (int trial = 0; trial < 50; ++trial) {
    const auto h = static_cast<std::size_t>(rng.uniform_int(1, 19));
    const auto pre = random_wide_values(4 * h, rng);
    auto cell_s = random_values(h, rng);
    auto hidden_s = random_values(h, rng);
    auto cell_v = cell_s;
    auto hidden_v = hidden_s;
    scalar_->lstm_gates_fast(pre.data(), h, cell_s.data(), hidden_s.data());
    vec_->lstm_gates_fast(pre.data(), h, cell_v.data(), hidden_v.data());
    expect_bitwise(cell_s, cell_v, "lstm_gates_fast cell", trial);
    expect_bitwise(hidden_s, hidden_v, "lstm_gates_fast hidden", trial);
  }
}

TEST_F(SimdKernelParity, FastLstmGatesCachedBitwise) {
  common::Rng rng(0xFA57CAC);
  for (int trial = 0; trial < 50; ++trial) {
    const auto h = static_cast<std::size_t>(rng.uniform_int(1, 19));
    const auto pre = random_wide_values(4 * h, rng);
    const auto cs0 = random_values(h, rng);
    const auto hs0 = random_values(h, rng);

    struct Out {
      std::vector<double> gi, gf, gg, go, ct, ctt, ht, cs, hs;
      explicit Out(std::size_t h, const std::vector<double>& cs0,
                   const std::vector<double>& hs0)
          : gi(h), gf(h), gg(h), go(h), ct(h), ctt(h), ht(h), cs(cs0), hs(hs0) {}
    };
    Out s(h, cs0, hs0);
    Out v(h, cs0, hs0);
    scalar_->lstm_gates_cached_fast(pre.data(), h, s.gi.data(), s.gf.data(), s.gg.data(),
                                    s.go.data(), s.ct.data(), s.ctt.data(), s.ht.data(),
                                    s.cs.data(), s.hs.data());
    vec_->lstm_gates_cached_fast(pre.data(), h, v.gi.data(), v.gf.data(), v.gg.data(),
                                 v.go.data(), v.ct.data(), v.ctt.data(), v.ht.data(),
                                 v.cs.data(), v.hs.data());
    expect_bitwise(s.gi, v.gi, "gates_cached_fast gi", trial);
    expect_bitwise(s.gf, v.gf, "gates_cached_fast gf", trial);
    expect_bitwise(s.gg, v.gg, "gates_cached_fast gg", trial);
    expect_bitwise(s.go, v.go, "gates_cached_fast go", trial);
    expect_bitwise(s.ct, v.ct, "gates_cached_fast ct", trial);
    expect_bitwise(s.ctt, v.ctt, "gates_cached_fast ctt", trial);
    expect_bitwise(s.ht, v.ht, "gates_cached_fast ht", trial);
    expect_bitwise(s.cs, v.cs, "gates_cached_fast cs", trial);
    expect_bitwise(s.hs, v.hs, "gates_cached_fast hs", trial);
  }
}

TEST_F(SimdKernelParity, FastTranscendentalBatchBitwise) {
  common::Rng rng(0xFA57BA7C);
  for (int trial = 0; trial < 50; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 41));
    const auto x = random_wide_values(n, rng);
    std::vector<double> out_s(n, 99.0);
    std::vector<double> out_v(n, -99.0);
    scalar_->fast_exp_n(x.data(), out_s.data(), n);
    vec_->fast_exp_n(x.data(), out_v.data(), n);
    expect_bitwise(out_s, out_v, "fast_exp_n", trial);
    scalar_->fast_tanh_n(x.data(), out_s.data(), n);
    vec_->fast_tanh_n(x.data(), out_v.data(), n);
    expect_bitwise(out_s, out_v, "fast_tanh_n", trial);
    scalar_->fast_sigmoid_n(x.data(), out_s.data(), n);
    vec_->fast_sigmoid_n(x.data(), out_v.data(), n);
    expect_bitwise(out_s, out_v, "fast_sigmoid_n", trial);
  }
}

// --- fast lane: ulp accuracy against glibc ----------------------------------
//
// The kFast accuracy contract (documented in README / BENCHMARKS): exp within
// 2 ulp of glibc, sigmoid within 3, tanh within 5 (measured worst cases are
// 1 / 2 / 4; the bounds leave one ulp of slack against libm version drift).
// The sweep covers the full input range every lane can see: saturation
// tails past the overflow/underflow cutoffs, the gradual-underflow denormal
// band, signed zeros, the tanh small-argument branch boundary, +/-inf, NaN.

/// ulp distance between two doubles; 0 for bitwise-equal specials (both NaN,
/// same infinity, +0 vs -0), max() when exactly one is NaN/inf.
std::uint64_t ulp_distance(double a, double b) {
  const bool nan_a = std::isnan(a);
  const bool nan_b = std::isnan(b);
  if (nan_a || nan_b) {
    return nan_a == nan_b ? 0 : std::numeric_limits<std::uint64_t>::max();
  }
  if (a == b) return 0;  // also +0 == -0 and equal infinities
  if (std::isinf(a) || std::isinf(b)) return std::numeric_limits<std::uint64_t>::max();
  const auto key = [](double x) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
    // Order-preserving map of doubles onto the unsigned line.
    return (bits >> 63) != 0 ? ~bits : bits | 0x8000000000000000ULL;
  };
  const std::uint64_t ka = key(a);
  const std::uint64_t kb = key(b);
  return ka > kb ? ka - kb : kb - ka;
}

/// Every lane runnable on this machine (scalar always; at most one vector).
std::vector<const KernelTable*> runnable_tables() {
  std::vector<const KernelTable*> tables{table_for(Isa::kScalar)};
  if (const KernelTable* vec = vector_table()) tables.push_back(vec);
  return tables;
}

/// `count` uniform samples over [lo, hi] plus the hard special values.
std::vector<double> sweep_inputs(double lo, double hi, std::size_t count,
                                 common::Rng& rng) {
  std::vector<double> v;
  v.reserve(count + 32);
  for (std::size_t i = 0; i < count; ++i) v.push_back(rng.uniform(lo, hi));
  const double inf = std::numeric_limits<double>::infinity();
  for (const double s :
       {0.0, -0.0, 5e-324, -5e-324, 1e-308, -1e-308,         // signed zero, denormals
        0.2499, 0.2501, -0.2499, -0.2501,                    // tanh branch boundary
        19.0624, 19.0626, -19.0624, -19.0626,                // tanh saturation cutoff
        709.782712893384, 709.783, -745.13321910194110842,   // exp overflow/underflow
        -745.2, -745.0, -744.5,                              // denormal band
        1e308, -1e308, inf, -inf,
        std::numeric_limits<double>::quiet_NaN()}) {
    v.push_back(s);
  }
  return v;
}

void expect_ulp_bound(const char* what, const KernelTable* table,
                      void (*KernelTable::*kernel)(const double*, double*, std::size_t),
                      const std::vector<double>& xs, double (*reference)(double),
                      std::uint64_t bound) {
  std::vector<double> out(xs.size());
  (table->*kernel)(xs.data(), out.data(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double ref = reference(xs[i]);
    ASSERT_LE(ulp_distance(out[i], ref), bound)
        << what << " lane=" << isa_name(table->isa) << " x=" << xs[i]
        << " got=" << out[i] << " ref=" << ref;
  }
}

TEST(FastTranscendentalAccuracy, ExpWithinTwoUlpEveryLane) {
  common::Rng rng(0xE4B0);
  const auto xs = sweep_inputs(-760.0, 720.0, 20000, rng);
  for (const KernelTable* table : runnable_tables()) {
    expect_ulp_bound("fast_exp", table, &KernelTable::fast_exp_n, xs,
                     [](double x) { return std::exp(x); }, 2);
  }
}

TEST(FastTranscendentalAccuracy, TanhWithinFiveUlpEveryLane) {
  common::Rng rng(0x7A9E);
  const auto xs = sweep_inputs(-25.0, 25.0, 20000, rng);
  for (const KernelTable* table : runnable_tables()) {
    expect_ulp_bound("fast_tanh", table, &KernelTable::fast_tanh_n, xs,
                     [](double x) { return std::tanh(x); }, 5);
  }
}

TEST(FastTranscendentalAccuracy, SigmoidWithinThreeUlpEveryLane) {
  common::Rng rng(0x516D);
  const auto xs = sweep_inputs(-800.0, 800.0, 20000, rng);
  for (const KernelTable* table : runnable_tables()) {
    expect_ulp_bound("fast_sigmoid", table, &KernelTable::fast_sigmoid_n, xs,
                     [](double x) { return tmath::libm_sigmoid(x); }, 3);
  }
}

// --- fast lane: no leak into default-precision paths ------------------------
//
// With the fast kernels compiled into every table, the DEFAULT precision of
// every batched path must stay bitwise identical to the exact scalar
// reference on every lane — the fast lane may only engage through an
// explicit Precision::kFast opt-in. This is the unit-level guarantee behind
// the e2e parity suites and Table-II pins staying byte-for-byte unchanged.

void expect_matrix_bitwise(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a(r, c)), std::bit_cast<std::uint64_t>(b(r, c)))
          << what << " r=" << r << " c=" << c << " a=" << a(r, c) << " b=" << b(r, c);
    }
  }
}

std::size_t count_matrix_diffs(const Matrix& a, const Matrix& b) {
  std::size_t diffs = 0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (std::bit_cast<std::uint64_t>(a(r, c)) != std::bit_cast<std::uint64_t>(b(r, c))) {
        ++diffs;
      }
    }
  }
  return diffs;
}

TEST(FastLaneNoLeak, DefaultBatchedPathsBitwiseUnchangedEveryLane) {
  common::Rng rng(0xFA57'0FF);
  Lstm cell(/*input_dim=*/5, /*hidden_dim=*/12, rng);
  std::vector<Matrix> seqs(4, Matrix(9, 5));
  for (Matrix& seq : seqs) {
    for (std::size_t r = 0; r < seq.rows(); ++r) {
      for (std::size_t c = 0; c < seq.cols(); ++c) seq(r, c) = rng.uniform(-1.5, 1.5);
    }
  }

  // Scalar exact reference: last hidden row of each full forward().
  const Isa before = active_isa();
  set_active_for_testing(Isa::kScalar);
  Matrix reference(seqs.size(), cell.hidden_dim());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    const Matrix hidden = cell.forward(seqs[i]);
    for (std::size_t c = 0; c < cell.hidden_dim(); ++c) {
      reference(i, c) = hidden(hidden.rows() - 1, c);
    }
  }
  set_active_for_testing(before);

  for (const KernelTable* table : runnable_tables()) {
    const Isa prev = set_active_for_testing(table->isa);

    const Matrix h_default = cell.run_batch(seqs);
    const Matrix h_exact =
        cell.run_batch(seqs, cell.initial_state(), 0, Precision::kDouble);
    expect_matrix_bitwise(h_default, reference, "run_batch default vs reference");
    expect_matrix_bitwise(h_exact, reference, "run_batch kDouble vs reference");

    std::vector<Lstm::Cache> caches_default;
    std::vector<Lstm::Cache> caches_exact;
    cell.forward_batch_cached(seqs, caches_default);
    cell.forward_batch_cached(seqs, caches_exact, Precision::kDouble);
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      expect_matrix_bitwise(caches_default[i].hidden, caches_exact[i].hidden,
                            "forward_batch_cached default vs kDouble");
    }

    // And the opt-in actually reaches the fast kernels: the same batch under
    // kFast must differ somewhere (few-ulp gate error) while staying tiny.
    const Matrix h_fast = cell.run_batch(seqs, cell.initial_state(), 0, Precision::kFast);
    EXPECT_GT(count_matrix_diffs(h_fast, reference), 0u)
        << "kFast never engaged on lane " << isa_name(table->isa);
    for (std::size_t i = 0; i < h_fast.rows(); ++i) {
      for (std::size_t c = 0; c < h_fast.cols(); ++c) {
        EXPECT_NEAR(h_fast(i, c), reference(i, c), 1e-9);
      }
    }

    set_active_for_testing(prev);
  }
}

}  // namespace
}  // namespace goodones::nn::simd
