// Pins the nn::simd dispatch layer: lane selection (env override semantics,
// clean fallback for unrunnable lanes) and the BITWISE scalar-vs-vector
// parity contract of every kernel, on randomized shapes including ragged
// tails (sizes not divisible by the vector width) and exact-zero inputs.
#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/simd.hpp"

namespace goodones::nn::simd {
namespace {

// --- lane selection ----------------------------------------------------------

TEST(SimdDispatch, ScalarAlwaysCompiledAndRunnable) {
  EXPECT_TRUE(isa_compiled(Isa::kScalar));
  EXPECT_TRUE(isa_runnable(Isa::kScalar));
  ASSERT_NE(table_for(Isa::kScalar), nullptr);
  EXPECT_EQ(table_for(Isa::kScalar)->isa, Isa::kScalar);
}

TEST(SimdDispatch, ResolveHonorsScalarRequestAlways) {
  EXPECT_EQ(resolve("scalar", true, true), Isa::kScalar);
  EXPECT_EQ(resolve("scalar", false, false), Isa::kScalar);
}

TEST(SimdDispatch, ResolveHonorsRunnableVectorRequests) {
  EXPECT_EQ(resolve("avx2", true, false), Isa::kAvx2);
  EXPECT_EQ(resolve("avx2", true, true), Isa::kAvx2);
  EXPECT_EQ(resolve("neon", false, true), Isa::kNeon);
}

TEST(SimdDispatch, ResolveFallsBackWhenRequestNotRunnable) {
  // A lane this process cannot run falls back to the best runnable lane
  // instead of failing.
  EXPECT_EQ(resolve("avx2", false, true), Isa::kNeon);
  EXPECT_EQ(resolve("avx2", false, false), Isa::kScalar);
  EXPECT_EQ(resolve("neon", true, false), Isa::kAvx2);
  EXPECT_EQ(resolve("neon", false, false), Isa::kScalar);
}

TEST(SimdDispatch, ResolveAutoPicksBestRunnableLane) {
  for (const char* request : {static_cast<const char*>(nullptr), "", "bogus"}) {
    EXPECT_EQ(resolve(request, true, true), Isa::kAvx2);
    EXPECT_EQ(resolve(request, false, true), Isa::kNeon);
    EXPECT_EQ(resolve(request, false, false), Isa::kScalar);
  }
}

TEST(SimdDispatch, ActiveTableMatchesActiveIsa) {
  const KernelTable& table = active();
  EXPECT_EQ(table.isa, active_isa());
  EXPECT_TRUE(isa_runnable(table.isa));
}

TEST(SimdDispatch, SetActiveForTestingRoundTrips) {
  const Isa before = active_isa();
  const Isa prev = set_active_for_testing(Isa::kScalar);
  EXPECT_EQ(prev, before);
  EXPECT_EQ(active_isa(), Isa::kScalar);
  set_active_for_testing(before);
  EXPECT_EQ(active_isa(), before);
}

TEST(SimdDispatch, IsaNamesAreStable) {
  EXPECT_STREQ(isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(isa_name(Isa::kAvx2), "avx2");
  EXPECT_STREQ(isa_name(Isa::kNeon), "neon");
}

// --- bitwise scalar-vs-vector kernel parity ---------------------------------
//
// Every vector lane must be bitwise identical to the scalar lane — that is
// the contract that lets the whole engine run under any lane without
// perturbing a single pinned number. Shapes are randomized across vector
// widths and ragged tails; inputs mix exact +0.0 / -0.0 with ordinary
// values so branchless accumulation and sign-sensitive transcendental
// splits get exercised.

std::vector<double> random_values(std::size_t n, common::Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.10) {
      x = 0.0;
    } else if (roll < 0.15) {
      x = -0.0;
    } else {
      x = rng.uniform(-2.5, 2.5);
    }
  }
  return v;
}

std::vector<float> to_f32(const std::vector<double>& v) {
  std::vector<float> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = static_cast<float>(v[i]);
  return out;
}

void expect_bitwise(const std::vector<double>& scalar, const std::vector<double>& vec,
                    const char* what, int trial) {
  ASSERT_EQ(scalar.size(), vec.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(scalar[i]), std::bit_cast<std::uint64_t>(vec[i]))
        << what << " trial=" << trial << " i=" << i << " scalar=" << scalar[i]
        << " vector=" << vec[i];
  }
}

/// The best runnable vector lane, or nullptr when this machine only has the
/// scalar lane (parity tests then pass trivially — there is nothing to
/// compare, which is itself the correct behavior of the fallback).
const KernelTable* vector_table() {
  if (isa_runnable(Isa::kAvx2)) return table_for(Isa::kAvx2);
  if (isa_runnable(Isa::kNeon)) return table_for(Isa::kNeon);
  return nullptr;
}

class SimdKernelParity : public ::testing::Test {
 protected:
  void SetUp() override {
    vec_ = vector_table();
    if (vec_ == nullptr) GTEST_SKIP() << "no vector lane runnable on this CPU";
    scalar_ = table_for(Isa::kScalar);
  }

  const KernelTable* scalar_ = nullptr;
  const KernelTable* vec_ = nullptr;
};

TEST_F(SimdKernelParity, MatmulAccBitwise) {
  common::Rng rng(0x51D051D0);
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 17));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 37));
    const auto a = random_values(m * k, rng);
    const auto b = random_values(k * n, rng);
    auto out_s = random_values(m * n, rng);
    auto out_v = out_s;
    scalar_->matmul_acc(a.data(), b.data(), out_s.data(), m, k, n);
    vec_->matmul_acc(a.data(), b.data(), out_v.data(), m, k, n);
    expect_bitwise(out_s, out_v, "matmul_acc", trial);
  }
}

TEST_F(SimdKernelParity, MatmulBiasBitwise) {
  common::Rng rng(0xB1A5B1A5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 17));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 37));
    const auto a = random_values(m * k, rng);
    const auto b = random_values(k * n, rng);
    const auto bias = random_values(n, rng);
    std::vector<double> out_s(m * n, 123.0);  // must be fully overwritten
    std::vector<double> out_v(m * n, -77.0);
    scalar_->matmul_bias(a.data(), b.data(), bias.data(), out_s.data(), m, k, n);
    vec_->matmul_bias(a.data(), b.data(), bias.data(), out_v.data(), m, k, n);
    expect_bitwise(out_s, out_v, "matmul_bias", trial);
  }
}

TEST_F(SimdKernelParity, MatmulTaAccBitwise) {
  common::Rng rng(0x7A7A7A);
  for (int trial = 0; trial < 50; ++trial) {
    const auto r = static_cast<std::size_t>(rng.uniform_int(1, 9));
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 13));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 29));
    const auto a = random_values(r * m, rng);
    const auto b = random_values(r * n, rng);
    auto out_s = random_values(m * n, rng);
    auto out_v = out_s;
    scalar_->matmul_ta_acc(a.data(), b.data(), out_s.data(), r, m, n);
    vec_->matmul_ta_acc(a.data(), b.data(), out_v.data(), r, m, n);
    expect_bitwise(out_s, out_v, "matmul_ta_acc", trial);
  }
}

TEST_F(SimdKernelParity, MatmulTbAccBitwise) {
  common::Rng rng(0x7B7B7B);
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 9));
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 33));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 13));
    const auto a = random_values(m * k, rng);
    const auto b = random_values(n * k, rng);
    auto out_s = random_values(m * n, rng);
    auto out_v = out_s;
    scalar_->matmul_tb_acc(a.data(), b.data(), out_s.data(), m, k, n);
    vec_->matmul_tb_acc(a.data(), b.data(), out_v.data(), m, k, n);
    expect_bitwise(out_s, out_v, "matmul_tb_acc", trial);
  }
}

TEST_F(SimdKernelParity, AxpyBitwise) {
  common::Rng rng(0xA2B4);
  for (int trial = 0; trial < 50; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 41));
    const double alpha = trial % 7 == 0 ? 0.0 : rng.uniform(-2.0, 2.0);
    const auto x = random_values(n, rng);
    auto y_s = random_values(n, rng);
    auto y_v = y_s;
    scalar_->axpy(alpha, x.data(), y_s.data(), n);
    vec_->axpy(alpha, x.data(), y_v.data(), n);
    expect_bitwise(y_s, y_v, "axpy", trial);
  }
}

TEST_F(SimdKernelParity, LstmGatesBitwise) {
  common::Rng rng(0x6A7E5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto h = static_cast<std::size_t>(rng.uniform_int(1, 19));
    const auto pre = random_values(4 * h, rng);
    auto cell_s = random_values(h, rng);
    auto hidden_s = random_values(h, rng);
    auto cell_v = cell_s;
    auto hidden_v = hidden_s;
    scalar_->lstm_gates(pre.data(), h, cell_s.data(), hidden_s.data());
    vec_->lstm_gates(pre.data(), h, cell_v.data(), hidden_v.data());
    expect_bitwise(cell_s, cell_v, "lstm_gates cell", trial);
    expect_bitwise(hidden_s, hidden_v, "lstm_gates hidden", trial);
  }
}

TEST_F(SimdKernelParity, LstmGatesCachedBitwise) {
  common::Rng rng(0x6A7E5CAC);
  for (int trial = 0; trial < 50; ++trial) {
    const auto h = static_cast<std::size_t>(rng.uniform_int(1, 19));
    const auto pre = random_values(4 * h, rng);
    const auto cs0 = random_values(h, rng);
    const auto hs0 = random_values(h, rng);

    struct Out {
      std::vector<double> gi, gf, gg, go, ct, ctt, ht, cs, hs;
      explicit Out(std::size_t h, const std::vector<double>& cs0,
                   const std::vector<double>& hs0)
          : gi(h), gf(h), gg(h), go(h), ct(h), ctt(h), ht(h), cs(cs0), hs(hs0) {}
    };
    Out s(h, cs0, hs0);
    Out v(h, cs0, hs0);
    scalar_->lstm_gates_cached(pre.data(), h, s.gi.data(), s.gf.data(), s.gg.data(),
                               s.go.data(), s.ct.data(), s.ctt.data(), s.ht.data(),
                               s.cs.data(), s.hs.data());
    vec_->lstm_gates_cached(pre.data(), h, v.gi.data(), v.gf.data(), v.gg.data(),
                            v.go.data(), v.ct.data(), v.ctt.data(), v.ht.data(),
                            v.cs.data(), v.hs.data());
    expect_bitwise(s.gi, v.gi, "gates_cached gi", trial);
    expect_bitwise(s.gf, v.gf, "gates_cached gf", trial);
    expect_bitwise(s.gg, v.gg, "gates_cached gg", trial);
    expect_bitwise(s.go, v.go, "gates_cached go", trial);
    expect_bitwise(s.ct, v.ct, "gates_cached ct", trial);
    expect_bitwise(s.ctt, v.ctt, "gates_cached ctt", trial);
    expect_bitwise(s.ht, v.ht, "gates_cached ht", trial);
    expect_bitwise(s.cs, v.cs, "gates_cached cs", trial);
    expect_bitwise(s.hs, v.hs, "gates_cached hs", trial);
  }
}

TEST_F(SimdKernelParity, MixedPrecisionKernelsBitwise) {
  // The mixed lane is an approximation of the double kernels, but its
  // scalar and vector implementations must still agree bitwise with each
  // other — mixed-precision scoring must not additionally depend on the ISA.
  common::Rng rng(0xF32F32);
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 17));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 37));
    const auto a = random_values(m * k, rng);
    const auto b = to_f32(random_values(k * n, rng));
    const auto bias = to_f32(random_values(n, rng));

    auto acc_s = random_values(m * n, rng);
    auto acc_v = acc_s;
    scalar_->matmul_acc_f32w(a.data(), b.data(), acc_s.data(), m, k, n);
    vec_->matmul_acc_f32w(a.data(), b.data(), acc_v.data(), m, k, n);
    expect_bitwise(acc_s, acc_v, "matmul_acc_f32w", trial);

    std::vector<double> bias_s(m * n, 5.0);
    std::vector<double> bias_v(m * n, -5.0);
    scalar_->matmul_bias_f32w(a.data(), b.data(), bias.data(), bias_s.data(), m, k, n);
    vec_->matmul_bias_f32w(a.data(), b.data(), bias.data(), bias_v.data(), m, k, n);
    expect_bitwise(bias_s, bias_v, "matmul_bias_f32w", trial);
  }
}

}  // namespace
}  // namespace goodones::nn::simd
