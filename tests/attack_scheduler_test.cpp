#include "attack/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/metrics.hpp"

namespace goodones::attack {
namespace {

TEST(CampaignScheduler, RunsEveryItemExactlyOnce) {
  common::ThreadPool pool(4);
  const CampaignScheduler scheduler(pool);
  std::vector<std::atomic<int>> hits(500);
  const auto report =
      scheduler.run(hits.size(), [&](std::size_t i, common::Rng&) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(report.items, 500u);
  EXPECT_GT(report.shards, 0u);
}

TEST(CampaignScheduler, ZeroItemsIsNoop) {
  common::ThreadPool pool(2);
  const CampaignScheduler scheduler(pool);
  const auto report =
      scheduler.run(0, [](std::size_t, common::Rng&) { FAIL() << "must not run"; });
  EXPECT_EQ(report.shards, 0u);
  EXPECT_EQ(report.items, 0u);
}

TEST(CampaignScheduler, ShardCountHonorsExplicitShardSize) {
  common::ThreadPool pool(2);
  SchedulerConfig config;
  config.shard_size = 10;
  const CampaignScheduler scheduler(pool, config);
  EXPECT_EQ(scheduler.shard_count(95), 10u);
  EXPECT_EQ(scheduler.shard_count(100), 10u);
  EXPECT_EQ(scheduler.shard_count(101), 11u);
  EXPECT_EQ(scheduler.shard_count(0), 0u);
}

TEST(CampaignScheduler, RngStreamsAreDeterministicAcrossPoolSizes) {
  // Same seed must replay identical per-item draws no matter how many
  // workers execute the shards — for an explicit shard_size AND for the
  // auto size, which must depend on the item count only, never the pool.
  for (const std::size_t shard_size : {std::size_t{7}, std::size_t{0}}) {
    SchedulerConfig config;
    config.shard_size = shard_size;
    config.seed = 1234;

    const auto collect = [&](std::size_t threads) {
      common::ThreadPool pool(threads);
      const CampaignScheduler scheduler(pool, config);
      std::vector<double> draws(100, 0.0);
      scheduler.run(draws.size(),
                    [&](std::size_t i, common::Rng& rng) { draws[i] = rng.uniform(); });
      return draws;
    };
    const auto one = collect(1);
    const auto eight = collect(8);
    for (std::size_t i = 0; i < one.size(); ++i) {
      ASSERT_DOUBLE_EQ(one[i], eight[i]) << "shard_size " << shard_size << " item " << i;
    }
  }
}

TEST(CampaignScheduler, DistinctShardsGetDistinctStreams) {
  common::ThreadPool pool(4);
  SchedulerConfig config;
  config.shard_size = 1;  // one item per shard -> one stream per item
  const CampaignScheduler scheduler(pool, config);
  std::vector<double> draws(32, 0.0);
  scheduler.run(draws.size(),
                [&](std::size_t i, common::Rng& rng) { draws[i] = rng.uniform(); });
  for (std::size_t i = 1; i < draws.size(); ++i) {
    EXPECT_NE(draws[0], draws[i]) << "shard " << i << " repeated shard 0's stream";
  }
}

TEST(CampaignScheduler, ReportsProgressCounters) {
  core::counters().reset();
  common::ThreadPool pool(4);
  SchedulerConfig config;
  config.shard_size = 25;
  config.counter_prefix = "test_campaign";
  const CampaignScheduler scheduler(pool, config);
  const auto report = scheduler.run(100, [](std::size_t, common::Rng&) {});
  EXPECT_EQ(report.shards, 4u);
  EXPECT_EQ(core::counters().value("test_campaign.shards_done"), 4u);
  EXPECT_EQ(core::counters().value("test_campaign.items_done"), 100u);
}

TEST(CampaignScheduler, PropagatesBodyExceptions) {
  common::ThreadPool pool(4);
  const CampaignScheduler scheduler(pool);
  EXPECT_THROW(scheduler.run(100,
                             [](std::size_t i, common::Rng&) {
                               if (i == 42) throw std::runtime_error("shard down");
                             }),
               std::runtime_error);
}

TEST(CampaignScheduler, OtherShardsCompleteWhenOneThrows) {
  common::ThreadPool pool(4);
  SchedulerConfig config;
  config.shard_size = 10;
  const CampaignScheduler scheduler(pool, config);
  std::vector<std::atomic<int>> hits(100);
  EXPECT_THROW(scheduler.run(hits.size(),
                             [&](std::size_t i, common::Rng&) {
                               if (i == 5) throw std::runtime_error("shard 0 dies");
                               hits[i].fetch_add(1);
                             }),
               std::runtime_error);
  // Shard 0 stops at item 5; every item of the other nine shards ran.
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  for (std::size_t i = 5; i < 10; ++i) EXPECT_EQ(hits[i].load(), 0) << i;
  for (std::size_t i = 10; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(CampaignScheduler, ThroughputIsComputedFromItemsAndSeconds) {
  ShardReport report;
  report.items = 200;
  report.seconds = 4.0;
  EXPECT_DOUBLE_EQ(report.items_per_second(), 50.0);
  report.seconds = 0.0;
  EXPECT_DOUBLE_EQ(report.items_per_second(), 0.0);
}

TEST(Counters, AccumulateSnapshotAndReset) {
  core::CounterRegistry registry;
  registry.add("a.x", 3);
  registry.add("a.x", 4);
  registry.add("a.y", 1);
  EXPECT_EQ(registry.value("a.x"), 7u);
  EXPECT_EQ(registry.value("missing"), 0u);
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "a.x");
  EXPECT_EQ(snapshot[1].first, "a.y");
  registry.reset();
  EXPECT_EQ(registry.value("a.x"), 0u);
  EXPECT_TRUE(registry.snapshot().empty());
}

}  // namespace
}  // namespace goodones::attack
