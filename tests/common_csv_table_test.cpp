#include <gtest/gtest.h>

#include <filesystem>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace goodones::common {
namespace {

TEST(Csv, RoundTripPlainFields) {
  CsvTable table({"a", "b", "c"});
  table.add_row({"1", "2", "3"});
  table.add_row({"x", "y", "z"});
  const CsvTable parsed = CsvTable::parse(table.to_string());
  EXPECT_EQ(parsed.header(), table.header());
  EXPECT_EQ(parsed.rows(), table.rows());
}

TEST(Csv, QuotesFieldsWithCommasAndQuotes) {
  CsvTable table({"name", "note"});
  table.add_row({"a,b", "he said \"hi\""});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("\"a,b\""), std::string::npos);
  EXPECT_NE(text.find("\"he said \"\"hi\"\"\""), std::string::npos);
  const CsvTable parsed = CsvTable::parse(text);
  EXPECT_EQ(parsed.rows()[0][0], "a,b");
  EXPECT_EQ(parsed.rows()[0][1], "he said \"hi\"");
}

TEST(Csv, HandlesEmbeddedNewlineInQuotedField) {
  CsvTable table({"a", "b"});
  table.add_row({"line1\nline2", "x"});
  const CsvTable parsed = CsvTable::parse(table.to_string());
  EXPECT_EQ(parsed.rows()[0][0], "line1\nline2");
}

TEST(Csv, AddRowRejectsWrongWidth) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
}

TEST(Csv, ParseRejectsRaggedRows) {
  EXPECT_THROW((void)CsvTable::parse("a,b\n1,2,3\n"), PreconditionError);
}

TEST(Csv, ColumnIndexLookup) {
  CsvTable table({"alpha", "beta"});
  EXPECT_EQ(table.column_index("beta"), 1u);
  EXPECT_THROW((void)table.column_index("gamma"), PreconditionError);
}

TEST(Csv, DoubleRowsFormatted) {
  CsvTable table({"x", "y"});
  table.add_numeric_row({1.5, 2.25});
  EXPECT_EQ(table.rows()[0][0], "1.5");
  EXPECT_EQ(table.rows()[0][1], "2.25");
}

TEST(Csv, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "goodones_csv_test.csv";
  CsvTable table({"k", "v"});
  table.add_row({"key", "value,with,commas"});
  table.write(path);
  const CsvTable parsed = CsvTable::read(path);
  EXPECT_EQ(parsed.rows()[0][1], "value,with,commas");
  std::filesystem::remove(path);
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW((void)CsvTable::read("/nonexistent/definitely/not/here.csv"),
               std::runtime_error);
}

TEST(Csv, ToleratesCrlf) {
  const CsvTable parsed = CsvTable::parse("a,b\r\n1,2\r\n");
  EXPECT_EQ(parsed.num_rows(), 1u);
  EXPECT_EQ(parsed.rows()[0][1], "2");
}

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable table("Demo", {"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row("beta", {2.5}, 1);
  const std::string text = table.render();
  EXPECT_NE(text.find("Demo"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
  EXPECT_NE(text.find("+"), std::string::npos);
}

TEST(AsciiTable, RejectsWrongWidthRow) {
  AsciiTable table("T", {"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), PreconditionError);
}

TEST(Formatting, FixedPrecision) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-0.5, 3), "-0.500");
}

TEST(Formatting, SignedPercent) {
  EXPECT_EQ(signed_percent(0.275, 1), "+27.5%");
  EXPECT_EQ(signed_percent(-0.05, 1), "-5.0%");
}

TEST(Formatting, FormatDoubleCompact) {
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.5), "0.5");
}

}  // namespace
}  // namespace goodones::common
