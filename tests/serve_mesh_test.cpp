// End-to-end tests for the serving mesh over REAL TCP sockets: a Router in
// front of two backend shard Daemons, each serving its consistent-hash
// slice of the entity fleet.
//
//   * Mesh transparency: a mixed-entity workload through the router is
//     bitwise-identical to the in-process ScoringService on the full
//     bundle. The router forwards Score payloads byte-for-byte and relays
//     the shard's reply untouched, so the mesh must not cost even one ulp.
//   * Fault injection: one shard is killed and restarted (same port, same
//     registry root — the bundle reloads from its persisted generation-0
//     artifact) WHILE traffic flows. Zero requests are lost: the router's
//     forward channels reconnect with bounded backoff and replay, so a
//     shard restart costs latency, not errors. Every recorded verdict
//     replays bitwise against the persisted bundle of the generation it
//     names.
//   * Drain: removing a shard from the ring in-band moves ONLY its keys to
//     the survivor, in-flight work finishes, and the mesh keeps serving.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/error.hpp"
#include "common/socket.hpp"
#include "core/framework.hpp"
#include "data/window.hpp"
#include "domains/synthtel/adapter.hpp"
#include "serve/daemon.hpp"
#include "serve/hash_ring.hpp"
#include "serve/router.hpp"

namespace goodones::serve {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kVnodes = 128;

// Shard names picked once, offline, so the mini fleet's four entities
// (SA_0, SA_1, SB_0, SB_1) split 2/2 across the two shards under the
// ring's stable hash. Placement is a pure function of (names, vnodes,
// key), so this choice cannot rot; mesh_plan() below re-derives the split
// and the tests assert it stayed non-degenerate.
const char* const kShardNames[2] = {"shard-0", "shard-2"};

std::shared_ptr<const core::DomainAdapter> mini_fleet() {
  static const auto domain = std::make_shared<synthtel::SynthtelDomain>(2);
  return domain;
}

core::FrameworkConfig mini_config() {
  core::FrameworkConfig config = mini_fleet()->prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 1200;
  config.population.test_steps = 400;
  config.population.seed = 23;
  config.registry.forecaster.hidden = 8;
  config.registry.forecaster.head_hidden = 6;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 8;
  config.registry.aggregate_window_step = 50;
  config.profiling_campaign.window_step = 10;
  config.evaluation_campaign.window_step = 10;
  config.detector_benign_stride = 10;
  config.detectors.knn.max_points_per_class = 400;
  config.random_runs = 1;
  config.random_victims = 2;
  config.seed = 555;
  return config;
}

core::RiskProfilingFramework& framework() {
  static core::RiskProfilingFramework instance(mini_fleet(), mini_config());
  return instance;
}

std::filesystem::path unique_path(const std::string& stem, const char* suffix) {
  return std::filesystem::temp_directory_path() /
         (stem + "_" + std::to_string(::getpid()) + suffix);
}

/// Clean held-out windows, or the same windows with the reading channel
/// pinned to the attack-box ceiling (sustained evasion pressure).
ScoreRequest entity_request(std::size_t entity, bool manipulated) {
  auto& fw = framework();
  const auto& entities = fw.entities();
  data::WindowConfig window_config = fw.config().window;
  window_config.step = 30;
  ScoreRequest request;
  request.entity = entities[entity].name;
  const auto windows = data::make_windows(entities[entity].test, window_config);
  const core::DomainSpec& spec = fw.domain().spec();
  for (std::size_t i = 0; i < windows.size() && i < 3; ++i) {
    TelemetryWindow window{windows[i].features, windows[i].regime};
    if (manipulated) {
      for (std::size_t t = 0; t < window.features.rows(); ++t) {
        window.features(t, spec.target_channel) = spec.attack_box_max;
      }
    }
    request.windows.push_back(std::move(window));
  }
  return request;
}

/// Bitwise comparison. entity_index is only comparable when both sides
/// scored with the SAME bundle membership — a shard slice renumbers its
/// entities (slice-local indices), so mesh-vs-full comparisons skip it.
void expect_identical_verdicts(const ScoreResponse& a, const ScoreResponse& b,
                               bool compare_entity_index) {
  if (compare_entity_index) {
    EXPECT_EQ(a.entity_index, b.entity_index);
  }
  EXPECT_EQ(a.cluster, b.cluster);
  EXPECT_EQ(a.generation, b.generation);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t w = 0; w < a.windows.size(); ++w) {
    EXPECT_EQ(a.windows[w].forecast, b.windows[w].forecast) << "w=" << w;
    EXPECT_EQ(a.windows[w].residual, b.windows[w].residual) << "w=" << w;
    EXPECT_EQ(a.windows[w].observed_state, b.windows[w].observed_state) << "w=" << w;
    EXPECT_EQ(a.windows[w].predicted_state, b.windows[w].predicted_state) << "w=" << w;
    EXPECT_EQ(a.windows[w].anomaly_score, b.windows[w].anomaly_score) << "w=" << w;
    EXPECT_EQ(a.windows[w].flagged, b.windows[w].flagged) << "w=" << w;
    EXPECT_EQ(a.windows[w].risk, b.windows[w].risk) << "w=" << w;
  }
}

struct MeshPlan {
  std::vector<std::string> owners;                ///< entity order -> owning shard name
  std::vector<std::vector<std::string>> members;  ///< per kShardNames slot
};

/// The placement a router over kShardNames will compute, derived locally
/// BEFORE any daemon exists — this is what lets the tests slice bundles
/// per shard up front (and what a real deployment's provisioning would do).
MeshPlan mesh_plan(const std::vector<std::string>& entities) {
  HashRing ring(kVnodes);
  for (const char* name : kShardNames) ring.add(name);
  MeshPlan plan;
  plan.members.resize(2);
  for (const std::string& entity : entities) {
    const std::string& owner = ring.owner(entity);
    plan.owners.push_back(owner);
    plan.members[owner == kShardNames[0] ? 0 : 1].push_back(entity);
  }
  return plan;
}

std::uint64_t value_of(const wire::StatsSnapshot& stats, const std::string& name) {
  for (const auto& [key, value] : stats) {
    if (key == name) return value;
  }
  return 0;
}

DaemonConfig shard_config(const std::filesystem::path& registry_root,
                          const common::Endpoint& listen) {
  DaemonConfig config;
  config.listen = listen;
  config.registry_root = registry_root;
  config.adaptive_enabled = false;  // frozen generation 0 on every shard
  config.accept_poll_ms = 20;
  return config;
}

TEST(ServeMesh, MixedWorkloadThroughRouterBitwiseMatchesInProcessService) {
  auto& fw = framework();
  ServingModel bundle = build_serving_model(fw, detect::DetectorKind::kKnn);
  const ScoringService in_process(clone_serving_model(bundle), {.threads = 1});
  const std::vector<std::string> entities = bundle.entity_names;
  const std::size_t n_entities = entities.size();

  const MeshPlan plan = mesh_plan(entities);
  ASSERT_FALSE(plan.members[0].empty()) << "degenerate split: rechoose kShardNames";
  ASSERT_FALSE(plan.members[1].empty()) << "degenerate split: rechoose kShardNames";

  std::vector<std::unique_ptr<Daemon>> shards;
  std::vector<std::filesystem::path> roots;
  RouterConfig router_config;
  for (std::size_t s = 0; s < 2; ++s) {
    roots.push_back(unique_path("go_mesh_bitwise_s" + std::to_string(s), "_reg"));
    std::filesystem::remove_all(roots[s]);
    shards.push_back(std::make_unique<Daemon>(
        slice_serving_model(bundle, plan.members[s]),
        shard_config(roots[s], common::Endpoint::tcp("127.0.0.1", 0))));
    shards[s]->start();
    router_config.backends.push_back({kShardNames[s], shards[s]->endpoint()});
  }

  router_config.listen = common::Endpoint::tcp("127.0.0.1", 0);
  router_config.vnodes = kVnodes;
  router_config.health_interval_ms = 50;  // fast prober: gauges settle quickly
  router_config.accept_poll_ms = 20;
  Router router(router_config);
  router.start();

  // The router's placement is the one computed locally above — same names,
  // same vnodes, same hash; this is the determinism the slicing relies on.
  for (std::size_t e = 0; e < n_entities; ++e) {
    EXPECT_EQ(router.shard_for(entities[e]), plan.owners[e]) << entities[e];
  }

  std::atomic<std::uint64_t> scored{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      DaemonClient client(router.endpoint());
      for (int iter = 0; iter < 6; ++iter) {
        for (std::size_t e = 0; e < n_entities; ++e) {
          const bool manipulated = (iter + t) % 2 == 0;
          const ScoreRequest request = entity_request(e, manipulated);
          const ScoreResponse over_mesh = client.score(request);
          const ScoreResponse local = in_process.score(request);
          EXPECT_EQ(over_mesh.generation, 0u);
          expect_identical_verdicts(over_mesh, local, /*compare_entity_index=*/false);
          scored.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(scored.load(), 3u * 6u * n_entities);

  // Give the prober one bounded window to mark both shards healthy, then
  // read the whole mesh out of ONE stats round trip.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto statuses = router.shards();
    if (statuses[0].healthy && statuses[1].healthy) break;
    std::this_thread::sleep_for(10ms);
  }

  DaemonClient admin(router.endpoint());
  const wire::StatsSnapshot stats = admin.stats();
  EXPECT_EQ(value_of(stats, "serve.router.shards"), 2u);
  EXPECT_GE(value_of(stats, "serve.router.forwards"), scored.load());
  for (const char* name : kShardNames) {
    const std::string prefix = std::string("serve.router.shard.") + name + ".";
    EXPECT_EQ(value_of(stats, prefix + "healthy"), 1u) << name;
    EXPECT_EQ(value_of(stats, prefix + "draining"), 0u) << name;
    EXPECT_EQ(value_of(stats, prefix + "generation"), 0u) << name;
  }
  const wire::HealthReply health = admin.health();
  EXPECT_FALSE(health.draining);
  EXPECT_EQ(health.generation, 0u);

  admin.shutdown();
  router.wait();
  EXPECT_FALSE(router.running());
  for (std::size_t s = 0; s < 2; ++s) {
    shards[s]->stop();
    std::filesystem::remove_all(roots[s]);
  }
}

TEST(ServeMesh, ShardRestartMidRunLosesNoRequestsAndReplaysBitwise) {
  auto& fw = framework();
  ServingModel bundle = build_serving_model(fw, detect::DetectorKind::kKnn);
  const std::vector<std::string> entities = bundle.entity_names;
  const std::size_t n_entities = entities.size();
  const MeshPlan plan = mesh_plan(entities);
  const RegistryKey base_key = registry_key(fw, detect::DetectorKind::kKnn);

  // Persistent registry roots: the restarted shard must come back from its
  // persisted artifact, not from state the test kept in memory.
  std::vector<std::unique_ptr<Daemon>> shards;
  std::vector<std::filesystem::path> roots;
  std::vector<std::string> slice_keys;  // per-shard slice domain_key
  RouterConfig router_config;
  for (std::size_t s = 0; s < 2; ++s) {
    roots.push_back(unique_path("go_mesh_fault_s" + std::to_string(s), "_reg"));
    std::filesystem::remove_all(roots[s]);
    ServingModel slice = slice_serving_model(bundle, plan.members[s]);
    slice_keys.push_back(slice.domain_key);
    shards.push_back(std::make_unique<Daemon>(
        std::move(slice), shard_config(roots[s], common::Endpoint::tcp("127.0.0.1", 0))));
    shards[s]->start();
    router_config.backends.push_back({kShardNames[s], shards[s]->endpoint()});
  }

  router_config.listen = common::Endpoint::tcp("127.0.0.1", 0);
  router_config.vnodes = kVnodes;
  router_config.accept_poll_ms = 20;
  // Default forward policy: reconnect with backoff, replay retryable round
  // trips. Worst-case absorb window (retry_rounds x backoff schedule,
  // several seconds) comfortably covers the sub-second restart below.
  Router router(router_config);
  router.start();

  // The shard owning entity 0 gets killed mid-run.
  const std::size_t victim =
      plan.owners[0] == kShardNames[0] ? std::size_t{0} : std::size_t{1};
  const common::Endpoint victim_endpoint = shards[victim]->endpoint();

  struct Recorded {
    std::size_t entity;
    ScoreRequest request;
    ScoreResponse response;
  };
  std::mutex recorded_mutex;
  std::vector<Recorded> recorded;
  std::atomic<std::uint64_t> failures{0};
  std::atomic<bool> stop{false};

  const auto drive = [&](int salt) {
    DaemonClient client(router.endpoint());
    std::vector<Recorded> local;
    int iter = 0;
    while (!stop.load()) {
      for (std::size_t e = 0; e < n_entities && !stop.load(); ++e) {
        const ScoreRequest request = entity_request(e, (iter + salt) % 2 == 0);
        try {
          ScoreResponse response = client.score(request);
          local.push_back({e, request, std::move(response)});
        } catch (const std::exception&) {
          // ANY client-visible failure is a lost request — the contract is
          // that the mesh absorbs the restart entirely.
          failures.fetch_add(1);
        }
      }
      ++iter;
    }
    const std::lock_guard<std::mutex> lock(recorded_mutex);
    recorded.insert(recorded.end(), std::make_move_iterator(local.begin()),
                    std::make_move_iterator(local.end()));
  };

  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) clients.emplace_back(drive, t);

  std::this_thread::sleep_for(300ms);  // traffic established

  // Kill the victim (clean process-level analogue: listener unbinds,
  // connections close), leave it dead long enough that live forwards hit
  // the dead endpoint, then bring it back on the SAME port from the SAME
  // registry — a real shard restart.
  shards[victim]->stop();
  std::this_thread::sleep_for(200ms);
  RegistryKey victim_key = base_key;
  victim_key.domain_key = slice_keys[victim];
  victim_key.generation = 0;
  const ModelRegistry victim_registry(roots[victim]);
  ASSERT_TRUE(victim_registry.contains(victim_key));
  shards[victim] = std::make_unique<Daemon>(victim_registry.load(victim_key),
                                            shard_config(roots[victim], victim_endpoint));
  shards[victim]->start();

  std::this_thread::sleep_for(400ms);  // post-restart traffic
  stop.store(true);
  for (auto& client : clients) client.join();

  // Zero lost requests across the restart.
  EXPECT_EQ(failures.load(), 0u);
  ASSERT_FALSE(recorded.empty());

  // The restart actually exercised the reconnect path: the victim's
  // forward pool re-established at least one connection...
  const auto statuses = router.shards();
  std::uint64_t victim_reconnects = 0;
  for (const ShardStatus& status : statuses) {
    if (status.name == kShardNames[victim]) victim_reconnects = status.reconnects;
  }
  EXPECT_GE(victim_reconnects, 1u);

  // ...and the restarted shard serves its entities again right now.
  {
    DaemonClient after(router.endpoint());
    const ScoreResponse response = after.score(entity_request(0, false));
    EXPECT_EQ(response.generation, 0u);
    EXPECT_FALSE(response.windows.empty());
  }

  // Provenance across the fault: every recorded verdict replays bitwise
  // against the PERSISTED bundle of the generation it names, loaded from
  // the owning shard's registry (the restarted shard included).
  for (std::size_t s = 0; s < 2; ++s) {
    RegistryKey key = base_key;
    key.domain_key = slice_keys[s];
    key.generation = 0;
    const ModelRegistry registry(roots[s]);
    ASSERT_TRUE(registry.contains(key)) << kShardNames[s];
    const ScoringService pinned(registry.load(key), {.threads = 1});
    std::size_t replayed = 0;
    for (const Recorded& record : recorded) {
      if (plan.owners[record.entity] != kShardNames[s]) continue;
      ASSERT_EQ(record.response.generation, 0u);
      if (++replayed > 6) break;  // a sample per shard keeps the test fast
      expect_identical_verdicts(record.response, pinned.score(record.request),
                                /*compare_entity_index=*/true);
    }
    EXPECT_GE(replayed, 1u) << kShardNames[s];
  }

  router.stop();
  for (std::size_t s = 0; s < 2; ++s) {
    shards[s]->stop();
    std::filesystem::remove_all(roots[s]);
  }
}

TEST(ServeMesh, DrainMovesOnlyTheDrainedShardsKeysAndKeepsServing) {
  auto& fw = framework();
  ServingModel bundle = build_serving_model(fw, detect::DetectorKind::kKnn);
  const ScoringService in_process(clone_serving_model(bundle), {.threads = 1});
  const std::vector<std::string> entities = bundle.entity_names;
  const MeshPlan plan = mesh_plan(entities);

  // Full clone bundles on BOTH shards: a drain reroutes the drained
  // shard's keys to the survivor, so for this test the survivor must be
  // able to score every entity (in a sliced deployment a drain would be
  // paired with re-slicing; ring mechanics are what is under test here).
  std::vector<std::unique_ptr<Daemon>> shards;
  std::vector<std::filesystem::path> roots;
  RouterConfig router_config;
  for (std::size_t s = 0; s < 2; ++s) {
    roots.push_back(unique_path("go_mesh_drain_s" + std::to_string(s), "_reg"));
    std::filesystem::remove_all(roots[s]);
    shards.push_back(std::make_unique<Daemon>(
        clone_serving_model(bundle),
        shard_config(roots[s], common::Endpoint::tcp("127.0.0.1", 0))));
    shards[s]->start();
    router_config.backends.push_back({kShardNames[s], shards[s]->endpoint()});
  }

  router_config.listen = common::Endpoint::tcp("127.0.0.1", 0);
  router_config.vnodes = kVnodes;
  router_config.accept_poll_ms = 20;
  Router router(router_config);
  router.start();

  DaemonClient client(router.endpoint());
  for (std::size_t e = 0; e < entities.size(); ++e) {
    expect_identical_verdicts(client.score(entity_request(e, false)),
                              in_process.score(entity_request(e, false)),
                              /*compare_entity_index=*/true);
  }

  // Unknown shard: typed no-op.
  EXPECT_FALSE(client.drain("no-such-shard").drained);

  // Drain shard 0 in-band. Its keys — and ONLY its keys — move to shard 1
  // (bounded movement is the ring property hash_ring_test pins; here it is
  // observed end to end).
  const wire::DrainReply reply = client.drain(kShardNames[0]);
  EXPECT_TRUE(reply.drained);
  for (const std::string& entity : entities) {
    EXPECT_EQ(router.shard_for(entity), kShardNames[1]) << entity;
  }

  // The mesh keeps serving every entity, still bitwise, still generation 0.
  for (std::size_t e = 0; e < entities.size(); ++e) {
    const ScoreResponse after = client.score(entity_request(e, false));
    EXPECT_EQ(after.generation, 0u);
    expect_identical_verdicts(after, in_process.score(entity_request(e, false)),
                              /*compare_entity_index=*/true);
  }

  const wire::StatsSnapshot stats = client.stats();
  EXPECT_EQ(value_of(stats, "serve.router.shards"), 1u);
  EXPECT_EQ(value_of(stats,
                     std::string("serve.router.shard.") + kShardNames[0] + ".draining"),
            1u);

  // Draining the same shard again: no longer on the ring.
  EXPECT_FALSE(client.drain(kShardNames[0]).drained);

  router.stop();
  for (std::size_t s = 0; s < 2; ++s) {
    shards[s]->stop();
    std::filesystem::remove_all(roots[s]);
  }
}

}  // namespace
}  // namespace goodones::serve
