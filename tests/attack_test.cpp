#include <gtest/gtest.h>

#include <cmath>

#include "attack/campaign.hpp"
#include "attack/evasion.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "data/timeseries.hpp"
#include "data/window.hpp"
#include "domains/bgms/cohort.hpp"
#include "domains/bgms/glucose_state.hpp"
#include "predict/forecaster.hpp"

namespace goodones::attack {
namespace {

// The generic attack is exercised here with its default (BGMS-calibrated)
// semantics; channel constants come from the BGMS layout.
using bgms::kBasal;
using bgms::kBolus;
using bgms::kCarbs;
using bgms::kCgm;

/// Analytic stand-in for the DNN: predicts a weighted mean of the CGM
/// channel with recency weighting. Lets attack tests assert exact behavior
/// without training a network.
class LinearCgmModel final : public predict::Forecaster {
 public:
  explicit LinearCgmModel(double damping = 1.0) : damping_(damping) {}

  double predict(const nn::Matrix& x) const override {
    double weight_sum = 0.0;
    double value = 0.0;
    for (std::size_t t = 0; t < x.rows(); ++t) {
      const double w = static_cast<double>(t + 1);
      value += w * x(t, kCgm);
      weight_sum += w;
    }
    return damping_ * value / weight_sum;
  }

  nn::Matrix input_gradient(const nn::Matrix& x) const override {
    nn::Matrix grad(x.rows(), x.cols());
    double weight_sum = 0.0;
    for (std::size_t t = 0; t < x.rows(); ++t) weight_sum += static_cast<double>(t + 1);
    for (std::size_t t = 0; t < x.rows(); ++t) {
      grad(t, kCgm) = damping_ * static_cast<double>(t + 1) / weight_sum;
    }
    return grad;
  }

 private:
  double damping_;
};

data::Window make_window(double cgm_level, data::Regime regime,
                         std::size_t steps = 12) {
  data::Window w;
  w.features = nn::Matrix(steps, bgms::kNumChannels);
  for (std::size_t t = 0; t < steps; ++t) {
    w.features(t, kCgm) = cgm_level;
    w.features(t, kBasal) = 0.9;
  }
  w.target_value = cgm_level;
  w.regime = regime;
  return w;
}

TEST(Evasion, SucceedsOnPliableModelFasting) {
  const LinearCgmModel model;
  AttackConfig config;
  config.max_edits = 12;  // unconstrained budget: the pliable model must fall
  const EvasionAttack attack{config};
  const auto result = attack.attack_window(model, make_window(100.0, data::Regime::kBaseline));
  EXPECT_TRUE(result.success);
  EXPECT_GT(result.adversarial_prediction, config.harm_threshold);
  EXPECT_GT(result.edits, 0u);
  EXPECT_NEAR(result.benign_prediction, 100.0, 1e-9);
}

TEST(Evasion, RespectsFastingConstraintBox) {
  const LinearCgmModel model;
  const EvasionAttack attack{AttackConfig{}};
  const auto window = make_window(95.0, data::Regime::kBaseline);
  const auto result = attack.attack_window(model, window);
  for (std::size_t t = 0; t < window.features.rows(); ++t) {
    const double original = window.features(t, kCgm);
    const double manipulated = result.adversarial_features(t, kCgm);
    if (manipulated != original) {
      EXPECT_GE(manipulated, 125.0);
      EXPECT_LE(manipulated, 499.0);
    }
  }
}

TEST(Evasion, RespectsPostprandialConstraintBox) {
  const LinearCgmModel model;
  const EvasionAttack attack{AttackConfig{}};
  const auto window = make_window(140.0, data::Regime::kActive);
  const auto result = attack.attack_window(model, window);
  for (std::size_t t = 0; t < window.features.rows(); ++t) {
    const double original = window.features(t, kCgm);
    const double manipulated = result.adversarial_features(t, kCgm);
    if (manipulated != original) {
      EXPECT_GE(manipulated, 180.0);
      EXPECT_LE(manipulated, 499.0);
    }
  }
  if (result.success) EXPECT_GT(result.adversarial_prediction, 180.0);
}

TEST(Evasion, OnlyTouchesCgmChannel) {
  const LinearCgmModel model;
  const EvasionAttack attack{AttackConfig{}};
  const auto window = make_window(100.0, data::Regime::kBaseline);
  const auto result = attack.attack_window(model, window);
  for (std::size_t t = 0; t < window.features.rows(); ++t) {
    for (const std::size_t c : {kBasal, kBolus, kCarbs}) {
      ASSERT_DOUBLE_EQ(result.adversarial_features(t, c), window.features(t, c));
    }
  }
}

TEST(Evasion, FailsAgainstStronglyDampedModel) {
  // Damping 0.2: even all-499 inputs predict < 100 -- far below the harm bar.
  const LinearCgmModel model(0.2);
  const EvasionAttack attack{AttackConfig{}};
  const auto result = attack.attack_window(model, make_window(100.0, data::Regime::kBaseline));
  EXPECT_FALSE(result.success);
  EXPECT_LT(result.adversarial_prediction, 125.0);
}

TEST(Evasion, StopsEarlyOnceSuccessful) {
  const LinearCgmModel model;
  AttackConfig config;
  config.max_edits = 12;
  config.harm_threshold = 200.0;  // low harm bar: crossed within two edits
  const EvasionAttack attack{config};
  const auto result = attack.attack_window(model, make_window(120.0, data::Regime::kBaseline));
  ASSERT_TRUE(result.success);
  EXPECT_LE(result.edits, 2u);
}

TEST(Evasion, EditBudgetIsRespected) {
  const LinearCgmModel model(0.2);  // never succeeds -> exhausts budget
  AttackConfig config;
  config.max_edits = 3;
  const EvasionAttack attack{config};
  const auto window = make_window(100.0, data::Regime::kBaseline);
  const auto result = attack.attack_window(model, window);
  EXPECT_LE(result.edits, 3u);
  std::size_t changed = 0;
  for (std::size_t t = 0; t < window.features.rows(); ++t) {
    changed += result.adversarial_features(t, kCgm) != window.features(t, kCgm);
  }
  EXPECT_LE(changed, 3u);
}

class SearchKindSweep : public ::testing::TestWithParam<SearchKind> {};

TEST_P(SearchKindSweep, AllStrategiesBreakThePliableModel) {
  const LinearCgmModel model;
  AttackConfig config;
  config.search = GetParam();
  config.max_edits = 12;
  const EvasionAttack attack{config};
  const auto result = attack.attack_window(model, make_window(90.0, data::Regime::kBaseline));
  EXPECT_TRUE(result.success) << "search kind " << static_cast<int>(GetParam());
  EXPECT_GT(result.adversarial_prediction, config.harm_threshold);
}

TEST_P(SearchKindSweep, AdversarialPredictionNeverBelowBenign) {
  const LinearCgmModel model(0.5);
  AttackConfig config;
  config.search = GetParam();
  const EvasionAttack attack{config};
  const auto result = attack.attack_window(model, make_window(80.0, data::Regime::kBaseline));
  EXPECT_GE(result.adversarial_prediction, result.benign_prediction - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllSearchKinds, SearchKindSweep,
                         ::testing::Values(SearchKind::kOrderedGreedy, SearchKind::kGreedy,
                                           SearchKind::kBeam, SearchKind::kGradientGuided));

TEST(Evasion, BeamAtLeastMatchesOrderedGreedy) {
  const LinearCgmModel model(0.62);  // borderline: needs several edits
  AttackConfig greedy_config;
  greedy_config.search = SearchKind::kOrderedGreedy;
  AttackConfig beam_config;
  beam_config.search = SearchKind::kBeam;
  beam_config.beam_width = 6;
  const auto window = make_window(100.0, data::Regime::kBaseline);
  const auto greedy = EvasionAttack{greedy_config}.attack_window(model, window);
  const auto beam = EvasionAttack{beam_config}.attack_window(model, window);
  EXPECT_GE(beam.adversarial_prediction, greedy.adversarial_prediction - 1e-9);
}

TEST(Evasion, RejectsDegenerateConfig) {
  AttackConfig config;
  config.value_candidates = 1;
  EXPECT_THROW(EvasionAttack{config}, common::PreconditionError);
  config = AttackConfig{};
  config.max_edits = 0;
  EXPECT_THROW(EvasionAttack{config}, common::PreconditionError);
}

TEST(Campaign, AttacksOnlyNonHyperWindows) {
  const LinearCgmModel model;
  std::vector<data::Window> windows;
  windows.push_back(make_window(100.0, data::Regime::kBaseline));  // normal
  windows.push_back(make_window(60.0, data::Regime::kBaseline));   // hypo
  windows.push_back(make_window(200.0, data::Regime::kBaseline));  // hyper: skipped
  CampaignConfig config;
  config.window_step = 1;
  config.attack.max_edits = 12;
  common::ThreadPool pool(2);
  const auto outcomes = run_campaign(model, windows, config, pool);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].true_state, data::StateLabel::kNormal);
  EXPECT_EQ(outcomes[1].true_state, data::StateLabel::kLow);
}

TEST(Campaign, WindowStepSubsamples) {
  const LinearCgmModel model;
  std::vector<data::Window> windows;
  for (int i = 0; i < 10; ++i) windows.push_back(make_window(100.0, data::Regime::kBaseline));
  CampaignConfig config;
  config.window_step = 3;
  common::ThreadPool pool(2);
  EXPECT_EQ(run_campaign(model, windows, config, pool).size(), 4u);  // 0,3,6,9
}

TEST(Campaign, SummaryBucketsByOriginAndContext) {
  const LinearCgmModel model;
  std::vector<data::Window> windows;
  windows.push_back(make_window(100.0, data::Regime::kBaseline));      // normal fasting
  windows.push_back(make_window(100.0, data::Regime::kActive)); // normal pp
  windows.push_back(make_window(60.0, data::Regime::kBaseline));       // hypo fasting
  CampaignConfig config;
  config.window_step = 1;
  config.attack.max_edits = 12;
  common::ThreadPool pool(2);
  const auto rates = summarize(run_campaign(model, windows, config, pool));
  EXPECT_EQ(rates.normal_baseline_attempts, 1u);
  EXPECT_EQ(rates.normal_active_attempts, 1u);
  EXPECT_EQ(rates.low_baseline_attempts, 1u);
  EXPECT_EQ(rates.low_active_attempts, 0u);
  // The pliable model is always broken.
  EXPECT_DOUBLE_EQ(rates.normal_baseline_rate(), 1.0);
  EXPECT_DOUBLE_EQ(rates.low_baseline_rate(), 1.0);
  EXPECT_DOUBLE_EQ(rates.overall_rate(), 1.0);
}

TEST(Campaign, RatesZeroWhenNoAttempts) {
  const SuccessRates empty;
  EXPECT_DOUBLE_EQ(empty.normal_baseline_rate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.overall_rate(), 0.0);
}

TEST(PredictionIsHigh, FollowsRegimeThresholds) {
  const data::StateThresholds thresholds = bgms::glycemic_thresholds();
  EXPECT_TRUE(prediction_is_high(130.0, data::Regime::kBaseline, thresholds));
  EXPECT_FALSE(prediction_is_high(130.0, data::Regime::kActive, thresholds));
  EXPECT_TRUE(prediction_is_high(181.0, data::Regime::kActive, thresholds));
}

}  // namespace
}  // namespace goodones::attack
