#include "nn/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace goodones::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, common::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (double& x : m.row(r)) x = rng.uniform(-2.0, 2.0);
  }
  return m;
}

/// Naive triple-loop reference multiply.
Matrix reference_matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) sum += a(i, k) * b(k, j);
      out(i, j) = sum;
    }
  }
  return out;
}

void expect_matrices_near(const Matrix& a, const Matrix& b, double tol = 1e-12) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      ASSERT_NEAR(a(r, c), b(r, c), tol) << "at (" << r << "," << c << ")";
    }
  }
}

TEST(Matrix, ConstructionZeroInitialized) {
  const Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, InitializerListLayout) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, InitializerListRejectsRagged) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), common::PreconditionError);
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix m(2, 2);
  auto row = m.row(1);
  row[0] = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 5.0);
}

TEST(Matrix, MatmulMatchesReference) {
  common::Rng rng(5);
  const Matrix a = random_matrix(7, 5, rng);
  const Matrix b = random_matrix(5, 9, rng);
  expect_matrices_near(matmul(a, b), reference_matmul(a, b));
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(4, 2);
  EXPECT_THROW((void)matmul(a, b), common::PreconditionError);
}

TEST(Matrix, MatmulTransAMatchesExplicitTranspose) {
  common::Rng rng(7);
  const Matrix a = random_matrix(6, 4, rng);
  const Matrix b = random_matrix(6, 3, rng);
  expect_matrices_near(matmul_trans_a(a, b), reference_matmul(a.transposed(), b));
}

TEST(Matrix, MatmulTransBMatchesExplicitTranspose) {
  common::Rng rng(9);
  const Matrix a = random_matrix(4, 5, rng);
  const Matrix b = random_matrix(7, 5, rng);
  expect_matrices_near(matmul_trans_b(a, b), reference_matmul(a, b.transposed()));
}

TEST(Matrix, AccumulateVariantsAddToExisting) {
  common::Rng rng(11);
  const Matrix a = random_matrix(3, 3, rng);
  const Matrix b = random_matrix(3, 3, rng);
  Matrix out(3, 3, 1.0);
  matmul_accumulate(a, b, out);
  const Matrix expected = reference_matmul(a, b) + Matrix(3, 3, 1.0);
  expect_matrices_near(out, expected);
}

TEST(Matrix, TransposeInvolution) {
  common::Rng rng(13);
  const Matrix a = random_matrix(4, 6, rng);
  expect_matrices_near(a.transposed().transposed(), a);
}

TEST(Matrix, AdditionAndSubtraction) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 12.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 4.0);
}

TEST(Matrix, ShapeMismatchOnElementwiseThrows) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, common::PreconditionError);
  EXPECT_THROW(a -= b, common::PreconditionError);
  EXPECT_THROW(a.hadamard_inplace(b), common::PreconditionError);
}

TEST(Matrix, ScalarMultiplication) {
  Matrix a{{1.0, -2.0}};
  a *= 3.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a(0, 1), -6.0);
}

TEST(Matrix, HadamardProduct) {
  Matrix a{{2.0, 3.0}};
  const Matrix b{{4.0, 5.0}};
  a.hadamard_inplace(b);
  EXPECT_DOUBLE_EQ(a(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 15.0);
}

TEST(Matrix, SquaredNorm) {
  const Matrix a{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.squared_norm(), 25.0);
}

TEST(Matrix, AxpyAccumulates) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{10.0, 10.0, 10.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 16.0);
}

TEST(Matrix, AxpySizeMismatchThrows) {
  const std::vector<double> x{1.0};
  std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(axpy(1.0, x, y), common::PreconditionError);
}

struct MatmulShape {
  std::size_t m, k, n;
};

class MatmulShapeSweep : public ::testing::TestWithParam<MatmulShape> {};

TEST_P(MatmulShapeSweep, AllVariantsAgreeWithReference) {
  const auto [m, k, n] = GetParam();
  common::Rng rng(m * 100 + k * 10 + n);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  expect_matrices_near(matmul(a, b), reference_matmul(a, b));
  expect_matrices_near(matmul_trans_a(a.transposed(), b), reference_matmul(a, b));
  expect_matrices_near(matmul_trans_b(a, b.transposed()), reference_matmul(a, b));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulShapeSweep,
                         ::testing::Values(MatmulShape{1, 1, 1}, MatmulShape{1, 5, 1},
                                           MatmulShape{3, 1, 4}, MatmulShape{8, 8, 8},
                                           MatmulShape{2, 16, 3}, MatmulShape{16, 2, 16},
                                           MatmulShape{5, 7, 11}));

}  // namespace
}  // namespace goodones::nn
