// End-to-end test for the adaptive serving loop: an AdaptiveController taps
// the ScoringService's feedback hook, profiles live risk online, and when
// the partition moves it publishes a new bundle generation via lock-free
// hot-swap. The hard guarantees pinned here:
//
//   * Atomic generations under concurrency: every ScoreResponse is
//     bitwise-reproducible against exactly ONE generation's persisted
//     bundle — never a mix of old routing and new detectors.
//   * Post-swap routing reflects the profiler's reassessed partition.
//   * Controller state round-trips through the registry: a restarted
//     controller resumes profiling bitwise-identically without
//     re-observing history.
//   * ModelRegistry::latest() resolves the newest published generation.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/framework.hpp"
#include "data/window.hpp"
#include "domains/synthtel/adapter.hpp"
#include "serve/adaptive_controller.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"

namespace goodones::serve {
namespace {

std::shared_ptr<const core::DomainAdapter> mini_fleet() {
  static const auto domain = std::make_shared<synthtel::SynthtelDomain>(2);
  return domain;
}

core::FrameworkConfig mini_config() {
  core::FrameworkConfig config = mini_fleet()->prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 1200;
  config.population.test_steps = 400;
  config.population.seed = 17;
  config.registry.forecaster.hidden = 8;
  config.registry.forecaster.head_hidden = 6;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 8;
  config.registry.aggregate_window_step = 50;
  config.profiling_campaign.window_step = 10;
  config.evaluation_campaign.window_step = 10;
  config.detector_benign_stride = 10;
  config.detectors.knn.max_points_per_class = 400;
  config.random_runs = 1;
  config.random_victims = 2;
  config.seed = 777;
  return config;
}

core::RiskProfilingFramework& framework() {
  static core::RiskProfilingFramework instance(mini_fleet(), mini_config());
  return instance;
}

std::filesystem::path registry_root(const char* suffix) {
  return std::filesystem::temp_directory_path() /
         (std::string("goodones_serve_adaptive_") + suffix);
}

/// Per-entity traffic: a few clean held-out windows, or the same windows
/// with the reading channel pinned to the attack box ceiling (maximal
/// serving-time risk — what sustained evasion pressure looks like).
ScoreRequest entity_request(std::size_t entity, bool manipulated) {
  auto& fw = framework();
  const auto& entities = fw.entities();
  data::WindowConfig window_config = fw.config().window;
  window_config.step = 30;
  ScoreRequest request;
  request.entity = entities[entity].name;
  const auto windows = data::make_windows(entities[entity].test, window_config);
  const core::DomainSpec& spec = fw.domain().spec();
  for (std::size_t i = 0; i < windows.size() && i < 4; ++i) {
    TelemetryWindow window{windows[i].features, windows[i].regime};
    if (manipulated) {
      for (std::size_t t = 0; t < window.features.rows(); ++t) {
        window.features(t, spec.target_channel) = spec.attack_box_max;
      }
    }
    request.windows.push_back(std::move(window));
  }
  return request;
}

void expect_identical_response(const ScoreResponse& a, const ScoreResponse& b) {
  EXPECT_EQ(a.entity_index, b.entity_index);
  EXPECT_EQ(a.cluster, b.cluster);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t w = 0; w < a.windows.size(); ++w) {
    // Bitwise: a generation's persisted bundle must reproduce its verdicts
    // without drifting by even one ulp.
    EXPECT_EQ(a.windows[w].forecast, b.windows[w].forecast) << "w=" << w;
    EXPECT_EQ(a.windows[w].residual, b.windows[w].residual) << "w=" << w;
    EXPECT_EQ(a.windows[w].anomaly_score, b.windows[w].anomaly_score) << "w=" << w;
    EXPECT_EQ(a.windows[w].flagged, b.windows[w].flagged) << "w=" << w;
    EXPECT_EQ(a.windows[w].risk, b.windows[w].risk) << "w=" << w;
  }
}

TEST(AdaptiveServing, ConcurrentRefreshSwapsGenerationsAtomically) {
  const auto root = registry_root("e2e");
  std::filesystem::remove_all(root);
  auto& fw = framework();

  ServingModel gen0 = build_serving_model(fw, detect::DetectorKind::kKnn);
  const std::vector<Cluster> gen0_routing = gen0.entity_cluster;
  const std::size_t n_entities = gen0.entity_names.size();

  RegistryKey base_key = registry_key(fw, detect::DetectorKind::kKnn);
  const ModelRegistry registry(root);
  registry.save(gen0);  // generation 0 must be reloadable for verification

  ScoringService service(clone_serving_model(gen0), {.threads = 2});
  AdaptiveControllerConfig config;
  config.profiler.decay = 0.6;      // adapt fast enough for a short test
  config.profiler.hysteresis = 0.05;
  config.reassess_every_windows = 32;
  AdaptiveController controller(service, config, /*rebuilder=*/{}, &registry);

  // Evasion pressure lands exactly on the entities the offline pipeline
  // called less vulnerable: the online partition MUST end up different
  // from the trained gen-0 routing, forcing a refresh.
  std::vector<bool> manipulated(n_entities, false);
  for (std::size_t e = 0; e < n_entities; ++e) {
    manipulated[e] = gen0_routing[e] == Cluster::kLessVulnerable;
  }

  struct Recorded {
    ScoreRequest request;
    ScoreResponse response;
  };
  std::mutex recorded_mutex;
  std::vector<Recorded> recorded;

  const auto drive_traffic = [&](std::size_t iterations, bool flip) {
    std::vector<Recorded> local;
    for (std::size_t iter = 0; iter < iterations; ++iter) {
      std::vector<ScoreRequest> requests;
      for (std::size_t e = 0; e < n_entities; ++e) {
        requests.push_back(entity_request(e, flip ? !manipulated[e] : manipulated[e]));
      }
      const auto responses =
          service.score_batch(std::span<const ScoreRequest>(requests));
      for (std::size_t r = 0; r < requests.size(); ++r) {
        local.push_back({requests[r], responses[r]});
      }
    }
    const std::lock_guard<std::mutex> lock(recorded_mutex);
    recorded.insert(recorded.end(), std::make_move_iterator(local.begin()),
                    std::make_move_iterator(local.end()));
  };

  // Phase 1: concurrent traffic while the controller decides to refresh.
  // The cadence trip only ENQUEUES for the refresh worker, so settle the
  // queue before asserting on published generations.
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) threads.emplace_back(drive_traffic, 12, false);
    for (auto& thread : threads) thread.join();
  }
  controller.drain();
  ASSERT_GE(controller.refreshes(), 1u) << "sustained pressure must force a refresh";
  const std::size_t phase1_refreshes = controller.refreshes();

  // The published routing must reflect the profiler's partition: pressured
  // entities routed more-vulnerable, quiet ones less-vulnerable.
  {
    const auto model = service.model();
    const auto profiler = controller.profiler_snapshot();
    std::vector<Cluster> expected(n_entities, Cluster::kLessVulnerable);
    for (const std::size_t p : profiler.partition().more_vulnerable) {
      expected[p] = Cluster::kMoreVulnerable;
    }
    EXPECT_EQ(model->entity_cluster, expected);
    EXPECT_NE(model->entity_cluster, gen0_routing);
    // Every pressured entity must now route more-vulnerable. (A clean
    // entity MAY join them if its natural forecast-error risk lands on the
    // high side of the max-gap split — that is the profiler's call.)
    for (std::size_t e = 0; e < n_entities; ++e) {
      if (manipulated[e]) {
        EXPECT_EQ(model->entity_cluster[e], Cluster::kMoreVulnerable) << "entity " << e;
      }
    }
  }

  // Phase 2: the pressure flips sides; the loop must adapt again (the
  // paper's "regularly reassesses ... and continuously updates").
  for (std::size_t iter = 0; iter < 80 && controller.refreshes() == phase1_refreshes;
       ++iter) {
    drive_traffic(1, /*flip=*/true);
  }
  controller.drain();  // the last trip may still be on the worker
  EXPECT_GT(controller.refreshes(), phase1_refreshes);
  // One more round so the newest generation also serves recorded traffic
  // (the batch that triggered the swap was still answered by its own
  // snapshot — that is the point of the atomicity guarantee). Drain first
  // so no further publish can land after we snapshot the generation set.
  controller.drain();
  drive_traffic(1, /*flip=*/true);
  controller.drain();

  // Every recorded response must be bitwise-reproducible against exactly
  // the generation it claims — scored again through a fresh service pinned
  // to that generation's persisted bundle. This is the no-mixed-fleet
  // guarantee: routing, detectors and forecasters all belong to one
  // coherent published generation.
  std::set<std::uint64_t> generations;
  for (const auto& record : recorded) generations.insert(record.response.generation);
  EXPECT_GE(generations.size(), 2u) << "test must span a hot swap";

  for (const std::uint64_t generation : generations) {
    RegistryKey key = base_key;
    key.generation = generation;
    ASSERT_TRUE(registry.contains(key)) << "generation " << generation;
    const ScoringService pinned(registry.load(key), {.threads = 1});
    for (const auto& record : recorded) {
      if (record.response.generation != generation) continue;
      const ScoreResponse replay = pinned.score(record.request);
      ASSERT_EQ(replay.generation, generation);
      expect_identical_response(record.response, replay);
      // Routing consistency inside the response: the served cluster is the
      // pinned generation's routing entry for that entity.
      EXPECT_EQ(record.response.cluster,
                pinned.model()->entity_cluster[record.response.entity_index]);
    }
  }

  // latest() resolves the newest published generation.
  const auto newest = registry.latest(base_key);
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->generation, *generations.rbegin());

  std::filesystem::remove_all(root);
}

TEST(AdaptiveServing, RetrainingRebuilderRetrainsPerClusterDetectors) {
  auto& fw = framework();
  ServingModel gen0 = build_serving_model(fw, detect::DetectorKind::kKnn);
  ScoringService service(std::move(gen0), {.threads = 1});

  AdaptiveControllerConfig config;
  config.profiler.decay = 0.5;
  config.auto_refresh = false;  // drive the loop manually
  config.reassess_every_windows = 1;
  // The issue's full refresh: retrain both cluster detectors on the new
  // partition through the framework's train_detector seam.
  AdaptiveController controller(
      service, config,
      [&fw](const core::VulnerabilityClusters& partition, std::uint64_t generation) {
        return build_serving_model(fw, detect::DetectorKind::kKnn, partition, generation);
      });

  const std::size_t n = service.model()->entity_names.size();
  const std::vector<Cluster> before = service.model()->entity_cluster;
  // Pressure exactly the trained less-vulnerable entities.
  for (std::size_t iter = 0; iter < 6; ++iter) {
    for (std::size_t e = 0; e < n; ++e) {
      (void)service.score(entity_request(e, before[e] == Cluster::kLessVulnerable));
    }
  }
  ASSERT_TRUE(controller.maybe_refresh());
  EXPECT_EQ(service.generation(), 1u);
  EXPECT_NE(service.model()->entity_cluster, before);
  // The rebuilt bundle serves (its retrained detectors answer).
  const ScoreResponse response = service.score(entity_request(0, false));
  EXPECT_EQ(response.generation, 1u);
  ASSERT_FALSE(response.windows.empty());
}

TEST(AdaptiveServing, ControllerStateRoundTripsThroughRegistry) {
  const auto root = registry_root("state");
  std::filesystem::remove_all(root);
  auto& fw = framework();
  const ModelRegistry registry(root);

  ServingModel model = build_serving_model(fw, detect::DetectorKind::kKnn);
  const std::size_t n = model.entity_names.size();

  ScoringService service(clone_serving_model(model), {.threads = 1});
  AdaptiveControllerConfig config;
  config.auto_refresh = false;
  AdaptiveController controller(service, config);

  for (std::size_t iter = 0; iter < 4; ++iter) {
    for (std::size_t e = 0; e < n; ++e) {
      (void)service.score(entity_request(e, e % 2 == 0));
    }
  }
  controller.save_state(registry);

  // A restarted controller (fresh service, fresh profiler) resumes with
  // bitwise-identical levels and batch counts WITHOUT re-observing history.
  ScoringService restarted_service(clone_serving_model(model), {.threads = 1});
  AdaptiveController restarted(restarted_service, config, /*rebuilder=*/{}, &registry);

  const auto original = controller.profiler_snapshot();
  auto resumed = restarted.profiler_snapshot();
  ASSERT_EQ(resumed.num_victims(), original.num_victims());
  for (std::size_t e = 0; e < n; ++e) {
    EXPECT_EQ(resumed.level(e), original.level(e)) << "entity " << e;
    EXPECT_EQ(resumed.batches(e), original.batches(e)) << "entity " << e;
  }
  // And both derive the same partition from that state.
  auto original_copy = original;
  EXPECT_EQ(original_copy.reassess().more_vulnerable, resumed.reassess().more_vulnerable);

  std::filesystem::remove_all(root);
}

TEST(AdaptiveServing, ProfilerSerializationRejectsRosterDrift) {
  risk::OnlineRiskProfiler profiler({"A", "B"}, {});
  profiler.observe_risks(0, std::vector<double>{1.0, 2.0});
  profiler.observe_risks(1, std::vector<double>{5.0});
  std::stringstream buffer;
  profiler.save(buffer);

  risk::OnlineRiskProfiler same({"A", "B"}, {});
  buffer.seekg(0);
  same.load(buffer);
  EXPECT_EQ(same.level(0), profiler.level(0));
  EXPECT_EQ(same.level(1), profiler.level(1));
  EXPECT_EQ(same.batches(0), 1u);

  risk::OnlineRiskProfiler renamed({"A", "C"}, {});
  buffer.seekg(0);
  EXPECT_THROW(renamed.load(buffer), common::SerializationError);

  risk::OnlineRiskProfiler resized({"A", "B", "C"}, {});
  buffer.seekg(0);
  EXPECT_THROW(resized.load(buffer), common::SerializationError);
}

TEST(AdaptiveServing, AutoRefreshFailureDoesNotAbortScoring) {
  auto& fw = framework();
  ServingModel gen0 = build_serving_model(fw, detect::DetectorKind::kKnn);
  const std::vector<Cluster> routing = gen0.entity_cluster;
  ScoringService service(std::move(gen0), {.threads = 1});

  AdaptiveControllerConfig config;
  config.profiler.decay = 0.5;
  config.reassess_every_windows = 8;  // trip quickly
  AdaptiveController controller(
      service, config,
      [](const core::VulnerabilityClusters&, std::uint64_t) -> ServingModel {
        throw common::PreconditionError("rebuilder exploded");
      });

  // Pressure that forces a partition move -> the hook trips a refresh ->
  // the rebuilder throws (on the refresh worker). The scoring calls must
  // still return verdicts on the current generation.
  const std::size_t n = service.model()->entity_names.size();
  for (std::size_t iter = 0; iter < 6; ++iter) {
    for (std::size_t e = 0; e < n; ++e) {
      const ScoreResponse response =
          service.score(entity_request(e, routing[e] == Cluster::kLessVulnerable));
      EXPECT_EQ(response.generation, 0u);  // never published
      EXPECT_FALSE(response.windows.empty());
    }
  }
  controller.drain();  // every worker attempt has failed and been contained
  EXPECT_EQ(controller.refreshes(), 0u);
  // The explicit path surfaces the failure to its caller.
  EXPECT_THROW((void)controller.maybe_refresh(), common::PreconditionError);
}

TEST(AdaptiveServing, ResetStateDiscardsEvidence) {
  auto& fw = framework();
  ServingModel model = build_serving_model(fw, detect::DetectorKind::kKnn);
  ScoringService service(std::move(model), {.threads = 1});
  AdaptiveControllerConfig config;
  config.auto_refresh = false;
  AdaptiveController controller(service, config);

  (void)service.score(entity_request(0, true));
  ASSERT_GT(controller.profiler_snapshot().batches(0), 0u);
  controller.reset_state();
  EXPECT_EQ(controller.profiler_snapshot().batches(0), 0u);
  EXPECT_EQ(controller.profiler_snapshot().level(0), 0.0);
}

TEST(AdaptiveServing, SwapRejectsForeignRoster) {
  auto& fw = framework();
  ServingModel model = build_serving_model(fw, detect::DetectorKind::kKnn);
  ServingModel renamed = clone_serving_model(model);
  renamed.entity_names.back() = "IMPOSTOR";
  ScoringService service(std::move(model), {.threads = 1});
  EXPECT_THROW(service.swap_model(std::move(renamed)), common::PreconditionError);
}

TEST(AdaptiveServing, RebuildRoutingValidatesPartitions) {
  auto& fw = framework();
  const std::size_t n = fw.entities().size();

  core::VulnerabilityClusters valid;
  for (std::size_t i = 0; i < n; ++i) {
    (i % 2 == 0 ? valid.less_vulnerable : valid.more_vulnerable).push_back(i);
  }
  const auto canonical = fw.rebuild_routing(valid);
  EXPECT_TRUE(std::is_sorted(canonical.less_vulnerable.begin(),
                             canonical.less_vulnerable.end()));

  core::VulnerabilityClusters duplicate = valid;
  duplicate.more_vulnerable.push_back(0);  // 0 already less-vulnerable
  EXPECT_THROW((void)fw.rebuild_routing(duplicate), common::PreconditionError);

  core::VulnerabilityClusters missing = valid;
  missing.less_vulnerable.pop_back();
  EXPECT_THROW((void)fw.rebuild_routing(missing), common::PreconditionError);

  core::VulnerabilityClusters unknown = valid;
  unknown.more_vulnerable.push_back(n + 7);
  EXPECT_THROW((void)fw.rebuild_routing(unknown), common::PreconditionError);
}

}  // namespace
}  // namespace goodones::serve
