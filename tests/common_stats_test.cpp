#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace goodones::common {
namespace {

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  RunningStats rs;
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats rs;
  rs.add(7.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(3);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(10.0, 3.0);
    whole.add(x);
    (i < 250 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, VarianceRequiresTwo) {
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Stats, KnownVariance) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample variance with n-1 denominator.
  EXPECT_NEAR(variance(xs), 4.571428571428571, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(4.571428571428571), 1e-12);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, MedianThrowsOnEmpty) {
  EXPECT_THROW((void)median({}), PreconditionError);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(Stats, QuantileRejectsBadInputs) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)quantile(xs, -0.1), PreconditionError);
  EXPECT_THROW((void)quantile(xs, 1.1), PreconditionError);
  EXPECT_THROW((void)quantile({}, 0.5), PreconditionError);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::vector<double> negated;
  for (const double x : b) negated.push_back(-x);
  EXPECT_NEAR(pearson(a, negated), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceIsZero) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Stats, PearsonLengthMismatchThrows) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW((void)pearson(a, b), PreconditionError);
}

TEST(Stats, MinMaxNormalizeMapsToUnit) {
  const std::vector<double> xs{5.0, 10.0, 7.5};
  const auto out = min_max_normalize(xs);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(Stats, MinMaxNormalizeConstantMapsToHalf) {
  const std::vector<double> xs{4.0, 4.0, 4.0};
  for (const double v : min_max_normalize(xs)) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(Stats, MinMaxNormalizeEmptyStaysEmpty) {
  EXPECT_TRUE(min_max_normalize({}).empty());
}

TEST(Stats, RmseAndMaeKnownValues) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 2.0, 5.0};
  EXPECT_NEAR(rmse(a, b), std::sqrt((1.0 + 0.0 + 4.0) / 3.0), 1e-12);
  EXPECT_NEAR(mae(a, b), 1.0, 1e-12);
}

TEST(Stats, RmseIdenticalIsZero) {
  const std::vector<double> a{1.0, 2.0};
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
  EXPECT_DOUBLE_EQ(mae(a, a), 0.0);
}

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, QuantileIsMonotoneAndBounded) {
  Rng rng(71);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(0.0, 5.0));
  const double q = GetParam();
  const double value = quantile(xs, q);
  EXPECT_GE(value, quantile(xs, 0.0));
  EXPECT_LE(value, quantile(xs, 1.0));
  if (q >= 0.1) EXPECT_GE(value, quantile(xs, q - 0.1) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grid, QuantileSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0));

}  // namespace
}  // namespace goodones::common
