// Round-trip guarantees for every persisted artifact: stream primitives,
// each nn layer's parameters, both scalers, the forecaster artifact and all
// three detector kinds. The bar is bitwise equality — a reloaded model must
// score a fixed probe set exactly as the saved one did, because the serving
// path promises verdict parity with in-memory scoring.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/scaler.hpp"
#include "detect/knn.hpp"
#include "detect/madgan.hpp"
#include "detect/ocsvm.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/serialize.hpp"
#include "predict/bilstm_forecaster.hpp"
#include "risk/schedule.hpp"

namespace goodones {
namespace {

using common::SerializationError;

nn::Matrix random_matrix(std::size_t rows, std::size_t cols, common::Rng& rng) {
  nn::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (double& v : m.row(r)) v = rng.uniform(-2.0, 2.0);
  }
  return m;
}

void expect_bitwise_equal(const nn::Matrix& a, const nn::Matrix& b) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

// --- stream primitives ------------------------------------------------------

TEST(StreamPrimitives, RoundTripAllScalarKinds) {
  std::stringstream stream;
  nn::write_u32(stream, 0xDEADBEEF);
  nn::write_u64(stream, 0x123456789ABCDEF0ULL);
  nn::write_f64(stream, -3.14159e200);
  nn::write_string(stream, "synthtel-6");
  nn::write_f64_vector(stream, {1.0, -2.5, 1e-300});
  nn::write_u8_vector(stream, {0, 1, 1, 0});

  EXPECT_EQ(nn::read_u32(stream), 0xDEADBEEFu);
  EXPECT_EQ(nn::read_u64(stream), 0x123456789ABCDEF0ULL);
  EXPECT_EQ(nn::read_f64(stream), -3.14159e200);
  EXPECT_EQ(nn::read_string(stream), "synthtel-6");
  EXPECT_EQ(nn::read_f64_vector(stream), (std::vector<double>{1.0, -2.5, 1e-300}));
  EXPECT_EQ(nn::read_u8_vector(stream), (std::vector<std::uint8_t>{0, 1, 1, 0}));
}

TEST(StreamPrimitives, TruncationThrowsTypedError) {
  std::stringstream stream;
  nn::write_u32(stream, 7);
  (void)nn::read_u32(stream);
  EXPECT_THROW((void)nn::read_u32(stream), SerializationError);
  EXPECT_THROW((void)nn::read_f64(stream), SerializationError);
  EXPECT_THROW((void)nn::read_string(stream), SerializationError);
}

TEST(StreamPrimitives, ImplausibleLengthPrefixThrowsInsteadOfAllocating) {
  std::stringstream stream;
  nn::write_u64(stream, std::uint64_t{1} << 40);  // claims ~10^12 doubles
  EXPECT_THROW((void)nn::read_f64_vector(stream), SerializationError);
}

TEST(StreamPrimitives, ExpectU32NamesTheMismatchedField) {
  std::stringstream stream;
  nn::write_u32(stream, 1);
  try {
    nn::expect_u32(stream, 2, "bundle version");
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("bundle version"), std::string::npos);
  }
}

// --- nn layers --------------------------------------------------------------

TEST(ParamRoundTrip, DenseLayerBitwise) {
  common::Rng rng(11);
  nn::Dense saved(5, 3, nn::Activation::kTanh, rng);
  nn::Dense loaded(5, 3, nn::Activation::kTanh, rng);  // different init stream

  std::stringstream stream;
  nn::write_parameters(stream, saved.parameters());
  nn::read_parameters(stream, loaded.parameters());

  const nn::Matrix probe = random_matrix(4, 5, rng);
  expect_bitwise_equal(saved.forward(probe), loaded.forward(probe));
}

TEST(ParamRoundTrip, LstmBitwise) {
  common::Rng rng(12);
  nn::Lstm saved(3, 6, rng);
  nn::Lstm loaded(3, 6, rng);

  std::stringstream stream;
  nn::write_parameters(stream, saved.parameters());
  nn::read_parameters(stream, loaded.parameters());

  const nn::Matrix probe = random_matrix(9, 3, rng);
  expect_bitwise_equal(saved.forward(probe), loaded.forward(probe));
}

TEST(ParamRoundTrip, BiLstmBitwise) {
  common::Rng rng(13);
  nn::BiLstm saved(2, 5, rng);
  nn::BiLstm loaded(2, 5, rng);

  std::stringstream stream;
  nn::write_parameters(stream, saved.parameters());
  nn::read_parameters(stream, loaded.parameters());

  const nn::Matrix probe = random_matrix(7, 2, rng);
  expect_bitwise_equal(saved.forward(probe), loaded.forward(probe));
}

TEST(ParamRoundTrip, ShapeMismatchThrowsTypedErrorAndLeavesTargetUntouched) {
  common::Rng rng(14);
  nn::Dense saved(4, 2, nn::Activation::kLinear, rng);
  nn::Dense target(2, 4, nn::Activation::kLinear, rng);
  const nn::Matrix probe = random_matrix(1, 2, rng);
  const nn::Matrix before = target.forward(probe);

  std::stringstream stream;
  nn::write_parameters(stream, saved.parameters());
  EXPECT_THROW(nn::read_parameters(stream, target.parameters()), SerializationError);

  // All-or-nothing: the failed load must not have modified any buffer.
  expect_bitwise_equal(target.forward(probe), before);
}

// --- scalers ----------------------------------------------------------------

TEST(ScalerRoundTrip, MinMaxBitwise) {
  common::Rng rng(15);
  data::MinMaxScaler saved;
  saved.fit(random_matrix(30, 4, rng));
  saved.set_column_range(1, -10.0, 42.5);

  std::stringstream stream;
  saved.save(stream);
  data::MinMaxScaler loaded;
  loaded.load(stream);

  ASSERT_EQ(loaded.num_features(), saved.num_features());
  const nn::Matrix probe = random_matrix(6, 4, rng);
  expect_bitwise_equal(saved.transform(probe), loaded.transform(probe));
  expect_bitwise_equal(saved.inverse_transform(probe), loaded.inverse_transform(probe));
}

TEST(ScalerRoundTrip, StandardBitwise) {
  common::Rng rng(16);
  data::StandardScaler saved;
  saved.fit(random_matrix(25, 3, rng));

  std::stringstream stream;
  saved.save(stream);
  data::StandardScaler loaded;
  loaded.load(stream);

  const nn::Matrix probe = random_matrix(5, 3, rng);
  expect_bitwise_equal(saved.transform(probe), loaded.transform(probe));
}

TEST(ScalerRoundTrip, WrongTagThrowsTypedError) {
  common::Rng rng(17);
  data::MinMaxScaler minmax;
  minmax.fit(random_matrix(4, 2, rng));
  std::stringstream stream;
  minmax.save(stream);

  data::StandardScaler standard;
  EXPECT_THROW(standard.load(stream), SerializationError);
}

// --- severity schedule ------------------------------------------------------

TEST(ScheduleRoundTrip, NameAndTableBitwise) {
  const risk::SeveritySchedule saved = risk::SeveritySchedule::exponential(3.0);
  std::stringstream stream;
  saved.save(stream);
  risk::SeveritySchedule loaded;
  loaded.load(stream);

  EXPECT_EQ(loaded.name(), saved.name());
  for (const auto benign : {data::StateLabel::kLow, data::StateLabel::kNormal,
                            data::StateLabel::kHigh}) {
    for (const auto adv : {data::StateLabel::kLow, data::StateLabel::kNormal,
                           data::StateLabel::kHigh}) {
      EXPECT_EQ(loaded.coefficient(benign, adv), saved.coefficient(benign, adv));
    }
  }
}

// --- forecaster artifact ----------------------------------------------------

predict::BiLstmForecaster tiny_forecaster(std::uint64_t seed) {
  common::Rng rng(seed);
  predict::ForecasterConfig config;
  config.hidden = 6;
  config.head_hidden = 4;
  config.target_channel = 0;
  config.seed = seed;
  data::MinMaxScaler scaler;
  scaler.fit(random_matrix(40, 3, rng));
  scaler.set_column_range(0, -4.0, 4.0);
  return predict::BiLstmForecaster(config, std::move(scaler));
}

TEST(ForecasterArtifact, RoundTripBitwisePredictions) {
  common::Rng rng(21);
  const predict::BiLstmForecaster saved = tiny_forecaster(100);

  std::stringstream stream;
  saved.save_artifact(stream);
  const predict::BiLstmForecaster loaded = predict::BiLstmForecaster::load_artifact(stream);

  EXPECT_EQ(loaded.num_channels(), saved.num_channels());
  EXPECT_EQ(loaded.config().hidden, saved.config().hidden);
  for (int i = 0; i < 5; ++i) {
    const nn::Matrix probe = random_matrix(12, 3, rng);
    EXPECT_EQ(loaded.predict(probe), saved.predict(probe)) << "probe " << i;
  }
  // Batched path parity survives the round trip too.
  std::vector<nn::Matrix> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(random_matrix(12, 3, rng));
  const auto saved_batch = saved.predict_batch(batch);
  const auto loaded_batch = loaded.predict_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(loaded_batch[i], saved_batch[i]);
  }
}

TEST(ForecasterArtifact, TruncatedStreamThrowsTypedError) {
  const predict::BiLstmForecaster saved = tiny_forecaster(101);
  std::stringstream stream;
  saved.save_artifact(stream);
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)predict::BiLstmForecaster::load_artifact(truncated),
               SerializationError);
}

TEST(ForecasterArtifact, WrongTagThrowsTypedError) {
  std::stringstream stream;
  nn::write_u32(stream, 0x12345678);
  EXPECT_THROW((void)predict::BiLstmForecaster::load_artifact(stream), SerializationError);
}

// --- detectors --------------------------------------------------------------

/// Fixed probe set at sample granularity (1 x dim rows).
std::vector<nn::Matrix> sample_probes(std::size_t dim, std::size_t count,
                                      std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<nn::Matrix> probes;
  probes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) probes.push_back(random_matrix(1, dim, rng));
  return probes;
}

void expect_identical_scores(const detect::AnomalyDetector& saved,
                             const detect::AnomalyDetector& loaded,
                             const std::vector<nn::Matrix>& probes) {
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(loaded.anomaly_score(probes[i]), saved.anomaly_score(probes[i]))
        << "probe " << i;
    EXPECT_EQ(loaded.flags(probes[i]), saved.flags(probes[i])) << "probe " << i;
  }
}

TEST(DetectorRoundTrip, KnnBitwise) {
  detect::KnnConfig config;
  config.k = 5;
  config.minkowski_p = 1.5;  // non-default: config must round-trip too
  detect::KnnDetector saved(config);
  saved.fit(sample_probes(4, 40, 31), sample_probes(4, 25, 32));

  std::stringstream stream;
  saved.save(stream);
  detect::KnnDetector loaded;  // default config, overwritten by load
  loaded.load(stream);

  EXPECT_EQ(loaded.train_size(), saved.train_size());
  expect_identical_scores(saved, loaded, sample_probes(4, 20, 33));
}

TEST(DetectorRoundTrip, OcsvmBitwise) {
  detect::OcsvmConfig config;
  config.kernel = detect::Kernel::kRbf;  // non-default kernel
  config.nu = 0.3;
  detect::OneClassSvm saved(config);
  saved.fit(sample_probes(5, 60, 41), {});

  std::stringstream stream;
  saved.save(stream);
  detect::OneClassSvm loaded;  // default (sigmoid) config, overwritten
  loaded.load(stream);

  EXPECT_EQ(loaded.rho(), saved.rho());
  EXPECT_EQ(loaded.num_support_vectors(), saved.num_support_vectors());
  expect_identical_scores(saved, loaded, sample_probes(5, 20, 42));
}

detect::MadGanConfig tiny_madgan_config() {
  detect::MadGanConfig config;
  config.epochs = 1;
  config.num_signals = 2;
  config.seq_len = 4;
  config.latent_dim = 2;
  config.hidden = 5;
  config.batch_size = 8;
  config.inversion_steps = 3;
  config.max_train_windows = 16;
  config.calibration_windows = 8;
  config.seed = 77;
  return config;
}

std::vector<nn::Matrix> window_probes(std::size_t seq_len, std::size_t signals,
                                      std::size_t count, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<nn::Matrix> probes;
  probes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    nn::Matrix w(seq_len, signals);
    for (std::size_t t = 0; t < seq_len; ++t) {
      for (double& v : w.row(t)) v = rng.uniform(0.0, 1.0);
    }
    probes.push_back(std::move(w));
  }
  return probes;
}

TEST(DetectorRoundTrip, MadGanBitwise) {
  const detect::MadGanConfig config = tiny_madgan_config();
  detect::MadGan saved(config);
  saved.fit(window_probes(config.seq_len, config.num_signals, 20, 51), {});

  std::stringstream stream;
  saved.save(stream);
  detect::MadGan loaded;  // default (12 x 4) shapes, rebuilt by load
  loaded.load(stream);

  EXPECT_EQ(loaded.threshold(), saved.threshold());
  const auto probes = window_probes(config.seq_len, config.num_signals, 6, 52);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(loaded.discrimination_score(probes[i]), saved.discrimination_score(probes[i]));
    EXPECT_EQ(loaded.reconstruction_error(probes[i]), saved.reconstruction_error(probes[i]));
  }
  expect_identical_scores(saved, loaded, probes);
}

TEST(DetectorRoundTrip, FlagsFromScoreAgreesWithFlags) {
  // The serving hot path computes anomaly_score once and derives the
  // verdict via flags_from_score; the two must never disagree.
  detect::KnnDetector knn;
  knn.fit(sample_probes(4, 30, 71), sample_probes(4, 30, 72));
  detect::OneClassSvm ocsvm;
  ocsvm.fit(sample_probes(4, 50, 73), {});
  const detect::MadGanConfig config = tiny_madgan_config();
  detect::MadGan madgan(config);
  madgan.fit(window_probes(config.seq_len, config.num_signals, 20, 74), {});

  for (const auto& probe : sample_probes(4, 25, 75)) {
    EXPECT_EQ(knn.flags_from_score(probe, knn.anomaly_score(probe)), knn.flags(probe));
    EXPECT_EQ(ocsvm.flags_from_score(probe, ocsvm.anomaly_score(probe)),
              ocsvm.flags(probe));
  }
  for (const auto& probe : window_probes(config.seq_len, config.num_signals, 6, 76)) {
    EXPECT_EQ(madgan.flags_from_score(probe, madgan.anomaly_score(probe)),
              madgan.flags(probe));
  }
}

TEST(DetectorRoundTrip, InvalidOcsvmKernelInArtifactThrowsTypedError) {
  // An out-of-range kernel enum would make kernel_value() silently return
  // 0 for every pair; load must reject it instead.
  std::stringstream stream;
  nn::write_u32(stream, 0x4F435356);  // "OCSV" tag
  nn::write_u32(stream, 9);           // kernel: out of range
  nn::write_u32(stream, 0);           // gamma mode
  detect::OneClassSvm detector;
  EXPECT_THROW(detector.load(stream), SerializationError);
}

TEST(DetectorRoundTrip, InvalidKnnConfigInArtifactThrowsTypedError) {
  detect::KnnDetector saved;
  saved.fit(sample_probes(3, 10, 81), sample_probes(3, 10, 82));
  std::stringstream stream;
  saved.save(stream);
  // Rewrite the stream with k = 0 (which would vote 0/0 = NaN).
  std::string bytes = stream.str();
  std::stringstream tampered;
  nn::write_u32(tampered, 0x4B4E4E44);  // "KNND" tag
  nn::write_u64(tampered, 0);           // k = 0
  tampered << bytes.substr(4 + 8);      // rest of the original payload
  detect::KnnDetector target;
  EXPECT_THROW(target.load(tampered), SerializationError);
}

TEST(ScalerRoundTrip, NonFiniteRangeInArtifactThrowsTypedError) {
  std::stringstream minmax_stream;
  nn::write_u32(minmax_stream, 0x4D4D5343);  // "MMSC" tag
  nn::write_f64_vector(minmax_stream, {0.0});
  nn::write_f64_vector(minmax_stream, {std::numeric_limits<double>::quiet_NaN()});
  data::MinMaxScaler minmax;
  EXPECT_THROW(minmax.load(minmax_stream), SerializationError);

  std::stringstream standard_stream;
  nn::write_u32(standard_stream, 0x53545343);  // "STSC" tag
  nn::write_f64_vector(standard_stream, {1.0});
  nn::write_f64_vector(standard_stream, {0.0});  // std = 0 divides by zero
  data::StandardScaler standard;
  EXPECT_THROW(standard.load(standard_stream), SerializationError);
}

TEST(DetectorRoundTrip, KindTagMismatchThrowsTypedError) {
  detect::KnnDetector knn;
  knn.fit(sample_probes(3, 10, 61), sample_probes(3, 10, 62));
  std::stringstream stream;
  knn.save(stream);

  detect::OneClassSvm wrong_kind;
  EXPECT_THROW(wrong_kind.load(stream), SerializationError);
}

TEST(DetectorRoundTrip, TruncatedDetectorStreamThrowsAndLeavesTargetUsable) {
  detect::KnnDetector saved;
  saved.fit(sample_probes(3, 12, 63), sample_probes(3, 12, 64));
  std::stringstream stream;
  saved.save(stream);
  const std::string full = stream.str();

  detect::KnnDetector target;
  target.fit(sample_probes(3, 8, 65), sample_probes(3, 8, 66));
  const auto probes = sample_probes(3, 5, 67);
  std::vector<double> before;
  for (const auto& p : probes) before.push_back(target.anomaly_score(p));

  std::stringstream truncated(full.substr(0, full.size() - 7));
  EXPECT_THROW(target.load(truncated), SerializationError);
  // The failed load left the previously fitted state fully intact.
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(target.anomaly_score(probes[i]), before[i]);
  }
}

}  // namespace
}  // namespace goodones
