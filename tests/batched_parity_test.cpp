// Pins the batched inference path to the scalar reference: batched
// predictions must match scalar predict() within 1e-12, and every search
// strategy must produce identical AttackResult decisions with batched probes
// on and off, on the BGMS regression fixture.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "attack/campaign.hpp"
#include "attack/evasion.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/lstm.hpp"
#include "data/timeseries.hpp"
#include "data/window.hpp"
#include "domains/bgms/cohort.hpp"
#include "domains/bgms/patient.hpp"
#include "predict/bilstm_forecaster.hpp"

namespace goodones {
namespace {

struct Fixture {
  std::vector<data::Window> windows;
  std::unique_ptr<predict::BiLstmForecaster> model;

  Fixture() {
    bgms::CohortConfig cohort;
    cohort.train_steps = 800;
    cohort.test_steps = 260;
    cohort.seed = 5;
    const auto trace = bgms::generate_patient({bgms::Subset::kA, 1}, cohort);
    const auto train_series = bgms::to_series(trace.train);

    predict::ForecasterConfig config;
    config.hidden = 12;
    config.head_hidden = 8;
    config.epochs = 3;
    config.seed = 33;
    model = std::make_unique<predict::BiLstmForecaster>(
        config, predict::fit_forecaster_scaler(train_series.values, bgms::kCgm,
                                               bgms::kMinGlucose, bgms::kMaxGlucose));
    data::WindowConfig window_config;
    window_config.step = 3;
    model->train(data::make_windows(train_series, window_config));
    windows = data::make_windows(bgms::to_series(trace.test), window_config);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

void expect_same_decisions(const attack::AttackResult& scalar,
                           const attack::AttackResult& batched) {
  EXPECT_EQ(scalar.success, batched.success);
  EXPECT_EQ(scalar.edits, batched.edits);
  EXPECT_NEAR(scalar.benign_prediction, batched.benign_prediction, 1e-12);
  EXPECT_NEAR(scalar.adversarial_prediction, batched.adversarial_prediction, 1e-12);
  ASSERT_TRUE(scalar.adversarial_features.same_shape(batched.adversarial_features));
  for (std::size_t t = 0; t < scalar.adversarial_features.rows(); ++t) {
    for (std::size_t c = 0; c < scalar.adversarial_features.cols(); ++c) {
      ASSERT_DOUBLE_EQ(scalar.adversarial_features(t, c),
                       batched.adversarial_features(t, c))
          << "t=" << t << " c=" << c;
    }
  }
}

TEST(BatchedParity, PredictBatchMatchesScalarOnBenignWindows) {
  const auto& f = fixture();
  std::vector<nn::Matrix> batch;
  for (std::size_t i = 0; i < std::min<std::size_t>(f.windows.size(), 24); ++i) {
    batch.push_back(f.windows[i].features);
  }
  const auto batched = f.model->predict_batch(batch);
  ASSERT_EQ(batched.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR(batched[i], f.model->predict(batch[i]), 1e-12) << "window " << i;
  }
}

TEST(BatchedParity, PredictBatchMatchesScalarOnProbeBatches) {
  // Probe-shaped batches: copies of one window with a single edited
  // timestep, exactly what the greedy searches enqueue.
  const auto& f = fixture();
  const nn::Matrix& base = f.windows[7].features;
  for (const std::size_t t : {base.rows() - 1, base.rows() / 2, std::size_t{0}}) {
    std::vector<nn::Matrix> probes(6, base);
    for (std::size_t vi = 0; vi < probes.size(); ++vi) {
      probes[vi](t, bgms::kCgm) = 150.0 + 50.0 * static_cast<double>(vi);
    }
    const auto batched = f.model->predict_batch(probes);
    for (std::size_t vi = 0; vi < probes.size(); ++vi) {
      EXPECT_NEAR(batched[vi], f.model->predict(probes[vi]), 1e-12)
          << "t=" << t << " vi=" << vi;
    }
  }
}

class BatchedParitySweep : public ::testing::TestWithParam<attack::SearchKind> {};

TEST_P(BatchedParitySweep, AttackResultsIdenticalWithAndWithoutBatching) {
  const auto& f = fixture();
  attack::AttackConfig scalar_config;
  scalar_config.search = GetParam();
  scalar_config.batched_probes = false;
  attack::AttackConfig batched_config = scalar_config;
  batched_config.batched_probes = true;

  const attack::EvasionAttack scalar_attack(scalar_config);
  const attack::EvasionAttack batched_attack(batched_config);
  std::size_t attacked = 0;
  for (std::size_t i = 0; i < f.windows.size() && attacked < 20; i += 2, ++attacked) {
    expect_same_decisions(scalar_attack.attack_window(*f.model, f.windows[i]),
                          batched_attack.attack_window(*f.model, f.windows[i]));
  }
  EXPECT_GT(attacked, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSearchKinds, BatchedParitySweep,
                         ::testing::Values(attack::SearchKind::kOrderedGreedy,
                                           attack::SearchKind::kGreedy,
                                           attack::SearchKind::kBeam,
                                           attack::SearchKind::kGradientGuided));

TEST(BatchedParity, CampaignOutcomesIdenticalWithAndWithoutBatching) {
  const auto& f = fixture();
  attack::CampaignConfig scalar_config;
  scalar_config.window_step = 2;
  scalar_config.attack.batched_probes = false;
  attack::CampaignConfig batched_config = scalar_config;
  batched_config.attack.batched_probes = true;
  batched_config.shard_size = 3;  // sharding must not change outcomes either

  common::ThreadPool pool(4);
  const auto scalar = attack::run_campaign(*f.model, f.windows, scalar_config, pool);
  const auto batched = attack::run_campaign(*f.model, f.windows, batched_config, pool);
  ASSERT_EQ(scalar.size(), batched.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    expect_same_decisions(scalar[i].attack, batched[i].attack);
    EXPECT_EQ(scalar[i].true_state, batched[i].true_state);
    EXPECT_EQ(scalar[i].adversarial_predicted_state, batched[i].adversarial_predicted_state);
  }
}

TEST(BatchedParity, CrossWindowMergedBatchMatchesPerWindowBatches) {
  // The lockstep campaign driver merges several base windows' probe sets
  // into one predict_batch call. Every merged prediction must be bitwise
  // identical to what the same probes produce in per-window calls.
  const auto& f = fixture();
  const std::size_t bases[] = {3, 9, 14};
  const double values[] = {40.0, 120.0, 250.0, 380.0};

  std::vector<std::vector<nn::Matrix>> per_window;
  std::vector<nn::Matrix> merged;
  for (const std::size_t b : bases) {
    ASSERT_LT(b, f.windows.size());
    const nn::Matrix& base = f.windows[b].features;
    std::vector<nn::Matrix> probes;
    for (std::size_t t = base.rows() - 3; t < base.rows(); ++t) {
      for (const double value : values) {
        probes.push_back(base);
        probes.back()(t, 0) = value;
      }
    }
    merged.insert(merged.end(), probes.begin(), probes.end());
    per_window.push_back(std::move(probes));
  }

  const std::vector<double> merged_preds = f.model->predict_batch(merged);
  ASSERT_EQ(merged_preds.size(), merged.size());
  std::size_t offset = 0;
  for (std::size_t w = 0; w < per_window.size(); ++w) {
    const std::vector<double> solo = f.model->predict_batch(per_window[w]);
    for (std::size_t vi = 0; vi < solo.size(); ++vi) {
      EXPECT_EQ(merged_preds[offset + vi], solo[vi]) << "base=" << bases[w] << " vi=" << vi;
    }
    offset += solo.size();
  }
  EXPECT_EQ(offset, merged_preds.size());
}

TEST(BatchedParity, CampaignOutcomesIdenticalWithAndWithoutCrossWindowMerge) {
  const auto& f = fixture();
  attack::CampaignConfig merged_config;
  merged_config.window_step = 2;
  merged_config.attack.batched_probes = true;
  merged_config.shard_size = 4;  // >= 2 windows per shard so lockstep engages
  merged_config.cross_window_probes = true;
  attack::CampaignConfig per_window_config = merged_config;
  per_window_config.cross_window_probes = false;

  common::ThreadPool pool(4);
  const auto merged = attack::run_campaign(*f.model, f.windows, merged_config, pool);
  const auto solo = attack::run_campaign(*f.model, f.windows, per_window_config, pool);
  ASSERT_EQ(merged.size(), solo.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    expect_same_decisions(solo[i].attack, merged[i].attack);
    EXPECT_EQ(solo[i].attack.probes, merged[i].attack.probes) << "window " << i;
    EXPECT_EQ(solo[i].true_state, merged[i].true_state);
    EXPECT_EQ(solo[i].adversarial_predicted_state, merged[i].adversarial_predicted_state);
  }
}

// --- randomized PrefixState property coverage -------------------------------
//
// The fixture tests above pin the batched path on realistic BGMS windows;
// these push the PrefixState/advance/run_batch contract into randomized
// space: for arbitrary (seeded) window lengths, prefix split points and
// batch sizes, resuming from a snapshot must match a fresh run from t = 0
// within 1e-12.

nn::Matrix random_sequence(std::size_t rows, std::size_t cols, common::Rng& rng) {
  nn::Matrix m(rows, cols);
  for (std::size_t t = 0; t < rows; ++t) {
    for (double& v : m.row(t)) v = rng.uniform(-1.5, 1.5);
  }
  return m;
}

TEST(PrefixStateProperty, AdvanceFromSnapshotMatchesFreshRun) {
  common::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 60; ++trial) {
    const auto input_dim = static_cast<std::size_t>(rng.uniform_int(1, 5));
    const auto hidden_dim = static_cast<std::size_t>(rng.uniform_int(1, 16));
    const auto seq_len = static_cast<std::size_t>(rng.uniform_int(2, 20));
    const auto split = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(seq_len)));
    const auto batch = static_cast<std::size_t>(rng.uniform_int(1, 7));

    nn::Lstm lstm(input_dim, hidden_dim, rng);

    // Batch of sequences sharing rows [0, split); random tails.
    const nn::Matrix base = random_sequence(seq_len, input_dim, rng);
    std::vector<nn::Matrix> sequences(batch, base);
    for (auto& seq : sequences) {
      for (std::size_t t = split; t < seq_len; ++t) {
        for (double& v : seq.row(t)) v = rng.uniform(-1.5, 1.5);
      }
    }

    // Snapshot after the shared prefix, then batch-resume from it.
    nn::Lstm::PrefixState state = lstm.initial_state();
    if (split > 0) {
      nn::Matrix prefix(split, input_dim);
      for (std::size_t t = 0; t < split; ++t) {
        const auto src = base.row(t);
        std::copy(src.begin(), src.end(), prefix.row(t).begin());
      }
      lstm.advance(state, prefix);
    }
    EXPECT_EQ(state.steps, split);
    const nn::Matrix finals =
        lstm.run_batch(std::span<const nn::Matrix>(sequences), state, split);

    ASSERT_EQ(finals.rows(), batch);
    for (std::size_t b = 0; b < batch; ++b) {
      const nn::Matrix reference = lstm.forward(sequences[b]);
      for (std::size_t h = 0; h < hidden_dim; ++h) {
        EXPECT_NEAR(finals(b, h), reference(seq_len - 1, h), 1e-12)
            << "trial=" << trial << " split=" << split << " b=" << b << " h=" << h;
      }
    }
  }
}

TEST(PrefixStateProperty, ChunkedAdvanceMatchesSingleAdvance) {
  // advance() must compose: consuming a sequence in arbitrary random chunks
  // reaches exactly the state of consuming it in one shot.
  common::Rng rng(0xFACADE);
  for (int trial = 0; trial < 40; ++trial) {
    const auto input_dim = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const auto hidden_dim = static_cast<std::size_t>(rng.uniform_int(1, 12));
    const auto seq_len = static_cast<std::size_t>(rng.uniform_int(1, 18));
    nn::Lstm lstm(input_dim, hidden_dim, rng);
    const nn::Matrix sequence = random_sequence(seq_len, input_dim, rng);

    nn::Lstm::PrefixState whole = lstm.initial_state();
    lstm.advance(whole, sequence);

    nn::Lstm::PrefixState chunked = lstm.initial_state();
    std::size_t consumed = 0;
    while (consumed < seq_len) {
      const auto remaining = static_cast<std::int64_t>(seq_len - consumed);
      const auto chunk = static_cast<std::size_t>(rng.uniform_int(1, remaining));
      nn::Matrix block(chunk, input_dim);
      for (std::size_t t = 0; t < chunk; ++t) {
        const auto src = sequence.row(consumed + t);
        std::copy(src.begin(), src.end(), block.row(t).begin());
      }
      lstm.advance(chunked, block);
      consumed += chunk;
    }

    ASSERT_EQ(chunked.steps, whole.steps);
    for (std::size_t h = 0; h < hidden_dim; ++h) {
      // Chunking must be bit-identical: the same additions happen in the
      // same order regardless of how the rows are grouped.
      EXPECT_EQ(chunked.hidden[h], whole.hidden[h]) << "trial=" << trial;
      EXPECT_EQ(chunked.cell[h], whole.cell[h]) << "trial=" << trial;
    }
  }
}

TEST(PrefixStateProperty, FullPrefixReplicatesSnapshot) {
  // first_row == rows(): every sequence is entirely shared; run_batch must
  // return the snapshot state replicated per sequence.
  common::Rng rng(0xBEEF);
  nn::Lstm lstm(3, 8, rng);
  const nn::Matrix base = random_sequence(10, 3, rng);
  std::vector<nn::Matrix> sequences(4, base);

  nn::Lstm::PrefixState state = lstm.initial_state();
  lstm.advance(state, base);
  const nn::Matrix finals =
      lstm.run_batch(std::span<const nn::Matrix>(sequences), state, base.rows());
  ASSERT_EQ(finals.rows(), sequences.size());
  for (std::size_t b = 0; b < sequences.size(); ++b) {
    for (std::size_t h = 0; h < lstm.hidden_dim(); ++h) {
      EXPECT_EQ(finals(b, h), state.hidden[h]);
    }
  }
}

TEST(BatchedParity, ProbeAccountingCountsWholeBatches) {
  // Not a timing test (CI noise), but the probe accounting must show the
  // batched path actually batching: ordered greedy issues the benign
  // baseline plus whole value_candidates-sized batches per probed position.
  const auto& f = fixture();
  attack::AttackConfig config;
  config.batched_probes = true;
  const attack::EvasionAttack attack(config);
  const auto result = attack.attack_window(*f.model, f.windows[1]);
  ASSERT_GE(result.probes, 1u);  // at least the benign baseline
  EXPECT_EQ((result.probes - 1) % config.value_candidates, 0u);
}

}  // namespace
}  // namespace goodones
