#include <gtest/gtest.h>

#include <cmath>

#include "cluster/distance.hpp"
#include "cluster/hierarchical.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace goodones::cluster {
namespace {

TEST(Euclidean, KnownValue) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(euclidean(a, b), 5.0);
}

TEST(Euclidean, IdentityAndSymmetry) {
  const std::vector<double> a{1.0, -2.0, 3.0};
  const std::vector<double> b{4.0, 0.0, -1.0};
  EXPECT_DOUBLE_EQ(euclidean(a, a), 0.0);
  EXPECT_DOUBLE_EQ(euclidean(a, b), euclidean(b, a));
}

TEST(Euclidean, LengthMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)euclidean(a, b), common::PreconditionError);
}

TEST(Dtw, IdenticalSeriesIsZero) {
  const std::vector<double> a{1.0, 2.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(dtw(a, a), 0.0);
}

TEST(Dtw, HandlesUnequalLengths) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 1.5, 2.0, 2.5, 3.0};
  EXPECT_GE(dtw(a, b), 0.0);
  EXPECT_TRUE(std::isfinite(dtw(a, b)));
}

TEST(Dtw, AlignsShiftedSeriesBetterThanEuclidean) {
  // A sharp pulse shifted by two steps: DTW warps it back, L2 cannot.
  std::vector<double> a(20, 0.0);
  std::vector<double> b(20, 0.0);
  a[5] = 10.0;
  b[7] = 10.0;
  EXPECT_LT(dtw(a, b), euclidean(a, b));
}

TEST(Dtw, SymmetricForEqualLengths) {
  const std::vector<double> a{1.0, 3.0, 2.0, 5.0};
  const std::vector<double> b{2.0, 2.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(dtw(a, b), dtw(b, a));
}

TEST(Dtw, BandConstraintIncreasesOrKeepsCost) {
  std::vector<double> a(30, 0.0);
  std::vector<double> b(30, 0.0);
  a[5] = 10.0;
  b[14] = 10.0;
  // A narrow band cannot reach the optimal warp -> cost at least as large.
  EXPECT_GE(dtw(a, b, 2), dtw(a, b, 0));
}

TEST(Dtw, RejectsEmpty) {
  const std::vector<double> a;
  const std::vector<double> b{1.0};
  EXPECT_THROW((void)dtw(a, b), common::PreconditionError);
}

TEST(DistanceMatrix, SymmetricWithZeroDiagonal) {
  const std::vector<std::vector<double>> series{
      {1.0, 2.0, 3.0}, {1.5, 2.5, 3.5}, {10.0, 10.0, 10.0}};
  for (const auto metric : {ProfileDistance::kEuclidean, ProfileDistance::kDtw}) {
    const nn::Matrix d = distance_matrix(series, metric);
    ASSERT_EQ(d.rows(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(d(i, i), 0.0);
      for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(d(i, j), d(j, i));
    }
    // The far-away series must be far from both near ones.
    EXPECT_GT(d(0, 2), d(0, 1));
  }
}

/// Builds a distance matrix with two well-separated blobs of sizes na, nb.
nn::Matrix two_blob_distances(std::size_t na, std::size_t nb, common::Rng& rng) {
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < na; ++i) {
    points.push_back({rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)});
  }
  for (std::size_t i = 0; i < nb; ++i) {
    points.push_back({rng.normal(10.0, 0.3), rng.normal(10.0, 0.3)});
  }
  return distance_matrix(points, ProfileDistance::kEuclidean);
}

class LinkageSweep : public ::testing::TestWithParam<Linkage> {};

TEST_P(LinkageSweep, RecoversTwoBlobs) {
  common::Rng rng(11);
  const nn::Matrix d = two_blob_distances(4, 5, rng);
  const Dendrogram dendrogram = agglomerate(d, GetParam());
  EXPECT_EQ(dendrogram.num_leaves(), 9u);
  EXPECT_EQ(dendrogram.merges().size(), 8u);

  const auto labels = dendrogram.cut(2);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (std::size_t i = 5; i < 9; ++i) EXPECT_EQ(labels[i], labels[4]);
  EXPECT_NE(labels[0], labels[4]);
}

TEST_P(LinkageSweep, SuggestsTwoClustersForTwoBlobs) {
  common::Rng rng(13);
  const nn::Matrix d = two_blob_distances(6, 6, rng);
  const Dendrogram dendrogram = agglomerate(d, GetParam());
  EXPECT_EQ(dendrogram.suggest_cluster_count(), 2u);
}

TEST_P(LinkageSweep, MergeSizesAccumulateToAllLeaves) {
  common::Rng rng(17);
  const nn::Matrix d = two_blob_distances(3, 4, rng);
  const Dendrogram dendrogram = agglomerate(d, GetParam());
  EXPECT_EQ(dendrogram.merges().back().size, 7u);
}

INSTANTIATE_TEST_SUITE_P(AllLinkages, LinkageSweep,
                         ::testing::Values(Linkage::kSingle, Linkage::kComplete,
                                           Linkage::kAverage, Linkage::kWard));

TEST(Dendrogram, CutIntoOneClusterIsUniform) {
  common::Rng rng(19);
  const Dendrogram dendrogram = agglomerate(two_blob_distances(3, 3, rng), Linkage::kAverage);
  const auto labels = dendrogram.cut(1);
  for (const auto l : labels) EXPECT_EQ(l, 0u);
}

TEST(Dendrogram, CutIntoNClustersIsAllSingletons) {
  common::Rng rng(23);
  const Dendrogram dendrogram = agglomerate(two_blob_distances(3, 2, rng), Linkage::kComplete);
  const auto labels = dendrogram.cut(5);
  std::vector<bool> seen(5, false);
  for (const auto l : labels) seen[l] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Dendrogram, CutRejectsOutOfRangeK) {
  common::Rng rng(29);
  const Dendrogram dendrogram = agglomerate(two_blob_distances(2, 2, rng), Linkage::kAverage);
  EXPECT_THROW((void)dendrogram.cut(0), common::PreconditionError);
  EXPECT_THROW((void)dendrogram.cut(5), common::PreconditionError);
}

TEST(Dendrogram, HeightsAreMonotoneForAverageLinkage) {
  common::Rng rng(31);
  const Dendrogram dendrogram = agglomerate(two_blob_distances(5, 5, rng), Linkage::kAverage);
  for (std::size_t i = 1; i < dendrogram.merges().size(); ++i) {
    EXPECT_GE(dendrogram.merges()[i].height, dendrogram.merges()[i - 1].height - 1e-12);
  }
}

TEST(Dendrogram, AsciiRenderContainsAllLeafNames) {
  common::Rng rng(37);
  const Dendrogram dendrogram = agglomerate(two_blob_distances(2, 2, rng), Linkage::kAverage);
  const auto text = dendrogram.render_ascii({"p0", "p1", "p2", "p3"});
  for (const auto* name : {"p0", "p1", "p2", "p3"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("[h="), std::string::npos);
}

TEST(Dendrogram, AsciiRenderRejectsWrongNameCount) {
  common::Rng rng(41);
  const Dendrogram dendrogram = agglomerate(two_blob_distances(2, 2, rng), Linkage::kAverage);
  EXPECT_THROW((void)dendrogram.render_ascii({"only-one"}), common::PreconditionError);
}

TEST(Dendrogram, SingleLeafDegenerate) {
  const nn::Matrix d(1, 1);
  const Dendrogram dendrogram = agglomerate(d, Linkage::kAverage);
  EXPECT_EQ(dendrogram.num_leaves(), 1u);
  EXPECT_TRUE(dendrogram.merges().empty());
  EXPECT_EQ(dendrogram.cut(1).size(), 1u);
}

TEST(Agglomerate, RejectsNonSquare) {
  EXPECT_THROW((void)agglomerate(nn::Matrix(2, 3), Linkage::kAverage),
               common::PreconditionError);
}

TEST(Agglomerate, WardSeparatesUnequalVarianceBlobs) {
  common::Rng rng(43);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 6; ++i) points.push_back({rng.normal(0.0, 1.0)});
  for (int i = 0; i < 6; ++i) points.push_back({rng.normal(50.0, 1.0)});
  const Dendrogram dendrogram =
      agglomerate(distance_matrix(points, ProfileDistance::kEuclidean), Linkage::kWard);
  const auto labels = dendrogram.cut(2);
  for (int i = 1; i < 6; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (int i = 7; i < 12; ++i) EXPECT_EQ(labels[i], labels[6]);
}

}  // namespace
}  // namespace goodones::cluster
