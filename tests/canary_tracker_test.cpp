// Deterministic + chaos tests for the canary state machine (serve::CanaryTracker).
//
// The tracker is the concurrency-critical piece of the canary subsystem:
// scoring threads race begin_mirror/accumulate against install/finish from
// the lifecycle side, and the promotion policy must decide AT MOST once per
// epoch no matter how the interleaving falls. The chaos suites here drive
// seeded multi-threaded op sequences (reproducible: every thread's schedule
// is a pure function of its seed) and then assert the invariants that make
// the serving-layer guarantees hold:
//
//   * finish() succeeds at most once per epoch (no double promote/rollback);
//   * nothing is mirrored or accumulated after a finish (rollback) —
//     stale-epoch accumulations are rejected, begin_mirror returns nullopt;
//   * the final metrics equal a single-threaded recomputation of exactly
//     the accepted delta set — order-independence is what lets operators
//     trust the gauges regardless of thread scheduling;
//   * with auto_decide on, concurrent accumulations surface at most ONE
//     policy decision per epoch.
//
// The deterministic half pins the policy itself: the evidence gate, the
// breach-strike ladder to rollback, the first-clean-evaluation promote, and
// the splitmix sampling determinism (two identical streams mirror identical
// subsets; the subset survives re-install).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "serve/canary.hpp"

namespace goodones::serve {
namespace {

WindowDelta clean_delta(Cluster cluster, double risk) {
  WindowDelta delta;
  delta.cluster = cluster;
  delta.primary_risk = risk;
  delta.candidate_risk = risk;
  return delta;
}

WindowDelta breaching_delta(Cluster cluster) {
  WindowDelta delta;
  delta.cluster = cluster;
  delta.candidate_flagged = true;  // primary did not flag: pure drift
  delta.state_flip = true;
  delta.primary_risk = 0.1;
  delta.candidate_risk = 0.9;
  return delta;
}

TEST(CanaryTracker, InstallArmsAndResets) {
  CanaryTracker tracker;
  EXPECT_FALSE(tracker.armed());
  EXPECT_EQ(tracker.state(), CanaryState::kIdle);

  const std::uint64_t epoch = tracker.install(7);
  EXPECT_EQ(epoch, 1u);
  EXPECT_TRUE(tracker.armed());
  EXPECT_EQ(tracker.state(), CanaryState::kMirroring);
  EXPECT_EQ(tracker.candidate_generation(), 7u);

  const std::vector<WindowDelta> deltas{clean_delta(Cluster::kLessVulnerable, 0.2)};
  EXPECT_TRUE(tracker.accumulate(epoch, deltas).accepted);
  EXPECT_EQ(tracker.metrics().mirrored_windows, 1u);

  // Re-install: fresh epoch, all evidence gone, sampling sequences reset.
  const std::uint64_t next = tracker.install(8);
  EXPECT_EQ(next, 2u);
  EXPECT_EQ(tracker.metrics().mirrored_windows, 0u);
  EXPECT_EQ(tracker.candidate_generation(), 8u);
}

TEST(CanaryTracker, StaleEpochAndFinishedEpochAreRejected) {
  CanaryTracker tracker;
  const std::uint64_t first = tracker.install(1);
  const std::uint64_t second = tracker.install(2);
  ASSERT_NE(first, second);

  const std::vector<WindowDelta> deltas{clean_delta(Cluster::kLessVulnerable, 0.5)};
  // An accumulation carrying the abandoned epoch never lands.
  EXPECT_FALSE(tracker.accumulate(first, deltas).accepted);
  EXPECT_EQ(tracker.metrics().mirrored_windows, 0u);

  // finish() is exactly-once, and nothing mirrors after it.
  EXPECT_FALSE(tracker.finish(first));
  EXPECT_TRUE(tracker.finish(second));
  EXPECT_FALSE(tracker.finish(second));
  EXPECT_FALSE(tracker.armed());
  EXPECT_FALSE(tracker.begin_mirror("SA_0").has_value());
  EXPECT_FALSE(tracker.accumulate(second, deltas).accepted);
}

TEST(CanaryTracker, SamplingIsDeterministicPerStreamAndAcrossInstalls) {
  CanaryPolicy policy;
  policy.sample_per_million = 300000;  // a strict subset: ~30%
  policy.auto_decide = false;
  CanaryTracker a(policy);
  CanaryTracker b(policy);
  a.install(1);
  b.install(1);

  const std::vector<std::string> entities{"SA_0", "SA_1", "SB_0"};
  std::vector<bool> subset_a;
  std::vector<bool> subset_b;
  for (int seq = 0; seq < 512; ++seq) {
    for (const std::string& entity : entities) {
      subset_a.push_back(a.begin_mirror(entity).has_value());
      subset_b.push_back(b.begin_mirror(entity).has_value());
    }
  }
  // Two identical streams mirror IDENTICAL subsets — no wall clock anywhere.
  EXPECT_EQ(subset_a, subset_b);
  const std::size_t mirrored =
      static_cast<std::size_t>(std::count(subset_a.begin(), subset_a.end(), true));
  EXPECT_GT(mirrored, 0u);
  EXPECT_LT(mirrored, subset_a.size());

  // A new candidate on the same tracker replays the same subset: install()
  // resets the per-entity sequences, so every candidate is measured against
  // the same deterministic slice of an identical stream.
  a.install(2);
  std::vector<bool> subset_again;
  for (int seq = 0; seq < 512; ++seq) {
    for (const std::string& entity : entities) {
      subset_again.push_back(a.begin_mirror(entity).has_value());
    }
  }
  EXPECT_EQ(subset_a, subset_again);
}

TEST(CanaryTracker, EvidenceGateThenCleanPromote) {
  CanaryPolicy policy;
  policy.min_mirrored_windows = 8;
  policy.breach_strikes = 2;
  CanaryTracker tracker(policy);
  const std::uint64_t epoch = tracker.install(3);

  const std::vector<WindowDelta> one{clean_delta(Cluster::kMoreVulnerable, 0.3)};
  for (int i = 0; i < 7; ++i) {
    const auto result = tracker.accumulate(epoch, one);
    ASSERT_TRUE(result.accepted);
    EXPECT_FALSE(result.decision.has_value()) << "decided before the evidence gate";
  }
  const auto result = tracker.accumulate(epoch, one);  // window #8: gate opens
  ASSERT_TRUE(result.accepted);
  ASSERT_TRUE(result.decision.has_value());
  EXPECT_EQ(*result.decision, CanaryDecision::kPromote);
  EXPECT_EQ(tracker.metrics().evaluations, 1u);

  // At most one decision per epoch: evidence keeps accumulating, the
  // decision does not repeat.
  const auto more = tracker.accumulate(epoch, one);
  EXPECT_TRUE(more.accepted);
  EXPECT_FALSE(more.decision.has_value());
}

TEST(CanaryTracker, BreachStrikesDecideRollback) {
  CanaryPolicy policy;
  policy.min_mirrored_windows = 4;
  policy.breach_strikes = 3;
  policy.max_flag_rate_delta = 0.1;
  CanaryTracker tracker(policy);
  const std::uint64_t epoch = tracker.install(4);

  const std::vector<WindowDelta> bad{breaching_delta(Cluster::kLessVulnerable)};
  std::vector<CanaryDecision> decisions;
  for (int i = 0; i < 16 && decisions.empty(); ++i) {
    const auto result = tracker.accumulate(epoch, bad);
    ASSERT_TRUE(result.accepted);
    if (result.decision.has_value()) decisions.push_back(*result.decision);
  }
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions.front(), CanaryDecision::kRollback);
  // The third breaching evaluation is the one that decides (strikes = 3):
  // windows 4, 5, 6 evaluate, so the decision lands on mirrored window 6.
  EXPECT_EQ(tracker.metrics().mirrored_windows, 6u);
  EXPECT_EQ(tracker.metrics().breach_streak, 3u);
}

TEST(CanaryTracker, RiskDistanceBreachesWhenEnabled) {
  CanaryPolicy policy;
  policy.min_mirrored_windows = 4;
  policy.breach_strikes = 1;
  policy.max_flag_rate_delta = 1.0;   // flag drift can never breach
  policy.max_risk_distance = 0.25;    // distribution drift can
  CanaryTracker tracker(policy);
  const std::uint64_t epoch = tracker.install(5);

  // Identical flags, shifted risks: |0.9 - 0.1| Wasserstein = 0.8 > 0.25.
  const std::vector<WindowDelta> shifted{breaching_delta(Cluster::kMoreVulnerable)};
  std::vector<WindowDelta> quiet = shifted;
  quiet[0].candidate_flagged = false;
  std::optional<CanaryDecision> decision;
  for (int i = 0; i < 8 && !decision.has_value(); ++i) {
    decision = tracker.accumulate(epoch, quiet).decision;
  }
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(*decision, CanaryDecision::kRollback);
}

TEST(CanaryTracker, DroppedRiskSamplesAreCountedNotSilent) {
  CanaryPolicy policy;
  policy.auto_decide = false;
  policy.max_risk_samples_per_cluster = 4;
  CanaryTracker tracker(policy);
  const std::uint64_t epoch = tracker.install(6);
  const std::vector<WindowDelta> one{clean_delta(Cluster::kLessVulnerable, 0.1)};
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(tracker.accumulate(epoch, one).accepted);
  const CanaryMetrics metrics = tracker.metrics();
  const CanaryClusterMetrics& cluster = metrics.clusters[0];
  EXPECT_EQ(cluster.mirrored_windows, 10u);  // counters stay exact
  EXPECT_EQ(cluster.primary_risks.size(), 4u);
  EXPECT_EQ(cluster.dropped_risk_samples, 6u);
}

// ---------------------------------------------------------------------------
// Chaos: seeded interleavings of score/install/finish from many threads.
// ---------------------------------------------------------------------------

/// One accepted accumulation, as logged by the thread that performed it.
struct AcceptedLog {
  std::uint64_t epoch = 0;
  std::vector<WindowDelta> deltas;
};

/// Deterministic delta batch for (seed, step): the recomputation below must
/// regenerate EXACTLY what the thread accumulated.
std::vector<WindowDelta> chaos_deltas(std::uint64_t seed, std::uint64_t step) {
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + step);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_real_distribution<double> risk(0.0, 1.0);
  const std::size_t count = 1 + rng() % 3;
  std::vector<WindowDelta> deltas;
  for (std::size_t i = 0; i < count; ++i) {
    WindowDelta delta;
    delta.cluster = coin(rng) ? Cluster::kMoreVulnerable : Cluster::kLessVulnerable;
    delta.primary_flagged = coin(rng) == 1;
    delta.candidate_flagged = coin(rng) == 1;
    delta.state_flip = delta.primary_flagged != delta.candidate_flagged;
    delta.primary_risk = risk(rng);
    delta.candidate_risk = risk(rng);
    deltas.push_back(delta);
  }
  return deltas;
}

std::vector<double> sorted(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values;
}

TEST(CanaryTrackerChaos, FinishIsExactlyOncePerEpochAndMetricsAreOrderIndependent) {
  CanaryPolicy policy;
  policy.auto_decide = false;  // the lifecycle chaos; the policy race is below
  policy.sample_per_million = 1000000;  // every request mirrors: max pressure
  CanaryTracker tracker(policy);
  tracker.install(1);

  constexpr int kThreads = 6;
  constexpr int kStepsPerThread = 400;

  std::mutex log_mutex;
  std::vector<AcceptedLog> accepted;
  std::map<std::uint64_t, int> finishes;  // epoch -> successful finish count

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 schedule(0xC0FFEE00 + static_cast<std::uint64_t>(t));
      std::vector<AcceptedLog> local_accepted;
      std::vector<std::pair<std::uint64_t, bool>> local_finishes;
      for (int step = 0; step < kStepsPerThread; ++step) {
        const std::uint64_t roll = schedule() % 100;
        if (roll < 80) {
          // Score path: sample, then accumulate against the epoch the
          // sampler returned (exactly what ScoringService::mirror_one does).
          const std::string entity = "E_" + std::to_string(schedule() % 4);
          const auto epoch = tracker.begin_mirror(entity);
          if (!epoch.has_value()) continue;
          const std::uint64_t delta_seed = static_cast<std::uint64_t>(t);
          const auto deltas = chaos_deltas(delta_seed, static_cast<std::uint64_t>(step));
          if (tracker.accumulate(*epoch, std::span<const WindowDelta>(deltas)).accepted) {
            local_accepted.push_back({*epoch, deltas});
          }
        } else if (roll < 90) {
          // Lifecycle: resolve whatever epoch looks live right now. Racing
          // guesses are the point — only one can ever win per epoch.
          const std::uint64_t guess = tracker.epoch();
          const bool won = tracker.finish(guess);
          local_finishes.emplace_back(guess, won);
        } else {
          (void)tracker.install(schedule() % 1000 + 2);
        }
      }
      const std::lock_guard<std::mutex> lock(log_mutex);
      accepted.insert(accepted.end(), local_accepted.begin(), local_accepted.end());
      for (const auto& [epoch, won] : local_finishes) {
        if (won) finishes[epoch] += 1;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Invariant 1: no epoch was finished twice (the double-promote guard).
  for (const auto& [epoch, count] : finishes) {
    EXPECT_EQ(count, 1) << "epoch " << epoch << " finished " << count << " times";
  }

  // Invariant 2: the final metrics are EXACTLY the single-threaded fold of
  // the accepted accumulations tagged with the final epoch — regardless of
  // which threads accumulated them in which order.
  const CanaryMetrics metrics = tracker.metrics();
  CanaryMetrics expected;
  std::array<std::vector<double>, 2> expected_primary;
  std::array<std::vector<double>, 2> expected_candidate;
  for (const AcceptedLog& log : accepted) {
    if (log.epoch != metrics.epoch) continue;
    expected.mirrored_requests += 1;
    expected.mirrored_windows += log.deltas.size();
    for (const WindowDelta& delta : log.deltas) {
      const auto c = static_cast<std::size_t>(delta.cluster);
      expected.clusters[c].mirrored_windows += 1;
      expected.clusters[c].primary_flags += delta.primary_flagged ? 1 : 0;
      expected.clusters[c].candidate_flags += delta.candidate_flagged ? 1 : 0;
      expected.clusters[c].state_flips += delta.state_flip ? 1 : 0;
      expected_primary[c].push_back(delta.primary_risk);
      expected_candidate[c].push_back(delta.candidate_risk);
    }
  }
  EXPECT_EQ(metrics.mirrored_requests, expected.mirrored_requests);
  EXPECT_EQ(metrics.mirrored_windows, expected.mirrored_windows);
  for (std::size_t c = 0; c < metrics.clusters.size(); ++c) {
    const CanaryClusterMetrics& got = metrics.clusters[c];
    EXPECT_EQ(got.mirrored_windows, expected.clusters[c].mirrored_windows) << c;
    EXPECT_EQ(got.primary_flags, expected.clusters[c].primary_flags) << c;
    EXPECT_EQ(got.candidate_flags, expected.clusters[c].candidate_flags) << c;
    EXPECT_EQ(got.state_flips, expected.clusters[c].state_flips) << c;
    EXPECT_EQ(got.dropped_risk_samples, 0u) << c;  // well under the cap here
    // The stored samples are an order-dependent interleaving, but as
    // MULTISETS they match, which is all the derived metrics consume.
    EXPECT_EQ(sorted(got.primary_risks), sorted(expected_primary[c])) << c;
    EXPECT_EQ(sorted(got.candidate_risks), sorted(expected_candidate[c])) << c;
    // And the derived metrics are therefore bitwise order-independent.
    CanaryClusterMetrics recomputed = expected.clusters[c];
    recomputed.primary_risks = expected_primary[c];
    recomputed.candidate_risks = expected_candidate[c];
    EXPECT_EQ(got.flag_rate_delta(), recomputed.flag_rate_delta()) << c;
    EXPECT_EQ(got.risk_distance(), recomputed.risk_distance()) << c;
  }
}

TEST(CanaryTrackerChaos, AutoDecisionSurfacesAtMostOncePerEpoch) {
  CanaryPolicy policy;
  policy.min_mirrored_windows = 16;
  policy.breach_strikes = 1;
  policy.max_flag_rate_delta = 0.05;
  CanaryTracker tracker(policy);

  constexpr int kThreads = 6;
  constexpr int kRounds = 40;
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t epoch = tracker.install(static_cast<std::uint64_t>(round) + 1);
    std::atomic<int> decisions{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Every thread pushes breaching evidence as fast as it can; the
        // decided_ latch must collapse the race to exactly one decision.
        const std::vector<WindowDelta> bad{
            breaching_delta(t % 2 ? Cluster::kMoreVulnerable
                                  : Cluster::kLessVulnerable)};
        for (int i = 0; i < 32; ++i) {
          const auto result =
              tracker.accumulate(epoch, std::span<const WindowDelta>(bad));
          if (result.decision.has_value()) {
            EXPECT_EQ(*result.decision, CanaryDecision::kRollback);
            decisions.fetch_add(1);
            EXPECT_TRUE(tracker.finish(epoch));
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(decisions.load(), 1) << "round " << round;
    // The loser threads' late accumulations were rejected post-finish:
    // the evidence count can never exceed what was accepted while live.
    EXPECT_EQ(tracker.state(), CanaryState::kIdle);
  }
}

}  // namespace
}  // namespace goodones::serve
