// End-to-end gate for the fast-math scoring lane (nn::Precision::kFast).
//
// The polynomial gate kernels are pinned at the unit level (ulp sweeps and
// cross-lane bitwise agreement in nn_simd_test); this suite pins what the
// lane is allowed to do to DETECTION METRICS. For every registered domain
// (bgms, synthtel, av) a mini forecaster runs the same attack campaign with
// exact probes and with kFast probes, and the campaign-level metrics the
// defense is built on — per-cell attack success rates, risk-profile means —
// must agree within tight tolerances, while the re-verification contract
// keeps every REPORTED trajectory exact to the bit. On the serving side,
// a synthtel bundle scored under kFast must produce bitwise-identical
// detector verdicts (flags never route through the forecaster) and few-ulp
// forecasts. The measured deltas print to the console; docs/BENCHMARKS.md
// transcribes them.
#include <gtest/gtest.h>

#include <cmath>
#include <iostream>
#include <memory>
#include <span>
#include <vector>

#include "attack/campaign.hpp"
#include "common/thread_pool.hpp"
#include "core/domain.hpp"
#include "core/framework.hpp"
#include "data/window.hpp"
#include "domains/av/adapter.hpp"
#include "domains/bgms/adapter.hpp"
#include "domains/synthtel/adapter.hpp"
#include "nn/simd.hpp"
#include "predict/bilstm_forecaster.hpp"
#include "risk/schedule.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"

namespace goodones {
namespace {

/// Exact-vs-fast campaign pair for one domain's mini fixture.
struct CampaignPair {
  std::string domain;
  risk::SeveritySchedule severity;  ///< copied: the adapter is a temporary
  std::vector<std::unique_ptr<predict::BiLstmForecaster>> models;
  std::vector<std::size_t> model_of;  ///< outcome index -> models index
  std::vector<attack::WindowOutcome> exact;
  std::vector<attack::WindowOutcome> fast;
};

/// Trains the most volatile entity of each subset (fleet parameter sweeps
/// order subsets from regulated to chaotic, so the subset tails are where
/// attacks actually land) and runs the same lockstep campaign through both
/// precision lanes, aggregating outcomes across the attacked entities.
/// Per-domain mini-fixture calibration. Mini forecasters are weak, so the
/// campaign needs a full edit budget, an aggressive (non-stealth) attacker
/// and a harm bar inside the band the attacks can actually reach —
/// otherwise both lanes report 0 == 0 and the gate is vacuous. Values were
/// calibrated so each domain sees a MIX of successes and failures, which is
/// exactly where a probe-lane perturbation could flip decisions.
struct MiniFixture {
  std::size_t hidden = 12;
  std::size_t epochs = 3;
  std::size_t train_steps = 900;
  double harm_threshold = 0.0;
};

CampaignPair run_campaign_pair(const std::string& name,
                               const core::DomainAdapter& domain,
                               const MiniFixture& mini) {
  core::FrameworkConfig config = domain.prepare(core::FrameworkConfig::fast());
  config.population.train_steps = mini.train_steps;
  config.population.test_steps = 320;
  config.population.seed = 17;
  config.profiling_campaign.attack.harm_threshold = mini.harm_threshold;
  const auto entities = domain.make_entities(config.population);

  CampaignPair pair;
  pair.domain = name;
  pair.severity = domain.spec().severity;

  predict::ForecasterConfig forecaster = config.registry.forecaster;
  forecaster.hidden = mini.hidden;
  forecaster.head_hidden = 8;
  forecaster.epochs = mini.epochs;
  forecaster.target_channel = domain.spec().target_channel;

  attack::CampaignConfig campaign = config.profiling_campaign;
  campaign.window_step = 1;
  campaign.shard_size = 8;
  campaign.attack.batched_probes = true;
  campaign.cross_window_probes = true;
  campaign.attack.max_edits = 12;       // full window budget
  campaign.attack.stealth_fraction = 0.0;  // worst-case attacker

  common::ThreadPool pool(2);
  const std::size_t victims[] = {entities.size() / 2 - 1, entities.size() - 1};
  for (const std::size_t v : victims) {
    const core::EntityData& entity = entities[v];
    auto model = std::make_unique<predict::BiLstmForecaster>(
        forecaster,
        predict::fit_forecaster_scaler(entity.train.values,
                                       domain.spec().target_channel,
                                       domain.spec().target_min,
                                       domain.spec().target_max));
    data::WindowConfig window_config = config.window;
    window_config.step = 3;
    model->train(data::make_windows(entity.train, window_config));
    window_config.step = 2;
    const auto windows = data::make_windows(entity.test, window_config);

    campaign.attack.probe_precision.reset();
    auto exact = attack::run_campaign(*model, windows, campaign, pool);
    campaign.attack.probe_precision = nn::Precision::kFast;
    auto fast = attack::run_campaign(*model, windows, campaign, pool);
    pair.exact.insert(pair.exact.end(), std::make_move_iterator(exact.begin()),
                      std::make_move_iterator(exact.end()));
    pair.fast.insert(pair.fast.end(), std::make_move_iterator(fast.begin()),
                     std::make_move_iterator(fast.end()));
    pair.models.push_back(std::move(model));
    pair.model_of.resize(pair.exact.size(), pair.models.size() - 1);
  }
  return pair;
}

const std::vector<CampaignPair>& campaign_pairs() {
  static const std::vector<CampaignPair> pairs = [] {
    std::vector<CampaignPair> all;
    all.push_back(run_campaign_pair("bgms", bgms::BgmsDomain(),
                                    {.harm_threshold = 165.0}));
    all.push_back(run_campaign_pair(
        "synthtel", synthtel::SynthtelDomain(2),
        {.hidden = 24, .epochs = 8, .train_steps = 2200, .harm_threshold = 96.5}));
    all.push_back(run_campaign_pair(
        "av", av::AvDomain(2),
        {.hidden = 16, .epochs = 6, .train_steps = 1500, .harm_threshold = 20.0}));
    return all;
  }();
  return pairs;
}

double rate_delta(double exact, double fast) { return std::fabs(exact - fast); }

TEST(FastScoring, CampaignsAttackTheSameWindows) {
  for (const CampaignPair& pair : campaign_pairs()) {
    ASSERT_FALSE(pair.exact.empty()) << pair.domain;
    ASSERT_EQ(pair.exact.size(), pair.fast.size()) << pair.domain;
    const auto exact = attack::summarize(pair.exact);
    const auto fast = attack::summarize(pair.fast);
    // The probe lane steers the search; it must not change WHICH windows
    // are eligible or how they classify before the attack.
    EXPECT_EQ(exact.normal_baseline_attempts, fast.normal_baseline_attempts);
    EXPECT_EQ(exact.normal_active_attempts, fast.normal_active_attempts);
    EXPECT_EQ(exact.low_baseline_attempts, fast.low_baseline_attempts);
    EXPECT_EQ(exact.low_active_attempts, fast.low_active_attempts);
    for (std::size_t i = 0; i < pair.exact.size(); ++i) {
      EXPECT_EQ(pair.exact[i].true_state, pair.fast[i].true_state);
      EXPECT_EQ(pair.exact[i].benign_predicted_state,
                pair.fast[i].benign_predicted_state);
    }
  }
}

TEST(FastScoring, FastCampaignTrajectoriesAreReVerifiedExactly) {
  // The re-verification contract: whatever lane steered the search, every
  // reported adversarial prediction must be bitwise reproducible through
  // the exact scalar path, and success must follow from it.
  for (const CampaignPair& pair : campaign_pairs()) {
    for (std::size_t i = 0; i < pair.fast.size(); ++i) {
      const attack::WindowOutcome& outcome = pair.fast[i];
      const double exact_prediction =
          pair.models[pair.model_of[i]]->predict(outcome.attack.adversarial_features);
      EXPECT_EQ(outcome.attack.adversarial_prediction, exact_prediction)
          << pair.domain << ": reported prediction must carry no polynomial error";
    }
  }
}

TEST(FastScoring, AttackSuccessRatesMatchExactLane) {
  for (const CampaignPair& pair : campaign_pairs()) {
    const auto exact = attack::summarize(pair.exact);
    const auto fast = attack::summarize(pair.fast);
    const double overall_delta = rate_delta(exact.overall_rate(), fast.overall_rate());
    const double cell_delta = std::max(
        std::max(rate_delta(exact.normal_baseline_rate(), fast.normal_baseline_rate()),
                 rate_delta(exact.normal_active_rate(), fast.normal_active_rate())),
        std::max(rate_delta(exact.low_baseline_rate(), fast.low_baseline_rate()),
                 rate_delta(exact.low_active_rate(), fast.low_active_rate())));
    std::size_t exact_successes = 0;
    std::size_t fast_successes = 0;
    for (const auto& o : pair.exact) exact_successes += o.attack.success ? 1u : 0u;
    for (const auto& o : pair.fast) fast_successes += o.attack.success ? 1u : 0u;
    std::cout << "[fast-scoring] " << pair.domain << ": windows=" << pair.exact.size()
              << " successes exact=" << exact_successes << " fast=" << fast_successes
              << " overall_rate exact=" << exact.overall_rate()
              << " fast=" << fast.overall_rate() << " |delta|=" << overall_delta
              << " max_cell_|delta|=" << cell_delta << "\n";
    // Few-ulp probes may flip a borderline greedy choice on isolated
    // windows; they must not move the campaign-level rates.
    EXPECT_LE(overall_delta, 0.02) << pair.domain;
    EXPECT_LE(cell_delta, 0.05) << pair.domain;
  }
}

TEST(FastScoring, RiskProfileMeansMatchExactLane) {
  for (const CampaignPair& pair : campaign_pairs()) {
    const risk::RiskProfile exact =
        risk::build_profile(pair.domain, pair.exact, pair.severity);
    const risk::RiskProfile fast =
        risk::build_profile(pair.domain, pair.fast, pair.severity);
    const double scale = std::max(std::fabs(exact.mean()), 1e-9);
    const double relative = std::fabs(exact.mean() - fast.mean()) / scale;
    std::cout << "[fast-scoring] " << pair.domain
              << ": risk_profile_mean exact=" << exact.mean()
              << " fast=" << fast.mean() << " rel_delta=" << relative << "\n";
    // Risk weighs the exact-verified trajectories; only a different chosen
    // trajectory can move it, so the means stay within a few percent.
    EXPECT_LE(relative, 0.05) << pair.domain;
  }
}

// --- serving-path flag rates -----------------------------------------------

std::shared_ptr<const core::DomainAdapter> serving_fleet() {
  static const auto domain = std::make_shared<synthtel::SynthtelDomain>(2);
  return domain;
}

core::FrameworkConfig serving_config() {
  core::FrameworkConfig config = serving_fleet()->prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 1100;
  config.population.test_steps = 380;
  config.population.seed = 23;
  config.registry.forecaster.hidden = 8;
  config.registry.forecaster.head_hidden = 6;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 8;
  config.registry.aggregate_window_step = 50;
  config.profiling_campaign.window_step = 10;
  config.evaluation_campaign.window_step = 10;
  config.detector_benign_stride = 10;
  config.detectors.knn.max_points_per_class = 400;
  config.random_runs = 1;
  config.random_victims = 2;
  config.seed = 9091;
  return config;
}

core::RiskProfilingFramework& serving_framework() {
  static core::RiskProfilingFramework instance(serving_fleet(), serving_config());
  return instance;
}

/// Clean + successful-adversarial windows for every entity (the same
/// traffic shape as the serving golden test).
std::vector<serve::ScoreRequest> serving_requests(core::RiskProfilingFramework& fw) {
  std::vector<serve::ScoreRequest> requests;
  const auto& entities = fw.entities();
  data::WindowConfig window_config = fw.config().window;
  window_config.step = 20;
  for (std::size_t e = 0; e < entities.size(); ++e) {
    serve::ScoreRequest request;
    request.entity = entities[e].name;
    const auto windows = data::make_windows(entities[e].test, window_config);
    for (std::size_t i = 0; i < windows.size() && i < 8; ++i) {
      request.windows.push_back({windows[i].features, windows[i].regime});
    }
    for (const auto& outcome : fw.test_outcomes(e)) {
      if (!outcome.attack.success) continue;
      request.windows.push_back(
          {outcome.attack.adversarial_features, outcome.benign.regime});
      if (request.windows.size() >= 12) break;
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

TEST(FastScoring, ServedFlagRateIdenticalAndForecastsFewUlp) {
  auto& fw = serving_framework();
  const serve::ScoringService exact_service(
      serve::build_serving_model(fw, detect::DetectorKind::kKnn), {.threads = 2});
  const serve::ScoringService fast_service(
      serve::build_serving_model(fw, detect::DetectorKind::kKnn),
      {.threads = 2, .precision = nn::Precision::kFast});

  const std::vector<serve::ScoreRequest> requests = serving_requests(fw);
  const auto exact = exact_service.score_batch(std::span<const serve::ScoreRequest>(requests));
  const auto fast = fast_service.score_batch(std::span<const serve::ScoreRequest>(requests));
  ASSERT_EQ(exact.size(), fast.size());

  std::size_t windows = 0;
  std::size_t exact_flags = 0;
  std::size_t fast_flags = 0;
  std::size_t state_flips = 0;
  double max_forecast_delta = 0.0;
  double exact_risk_sum = 0.0;
  double fast_risk_sum = 0.0;
  for (std::size_t r = 0; r < exact.size(); ++r) {
    ASSERT_EQ(exact[r].windows.size(), fast[r].windows.size());
    for (std::size_t w = 0; w < exact[r].windows.size(); ++w) {
      const serve::WindowScore& a = exact[r].windows[w];
      const serve::WindowScore& b = fast[r].windows[w];
      ++windows;
      // The detector never routes through the forecaster: anomaly verdicts
      // must be bitwise identical across precision lanes.
      EXPECT_EQ(a.anomaly_score, b.anomaly_score) << "r=" << r << " w=" << w;
      EXPECT_EQ(a.flagged, b.flagged) << "r=" << r << " w=" << w;
      EXPECT_EQ(a.observed_state, b.observed_state);
      // Forecast-derived fields may drift by polynomial error only.
      const double scale = std::max(1.0, std::fabs(a.forecast));
      EXPECT_NEAR(a.forecast, b.forecast, 1e-6 * scale) << "r=" << r << " w=" << w;
      max_forecast_delta = std::max(max_forecast_delta, std::fabs(a.forecast - b.forecast));
      exact_flags += a.flagged ? 1u : 0u;
      fast_flags += b.flagged ? 1u : 0u;
      state_flips += a.predicted_state != b.predicted_state ? 1u : 0u;
      exact_risk_sum += a.risk;
      fast_risk_sum += b.risk;
    }
  }
  ASSERT_GT(windows, 0u);
  const double flag_rate = static_cast<double>(exact_flags) / static_cast<double>(windows);
  const double risk_scale = std::max(std::fabs(exact_risk_sum), 1e-9);
  const double risk_rel_delta = std::fabs(exact_risk_sum - fast_risk_sum) / risk_scale;
  std::cout << "[fast-scoring] synthtel serving: windows=" << windows
            << " flag_rate=" << flag_rate << " (fast identical: "
            << (exact_flags == fast_flags ? "yes" : "NO") << ")"
            << " max_|forecast_delta|=" << max_forecast_delta
            << " predicted_state_flips=" << state_flips
            << " served_risk_rel_delta=" << risk_rel_delta << "\n";
  EXPECT_EQ(exact_flags, fast_flags);
  // A forecast sitting exactly on a diagnostic threshold could flip its
  // state label by one ulp; with finite traffic that should never happen.
  EXPECT_LE(state_flips, windows / 100 + 1);
  EXPECT_LE(risk_rel_delta, 1e-6);
}

}  // namespace
}  // namespace goodones
