#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"

#include <filesystem>
#include <fstream>

namespace goodones::nn {
namespace {

TEST(MseLoss, KnownValueAndGradient) {
  const Matrix pred{{1.0, 2.0}};
  const Matrix target{{0.0, 4.0}};
  const LossResult result = mse_loss(pred, target);
  EXPECT_NEAR(result.value, (1.0 + 4.0) / 2.0, 1e-12);
  EXPECT_NEAR(result.grad(0, 0), 2.0 * 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(result.grad(0, 1), 2.0 * -2.0 / 2.0, 1e-12);
}

TEST(MseLoss, ZeroAtPerfectPrediction) {
  const Matrix pred{{3.0, -1.0}};
  const LossResult result = mse_loss(pred, pred);
  EXPECT_DOUBLE_EQ(result.value, 0.0);
  EXPECT_DOUBLE_EQ(result.grad(0, 0), 0.0);
}

TEST(MseLoss, GradientMatchesFiniteDifference) {
  common::Rng rng(3);
  Matrix pred(2, 3);
  Matrix target(2, 3);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      pred(r, c) = rng.uniform(-1, 1);
      target(r, c) = rng.uniform(-1, 1);
    }
  }
  const LossResult result = mse_loss(pred, target);
  const double eps = 1e-6;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      Matrix plus = pred;
      Matrix minus = pred;
      plus(r, c) += eps;
      minus(r, c) -= eps;
      const double numeric =
          (mse_loss(plus, target).value - mse_loss(minus, target).value) / (2 * eps);
      ASSERT_NEAR(result.grad(r, c), numeric, 1e-7);
    }
  }
}

TEST(MseLoss, ShapeMismatchThrows) {
  EXPECT_THROW((void)mse_loss(Matrix(1, 2), Matrix(2, 1)), common::PreconditionError);
}

TEST(BceLoss, KnownValue) {
  const Matrix pred{{0.9}};
  const Matrix target{{1.0}};
  const LossResult result = bce_loss(pred, target);
  EXPECT_NEAR(result.value, -std::log(0.9), 1e-9);
}

TEST(BceLoss, SymmetricCase) {
  const Matrix pred{{0.5}};
  for (const double y : {0.0, 1.0}) {
    const Matrix target{{y}};
    EXPECT_NEAR(bce_loss(pred, target).value, -std::log(0.5), 1e-9);
  }
}

TEST(BceLoss, ClampsExtremePredictions) {
  const Matrix pred{{0.0}};
  const Matrix target{{1.0}};
  const LossResult result = bce_loss(pred, target);
  EXPECT_TRUE(std::isfinite(result.value));
  EXPECT_TRUE(std::isfinite(result.grad(0, 0)));
}

TEST(BceLoss, GradientMatchesFiniteDifference) {
  const Matrix pred{{0.3, 0.8}};
  const Matrix target{{1.0, 0.0}};
  const LossResult result = bce_loss(pred, target);
  const double eps = 1e-6;
  for (std::size_t c = 0; c < 2; ++c) {
    Matrix plus = pred;
    Matrix minus = pred;
    plus(0, c) += eps;
    minus(0, c) -= eps;
    const double numeric =
        (bce_loss(plus, target).value - bce_loss(minus, target).value) / (2 * eps);
    ASSERT_NEAR(result.grad(0, c), numeric, 1e-6);
  }
}

/// Minimizing f(w) = sum((w - target)^2) must converge for both optimizers.
template <typename Opt>
double optimize_quadratic(Opt&& optimizer, int steps) {
  ParamBuffer w(2, 2);
  const Matrix target{{1.0, -2.0}, {3.0, 0.5}};
  ParamRefs params{&w};
  for (int i = 0; i < steps; ++i) {
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t c = 0; c < 2; ++c) {
        w.grad(r, c) = 2.0 * (w.value(r, c) - target(r, c));
      }
    }
    optimizer.step_and_zero(params);
  }
  double err = 0.0;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) err += std::abs(w.value(r, c) - target(r, c));
  }
  return err;
}

TEST(Sgd, ConvergesOnQuadratic) {
  EXPECT_LT(optimize_quadratic(Sgd(0.1), 200), 1e-6);
}

TEST(Sgd, MomentumConverges) {
  EXPECT_LT(optimize_quadratic(Sgd(0.05, 0.9), 300), 1e-6);
}

TEST(Adam, ConvergesOnQuadratic) {
  EXPECT_LT(optimize_quadratic(Adam(0.1), 500), 1e-4);
}

TEST(Adam, StepCountAdvances) {
  Adam adam(0.01);
  ParamBuffer w(1, 1);
  ParamRefs params{&w};
  adam.step(params);
  adam.step(params);
  EXPECT_EQ(adam.step_count(), 2u);
}

TEST(Optimizer, RejectsBadHyperparameters) {
  EXPECT_THROW(Sgd(0.0), common::PreconditionError);
  EXPECT_THROW(Sgd(0.1, 1.0), common::PreconditionError);
  EXPECT_THROW(Adam(-1.0), common::PreconditionError);
  EXPECT_THROW(Adam(0.1, 1.0), common::PreconditionError);
}

TEST(GradClip, ScalesDownLargeGradients) {
  ParamBuffer p(1, 2);
  p.grad(0, 0) = 3.0;
  p.grad(0, 1) = 4.0;  // norm 5
  ParamRefs params{&p};
  clip_global_grad_norm(params, 1.0);
  EXPECT_NEAR(global_grad_norm(params), 1.0, 1e-12);
  EXPECT_NEAR(p.grad(0, 0), 0.6, 1e-12);
}

TEST(GradClip, LeavesSmallGradientsAlone) {
  ParamBuffer p(1, 2);
  p.grad(0, 0) = 0.3;
  ParamRefs params{&p};
  clip_global_grad_norm(params, 1.0);
  EXPECT_DOUBLE_EQ(p.grad(0, 0), 0.3);
}

TEST(Param, CountAndZero) {
  ParamBuffer a(2, 3);
  ParamBuffer b(1, 4);
  ParamRefs params{&a, &b};
  EXPECT_EQ(parameter_count(params), 10u);
  a.grad(0, 0) = 5.0;
  zero_all_grads(params);
  EXPECT_DOUBLE_EQ(a.grad(0, 0), 0.0);
}

TEST(Param, XavierInitWithinBound) {
  common::Rng rng(5);
  ParamBuffer p(10, 10);
  p.init_xavier(rng, 10, 10);
  const double bound = std::sqrt(6.0 / 20.0);
  for (std::size_t r = 0; r < 10; ++r) {
    for (const double v : p.value.row(r)) {
      ASSERT_LE(std::abs(v), bound);
    }
  }
}

TEST(Serialize, MatrixRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "goodones_mat_test.bin";
  ParamBuffer a(3, 4);
  common::Rng rng(9);
  a.init_uniform(rng, 1.0);
  ParamBuffer b(3, 4);
  save_parameters({&a}, path);
  EXPECT_TRUE(load_parameters({&b}, path));
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) ASSERT_DOUBLE_EQ(b.value(r, c), a.value(r, c));
  }
  std::filesystem::remove(path);
}

TEST(Serialize, MissingFileReturnsFalse) {
  ParamBuffer a(1, 1);
  EXPECT_FALSE(load_parameters({&a}, "/nonexistent/model.bin"));
}

TEST(Serialize, ShapeMismatchThrows) {
  const auto path = std::filesystem::temp_directory_path() / "goodones_mat_shape.bin";
  ParamBuffer a(2, 2);
  save_parameters({&a}, path);
  ParamBuffer wrong(3, 2);
  EXPECT_THROW((void)load_parameters({&wrong}, path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Serialize, CountMismatchThrows) {
  const auto path = std::filesystem::temp_directory_path() / "goodones_mat_count.bin";
  ParamBuffer a(2, 2);
  save_parameters({&a}, path);
  ParamBuffer b(2, 2);
  ParamBuffer c(2, 2);
  EXPECT_THROW((void)load_parameters({&b, &c}, path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Serialize, TruncatedFileThrows) {
  const auto path = std::filesystem::temp_directory_path() / "goodones_mat_trunc.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const char garbage[] = {0x4E, 0x4E};
    out.write(garbage, sizeof(garbage));
  }
  ParamBuffer a(1, 1);
  EXPECT_THROW((void)load_parameters({&a}, path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace goodones::nn
