// Protocol fuzz for the wire layer — the acceptance gate behind the
// FrameServer error-containment contract, driven at BOTH transports:
//
//   * A seeded corpus of VALID frames (Score with real windows, Stats,
//     Health, Refresh, Drain, unknown types) is mutated byte-wise —
//     bit flips, truncation, random extension, and deliberate lies in the
//     length field — and thrown at a LIVE daemon over a Unix-domain and a
//     TCP listener. The server may answer with typed Error frames, answer
//     normally (some mutations stay valid), or close the connection; it
//     must never crash, never emit a malformed frame of its own, and never
//     wedge (the test side reads with a receive timeout; the daemon must
//     still serve a clean round trip after the whole barrage).
//   * The payload codecs are fuzzed directly: a mutated payload may decode
//     (mutation hit don't-care bytes) or throw the typed
//     common::SerializationError — anything else (length_error, bad_alloc,
//     a crash) fails the suite.
//
// Mutations are generated from a fixed splitmix64 seed: every CI run and
// every local repro fuzzes the exact same byte streams. The suite runs in
// the sanitizer lane (ASan+UBSan) in CI, where "no crash" also means no
// heap overflow and no UB on any of these paths.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/socket.hpp"
#include "core/framework.hpp"
#include "data/window.hpp"
#include "domains/synthtel/adapter.hpp"
#include "serve/daemon.hpp"

namespace goodones::serve {
namespace {

std::shared_ptr<const core::DomainAdapter> mini_fleet() {
  static const auto domain = std::make_shared<synthtel::SynthtelDomain>(2);
  return domain;
}

core::FrameworkConfig mini_config() {
  core::FrameworkConfig config = mini_fleet()->prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 1200;
  config.population.test_steps = 400;
  config.population.seed = 23;
  config.registry.forecaster.hidden = 8;
  config.registry.forecaster.head_hidden = 6;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 8;
  config.registry.aggregate_window_step = 50;
  config.profiling_campaign.window_step = 10;
  config.evaluation_campaign.window_step = 10;
  config.detector_benign_stride = 10;
  config.detectors.knn.max_points_per_class = 400;
  config.random_runs = 1;
  config.random_victims = 2;
  config.seed = 555;
  return config;
}

core::RiskProfilingFramework& framework() {
  static core::RiskProfilingFramework instance(mini_fleet(), mini_config());
  return instance;
}

std::filesystem::path unique_path(const char* stem, const char* suffix) {
  return std::filesystem::temp_directory_path() /
         (std::string(stem) + "_" + std::to_string(::getpid()) + suffix);
}

std::string frame_bytes(wire::MessageType type, const std::string& payload) {
  std::string bytes(20, '\0');
  const std::uint32_t magic = wire::kMagic;
  const std::uint32_t version = wire::kVersion;
  const std::uint32_t type_value = static_cast<std::uint32_t>(type);
  const std::uint64_t length = payload.size();
  std::memcpy(bytes.data(), &magic, 4);
  std::memcpy(bytes.data() + 4, &version, 4);
  std::memcpy(bytes.data() + 8, &type_value, 4);
  std::memcpy(bytes.data() + 12, &length, 8);
  return bytes + payload;
}

/// A real Score request against the served bundle (mutations of this one
/// exercise the deepest decode path: strings, u64 counts, matrices).
ScoreRequest real_request() {
  auto& fw = framework();
  const auto& entity = fw.entities().front();
  data::WindowConfig window_config = fw.config().window;
  window_config.step = 30;
  ScoreRequest request;
  request.entity = entity.name;
  const auto windows = data::make_windows(entity.test, window_config);
  for (std::size_t i = 0; i < windows.size() && i < 2; ++i) {
    request.windows.push_back({windows[i].features, windows[i].regime});
  }
  return request;
}

/// The seeded corpus of well-formed frames the mutator starts from.
std::vector<std::string> build_corpus() {
  std::vector<std::string> corpus;
  corpus.push_back(frame_bytes(wire::MessageType::kScore,
                               wire::encode_score_request(real_request())));
  corpus.push_back(frame_bytes(wire::MessageType::kStats, {}));
  corpus.push_back(frame_bytes(wire::MessageType::kHealth, {}));
  corpus.push_back(frame_bytes(wire::MessageType::kRefresh, {}));
  wire::DrainRequest drain;
  drain.shard = "shard-a";
  corpus.push_back(
      frame_bytes(wire::MessageType::kDrain, wire::encode_drain_request(drain)));
  wire::PromoteRequest promote;
  promote.generation = 7;
  corpus.push_back(
      frame_bytes(wire::MessageType::kPromote, wire::encode_promote_request(promote)));
  wire::RollbackRequest rollback;  // bare form: whatever is staged
  corpus.push_back(
      frame_bytes(wire::MessageType::kRollback, wire::encode_rollback_request(rollback)));
  // A reply type a client should never send, and a type far outside the enum.
  corpus.push_back(frame_bytes(wire::MessageType::kScoreReply, "unexpected"));
  corpus.push_back(frame_bytes(static_cast<wire::MessageType>(0x7eadbeef), "future"));
  return corpus;
}

/// One deterministic mutation of `original` (never returns it unchanged).
std::string mutate(const std::string& original, std::uint64_t& rng) {
  std::string bytes = original;
  switch (common::splitmix64_next(rng) % 4) {
    case 0: {  // flip 1..8 random bytes
      const std::size_t flips = 1 + common::splitmix64_next(rng) % 8;
      for (std::size_t f = 0; f < flips && !bytes.empty(); ++f) {
        const std::size_t at = common::splitmix64_next(rng) % bytes.size();
        bytes[at] = static_cast<char>(bytes[at] ^
                                      (1u << (common::splitmix64_next(rng) % 8)));
      }
      break;
    }
    case 1: {  // truncate (possibly mid-header, possibly mid-payload)
      const std::size_t keep = common::splitmix64_next(rng) % bytes.size();
      bytes.resize(keep);
      break;
    }
    case 2: {  // extend with random garbage
      const std::size_t extra = 1 + common::splitmix64_next(rng) % 64;
      for (std::size_t e = 0; e < extra; ++e) {
        bytes.push_back(static_cast<char>(common::splitmix64_next(rng) & 0xff));
      }
      break;
    }
    default: {  // lie in the length field (small lie, huge lie, zero)
      std::uint64_t lie = 0;
      switch (common::splitmix64_next(rng) % 3) {
        case 0: lie = common::splitmix64_next(rng) % 4096; break;
        case 1: lie = common::splitmix64_next(rng); break;  // absurd
        default: lie = 0; break;
      }
      if (bytes.size() >= 20) std::memcpy(bytes.data() + 12, &lie, 8);
      break;
    }
  }
  if (bytes == original) bytes.push_back('\0');  // guarantee a real mutation
  return bytes;
}

/// Sends one mutated byte stream and drains the server's answer. The ONLY
/// acceptable outcomes: well-formed reply frames (typed Error included),
/// a clean close, a transport reset, or the server waiting for more bytes
/// (our receive timeout fires; the close that follows unblocks it).
void drive_mutation(const common::Endpoint& endpoint, const std::string& bytes) {
  common::Socket socket = common::connect_endpoint(endpoint);
  // Backstop only: the write half-close below means a healthy server
  // always answers or closes promptly; hitting this timeout IS the wedge
  // the suite exists to catch.
  socket.set_recv_timeout_ms(2000);
  try {
    socket.write_all(bytes.data(), bytes.size());
  } catch (const common::SocketError&) {
    return;  // server already closed on us mid-write — a clean rejection
  }
  // Half-close: a server mid-frame (truncation/length lie) observes EOF
  // NOW instead of waiting out a timeout, so the whole barrage stays fast.
  socket.shutdown_write();
  try {
    for (int frames = 0; frames < 4; ++frames) {
      // recv_frame validates the SERVER's framing: a malformed reply frame
      // throws SerializationError here and fails the test below.
      const std::optional<wire::Frame> reply = wire::recv_frame(socket);
      if (!reply.has_value()) return;  // clean close
    }
  } catch (const common::SocketError& error) {
    // A reset is a legal close (our junk may still sit unread in the
    // server's buffer when it closes). A receive TIMEOUT is not: after the
    // half-close the server has everything it will ever get — silence
    // means a wedged handler.
    if (std::string_view(error.what()).find("timed out") != std::string_view::npos) {
      ADD_FAILURE() << "server went silent on a mutated stream: " << error.what();
    }
  } catch (const common::SerializationError& error) {
    ADD_FAILURE() << "server emitted a malformed frame: " << error.what();
  }
}

void fuzz_transport(const common::Endpoint& endpoint, std::uint64_t seed) {
  const std::vector<std::string> corpus = build_corpus();
  std::uint64_t rng = seed;
  for (const std::string& original : corpus) {
    for (int round = 0; round < 40; ++round) {
      drive_mutation(endpoint, mutate(original, rng));
    }
  }
  // Multi-frame streams: a valid frame, junk after it on the same
  // connection — the first must be answered before the junk kills the
  // stream.
  for (int round = 0; round < 10; ++round) {
    const std::string valid = frame_bytes(wire::MessageType::kStats, {});
    drive_mutation(endpoint, valid + mutate(corpus[round % corpus.size()], rng));
  }
}

TEST(WireFuzz, MutatedFramesNeverCrashOrWedgeEitherTransport) {
  auto& fw = framework();
  ServingModel bundle = build_serving_model(fw, detect::DetectorKind::kKnn);

  DaemonConfig unix_config;
  unix_config.listen = common::Endpoint::unix_socket(unique_path("go_fuzz", ".sock"));
  unix_config.registry_root = unique_path("go_fuzz", "_reg");
  unix_config.adaptive_enabled = false;
  // Finished connections close at the accept loop's reap tick; hundreds of
  // short-lived fuzz connections wait on it, so poll fast.
  unix_config.accept_poll_ms = 5;
  std::filesystem::remove_all(unix_config.registry_root);
  Daemon unix_daemon(clone_serving_model(bundle), unix_config);
  unix_daemon.start();

  DaemonConfig tcp_config;
  tcp_config.listen = common::Endpoint::tcp("127.0.0.1", 0);
  tcp_config.registry_root = unix_config.registry_root;
  tcp_config.adaptive_enabled = false;
  tcp_config.accept_poll_ms = 5;
  Daemon tcp_daemon(std::move(bundle), tcp_config);
  tcp_daemon.start();

  fuzz_transport(unix_daemon.endpoint(), /*seed=*/0x600d0e5f);
  fuzz_transport(tcp_daemon.endpoint(), /*seed=*/0x600d0e5f ^ 0x7c9);

  // The survival gate: after the barrage both daemons still serve clean
  // round trips — no crash, no wedged accept loop, no leaked-broken state.
  for (Daemon* daemon : {&unix_daemon, &tcp_daemon}) {
    EXPECT_TRUE(daemon->running());
    DaemonClient client(daemon->endpoint());
    const ScoreResponse response = client.score(real_request());
    EXPECT_FALSE(response.windows.empty());
    EXPECT_FALSE(client.stats().empty());
  }

  unix_daemon.stop();
  tcp_daemon.stop();
  std::filesystem::remove_all(unix_config.registry_root);
}

TEST(WireFuzz, PayloadCodecsThrowOnlyTypedErrors) {
  const ScoreRequest request = real_request();
  ScoreResponse response;
  response.entity_index = 0;
  response.cluster = Cluster::kLessVulnerable;
  response.generation = 3;
  response.windows.push_back(
      {1.0, 2.0, data::StateLabel::kHigh, data::StateLabel::kNormal, 0.5, true, 0.25});

  wire::StatsSnapshot stats{{"serve.daemon.scores", 41}, {"serve.router.shards", 2}};
  wire::RefreshReply refresh{true, 7};
  wire::ErrorFrame error{wire::ErrorCode::kUnavailable, "shard down"};
  wire::HealthReply health{false, 9};
  wire::DrainRequest drain_request{"shard-b"};
  wire::DrainReply drain_reply{true, "drained"};
  wire::IngestRequest ingest_request;
  ingest_request.entity = request.entity;
  ingest_request.ticks = nn::Matrix(5, request.windows.front().features.cols());
  for (std::size_t t = 0; t < 5; ++t) {
    for (std::size_t c = 0; c < ingest_request.ticks.cols(); ++c) {
      ingest_request.ticks(t, c) = request.windows.front().features(0, c) + t;
    }
  }
  ingest_request.regimes.assign(5, data::Regime::kActive);
  wire::IngestReply ingest_reply{5, 25};
  wire::ScoreLatestRequest latest_request{request.entity, 3, 12};
  wire::PromoteRequest promote_request{11};
  wire::PromoteReply promote_reply{true, 11};
  wire::RollbackRequest rollback_request{0};
  wire::RollbackReply rollback_reply{false, 4};

  struct Case {
    std::string name;
    std::string payload;
    std::function<void(const std::string&)> decode;
  };
  const std::vector<Case> cases = {
      {"score_request", wire::encode_score_request(request),
       [](const std::string& p) { (void)wire::decode_score_request(p); }},
      {"score_response", wire::encode_score_response(response),
       [](const std::string& p) { (void)wire::decode_score_response(p); }},
      {"stats", wire::encode_stats(stats),
       [](const std::string& p) { (void)wire::decode_stats(p); }},
      {"refresh_reply", wire::encode_refresh_reply(refresh),
       [](const std::string& p) { (void)wire::decode_refresh_reply(p); }},
      {"error", wire::encode_error(error),
       [](const std::string& p) { (void)wire::decode_error(p); }},
      {"health_reply", wire::encode_health_reply(health),
       [](const std::string& p) { (void)wire::decode_health_reply(p); }},
      {"drain_request", wire::encode_drain_request(drain_request),
       [](const std::string& p) { (void)wire::decode_drain_request(p); }},
      {"drain_reply", wire::encode_drain_reply(drain_reply),
       [](const std::string& p) { (void)wire::decode_drain_reply(p); }},
      {"ingest_request", wire::encode_ingest_request(ingest_request),
       [](const std::string& p) { (void)wire::decode_ingest_request(p); }},
      {"ingest_reply", wire::encode_ingest_reply(ingest_reply),
       [](const std::string& p) { (void)wire::decode_ingest_reply(p); }},
      {"score_latest_request", wire::encode_score_latest_request(latest_request),
       [](const std::string& p) { (void)wire::decode_score_latest_request(p); }},
      {"promote_request", wire::encode_promote_request(promote_request),
       [](const std::string& p) { (void)wire::decode_promote_request(p); }},
      {"promote_reply", wire::encode_promote_reply(promote_reply),
       [](const std::string& p) { (void)wire::decode_promote_reply(p); }},
      {"rollback_request", wire::encode_rollback_request(rollback_request),
       [](const std::string& p) { (void)wire::decode_rollback_request(p); }},
      {"rollback_reply", wire::encode_rollback_reply(rollback_reply),
       [](const std::string& p) { (void)wire::decode_rollback_reply(p); }},
      {"peek_score_entity", wire::encode_score_request(request),
       [](const std::string& p) { (void)wire::peek_score_entity(p); }},
      {"peek_ingest_entity", wire::encode_ingest_request(ingest_request),
       [](const std::string& p) { (void)wire::peek_score_entity(p); }},
      {"peek_score_latest_entity", wire::encode_score_latest_request(latest_request),
       [](const std::string& p) { (void)wire::peek_score_entity(p); }},
  };

  std::uint64_t rng = 0xfeedc0de;
  for (const Case& codec : cases) {
    // Round-trip sanity first: the unmutated payload must decode.
    ASSERT_NO_THROW(codec.decode(codec.payload)) << codec.name;
    for (int round = 0; round < 300; ++round) {
      const std::string mutated = mutate(codec.payload, rng);
      try {
        codec.decode(mutated);  // decoding fine means the mutation was benign
      } catch (const common::SerializationError&) {
        // the typed rejection — the only acceptable throw
      } catch (const std::exception& other) {
        ADD_FAILURE() << codec.name << " threw " << other.what()
                      << " instead of SerializationError";
      }
    }
  }
}

}  // namespace
}  // namespace goodones::serve
