#!/usr/bin/env python3
"""Verify that relative markdown links in the repo's docs resolve.

Scans README.md, ROADMAP.md, CHANGES.md and docs/*.md for inline links
([text](target)), skips absolute URLs and pure in-page anchors, and fails
(exit 1) listing every link whose target file does not exist relative to
the linking file. Anchors on relative links are checked for file existence
only. Run from anywhere: paths resolve against the repo root (this
script's parent's parent).
"""
from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_GLOBS = ["README.md", "ROADMAP.md", "CHANGES.md", "docs/*.md"]
# Inline links only; reference-style links are not used in this repo.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(path: pathlib.Path) -> list[str]:
    failures = []
    text = path.read_text(encoding="utf-8")
    # Fenced code blocks routinely contain example-ish parens; still, only
    # bracketed markdown links are matched, so false positives stay rare.
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            failures.append(f"{path.relative_to(ROOT)}: broken link -> {target}")
    return failures


def main() -> int:
    files: list[pathlib.Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(ROOT.glob(pattern)))
    if not files:
        print("check_doc_links: no documentation files found", file=sys.stderr)
        return 1
    failures = []
    for path in files:
        failures.extend(check_file(path))
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"check_doc_links: {len(files)} files scanned, {len(failures)} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
