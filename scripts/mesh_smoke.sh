#!/usr/bin/env bash
# Mesh smoke: a real multi-process serving mesh on localhost TCP.
#
# Boots two goodonesd shards and a goodones_router in front of them, then
# drives the whole admin + scoring surface through goodonesd_client exactly
# as an operator would: health, score (mixed entities, through the router),
# ingest + score-latest (tick stream into the shard-owned column store,
# then verdicts by entity name), stats (per-shard gauges), canary
# (stage a rebuild on shard A, check the gauges, promote through the
# router's broadcast), drain, shutdown. Everything runs as separate
# OS processes over fixed localhost TCP ports — the process/transport
# topology the in-binary e2e tests cannot cover.
#
# Usage: scripts/mesh_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
for bin in goodonesd goodonesd_client goodones_router; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "mesh_smoke: missing $BUILD_DIR/$bin (build the tools first)" >&2
    exit 2
  fi
done

ROUTER=tcp:127.0.0.1:7460
SHARD_A=tcp:127.0.0.1:7461
SHARD_B=tcp:127.0.0.1:7462

WORK="$(mktemp -d)"
# Shared artifact dir: shard A trains the mini bundle once, shard B loads
# the cached artifact (same domain, same config fingerprint).
export GOODONES_ARTIFACTS="$WORK/artifacts"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_healthy() { # endpoint what
  local endpoint="$1" what="$2"
  for _ in $(seq 1 600); do
    if "$BUILD_DIR/goodonesd_client" "$endpoint" health >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.5
  done
  echo "mesh_smoke: $what at $endpoint never became healthy" >&2
  exit 1
}

echo "== shard A (trains the bundle on first run; canary mode)"
# Full-sample mirroring with the auto-decision off: the staged candidate
# waits for the explicit promote below, so the lifecycle is deterministic.
"$BUILD_DIR/goodonesd" --listen "$SHARD_A" --entities 2 \
  --canary --canary-sample-ppm 1000000 --no-canary-auto \
  > "$WORK/shard_a.log" 2>&1 &
PIDS+=($!)
wait_healthy "$SHARD_A" "shard A"

echo "== shard B (loads the cached bundle)"
"$BUILD_DIR/goodonesd" --listen "$SHARD_B" --entities 2 > "$WORK/shard_b.log" 2>&1 &
PIDS+=($!)
wait_healthy "$SHARD_B" "shard B"

echo "== router"
"$BUILD_DIR/goodones_router" --listen "$ROUTER" \
  --backend "shard-a=$SHARD_A" --backend "shard-b=$SHARD_B" \
  --health-interval 100 \
  > "$WORK/router.log" 2>&1 &
PIDS+=($!)
wait_healthy "$ROUTER" "router"

echo "== score through the router (mixed entities)"
# One 12-step window of the synthtel schema (reading, load, event).
{
  echo "window,reading,load,event"
  for t in $(seq 0 11); do
    echo "0,6$t.5,0.4,0"
  done
} > "$WORK/windows.csv"
for entity in SA_0 SA_1 SB_0 SB_1; do
  "$BUILD_DIR/goodonesd_client" "$ROUTER" score "$entity" "$WORK/windows.csv" \
    | grep -q "generation" || { echo "mesh_smoke: score of $entity failed" >&2; exit 1; }
done

echo "== ingest a trace, then score-latest, through the router"
# 20 raw ticks of the same schema, no window column: each row is one tick.
# The router routes Ingest and ScoreLatest by the same entity hash as
# Score, so an entity's history lands on the shard that scores it.
{
  echo "reading,load,event"
  for t in $(seq 0 19); do
    echo "6$((t % 10)).25,0.5,0"
  done
} > "$WORK/ticks.csv"
for entity in SA_0 SA_1 SB_0 SB_1; do
  "$BUILD_DIR/goodonesd_client" "$ROUTER" ingest "$entity" "$WORK/ticks.csv" \
    | grep -q "ingested 20 ticks" \
    || { echo "mesh_smoke: ingest of $entity failed" >&2; exit 1; }
  "$BUILD_DIR/goodonesd_client" "$ROUTER" score-latest "$entity" 2 \
    | grep -q "generation" \
    || { echo "mesh_smoke: score-latest of $entity failed" >&2; exit 1; }
done
# The store gauges aggregate per shard; through the router we see each
# shard's own Stats only via the backend endpoints.
"$BUILD_DIR/goodonesd_client" "$SHARD_A" stats serve.store | grep -q "serve.store.ticks" \
  || { echo "mesh_smoke: shard A reports no store gauges" >&2; exit 1; }

echo "== per-shard gauges visible in one stats round trip"
# The healthy gauge flips on the router's first probe pass; give the
# prober a bounded window to observe both shards.
for attempt in $(seq 1 50); do
  STATS="$("$BUILD_DIR/goodonesd_client" "$ROUTER" stats serve.router)"
  if grep -q "serve.router.shard.shard-a.healthy 1" <<<"$STATS" &&
     grep -q "serve.router.shard.shard-b.healthy 1" <<<"$STATS"; then
    break
  fi
  if [[ "$attempt" == 50 ]]; then
    echo "mesh_smoke: shards never probed healthy" >&2
    echo "$STATS" >&2
    exit 1
  fi
  sleep 0.2
done
echo "$STATS"
grep -q "serve.router.shards 2" <<<"$STATS"

echo "== canary: stage a rebuild on shard A, then promote through the router"
# Feed shard A directly so its online profiler has evidence, then Refresh:
# in canary mode a forced rebuild is STAGED as a candidate, not published.
for entity in SA_0 SA_1 SB_0 SB_1; do
  "$BUILD_DIR/goodonesd_client" "$SHARD_A" score "$entity" "$WORK/windows.csv" >/dev/null \
    || { echo "mesh_smoke: canary warmup score of $entity failed" >&2; exit 1; }
done
"$BUILD_DIR/goodonesd_client" "$SHARD_A" refresh | grep -q "refreshed" \
  || { echo "mesh_smoke: canary refresh failed" >&2; exit 1; }
"$BUILD_DIR/goodonesd_client" "$SHARD_A" canary-status \
  | grep -q "serve.canary.candidate_generation 1" \
  || { echo "mesh_smoke: shard A staged no canary candidate" >&2; exit 1; }
# Mirror some traffic against the candidate before promoting it.
for entity in SA_0 SB_1; do
  "$BUILD_DIR/goodonesd_client" "$SHARD_A" score "$entity" "$WORK/windows.csv" >/dev/null
done
"$BUILD_DIR/goodonesd_client" "$SHARD_A" canary-status \
  | grep -Eq "serve\.canary\.window_total [1-9]" \
  || { echo "mesh_smoke: shard A mirrored no windows" >&2; exit 1; }
# Promote through the ROUTER: the frame broadcasts to every live shard.
# Shard B has nothing staged and refuses; shard A applies — the aggregate
# reply reports applied with the new primary generation.
"$BUILD_DIR/goodonesd_client" "$ROUTER" promote \
  | grep -q "promoted: primary is now generation 1" \
  || { echo "mesh_smoke: router promote did not apply" >&2; exit 1; }
"$BUILD_DIR/goodonesd_client" "$SHARD_A" stats serve.daemon \
  | grep -q "serve.daemon.generation 1" \
  || { echo "mesh_smoke: shard A did not publish generation 1" >&2; exit 1; }
# The promoted bundle serves the same surface.
"$BUILD_DIR/goodonesd_client" "$SHARD_A" score SA_0 "$WORK/windows.csv" \
  | grep -q "generation 1" \
  || { echo "mesh_smoke: post-promote score not on generation 1" >&2; exit 1; }

echo "== drain shard-b, survivors keep serving"
"$BUILD_DIR/goodonesd_client" "$ROUTER" drain shard-b
"$BUILD_DIR/goodonesd_client" "$ROUTER" stats serve.router | grep -q "serve.router.shards 1"
for entity in SA_0 SB_1; do
  "$BUILD_DIR/goodonesd_client" "$ROUTER" score "$entity" "$WORK/windows.csv" \
    | grep -q "generation" || { echo "mesh_smoke: post-drain score of $entity failed" >&2; exit 1; }
done

echo "== clean shutdown (router, then shards)"
"$BUILD_DIR/goodonesd_client" "$ROUTER" shutdown
"$BUILD_DIR/goodonesd_client" "$SHARD_A" shutdown
"$BUILD_DIR/goodonesd_client" "$SHARD_B" shutdown
wait "${PIDS[@]}"
PIDS=()

echo "mesh_smoke: OK"
