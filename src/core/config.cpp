#include "core/config.hpp"

#include <cstdlib>
#include <cstring>

namespace goodones::core {

FrameworkConfig FrameworkConfig::fast() {
  FrameworkConfig config;
  config.population.train_steps = 6000;
  config.population.test_steps = 1800;

  config.registry.forecaster.hidden = 24;
  config.registry.forecaster.head_hidden = 16;
  config.registry.forecaster.epochs = 5;
  config.registry.train_window_step = 3;
  config.registry.aggregate_window_step = 18;
  config.registry.window = config.window;

  config.profiling_campaign.window_step = 6;
  config.evaluation_campaign.window_step = 6;
  // Risk profiling measures worst-case vulnerability (aggressive attacker);
  // detector evaluation faces the detector-evading stealthy attacker.
  config.profiling_campaign.attack.stealth_fraction = 0.0;
  config.evaluation_campaign.attack.stealth_fraction = 0.6;

  config.detectors.knn.max_points_per_class = 3000;
  config.detectors.ocsvm.max_train_points = 1200;
  // Appendix B asks for sigmoid/coef0=10; on standardized windows that
  // saturates tanh into a constant kernel (see ocsvm.hpp), so the
  // reproduction runs use a small coef0 — documented in EXPERIMENTS.md.
  config.detectors.ocsvm.coef0 = 0.25;
  config.detectors.madgan.epochs = 16;
  config.detectors.madgan.max_train_windows = 1200;
  config.detectors.madgan.inversion_steps = 15;
  config.detectors.madgan.calibration_windows = 256;
  // Weight the DR-score toward reconstruction: latent inversion is far more
  // stable than the discriminator at small epoch budgets.
  config.detectors.madgan.dr_lambda = 0.25;

  config.detector_benign_stride = 6;
  config.random_runs = 3;
  config.random_victims = 3;
  return config;
}

FrameworkConfig FrameworkConfig::full() {
  FrameworkConfig config;
  config.population.train_steps = 10000;  // paper: ~10000 train samples/patient
  config.population.test_steps = 2500;    // paper: ~2500 test samples/patient

  config.registry.forecaster.hidden = 32;
  config.registry.forecaster.head_hidden = 24;
  config.registry.forecaster.epochs = 8;
  config.registry.train_window_step = 2;
  config.registry.aggregate_window_step = 12;
  config.registry.window = config.window;

  config.profiling_campaign.window_step = 4;
  config.evaluation_campaign.window_step = 4;
  config.profiling_campaign.attack.stealth_fraction = 0.0;  // worst-case profiling
  config.evaluation_campaign.attack.stealth_fraction = 0.6;  // stealthy adversary

  config.detectors.knn.max_points_per_class = 6000;
  config.detectors.ocsvm.max_train_points = 2000;
  config.detectors.ocsvm.coef0 = 0.25;  // see fast(): saturation note
  config.detectors.madgan.epochs = 100;  // paper Appendix B
  config.detectors.madgan.max_train_windows = 3000;
  config.detectors.madgan.inversion_steps = 25;
  config.detectors.madgan.dr_lambda = 0.25;  // see fast(): reconstruction-weighted

  config.detector_benign_stride = 4;
  config.random_runs = 10;  // paper: 10 repetitions
  config.random_victims = 3;
  return config;
}

FrameworkConfig FrameworkConfig::from_env() {
  const char* full_flag = std::getenv("GOODONES_FULL");
  if (full_flag != nullptr && std::strcmp(full_flag, "1") == 0) return full();
  return fast();
}

namespace {

void mix(std::uint64_t& h, std::uint64_t v) noexcept {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
}

void mix_double(std::uint64_t& h, double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  mix(h, bits);
}

}  // namespace

std::uint64_t config_fingerprint(const FrameworkConfig& c) noexcept {
  std::uint64_t h = 0xC0FFEE0DDF00DULL;
  mix(h, c.population.train_steps);
  mix(h, c.population.test_steps);
  mix(h, c.population.seed);

  mix(h, c.registry.forecaster.hidden);
  mix(h, c.registry.forecaster.head_hidden);
  mix(h, c.registry.forecaster.epochs);
  mix(h, c.registry.forecaster.batch_size);
  mix_double(h, c.registry.forecaster.learning_rate);
  mix(h, c.registry.forecaster.seed);
  mix(h, c.registry.train_window_step);
  mix(h, c.registry.aggregate_window_step);
  mix(h, c.registry.target_channel);
  mix_double(h, c.registry.target_min);
  mix_double(h, c.registry.target_max);

  mix(h, c.window.seq_len);
  mix(h, c.window.step);
  mix(h, c.window.horizon);

  for (const auto* campaign : {&c.profiling_campaign, &c.evaluation_campaign}) {
    mix(h, static_cast<std::uint64_t>(campaign->attack.search));
    mix(h, campaign->attack.max_edits);
    mix(h, campaign->attack.value_candidates);
    mix(h, campaign->attack.beam_width);
    mix(h, campaign->attack.target_channel);
    mix_double(h, campaign->attack.thresholds.low);
    mix_double(h, campaign->attack.thresholds.high_baseline);
    mix_double(h, campaign->attack.thresholds.high_active);
    mix_double(h, campaign->attack.baseline_box_min);
    mix_double(h, campaign->attack.active_box_min);
    mix_double(h, campaign->attack.box_max);
    mix_double(h, campaign->attack.harm_threshold);
    mix_double(h, campaign->attack.stealth_fraction);
    mix(h, campaign->window_step);
  }

  mix(h, c.detectors.knn.k);
  mix_double(h, c.detectors.knn.minkowski_p);
  mix(h, c.detectors.knn.max_points_per_class);

  mix(h, static_cast<std::uint64_t>(c.detectors.ocsvm.kernel));
  mix_double(h, c.detectors.ocsvm.coef0);
  mix_double(h, c.detectors.ocsvm.nu);
  mix_double(h, c.detectors.ocsvm.tolerance);
  mix(h, c.detectors.ocsvm.max_iterations);
  mix(h, c.detectors.ocsvm.max_train_points);

  mix(h, c.detectors.madgan.epochs);
  mix(h, c.detectors.madgan.latent_dim);
  mix(h, c.detectors.madgan.hidden);
  mix(h, c.detectors.madgan.batch_size);
  mix_double(h, c.detectors.madgan.learning_rate);
  mix_double(h, c.detectors.madgan.dr_lambda);
  mix(h, c.detectors.madgan.inversion_steps);
  mix_double(h, c.detectors.madgan.inversion_lr);
  mix_double(h, c.detectors.madgan.threshold_quantile);
  mix(h, c.detectors.madgan.max_train_windows);
  mix(h, c.detectors.madgan.calibration_windows);
  mix(h, c.detectors.madgan.seed);

  mix(h, c.detector_benign_stride);
  mix(h, static_cast<std::uint64_t>(c.linkage));
  mix(h, static_cast<std::uint64_t>(c.profile_distance));
  mix(h, c.random_runs);
  mix(h, c.random_victims);
  mix(h, c.seed);
  return h;
}

}  // namespace goodones::core
