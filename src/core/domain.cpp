#include "core/domain.hpp"

namespace goodones::core {

FrameworkConfig DomainAdapter::prepare(FrameworkConfig base) const {
  const DomainSpec& s = spec();
  for (attack::CampaignConfig* campaign :
       {&base.profiling_campaign, &base.evaluation_campaign}) {
    campaign->attack.target_channel = s.target_channel;
    campaign->attack.thresholds = s.thresholds;
    campaign->attack.baseline_box_min = s.attack_box_min_baseline;
    campaign->attack.active_box_min = s.attack_box_min_active;
    campaign->attack.box_max = s.attack_box_max;
    campaign->attack.harm_threshold = s.attack_harm_threshold;
  }
  base.registry.target_channel = s.target_channel;
  base.registry.target_min = s.target_min;
  base.registry.target_max = s.target_max;
  return base;
}

}  // namespace goodones::core
