#include "core/framework.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "cluster/distance.hpp"
#include "data/timeseries.hpp"

namespace goodones::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const StrategyEvaluation& ExperimentResults::entry(detect::DetectorKind detector,
                                                   Strategy strategy) const {
  for (const auto& e : entries) {
    if (e.detector == detector && e.strategy == strategy) return e;
  }
  throw common::PreconditionError("no experiment entry for requested detector/strategy");
}

RiskProfilingFramework::RiskProfilingFramework(FrameworkConfig config)
    : config_(config), pool_(std::make_unique<common::ThreadPool>()) {}

RiskProfilingFramework::~RiskProfilingFramework() = default;

void RiskProfilingFramework::ensure_cohort() {
  if (!cohort_.empty()) return;
  cohort_ = sim::generate_cohort(config_.cohort);
  train_series_.reserve(cohort_.size());
  test_series_.reserve(cohort_.size());
  for (const auto& trace : cohort_) {
    train_series_.push_back(data::to_series(trace.train));
    test_series_.push_back(data::to_series(trace.test));
  }
}

const std::vector<sim::PatientTrace>& RiskProfilingFramework::cohort() {
  ensure_cohort();
  return cohort_;
}

void RiskProfilingFramework::ensure_models() {
  if (models_.has_value()) return;
  ensure_cohort();
  common::log_info("training forecaster fleet (", cohort_.size(), " personalized + aggregate)");
  predict::RegistryConfig registry_config = config_.registry;
  registry_config.window = config_.window;
  models_ = predict::ModelRegistry::train(cohort_, registry_config, *pool_);
}

const predict::ModelRegistry& RiskProfilingFramework::models() {
  ensure_models();
  return *models_;
}

void RiskProfilingFramework::ensure_scaler() {
  if (scaler_.has_value()) return;
  ensure_cohort();
  data::MinMaxScaler scaler;
  for (const auto& series : train_series_) scaler.partial_fit(series.values);
  scaler.set_column_range(data::kCgm, sim::kMinGlucose, sim::kMaxGlucose);
  scaler_ = std::move(scaler);
}

const data::MinMaxScaler& RiskProfilingFramework::detector_scaler() {
  ensure_scaler();
  return *scaler_;
}

void RiskProfilingFramework::ensure_windows() {
  if (!train_windows_.empty()) return;
  ensure_cohort();
  train_windows_.resize(cohort_.size());
  test_windows_.resize(cohort_.size());
  data::WindowConfig window = config_.window;
  window.step = 1;  // full resolution; consumers stride as needed
  common::parallel_for(*pool_, cohort_.size(), [&](std::size_t i) {
    train_windows_[i] = data::make_windows(train_series_[i], window);
    test_windows_[i] = data::make_windows(test_series_[i], window);
  });
}

void RiskProfilingFramework::ensure_profiling() {
  if (profiling_.has_value()) return;
  ensure_models();
  ensure_windows();

  ProfilingOutputs out;
  out.train_attack_rates.resize(cohort_.size());
  out.profiles.resize(cohort_.size());
  out.benign_normal_ratio.resize(cohort_.size());

  // Step 1: the defender simulates the attack on each victim's own history
  // against the victim's deployed (personalized) model.
  common::log_info("step 1: simulating profiling attack campaigns");
  std::vector<std::vector<attack::WindowOutcome>> train_outcomes(cohort_.size());
  for (std::size_t i = 0; i < cohort_.size(); ++i) {
    train_outcomes[i] = attack::run_campaign(models_->personalized(i), train_windows_[i],
                                             config_.profiling_campaign, *pool_);
    out.train_attack_rates[i] = attack::summarize(train_outcomes[i]);
  }

  // Steps 2-3: instantaneous risk and per-victim profiles.
  for (std::size_t i = 0; i < cohort_.size(); ++i) {
    out.profiles[i] = risk::build_profile(cohort_[i].params.id, train_outcomes[i]);
  }

  // Fig. 4 statistic on the benign traces (train + test).
  for (std::size_t i = 0; i < cohort_.size(); ++i) {
    std::vector<double> cgm = train_series_[i].channel(data::kCgm);
    const auto test_cgm = test_series_[i].channel(data::kCgm);
    cgm.insert(cgm.end(), test_cgm.begin(), test_cgm.end());
    std::vector<data::MealContext> context = train_series_[i].context;
    context.insert(context.end(), test_series_[i].context.begin(),
                   test_series_[i].context.end());
    out.benign_normal_ratio[i] = data::normal_to_abnormal_ratio(cgm, context);
  }

  // Step 4: hierarchical clustering per subset, as the paper presents it.
  common::log_info("step 4: clustering risk profiles");
  const auto cluster_subset = [&](std::size_t offset) {
    std::vector<risk::RiskProfile> subset(out.profiles.begin() + static_cast<std::ptrdiff_t>(offset),
                                          out.profiles.begin() + static_cast<std::ptrdiff_t>(offset) + 6);
    subset = risk::align_profiles(std::move(subset));
    std::vector<std::vector<double>> series;
    series.reserve(subset.size());
    for (const auto& p : subset) series.push_back(p.log_scaled());
    const nn::Matrix distances =
        cluster::distance_matrix(series, config_.profile_distance);
    return cluster::agglomerate(distances, config_.linkage);
  };
  out.dendrogram_a = cluster_subset(0);
  out.dendrogram_b = cluster_subset(6);

  // Cut each subset into two groups and label by attack success: the group
  // whose members were easier to attack is "more vulnerable" (the paper
  // cross-checks clusters against misclassification percentages).
  const auto assign = [&](const cluster::Dendrogram& dendrogram, std::size_t offset) {
    const auto labels = dendrogram.cut(2);
    double rate[2] = {0.0, 0.0};
    std::size_t count[2] = {0, 0};
    for (std::size_t i = 0; i < labels.size(); ++i) {
      rate[labels[i]] += out.train_attack_rates[offset + i].overall_rate();
      ++count[labels[i]];
    }
    for (int g = 0; g < 2; ++g) {
      if (count[g] > 0) rate[g] /= static_cast<double>(count[g]);
    }
    const std::size_t less_label = rate[0] <= rate[1] ? 0 : 1;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == less_label) {
        out.clusters.less_vulnerable.push_back(offset + i);
      } else {
        out.clusters.more_vulnerable.push_back(offset + i);
      }
    }
  };
  assign(*out.dendrogram_a, 0);
  assign(*out.dendrogram_b, 6);

  // Keep the raw campaign outcomes for detector training (the defender's
  // simulated malicious samples come from this very campaign).
  profiling_ = std::move(out);
  train_profiling_outcomes_ = std::move(train_outcomes);
}

const ProfilingOutputs& RiskProfilingFramework::profiling() {
  ensure_profiling();
  return *profiling_;
}

void RiskProfilingFramework::ensure_test_outcomes() {
  if (test_outcomes_ready_) return;
  ensure_models();
  ensure_windows();
  common::log_info("attacking held-out test data (evaluation campaign)");
  test_outcomes_.resize(cohort_.size());
  for (std::size_t i = 0; i < cohort_.size(); ++i) {
    test_outcomes_[i] = attack::run_campaign(models_->personalized(i), test_windows_[i],
                                             config_.evaluation_campaign, *pool_);
  }
  test_outcomes_ready_ = true;
}

const std::vector<attack::WindowOutcome>& RiskProfilingFramework::test_outcomes(
    std::size_t patient) {
  ensure_test_outcomes();
  GO_EXPECTS(patient < test_outcomes_.size());
  return test_outcomes_[patient];
}

const std::vector<attack::WindowOutcome>& RiskProfilingFramework::profiling_outcomes(
    std::size_t patient) {
  ensure_profiling();
  GO_EXPECTS(patient < train_profiling_outcomes_.size());
  return train_profiling_outcomes_[patient];
}

std::vector<nn::Matrix> RiskProfilingFramework::benign_train_windows(std::size_t patient) {
  ensure_windows();
  ensure_scaler();
  GO_EXPECTS(patient < train_windows_.size());
  std::vector<nn::Matrix> out;
  const auto& windows = train_windows_[patient];
  for (std::size_t i = 0; i < windows.size(); i += config_.detector_benign_stride) {
    out.push_back(scaler_->transform(windows[i].features));
  }
  return out;
}

std::vector<nn::Matrix> RiskProfilingFramework::benign_test_windows(std::size_t patient) {
  ensure_windows();
  ensure_scaler();
  GO_EXPECTS(patient < test_windows_.size());
  std::vector<nn::Matrix> out;
  const auto& windows = test_windows_[patient];
  for (std::size_t i = 0; i < windows.size(); i += config_.detector_benign_stride) {
    out.push_back(scaler_->transform(windows[i].features));
  }
  return out;
}

std::vector<nn::Matrix> RiskProfilingFramework::malicious_windows(
    const std::vector<attack::WindowOutcome>& outcomes) {
  ensure_scaler();
  std::vector<nn::Matrix> out;
  for (const auto& outcome : outcomes) {
    if (outcome.attack.success) {
      out.push_back(scaler_->transform(outcome.attack.adversarial_features));
    }
  }
  return out;
}

namespace {

/// Feature layout of a sample-level detector input: the four scaled raw
/// channels plus one hour of ingestion/dosing context. Context is what lets
/// a detector tell a benign postprandial excursion (carbs present) from a
/// manipulated reading (elevated glucose with nothing explaining it).
constexpr std::size_t kSampleFeatures = data::kNumChannels + 2;
constexpr std::size_t kContextSteps = 12;  // one hour at 5-minute cadence

/// Builds one sample-feature row from scaled channel values plus raw
/// one-hour carb/bolus sums.
nn::Matrix make_sample(const data::MinMaxScaler& scaler, double cgm, double basal,
                       double bolus, double carbs, double carbs_1h, double bolus_1h) {
  nn::Matrix sample(1, kSampleFeatures);
  sample(0, data::kCgm) = scaler.transform_value(cgm, data::kCgm);
  sample(0, data::kBasal) = scaler.transform_value(basal, data::kBasal);
  sample(0, data::kBolus) = scaler.transform_value(bolus, data::kBolus);
  sample(0, data::kCarbs) = scaler.transform_value(carbs, data::kCarbs);
  sample(0, data::kNumChannels) = scaler.transform_value(carbs_1h, data::kCarbs);
  sample(0, data::kNumChannels + 1) = scaler.transform_value(bolus_1h, data::kBolus);
  return sample;
}

/// Extracts one sample-feature row per series step, strided.
std::vector<nn::Matrix> series_samples(const data::TelemetrySeries& series,
                                       const data::MinMaxScaler& scaler,
                                       std::size_t stride) {
  // Prefix sums for O(1) one-hour rolling context.
  const std::size_t steps = series.steps();
  std::vector<double> carb_prefix(steps + 1, 0.0);
  std::vector<double> bolus_prefix(steps + 1, 0.0);
  for (std::size_t t = 0; t < steps; ++t) {
    carb_prefix[t + 1] = carb_prefix[t] + series.values(t, data::kCarbs);
    bolus_prefix[t + 1] = bolus_prefix[t] + series.values(t, data::kBolus);
  }
  const auto rolling = [&](const std::vector<double>& prefix, std::size_t t) {
    const std::size_t lo = t + 1 >= kContextSteps ? t + 1 - kContextSteps : 0;
    return prefix[t + 1] - prefix[lo];
  };

  std::vector<nn::Matrix> out;
  out.reserve(steps / stride + 1);
  for (std::size_t t = 0; t < steps; t += stride) {
    out.push_back(make_sample(scaler, series.values(t, data::kCgm),
                              series.values(t, data::kBasal),
                              series.values(t, data::kBolus),
                              series.values(t, data::kCarbs),
                              rolling(carb_prefix, t), rolling(bolus_prefix, t)));
  }
  return out;
}

/// Extracts the edited rows of an adversarial window as sample-feature rows.
/// Context sums come from the window's (unmanipulated) carb/bolus channels.
void append_edited_samples(const attack::WindowOutcome& outcome,
                           const data::MinMaxScaler& scaler,
                           std::vector<nn::Matrix>& out) {
  const nn::Matrix& adv = outcome.attack.adversarial_features;
  double carbs_1h = 0.0;
  double bolus_1h = 0.0;
  for (std::size_t t = 0; t < adv.rows(); ++t) {
    carbs_1h += adv(t, data::kCarbs);
    bolus_1h += adv(t, data::kBolus);
  }
  for (std::size_t t = 0; t < adv.rows(); ++t) {
    if (adv(t, data::kCgm) == outcome.benign.features(t, data::kCgm)) continue;
    out.push_back(make_sample(scaler, adv(t, data::kCgm), adv(t, data::kBasal),
                              adv(t, data::kBolus), adv(t, data::kCarbs), carbs_1h,
                              bolus_1h));
  }
}

}  // namespace

std::vector<nn::Matrix> RiskProfilingFramework::benign_train_samples(std::size_t patient) {
  ensure_cohort();
  ensure_scaler();
  GO_EXPECTS(patient < train_series_.size());
  return series_samples(train_series_[patient], *scaler_, config_.detector_benign_stride);
}

std::vector<nn::Matrix> RiskProfilingFramework::benign_test_samples(std::size_t patient) {
  ensure_cohort();
  ensure_scaler();
  GO_EXPECTS(patient < test_series_.size());
  return series_samples(test_series_[patient], *scaler_, config_.detector_benign_stride);
}

std::vector<nn::Matrix> RiskProfilingFramework::malicious_samples(
    const std::vector<attack::WindowOutcome>& outcomes) {
  ensure_scaler();
  std::vector<nn::Matrix> out;
  for (const auto& outcome : outcomes) {
    if (outcome.attack.success) append_edited_samples(outcome, *scaler_, out);
  }
  return out;
}

StrategyEvaluation RiskProfilingFramework::evaluate_strategy(
    detect::DetectorKind kind, const std::vector<std::size_t>& train_patients) {
  GO_EXPECTS(!train_patients.empty());
  ensure_profiling();
  ensure_test_outcomes();

  StrategyEvaluation eval;
  eval.detector = kind;

  auto detector = detect::make_detector(kind, config_.detectors);
  const bool sample_level =
      detector->granularity() == detect::InputGranularity::kSample;

  // Assemble the strategy's training material at the detector's granularity:
  // individual telemetry samples for kNN/OneClassSVM (the paper flags single
  // glucose measurements), whole windows for MAD-GAN.
  std::vector<nn::Matrix> benign;
  std::vector<nn::Matrix> malicious;
  for (const std::size_t p : train_patients) {
    GO_EXPECTS(p < cohort_.size());
    auto b = sample_level ? benign_train_samples(p) : benign_train_windows(p);
    benign.insert(benign.end(), std::make_move_iterator(b.begin()),
                  std::make_move_iterator(b.end()));
    auto m = sample_level ? malicious_samples(train_profiling_outcomes_[p])
                          : malicious_windows(train_profiling_outcomes_[p]);
    malicious.insert(malicious.end(), std::make_move_iterator(m.begin()),
                     std::make_move_iterator(m.end()));
  }
  if (sample_level) {
    // Defender-side augmentation: the threat model pins manipulated CGM
    // values inside a known constraint box (125-499 mg/dL fasting, 180-499
    // postprandial), so the defender's simulation covers the whole box, not
    // only the manipulations that happened to break the forecaster. Without
    // this, a detector trained on resilient patients would only ever see the
    // attacker's escalated (high-value) probes.
    const double box_lo = config_.profiling_campaign.attack.fasting_min;
    const double box_hi = config_.profiling_campaign.attack.value_max;
    std::uint64_t selection_hash = config_.seed;
    for (const std::size_t p : train_patients) selection_hash = selection_hash * 31 + p;
    common::Rng rng(selection_hash ^ 0xFEEDFACECAFEBEEFULL);
    const std::size_t n_synthetic = std::max<std::size_t>(benign.size() / 4, 256);
    for (std::size_t i = 0; i < n_synthetic && !benign.empty(); ++i) {
      const auto base = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(benign.size()) - 1));
      nn::Matrix sample = benign[base];
      sample(0, data::kCgm) =
          scaler_->transform_value(rng.uniform(box_lo, box_hi), data::kCgm);
      malicious.push_back(std::move(sample));
    }
  } else if (malicious.empty()) {
    // Window-granularity fallback: the simulated attack never fully
    // succeeded on the selected patients. Supervised window detectors still
    // need a malicious class: use the strongest manipulated windows.
    common::log_warn("no successful simulated attacks on selected patients; "
                     "training on strongest manipulated windows instead");
    for (const std::size_t p : train_patients) {
      for (const auto& outcome : train_profiling_outcomes_[p]) {
        if (outcome.attack.edits > 0) {
          malicious.push_back(scaler_->transform(outcome.attack.adversarial_features));
        }
      }
    }
  }
  eval.train_benign = benign.size();
  eval.train_malicious = malicious.size();

  const auto fit_start = Clock::now();
  detector->fit(benign, malicious);
  eval.fit_seconds = seconds_since(fit_start);

  // Test on every patient: their benign test data plus the successful
  // adversarial inputs from the evaluation campaign.
  const auto score_start = Clock::now();
  eval.per_patient.resize(cohort_.size());
  for (std::size_t p = 0; p < cohort_.size(); ++p) {
    const auto benign_eval = sample_level ? benign_test_samples(p) : benign_test_windows(p);
    const auto malicious_eval = sample_level ? malicious_samples(test_outcomes_[p])
                                             : malicious_windows(test_outcomes_[p]);

    std::vector<nn::Matrix> all;
    all.reserve(benign_eval.size() + malicious_eval.size());
    all.insert(all.end(), benign_eval.begin(), benign_eval.end());
    all.insert(all.end(), malicious_eval.begin(), malicious_eval.end());
    std::vector<char> flagged(all.size(), 0);

    common::parallel_for(*pool_, all.size(), [&](std::size_t i) {
      flagged[i] = detector->flags(all[i]) ? 1 : 0;
    });

    ConfusionMatrix& cm = eval.per_patient[p];
    for (std::size_t i = 0; i < benign_eval.size(); ++i) {
      cm.add(/*actual_malicious=*/false, flagged[i] != 0);
    }
    for (std::size_t i = 0; i < malicious_eval.size(); ++i) {
      cm.add(/*actual_malicious=*/true, flagged[benign_eval.size() + i] != 0);
    }
    eval.pooled.merge(cm);
  }
  eval.score_seconds = seconds_since(score_start);
  return eval;
}

ExperimentResults RiskProfilingFramework::run_detector_experiments(
    const std::vector<detect::DetectorKind>& kinds) {
  ensure_profiling();
  ensure_test_outcomes();

  ExperimentResults results;
  for (const auto kind : kinds) {
    for (const Strategy strategy : all_strategies()) {
      if (strategy == Strategy::kRandomSamples) {
        StrategyEvaluation aggregate;
        aggregate.detector = kind;
        aggregate.strategy = strategy;
        aggregate.per_patient.resize(cohort_.size());
        for (std::size_t run = 0; run < config_.random_runs; ++run) {
          const auto patients =
              select_patients(strategy, profiling_->clusters, cohort_.size(),
                              config_.random_patients, config_.seed ^ (0x5170ULL + run));
          StrategyEvaluation eval = evaluate_strategy(kind, patients);
          eval.strategy = strategy;
          eval.run = run;
          aggregate.pooled.merge(eval.pooled);
          for (std::size_t p = 0; p < cohort_.size(); ++p) {
            aggregate.per_patient[p].merge(eval.per_patient[p]);
          }
          aggregate.train_benign += eval.train_benign;
          aggregate.train_malicious += eval.train_malicious;
          aggregate.fit_seconds += eval.fit_seconds;
          aggregate.score_seconds += eval.score_seconds;
          results.random_runs.push_back(std::move(eval));
        }
        aggregate.train_benign /= config_.random_runs;
        aggregate.train_malicious /= config_.random_runs;
        results.entries.push_back(std::move(aggregate));
      } else {
        const auto patients = select_patients(strategy, profiling_->clusters,
                                              cohort_.size(), config_.random_patients,
                                              config_.seed);
        StrategyEvaluation eval = evaluate_strategy(kind, patients);
        eval.strategy = strategy;
        results.entries.push_back(std::move(eval));
      }
      common::log_info(detect::to_string(kind), " x ", to_string(strategy), " done");
    }
  }
  return results;
}

}  // namespace goodones::core
