#include "core/framework.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "cluster/distance.hpp"
#include "core/sample_features.hpp"

namespace goodones::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const StrategyEvaluation& ExperimentResults::entry(detect::DetectorKind detector,
                                                   Strategy strategy) const {
  for (const auto& e : entries) {
    if (e.detector == detector && e.strategy == strategy) return e;
  }
  throw common::PreconditionError("no experiment entry for requested detector/strategy");
}

RiskProfilingFramework::RiskProfilingFramework(std::shared_ptr<const DomainAdapter> domain,
                                               FrameworkConfig config)
    : domain_(std::move(domain)),
      config_(config),
      pool_(std::make_unique<common::ThreadPool>()) {
  GO_EXPECTS(domain_ != nullptr);
  const DomainSpec& spec = domain_->spec();
  // Catch configs that skipped DomainAdapter::prepare(): the registry's
  // target scaling must agree with the domain spec or cross-entity risk
  // comparison silently breaks.
  GO_EXPECTS(config_.registry.target_channel == spec.target_channel);
  GO_EXPECTS(config_.registry.target_min == spec.target_min);
  GO_EXPECTS(config_.registry.target_max == spec.target_max);
}

RiskProfilingFramework::~RiskProfilingFramework() = default;

void RiskProfilingFramework::ensure_entities() {
  if (!entities_.empty()) return;
  entities_ = domain_->make_entities(config_.population);
  GO_ENSURES(!entities_.empty());
  for (const auto& entity : entities_) {
    GO_ENSURES(entity.train.num_channels() == domain_->spec().num_channels);
    GO_ENSURES(entity.subset < domain_->spec().num_subsets);
  }
}

const std::vector<EntityData>& RiskProfilingFramework::entities() {
  ensure_entities();
  return entities_;
}

void RiskProfilingFramework::ensure_models() {
  if (models_.has_value()) return;
  ensure_entities();
  common::log_info("training forecaster fleet (", entities_.size(),
                   " personalized + aggregate)");
  predict::RegistryConfig registry_config = config_.registry;
  registry_config.window = config_.window;
  std::vector<const data::TelemetrySeries*> train_series;
  std::vector<std::string> names;
  train_series.reserve(entities_.size());
  names.reserve(entities_.size());
  for (const auto& entity : entities_) {
    train_series.push_back(&entity.train);
    names.push_back(entity.name);
  }
  models_ = predict::ModelRegistry::train(train_series, names, registry_config, *pool_);
}

const predict::ModelRegistry& RiskProfilingFramework::models() {
  ensure_models();
  return *models_;
}

void RiskProfilingFramework::ensure_scaler() {
  if (scaler_.has_value()) return;
  ensure_entities();
  const DomainSpec& spec = domain_->spec();
  data::MinMaxScaler scaler;
  for (const auto& entity : entities_) scaler.partial_fit(entity.train.values);
  scaler.set_column_range(spec.target_channel, spec.target_min, spec.target_max);
  scaler_ = std::move(scaler);
}

const data::MinMaxScaler& RiskProfilingFramework::detector_scaler() {
  ensure_scaler();
  return *scaler_;
}

void RiskProfilingFramework::ensure_windows() {
  if (!train_windows_.empty()) return;
  ensure_entities();
  train_windows_.resize(entities_.size());
  test_windows_.resize(entities_.size());
  data::WindowConfig window = config_.window;
  window.step = 1;  // full resolution; consumers stride as needed
  common::parallel_for(*pool_, entities_.size(), [&](std::size_t i) {
    train_windows_[i] = data::make_windows(entities_[i].train, window);
    test_windows_[i] = data::make_windows(entities_[i].test, window);
  });
}

void RiskProfilingFramework::ensure_profiling() {
  if (profiling_.has_value()) return;
  ensure_models();
  ensure_windows();
  const DomainSpec& spec = domain_->spec();

  ProfilingOutputs out;
  out.train_attack_rates.resize(entities_.size());
  out.profiles.resize(entities_.size());
  out.benign_normal_ratio.resize(entities_.size());

  // Step 1: the defender simulates the attack on each victim's own history
  // against the victim's deployed (personalized) model.
  common::log_info("step 1: simulating profiling attack campaigns");
  std::vector<std::vector<attack::WindowOutcome>> train_outcomes(entities_.size());
  for (std::size_t i = 0; i < entities_.size(); ++i) {
    train_outcomes[i] = attack::run_campaign(models_->personalized(i), train_windows_[i],
                                             config_.profiling_campaign, *pool_);
    out.train_attack_rates[i] = attack::summarize(train_outcomes[i]);
  }

  // Steps 2-3: instantaneous risk and per-victim profiles, under the
  // domain's severity schedule.
  for (std::size_t i = 0; i < entities_.size(); ++i) {
    out.profiles[i] = risk::build_profile(entities_[i].name, train_outcomes[i],
                                          spec.severity);
  }

  // Fig. 4 statistic on the benign traces (train + test).
  for (std::size_t i = 0; i < entities_.size(); ++i) {
    std::vector<double> target = entities_[i].train.channel(spec.target_channel);
    const auto test_target = entities_[i].test.channel(spec.target_channel);
    target.insert(target.end(), test_target.begin(), test_target.end());
    std::vector<data::Regime> regimes = entities_[i].train.regimes;
    regimes.insert(regimes.end(), entities_[i].test.regimes.begin(),
                   entities_[i].test.regimes.end());
    out.benign_normal_ratio[i] = data::normal_ratio(target, regimes, spec.thresholds);
  }

  // Step 4: hierarchical clustering per subset, as the paper presents it.
  common::log_info("step 4: clustering risk profiles");
  out.subset_members.resize(spec.num_subsets);
  for (std::size_t i = 0; i < entities_.size(); ++i) {
    out.subset_members[entities_[i].subset].push_back(i);
  }
  for (const auto& members : out.subset_members) {
    GO_ENSURES(members.size() >= 2);  // a dendrogram needs at least two leaves
  }
  out.dendrograms.reserve(spec.num_subsets);
  for (std::size_t s = 0; s < spec.num_subsets; ++s) {
    std::vector<risk::RiskProfile> subset;
    subset.reserve(out.subset_members[s].size());
    for (const std::size_t i : out.subset_members[s]) subset.push_back(out.profiles[i]);
    subset = risk::align_profiles(std::move(subset));
    std::vector<std::vector<double>> series;
    series.reserve(subset.size());
    for (const auto& p : subset) series.push_back(p.log_scaled());
    const nn::Matrix distances =
        cluster::distance_matrix(series, config_.profile_distance);
    out.dendrograms.push_back(cluster::agglomerate(distances, config_.linkage));
  }

  // Cut each subset into two groups and label by attack success: the group
  // whose members were easier to attack is "more vulnerable" (the paper
  // cross-checks clusters against misclassification percentages).
  for (std::size_t s = 0; s < spec.num_subsets; ++s) {
    const auto& members = out.subset_members[s];
    const auto labels = out.dendrograms[s].cut(2);
    double rate[2] = {0.0, 0.0};
    std::size_t count[2] = {0, 0};
    for (std::size_t i = 0; i < labels.size(); ++i) {
      rate[labels[i]] += out.train_attack_rates[members[i]].overall_rate();
      ++count[labels[i]];
    }
    for (int g = 0; g < 2; ++g) {
      if (count[g] > 0) rate[g] /= static_cast<double>(count[g]);
    }
    const std::size_t less_label = rate[0] <= rate[1] ? 0 : 1;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == less_label) {
        out.clusters.less_vulnerable.push_back(members[i]);
      } else {
        out.clusters.more_vulnerable.push_back(members[i]);
      }
    }
  }

  // Keep the raw campaign outcomes for detector training (the defender's
  // simulated malicious samples come from this very campaign).
  profiling_ = std::move(out);
  train_profiling_outcomes_ = std::move(train_outcomes);
}

const ProfilingOutputs& RiskProfilingFramework::profiling() {
  ensure_profiling();
  return *profiling_;
}

void RiskProfilingFramework::ensure_test_outcomes() {
  if (test_outcomes_ready_) return;
  ensure_models();
  ensure_windows();
  common::log_info("attacking held-out test data (evaluation campaign)");
  test_outcomes_.resize(entities_.size());
  for (std::size_t i = 0; i < entities_.size(); ++i) {
    test_outcomes_[i] = attack::run_campaign(models_->personalized(i), test_windows_[i],
                                             config_.evaluation_campaign, *pool_);
  }
  test_outcomes_ready_ = true;
}

const std::vector<attack::WindowOutcome>& RiskProfilingFramework::test_outcomes(
    std::size_t entity) {
  ensure_test_outcomes();
  GO_EXPECTS(entity < test_outcomes_.size());
  return test_outcomes_[entity];
}

const std::vector<attack::WindowOutcome>& RiskProfilingFramework::profiling_outcomes(
    std::size_t entity) {
  ensure_profiling();
  GO_EXPECTS(entity < train_profiling_outcomes_.size());
  return train_profiling_outcomes_[entity];
}

std::vector<nn::Matrix> RiskProfilingFramework::benign_train_windows(std::size_t entity) {
  ensure_windows();
  ensure_scaler();
  GO_EXPECTS(entity < train_windows_.size());
  std::vector<nn::Matrix> out;
  const auto& windows = train_windows_[entity];
  for (std::size_t i = 0; i < windows.size(); i += config_.detector_benign_stride) {
    out.push_back(scaler_->transform(windows[i].features));
  }
  return out;
}

std::vector<nn::Matrix> RiskProfilingFramework::benign_test_windows(std::size_t entity) {
  ensure_windows();
  ensure_scaler();
  GO_EXPECTS(entity < test_windows_.size());
  std::vector<nn::Matrix> out;
  const auto& windows = test_windows_[entity];
  for (std::size_t i = 0; i < windows.size(); i += config_.detector_benign_stride) {
    out.push_back(scaler_->transform(windows[i].features));
  }
  return out;
}

std::vector<nn::Matrix> RiskProfilingFramework::malicious_windows(
    const std::vector<attack::WindowOutcome>& outcomes) {
  ensure_scaler();
  std::vector<nn::Matrix> out;
  for (const auto& outcome : outcomes) {
    if (outcome.attack.success) {
      out.push_back(scaler_->transform(outcome.attack.adversarial_features));
    }
  }
  return out;
}

std::vector<nn::Matrix> RiskProfilingFramework::benign_train_samples(std::size_t entity) {
  ensure_entities();
  ensure_scaler();
  GO_EXPECTS(entity < entities_.size());
  return series_samples(domain_->spec(), entities_[entity].train, *scaler_,
                        config_.detector_benign_stride);
}

std::vector<nn::Matrix> RiskProfilingFramework::benign_test_samples(std::size_t entity) {
  ensure_entities();
  ensure_scaler();
  GO_EXPECTS(entity < entities_.size());
  return series_samples(domain_->spec(), entities_[entity].test, *scaler_,
                        config_.detector_benign_stride);
}

std::vector<nn::Matrix> RiskProfilingFramework::malicious_samples(
    const std::vector<attack::WindowOutcome>& outcomes) {
  ensure_scaler();
  const DomainSpec& spec = domain_->spec();
  std::vector<nn::Matrix> out;
  for (const auto& outcome : outcomes) {
    if (outcome.attack.success) append_edited_samples(spec, outcome, *scaler_, out);
  }
  return out;
}

TrainedDetector RiskProfilingFramework::train_detector(
    detect::DetectorKind kind, const std::vector<std::size_t>& train_victims) {
  GO_EXPECTS(!train_victims.empty());
  ensure_profiling();
  const DomainSpec& spec = domain_->spec();

  TrainedDetector trained;
  trained.detector = detect::make_detector(kind, config_.detectors);
  auto& detector = trained.detector;
  const bool sample_level =
      detector->granularity() == detect::InputGranularity::kSample;

  // Assemble the strategy's training material at the detector's granularity:
  // individual telemetry samples for kNN/OneClassSVM (the paper flags single
  // measurements), whole windows for MAD-GAN.
  std::vector<nn::Matrix> benign;
  std::vector<nn::Matrix> malicious;
  for (const std::size_t p : train_victims) {
    GO_EXPECTS(p < entities_.size());
    auto b = sample_level ? benign_train_samples(p) : benign_train_windows(p);
    benign.insert(benign.end(), std::make_move_iterator(b.begin()),
                  std::make_move_iterator(b.end()));
    auto m = sample_level ? malicious_samples(train_profiling_outcomes_[p])
                          : malicious_windows(train_profiling_outcomes_[p]);
    malicious.insert(malicious.end(), std::make_move_iterator(m.begin()),
                     std::make_move_iterator(m.end()));
  }
  if (sample_level) {
    // Defender-side augmentation: the threat model pins manipulated target
    // values inside a known constraint box, so the defender's simulation
    // covers the whole box, not only the manipulations that happened to
    // break the forecaster. Without this, a detector trained on resilient
    // victims would only ever see the attacker's escalated probes.
    const double box_lo = config_.profiling_campaign.attack.baseline_box_min;
    const double box_hi = config_.profiling_campaign.attack.box_max;
    std::uint64_t selection_hash = config_.seed;
    for (const std::size_t p : train_victims) selection_hash = selection_hash * 31 + p;
    common::Rng rng(selection_hash ^ 0xFEEDFACECAFEBEEFULL);
    const std::size_t n_synthetic = std::max<std::size_t>(benign.size() / 4, 256);
    for (std::size_t i = 0; i < n_synthetic && !benign.empty(); ++i) {
      const auto base = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(benign.size()) - 1));
      nn::Matrix sample = benign[base];
      sample(0, spec.target_channel) =
          scaler_->transform_value(rng.uniform(box_lo, box_hi), spec.target_channel);
      malicious.push_back(std::move(sample));
    }
  } else if (malicious.empty()) {
    // Window-granularity fallback: the simulated attack never fully
    // succeeded on the selected victims. Supervised window detectors still
    // need a malicious class: use the strongest manipulated windows.
    common::log_warn("no successful simulated attacks on selected victims; "
                     "training on strongest manipulated windows instead");
    for (const std::size_t p : train_victims) {
      for (const auto& outcome : train_profiling_outcomes_[p]) {
        if (outcome.attack.edits > 0) {
          malicious.push_back(scaler_->transform(outcome.attack.adversarial_features));
        }
      }
    }
  }
  trained.train_benign = benign.size();
  trained.train_malicious = malicious.size();

  const auto fit_start = Clock::now();
  detector->fit(benign, malicious);
  trained.fit_seconds = seconds_since(fit_start);
  return trained;
}

VulnerabilityClusters RiskProfilingFramework::rebuild_routing(
    const VulnerabilityClusters& partition) {
  ensure_entities();
  VulnerabilityClusters canonical = partition;
  std::sort(canonical.less_vulnerable.begin(), canonical.less_vulnerable.end());
  std::sort(canonical.more_vulnerable.begin(), canonical.more_vulnerable.end());

  std::vector<char> seen(entities_.size(), 0);
  const auto mark = [&](const std::vector<std::size_t>& group) {
    for (const std::size_t p : group) {
      if (p >= entities_.size()) {
        throw common::PreconditionError("routing partition names unknown entity index " +
                                        std::to_string(p));
      }
      if (seen[p]) {
        throw common::PreconditionError("routing partition assigns entity " +
                                        std::to_string(p) + " to both clusters");
      }
      seen[p] = 1;
    }
  };
  mark(canonical.less_vulnerable);
  mark(canonical.more_vulnerable);
  for (std::size_t p = 0; p < seen.size(); ++p) {
    if (!seen[p]) {
      throw common::PreconditionError("routing partition misses entity " + std::to_string(p));
    }
  }
  return canonical;
}

StrategyEvaluation RiskProfilingFramework::evaluate_strategy(
    detect::DetectorKind kind, const std::vector<std::size_t>& train_victims) {
  ensure_test_outcomes();

  TrainedDetector trained = train_detector(kind, train_victims);
  const auto& detector = trained.detector;
  const bool sample_level =
      detector->granularity() == detect::InputGranularity::kSample;

  StrategyEvaluation eval;
  eval.detector = kind;
  eval.train_benign = trained.train_benign;
  eval.train_malicious = trained.train_malicious;
  eval.fit_seconds = trained.fit_seconds;

  // Test on every victim: their benign test data plus the successful
  // adversarial inputs from the evaluation campaign.
  const auto score_start = Clock::now();
  eval.per_victim.resize(entities_.size());
  for (std::size_t p = 0; p < entities_.size(); ++p) {
    const auto benign_eval = sample_level ? benign_test_samples(p) : benign_test_windows(p);
    const auto malicious_eval = sample_level ? malicious_samples(test_outcomes_[p])
                                             : malicious_windows(test_outcomes_[p]);

    std::vector<nn::Matrix> all;
    all.reserve(benign_eval.size() + malicious_eval.size());
    all.insert(all.end(), benign_eval.begin(), benign_eval.end());
    all.insert(all.end(), malicious_eval.begin(), malicious_eval.end());
    std::vector<char> flagged(all.size(), 0);

    common::parallel_for(*pool_, all.size(), [&](std::size_t i) {
      flagged[i] = detector->flags(all[i]) ? 1 : 0;
    });

    ConfusionMatrix& cm = eval.per_victim[p];
    for (std::size_t i = 0; i < benign_eval.size(); ++i) {
      cm.add(/*actual_malicious=*/false, flagged[i] != 0);
    }
    for (std::size_t i = 0; i < malicious_eval.size(); ++i) {
      cm.add(/*actual_malicious=*/true, flagged[benign_eval.size() + i] != 0);
    }
    eval.pooled.merge(cm);
  }
  eval.score_seconds = seconds_since(score_start);
  return eval;
}

ExperimentResults RiskProfilingFramework::run_detector_experiments(
    const std::vector<detect::DetectorKind>& kinds) {
  ensure_profiling();
  ensure_test_outcomes();

  ExperimentResults results;
  for (const auto kind : kinds) {
    for (const Strategy strategy : all_strategies()) {
      if (strategy == Strategy::kRandomSamples) {
        StrategyEvaluation aggregate;
        aggregate.detector = kind;
        aggregate.strategy = strategy;
        aggregate.per_victim.resize(entities_.size());
        for (std::size_t run = 0; run < config_.random_runs; ++run) {
          const auto victims =
              select_victims(strategy, profiling_->clusters, entities_.size(),
                             config_.random_victims, config_.seed ^ (0x5170ULL + run));
          StrategyEvaluation eval = evaluate_strategy(kind, victims);
          eval.strategy = strategy;
          eval.run = run;
          aggregate.pooled.merge(eval.pooled);
          for (std::size_t p = 0; p < entities_.size(); ++p) {
            aggregate.per_victim[p].merge(eval.per_victim[p]);
          }
          aggregate.train_benign += eval.train_benign;
          aggregate.train_malicious += eval.train_malicious;
          aggregate.fit_seconds += eval.fit_seconds;
          aggregate.score_seconds += eval.score_seconds;
          results.random_runs.push_back(std::move(eval));
        }
        aggregate.train_benign /= config_.random_runs;
        aggregate.train_malicious /= config_.random_runs;
        results.entries.push_back(std::move(aggregate));
      } else {
        const auto victims = select_victims(strategy, profiling_->clusters,
                                            entities_.size(), config_.random_victims,
                                            config_.seed);
        StrategyEvaluation eval = evaluate_strategy(kind, victims);
        eval.strategy = strategy;
        results.entries.push_back(std::move(eval));
      }
      common::log_info(detect::to_string(kind), " x ", to_string(strategy), " done");
    }
  }
  return results;
}

}  // namespace goodones::core
