// On-disk cache for detector experiment results.
//
// The Fig. 7 / Fig. 8 / Fig. 11 benches render different columns of the
// same expensive detector x strategy grid. The first bench to run persists
// the grid as CSV keyed by the domain name plus the config fingerprint; the
// others load it. Delete the artifacts directory (default
// ./goodones_artifacts, override with GOODONES_ARTIFACTS) to force
// recomputation.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

#include "core/config.hpp"
#include "core/framework.hpp"

namespace goodones::core {

/// Artifact directory (created on demand).
std::filesystem::path artifacts_dir();

/// Cache key of a domain: its name plus its variant (differently-
/// parameterized adapter instances must not collide on one cache file).
/// Shared by the experiment cache and the serving-path model registry.
std::string domain_cache_key(const DomainSpec& spec);

/// Cache file path for a given domain + config.
std::filesystem::path experiments_cache_path(const FrameworkConfig& config,
                                             std::string_view domain_name);

/// Serializes results (entries + random-run detail) to CSV.
void save_experiments(const ExperimentResults& results, const FrameworkConfig& config,
                      std::string_view domain_name);

/// Loads previously saved results; std::nullopt when absent or unreadable.
std::optional<ExperimentResults> load_experiments(const FrameworkConfig& config,
                                                  std::string_view domain_name);

/// Returns cached results when present, otherwise computes them through
/// `framework` (which must have been built with the same config) and saves.
ExperimentResults experiments_with_cache(RiskProfilingFramework& framework,
                                         const std::vector<detect::DetectorKind>& kinds);

}  // namespace goodones::core
