#include "core/strategy.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace goodones::core {

std::array<Strategy, 4> all_strategies() noexcept {
  return {Strategy::kLessVulnerable, Strategy::kMoreVulnerable, Strategy::kRandomSamples,
          Strategy::kAllVictims};
}

const char* to_string(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kLessVulnerable: return "Less Vulnerable";
    case Strategy::kMoreVulnerable: return "More Vulnerable";
    case Strategy::kRandomSamples: return "Random Samples";
    case Strategy::kAllVictims: return "All Victims";
  }
  return "?";
}

std::vector<std::size_t> select_victims(Strategy strategy,
                                        const VulnerabilityClusters& clusters,
                                        std::size_t population_size,
                                        std::size_t random_victims,
                                        std::uint64_t run_seed) {
  switch (strategy) {
    case Strategy::kLessVulnerable:
      GO_EXPECTS(!clusters.less_vulnerable.empty());
      return clusters.less_vulnerable;
    case Strategy::kMoreVulnerable:
      GO_EXPECTS(!clusters.more_vulnerable.empty());
      return clusters.more_vulnerable;
    case Strategy::kRandomSamples: {
      GO_EXPECTS(random_victims > 0 && random_victims <= population_size);
      common::Rng rng(run_seed);
      auto picks = rng.sample_without_replacement(population_size, random_victims);
      std::sort(picks.begin(), picks.end());
      return picks;
    }
    case Strategy::kAllVictims: {
      std::vector<std::size_t> all(population_size);
      for (std::size_t i = 0; i < population_size; ++i) all[i] = i;
      return all;
    }
  }
  return {};
}

}  // namespace goodones::core
