#include "core/strategy.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace goodones::core {

std::array<Strategy, 4> all_strategies() noexcept {
  return {Strategy::kLessVulnerable, Strategy::kMoreVulnerable, Strategy::kRandomSamples,
          Strategy::kAllPatients};
}

const char* to_string(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kLessVulnerable: return "Less Vulnerable";
    case Strategy::kMoreVulnerable: return "More Vulnerable";
    case Strategy::kRandomSamples: return "Random Samples";
    case Strategy::kAllPatients: return "All Patients";
  }
  return "?";
}

std::vector<std::size_t> select_patients(Strategy strategy,
                                         const VulnerabilityClusters& clusters,
                                         std::size_t cohort_size,
                                         std::size_t random_patients,
                                         std::uint64_t run_seed) {
  switch (strategy) {
    case Strategy::kLessVulnerable:
      GO_EXPECTS(!clusters.less_vulnerable.empty());
      return clusters.less_vulnerable;
    case Strategy::kMoreVulnerable:
      GO_EXPECTS(!clusters.more_vulnerable.empty());
      return clusters.more_vulnerable;
    case Strategy::kRandomSamples: {
      GO_EXPECTS(random_patients > 0 && random_patients <= cohort_size);
      common::Rng rng(run_seed);
      auto picks = rng.sample_without_replacement(cohort_size, random_patients);
      std::sort(picks.begin(), picks.end());
      return picks;
    }
    case Strategy::kAllPatients: {
      std::vector<std::size_t> all(cohort_size);
      for (std::size_t i = 0; i < cohort_size; ++i) all[i] = i;
      return all;
    }
  }
  return {};
}

}  // namespace goodones::core
