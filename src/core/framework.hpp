// The five-step risk-profiling framework (the paper's core contribution),
// end to end and domain-agnostic:
//
//   1. Simulate the evasion attack against each victim's deployed model.
//   2. Quantify instantaneous risk R_t = S * Z_t at every attacked step.
//   3. Assemble per-victim time-series risk profiles.
//   4. Hierarchically cluster the profiles into vulnerability groups
//      (per subset, as the paper does), labeling the group with the lower
//      mean risk "less vulnerable".
//   5. Selectively train anomaly detectors on a strategy's victims and
//      evaluate them on the held-out test data of *all* victims.
//
// Scenario knowledge lives behind core::DomainAdapter (core/domain.hpp):
// the framework asks the adapter for the entity population and the domain
// spec (telemetry schema, thresholds, severity, attack semantics) and never
// names a concrete scenario. Heavy stages are computed lazily and reused:
// benches for different figures share one framework instance (or the
// on-disk cache, see core/cache.hpp).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "attack/campaign.hpp"
#include "cluster/hierarchical.hpp"
#include "common/thread_pool.hpp"
#include "core/config.hpp"
#include "core/domain.hpp"
#include "core/metrics.hpp"
#include "core/strategy.hpp"
#include "detect/factory.hpp"
#include "predict/registry.hpp"
#include "risk/profile.hpp"

namespace goodones::core {

/// Steps 1-4 outputs, everything the paper's Figs. 3/4/9/10 and Table II need.
struct ProfilingOutputs {
  /// Per-entity attack campaigns on the *training* split (the defender's
  /// own simulation), entity order.
  std::vector<attack::SuccessRates> train_attack_rates;
  std::vector<risk::RiskProfile> profiles;
  /// One dendrogram per clustering subset, in subset order.
  std::vector<cluster::Dendrogram> dendrograms;
  /// Entity indices belonging to each subset, in entity order (the
  /// dendrogram's leaf order).
  std::vector<std::vector<std::size_t>> subset_members;
  VulnerabilityClusters clusters;
  /// Fig. 4: fraction of benign samples in the normal state, per entity.
  std::vector<double> benign_normal_ratio;
};

/// One detector-x-strategy evaluation (step 5).
struct StrategyEvaluation {
  detect::DetectorKind detector = detect::DetectorKind::kKnn;
  Strategy strategy = Strategy::kAllVictims;
  std::size_t run = 0;  ///< random-strategy repetition index (0 otherwise)
  ConfusionMatrix pooled;                   ///< over all test victims
  std::vector<ConfusionMatrix> per_victim;  ///< entity order
  std::size_t train_benign = 0;
  std::size_t train_malicious = 0;
  double fit_seconds = 0.0;
  double score_seconds = 0.0;
};

/// A detector fitted on one victim subset, with its training-set accounting
/// (the building block behind evaluate_strategy and the serving-path
/// bundle builder, which persists these per vulnerability cluster).
struct TrainedDetector {
  std::unique_ptr<detect::AnomalyDetector> detector;
  std::size_t train_benign = 0;
  std::size_t train_malicious = 0;
  double fit_seconds = 0.0;
};

struct ExperimentResults {
  /// One aggregated entry per detector x strategy (random runs pooled).
  std::vector<StrategyEvaluation> entries;
  /// Individual random-strategy runs, for dispersion reporting.
  std::vector<StrategyEvaluation> random_runs;

  /// Lookup; throws PreconditionError if absent.
  const StrategyEvaluation& entry(detect::DetectorKind detector, Strategy strategy) const;
};

class RiskProfilingFramework {
 public:
  /// `domain` supplies the scenario; `config` the experiment tuning. Build
  /// the config through domain->prepare(...) so the domain's semantics are
  /// stamped onto it (see DomainAdapter::prepare).
  RiskProfilingFramework(std::shared_ptr<const DomainAdapter> domain,
                         FrameworkConfig config);
  ~RiskProfilingFramework();

  RiskProfilingFramework(const RiskProfilingFramework&) = delete;
  RiskProfilingFramework& operator=(const RiskProfilingFramework&) = delete;

  const FrameworkConfig& config() const noexcept { return config_; }
  const DomainAdapter& domain() const noexcept { return *domain_; }

  // --- lazily computed stages ---

  /// The domain's monitored entities (telemetry already split train/test).
  const std::vector<EntityData>& entities();

  /// Personalized + aggregate forecasters.
  const predict::ModelRegistry& models();

  /// Steps 1-4.
  const ProfilingOutputs& profiling();

  /// Evaluation campaign (attack on the held-out test split) per entity.
  const std::vector<attack::WindowOutcome>& test_outcomes(std::size_t entity);

  /// Step-1 profiling campaign (attack on the training split) per entity.
  /// Ablation benches re-derive risk profiles from these under alternative
  /// severity schedules and clustering choices.
  const std::vector<attack::WindowOutcome>& profiling_outcomes(std::size_t entity);

  /// Step 5 for the given detectors across all four strategies.
  ExperimentResults run_detector_experiments(
      const std::vector<detect::DetectorKind>& kinds);

  /// Step 5 for a single detector x victim subset (building block used by
  /// run_detector_experiments and directly by ablation benches).
  StrategyEvaluation evaluate_strategy(detect::DetectorKind kind,
                                       const std::vector<std::size_t>& train_victims);

  /// Fits a fresh detector of `kind` on the given victims' training
  /// material (benign telemetry + the defender's simulated attack), without
  /// evaluating it. The serving path persists one of these per
  /// vulnerability cluster; evaluate_strategy builds on it.
  TrainedDetector train_detector(detect::DetectorKind kind,
                                 const std::vector<std::size_t>& train_victims);

  /// Validates and canonicalizes an externally-supplied vulnerability
  /// partition (e.g. the online profiler's reassessment) into the exact
  /// representation step 4 emits: every entity index appears exactly once,
  /// both groups sorted ascending. The adaptive serving loop rebuilds
  /// routing tables and retrains per-cluster detectors through this seam,
  /// so online reassignment goes through training-identical cluster
  /// assignment code instead of a parallel implementation. Throws
  /// common::PreconditionError on a partition that misses, duplicates, or
  /// invents entities.
  VulnerabilityClusters rebuild_routing(const VulnerabilityClusters& partition);

  // --- helpers shared with benches/examples ---

  /// The global detector feature scaler (fit across all entities' train data).
  const data::MinMaxScaler& detector_scaler();

  /// Benign train/test windows of one entity, scaled, at the configured
  /// detector stride (window-granularity detectors, i.e. MAD-GAN).
  std::vector<nn::Matrix> benign_train_windows(std::size_t entity);
  std::vector<nn::Matrix> benign_test_windows(std::size_t entity);

  /// Successful adversarial windows (scaled) from the given campaign.
  std::vector<nn::Matrix> malicious_windows(
      const std::vector<attack::WindowOutcome>& outcomes);

  /// Benign train/test telemetry *samples* of one entity — (1 x F) scaled
  /// matrices at the configured stride, where F = channels plus one rolling
  /// context sum per spec().context_channels entry (sample-granularity
  /// detectors, i.e. kNN and OneClassSVM, matching the paper's
  /// per-measurement Fig. 5).
  std::vector<nn::Matrix> benign_train_samples(std::size_t entity);
  std::vector<nn::Matrix> benign_test_samples(std::size_t entity);

  /// The individual manipulated target-channel samples from successful
  /// attacks in the given campaign: one (1 x F) matrix per edited timestep,
  /// scaled.
  std::vector<nn::Matrix> malicious_samples(
      const std::vector<attack::WindowOutcome>& outcomes);

  common::ThreadPool& pool() noexcept { return *pool_; }

 private:
  void ensure_entities();
  void ensure_models();
  void ensure_scaler();
  void ensure_windows();
  void ensure_profiling();
  void ensure_test_outcomes();

  std::shared_ptr<const DomainAdapter> domain_;
  FrameworkConfig config_;
  std::unique_ptr<common::ThreadPool> pool_;

  std::vector<EntityData> entities_;
  std::optional<predict::ModelRegistry> models_;
  std::optional<data::MinMaxScaler> scaler_;
  std::vector<std::vector<data::Window>> train_windows_;  // full stride-1 windows
  std::vector<std::vector<data::Window>> test_windows_;
  std::optional<ProfilingOutputs> profiling_;
  /// Step-1 campaigns on the training split, kept because the defender's
  /// simulated malicious samples double as kNN training data.
  std::vector<std::vector<attack::WindowOutcome>> train_profiling_outcomes_;
  std::vector<std::vector<attack::WindowOutcome>> test_outcomes_;
  bool test_outcomes_ready_ = false;
};

}  // namespace goodones::core
