// Sample-granularity detector feature assembly, shared by the offline
// framework (training/evaluation material) and the serving path (scoring
// live windows). Keeping one implementation is load-bearing: the e2e
// serving guarantee — "served verdicts equal in-memory verdicts" — only
// holds if both sides build bit-identical feature rows.
//
// A sample row is the scaled raw channels plus one rolling context sum per
// spec().context_channels entry. Context is what lets a detector tell a
// benign excursion (explained by recent events) from a manipulated reading
// (elevated target with nothing explaining it).
#pragma once

#include <vector>

#include "attack/campaign.hpp"
#include "core/domain.hpp"
#include "data/scaler.hpp"
#include "data/timeseries.hpp"
#include "nn/matrix.hpp"

namespace goodones::core {

/// Feature width of a sample-level detector input for this domain:
/// num_channels raw channels + one rolling sum per context channel.
std::size_t sample_feature_count(const DomainSpec& spec) noexcept;

/// Builds one (1 x F) sample row from raw channel values plus raw rolling
/// context sums (one per context channel, scaled by that channel's scale).
nn::Matrix make_sample(const DomainSpec& spec, const data::MinMaxScaler& scaler,
                       const std::vector<double>& channels,
                       const std::vector<double>& context_sums);

/// Extracts one sample row per series step, strided. Context sums see the
/// full series history up to spec.context_window_steps.
std::vector<nn::Matrix> series_samples(const DomainSpec& spec,
                                       const data::TelemetrySeries& series,
                                       const data::MinMaxScaler& scaler,
                                       std::size_t stride);

/// Extracts the edited rows of an adversarial window as sample rows.
/// Context sums come from the window's (unmanipulated) context channels and
/// are therefore bounded by the window length: a window carries at most
/// seq_len steps of history, even when spec.context_window_steps is larger
/// (benign samples, extracted from the full series, see the full horizon).
void append_edited_samples(const DomainSpec& spec,
                           const attack::WindowOutcome& outcome,
                           const data::MinMaxScaler& scaler,
                           std::vector<nn::Matrix>& out);

/// Serving-time sample for one raw telemetry window: the last row's channel
/// values with context sums over the window rows (the same window-bounded
/// context convention as append_edited_samples, so a detector scores live
/// windows in the distribution it was trained on).
nn::Matrix window_sample(const DomainSpec& spec, const data::MinMaxScaler& scaler,
                         const nn::Matrix& window);

}  // namespace goodones::core
