#include "core/sample_features.hpp"

#include "common/error.hpp"

namespace goodones::core {

std::size_t sample_feature_count(const DomainSpec& spec) noexcept {
  return spec.num_channels + spec.context_channels.size();
}

nn::Matrix make_sample(const DomainSpec& spec, const data::MinMaxScaler& scaler,
                       const std::vector<double>& channels,
                       const std::vector<double>& context_sums) {
  nn::Matrix sample(1, sample_feature_count(spec));
  for (std::size_t c = 0; c < spec.num_channels; ++c) {
    sample(0, c) = scaler.transform_value(channels[c], c);
  }
  for (std::size_t k = 0; k < spec.context_channels.size(); ++k) {
    sample(0, spec.num_channels + k) =
        scaler.transform_value(context_sums[k], spec.context_channels[k]);
  }
  return sample;
}

std::vector<nn::Matrix> series_samples(const DomainSpec& spec,
                                       const data::TelemetrySeries& series,
                                       const data::MinMaxScaler& scaler,
                                       std::size_t stride) {
  GO_EXPECTS(stride >= 1);
  // Prefix sums for O(1) rolling context per context channel.
  const std::size_t steps = series.steps();
  const std::size_t n_context = spec.context_channels.size();
  std::vector<std::vector<double>> prefixes(n_context,
                                            std::vector<double>(steps + 1, 0.0));
  for (std::size_t k = 0; k < n_context; ++k) {
    for (std::size_t t = 0; t < steps; ++t) {
      prefixes[k][t + 1] = prefixes[k][t] + series.values(t, spec.context_channels[k]);
    }
  }
  const auto rolling = [&](const std::vector<double>& prefix, std::size_t t) {
    const std::size_t lo =
        t + 1 >= spec.context_window_steps ? t + 1 - spec.context_window_steps : 0;
    return prefix[t + 1] - prefix[lo];
  };

  std::vector<nn::Matrix> out;
  out.reserve(steps / stride + 1);
  std::vector<double> channels(spec.num_channels);
  std::vector<double> context_sums(n_context);
  for (std::size_t t = 0; t < steps; t += stride) {
    for (std::size_t c = 0; c < spec.num_channels; ++c) channels[c] = series.values(t, c);
    for (std::size_t k = 0; k < n_context; ++k) context_sums[k] = rolling(prefixes[k], t);
    out.push_back(make_sample(spec, scaler, channels, context_sums));
  }
  return out;
}

namespace {

/// Context sums over all rows of a raw window (the window-bounded context
/// convention shared by append_edited_samples and window_sample).
std::vector<double> window_context_sums(const DomainSpec& spec, const nn::Matrix& window) {
  const std::size_t n_context = spec.context_channels.size();
  std::vector<double> context_sums(n_context, 0.0);
  for (std::size_t k = 0; k < n_context; ++k) {
    for (std::size_t t = 0; t < window.rows(); ++t) {
      context_sums[k] += window(t, spec.context_channels[k]);
    }
  }
  return context_sums;
}

}  // namespace

void append_edited_samples(const DomainSpec& spec,
                           const attack::WindowOutcome& outcome,
                           const data::MinMaxScaler& scaler,
                           std::vector<nn::Matrix>& out) {
  const nn::Matrix& adv = outcome.attack.adversarial_features;
  const std::size_t target_channel = spec.target_channel;
  const std::vector<double> context_sums = window_context_sums(spec, adv);
  std::vector<double> channels(spec.num_channels);
  for (std::size_t t = 0; t < adv.rows(); ++t) {
    if (adv(t, target_channel) == outcome.benign.features(t, target_channel)) continue;
    for (std::size_t c = 0; c < spec.num_channels; ++c) channels[c] = adv(t, c);
    out.push_back(make_sample(spec, scaler, channels, context_sums));
  }
}

nn::Matrix window_sample(const DomainSpec& spec, const data::MinMaxScaler& scaler,
                         const nn::Matrix& window) {
  GO_EXPECTS(window.rows() >= 1);
  GO_EXPECTS(window.cols() == spec.num_channels);
  const std::vector<double> context_sums = window_context_sums(spec, window);
  std::vector<double> channels(spec.num_channels);
  const std::size_t last = window.rows() - 1;
  for (std::size_t c = 0; c < spec.num_channels; ++c) channels[c] = window(last, c);
  return make_sample(spec, scaler, channels, context_sums);
}

}  // namespace goodones::core
