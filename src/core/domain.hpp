// The engine/domain seam: everything scenario-specific the five-step
// risk-profiling framework needs, behind one interface.
//
// The paper presents risk profiling as a *general* defense framework and
// evaluates it on one medical case study; evasion attacks themselves are
// cross-domain (PDF malware in Biggio et al., image classifiers in
// region-based defenses). A DomainAdapter owns the scenario knowledge —
// who the monitored entities are, what their telemetry looks like, which
// channel the adversary can rewrite, what counts as a harmful induced
// state, and how severe each state transition is — while
// core::RiskProfilingFramework owns the five steps and stays ignorant of
// any particular scenario. Adding a new workload means writing one adapter
// (see domains/bgms and domains/synthtel), not forking the framework.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "data/labels.hpp"
#include "data/timeseries.hpp"
#include "risk/schedule.hpp"

namespace goodones::core {

/// One monitored entity (a patient, a sensor node, a vehicle, ...) as the
/// engine sees it: a display name, a clustering subset, and its telemetry
/// split chronologically into train and held-out test segments.
struct EntityData {
  std::string name;       ///< display label, e.g. "A_3" or "S_07"
  std::size_t subset = 0; ///< dendrograms are built per subset (paper: A and B)
  data::TelemetrySeries train;
  data::TelemetrySeries test;
};

/// Static description of a domain: telemetry schema, target semantics,
/// attack constraint boxes and severity weighting.
struct DomainSpec {
  std::string name;  ///< registry key, e.g. "bgms"
  /// Distinguishes differently-parameterized instances of the same adapter
  /// (e.g. fleet size) in cache keys; empty for adapters with no knobs.
  std::string variant;

  // Telemetry schema.
  std::size_t num_channels = 1;
  std::size_t target_channel = 0;  ///< forecast target = attack surface
  std::vector<std::string> channel_names;  ///< size num_channels (display)

  /// Target-channel display/scaling bounds (raw units). All forecaster and
  /// detector scalers pin the target channel to this range so risk is
  /// comparable across entities.
  double target_min = 0.0;
  double target_max = 1.0;

  /// Diagnostic thresholds on the target signal.
  data::StateThresholds thresholds;

  /// Severity weighting of (benign -> adversarial) prediction-state
  /// transitions (framework step 2).
  risk::SeveritySchedule severity;

  // Attack target semantics: the per-regime plausibility box the adversary
  // must stay inside, and the harm level a prediction must cross for the
  // attack to count as successful.
  double attack_box_min_baseline = 0.0;
  double attack_box_min_active = 0.0;
  double attack_box_max = 1.0;
  double attack_harm_threshold = 1.0;

  /// Channels whose rolling context sums are appended to sample-granularity
  /// detector inputs (BGMS: carbs and bolus — the context that lets a
  /// detector excuse a benign excursion). May be empty.
  std::vector<std::size_t> context_channels;
  /// Length of the rolling context window, in steps.
  std::size_t context_window_steps = 12;

  /// Number of clustering subsets; entities carry a subset index in
  /// [0, num_subsets).
  std::size_t num_subsets = 1;
};

class DomainAdapter {
 public:
  virtual ~DomainAdapter() = default;

  /// The domain's static description. Must be stable for the adapter's
  /// lifetime (the framework keeps a reference).
  virtual const DomainSpec& spec() const noexcept = 0;

  /// Generates (or loads) the domain's entity population. Deterministic in
  /// `population.seed`. Every returned series must have spec().num_channels
  /// channels and subset < spec().num_subsets.
  virtual std::vector<EntityData> make_entities(const PopulationConfig& population) const = 0;

  /// Stamps the domain's semantics (target channel, thresholds, attack
  /// boxes, scaler pinning) onto a generic tuning preset such as
  /// FrameworkConfig::fast(). Call this before constructing the framework;
  /// override only when a domain needs more than the spec-driven defaults.
  virtual FrameworkConfig prepare(FrameworkConfig base) const;
};

}  // namespace goodones::core
