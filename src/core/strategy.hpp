// Training strategies for the anomaly detectors (framework step 5).
//
// The paper compares four: selective training on the less-vulnerable
// cluster (the proposed strategy), on the more-vulnerable cluster, on
// random victim subsets (10 runs x 3 victims, averaged), and
// indiscriminate training on all victims. "All Victims" and "Random
// Samples" are the baselines that lack risk-profiling insight.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace goodones::core {

enum class Strategy : std::uint8_t {
  kLessVulnerable,
  kMoreVulnerable,
  kRandomSamples,
  kAllVictims,
};

/// The four strategies in the paper's presentation order.
std::array<Strategy, 4> all_strategies() noexcept;

const char* to_string(Strategy strategy) noexcept;

/// Step-4 output: entity indices grouped by vulnerability to the attack.
struct VulnerabilityClusters {
  std::vector<std::size_t> less_vulnerable;
  std::vector<std::size_t> more_vulnerable;
};

/// Victims a strategy trains on. For kRandomSamples, `run_seed` selects
/// `random_victims` distinct victims deterministically per run.
std::vector<std::size_t> select_victims(Strategy strategy,
                                        const VulnerabilityClusters& clusters,
                                        std::size_t population_size,
                                        std::size_t random_victims,
                                        std::uint64_t run_seed);

}  // namespace goodones::core
