// Training strategies for the anomaly detectors (framework step 5).
//
// The paper compares four: selective training on the less-vulnerable
// cluster (the proposed strategy), on the more-vulnerable cluster, on
// random patient subsets (10 runs x 3 patients, averaged), and
// indiscriminate training on all patients. "All Patients" and "Random
// Samples" are the baselines that lack risk-profiling insight.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace goodones::core {

enum class Strategy : std::uint8_t {
  kLessVulnerable,
  kMoreVulnerable,
  kRandomSamples,
  kAllPatients,
};

/// The four strategies in the paper's presentation order.
std::array<Strategy, 4> all_strategies() noexcept;

const char* to_string(Strategy strategy) noexcept;

/// Step-4 output: cohort indices grouped by vulnerability to the attack.
struct VulnerabilityClusters {
  std::vector<std::size_t> less_vulnerable;
  std::vector<std::size_t> more_vulnerable;
};

/// Patients a strategy trains on. For kRandomSamples, `run_seed` selects
/// `random_patients` distinct patients deterministically per run.
std::vector<std::size_t> select_patients(Strategy strategy,
                                         const VulnerabilityClusters& clusters,
                                         std::size_t cohort_size,
                                         std::size_t random_patients,
                                         std::uint64_t run_seed);

}  // namespace goodones::core
