#include "core/cache.hpp"

#include <cstdlib>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"

namespace goodones::core {

namespace {

const char* detector_token(detect::DetectorKind kind) {
  switch (kind) {
    case detect::DetectorKind::kKnn: return "knn";
    case detect::DetectorKind::kOcsvm: return "ocsvm";
    case detect::DetectorKind::kMadGan: return "madgan";
  }
  return "?";
}

std::optional<detect::DetectorKind> parse_detector(const std::string& token) {
  if (token == "knn") return detect::DetectorKind::kKnn;
  if (token == "ocsvm") return detect::DetectorKind::kOcsvm;
  if (token == "madgan") return detect::DetectorKind::kMadGan;
  return std::nullopt;
}

const char* strategy_token(Strategy strategy) {
  switch (strategy) {
    case Strategy::kLessVulnerable: return "less";
    case Strategy::kMoreVulnerable: return "more";
    case Strategy::kRandomSamples: return "random";
    case Strategy::kAllVictims: return "all";
  }
  return "?";
}

std::optional<Strategy> parse_strategy(const std::string& token) {
  if (token == "less") return Strategy::kLessVulnerable;
  if (token == "more") return Strategy::kMoreVulnerable;
  if (token == "random") return Strategy::kRandomSamples;
  if (token == "all") return Strategy::kAllVictims;
  return std::nullopt;
}

void append_evaluation_rows(common::CsvTable& table, const StrategyEvaluation& eval,
                            const std::string& scope) {
  const auto row = [&](const std::string& target, const ConfusionMatrix& cm) {
    table.add_row({scope, detector_token(eval.detector), strategy_token(eval.strategy),
                   std::to_string(eval.run), target, std::to_string(cm.tp),
                   std::to_string(cm.fp), std::to_string(cm.fn), std::to_string(cm.tn),
                   std::to_string(eval.train_benign), std::to_string(eval.train_malicious),
                   common::format_double(eval.fit_seconds),
                   common::format_double(eval.score_seconds)});
  };
  row("pooled", eval.pooled);
  for (std::size_t p = 0; p < eval.per_victim.size(); ++p) {
    row("victim_" + std::to_string(p), eval.per_victim[p]);
  }
}

}  // namespace

std::filesystem::path artifacts_dir() {
  const char* env = std::getenv("GOODONES_ARTIFACTS");
  const std::filesystem::path dir = env != nullptr ? env : "goodones_artifacts";
  std::filesystem::create_directories(dir);
  return dir;
}

std::filesystem::path experiments_cache_path(const FrameworkConfig& config,
                                             std::string_view domain_name) {
  std::ostringstream name;
  name << "experiments_" << domain_name << "_" << std::hex << config_fingerprint(config)
       << ".csv";
  return artifacts_dir() / name.str();
}

std::string domain_cache_key(const DomainSpec& spec) {
  return spec.variant.empty() ? spec.name : spec.name + "-" + spec.variant;
}

void save_experiments(const ExperimentResults& results, const FrameworkConfig& config,
                      std::string_view domain_name) {
  common::CsvTable table({"scope", "detector", "strategy", "run", "target", "tp", "fp",
                          "fn", "tn", "train_benign", "train_malicious", "fit_seconds",
                          "score_seconds"});
  for (const auto& entry : results.entries) append_evaluation_rows(table, entry, "entry");
  for (const auto& run : results.random_runs) append_evaluation_rows(table, run, "run");
  table.write(experiments_cache_path(config, domain_name));
}

std::optional<ExperimentResults> load_experiments(const FrameworkConfig& config,
                                                  std::string_view domain_name) {
  const auto path = experiments_cache_path(config, domain_name);
  if (!std::filesystem::exists(path)) return std::nullopt;
  common::CsvTable table;
  try {
    table = common::CsvTable::read(path);
  } catch (const std::exception& e) {
    common::log_warn("ignoring unreadable experiment cache: ", e.what());
    return std::nullopt;
  }

  ExperimentResults results;
  StrategyEvaluation* current = nullptr;
  try {
  for (const auto& row : table.rows()) {
    if (row.size() != table.num_cols()) return std::nullopt;
    const std::string& scope = row[0];
    const auto detector = parse_detector(row[1]);
    const auto strategy = parse_strategy(row[2]);
    if (!detector || !strategy) return std::nullopt;
    const std::string& target = row[4];

    ConfusionMatrix cm;
    cm.tp = std::stoull(row[5]);
    cm.fp = std::stoull(row[6]);
    cm.fn = std::stoull(row[7]);
    cm.tn = std::stoull(row[8]);

    if (target == "pooled") {
      auto& bucket = scope == "entry" ? results.entries : results.random_runs;
      bucket.emplace_back();
      current = &bucket.back();
      current->detector = *detector;
      current->strategy = *strategy;
      current->run = static_cast<std::size_t>(std::stoull(row[3]));
      current->pooled = cm;
      current->train_benign = std::stoull(row[9]);
      current->train_malicious = std::stoull(row[10]);
      current->fit_seconds = std::stod(row[11]);
      current->score_seconds = std::stod(row[12]);
    } else {
      if (current == nullptr) return std::nullopt;
      const auto prefix = std::string("victim_");
      if (target.rfind(prefix, 0) != 0) return std::nullopt;
      const auto index = static_cast<std::size_t>(std::stoull(target.substr(prefix.size())));
      if (index >= current->per_victim.size()) current->per_victim.resize(index + 1);
      current->per_victim[index] = cm;
    }
  }
  } catch (const std::exception& e) {
    common::log_warn("ignoring corrupt experiment cache: ", e.what());
    return std::nullopt;
  }
  if (results.entries.empty()) return std::nullopt;
  return results;
}

ExperimentResults experiments_with_cache(RiskProfilingFramework& framework,
                                         const std::vector<detect::DetectorKind>& kinds) {
  const std::string domain_key = domain_cache_key(framework.domain().spec());
  const std::string_view domain_name = domain_key;
  if (auto cached = load_experiments(framework.config(), domain_name)) {
    // Only reuse the cache when it covers every requested detector.
    bool covers_all = true;
    for (const auto kind : kinds) {
      bool found = false;
      for (const auto& entry : cached->entries) {
        if (entry.detector == kind) {
          found = true;
          break;
        }
      }
      covers_all = covers_all && found;
    }
    if (covers_all) {
      common::log_info("loaded detector experiments from cache");
      return *cached;
    }
  }
  ExperimentResults results = framework.run_detector_experiments(kinds);
  save_experiments(results, framework.config(), domain_name);
  return results;
}

}  // namespace goodones::core
