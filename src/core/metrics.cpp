#include "core/metrics.hpp"

namespace goodones::core {

void ConfusionMatrix::add(bool actual_malicious, bool flagged) noexcept {
  if (actual_malicious) {
    if (flagged) ++tp;
    else ++fn;
  } else {
    if (flagged) ++fp;
    else ++tn;
  }
}

ConfusionMatrix& ConfusionMatrix::merge(const ConfusionMatrix& other) noexcept {
  tp += other.tp;
  fp += other.fp;
  fn += other.fn;
  tn += other.tn;
  return *this;
}

double ConfusionMatrix::recall() const noexcept {
  const std::size_t denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::precision() const noexcept {
  const std::size_t denom = tp + fp;
  if (denom == 0) return positives() == 0 ? 1.0 : 0.0;
  return static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::f1() const noexcept {
  const double r = recall();
  const double p = precision();
  return (r + p) == 0.0 ? 0.0 : 2.0 * r * p / (r + p);
}

double ConfusionMatrix::false_negative_rate() const noexcept {
  const std::size_t denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(fn) / static_cast<double>(denom);
}

double ConfusionMatrix::false_positive_rate() const noexcept {
  const std::size_t denom = fp + tn;
  return denom == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(denom);
}

double ConfusionMatrix::accuracy() const noexcept {
  const std::size_t denom = total();
  return denom == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(denom);
}

void CounterRegistry::add(std::string_view name, std::uint64_t delta) {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t CounterRegistry::value(std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

void CounterRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  counters_.clear();
}

CounterRegistry& counters() {
  static CounterRegistry registry;
  return registry;
}

}  // namespace goodones::core
