// Top-level experiment configuration for the risk-profiling engine.
//
// The config is domain-agnostic: it carries experiment *tuning* (cohort
// size, forecaster capacity, campaign strides, detector settings), while
// domain *semantics* (channel layout, thresholds, attack boxes, severity)
// are stamped onto it by DomainAdapter::prepare() — see core/domain.hpp.
//
// Two presets: `fast()` is calibrated for CI and interactive bench runs
// (minutes on a laptop-class CPU); `full()` uses the paper's settings
// (MAD-GAN 100 epochs, 10 random-strategy repetitions, denser window
// strides). `from_env()` picks `full()` when GOODONES_FULL=1.
#pragma once

#include <cstdint>

#include "attack/campaign.hpp"
#include "cluster/distance.hpp"
#include "cluster/hierarchical.hpp"
#include "data/window.hpp"
#include "detect/factory.hpp"
#include "predict/registry.hpp"

namespace goodones::core {

/// How much telemetry the domain generates per monitored entity.
struct PopulationConfig {
  std::size_t train_steps = 10000;  ///< per entity (paper: ~10000)
  std::size_t test_steps = 2500;    ///< per entity (paper: ~2500)
  std::uint64_t seed = 2025;        ///< global seed; per-entity streams derive from it
};

struct FrameworkConfig {
  PopulationConfig population;
  predict::RegistryConfig registry;
  data::WindowConfig window;  ///< seq_len=12, horizon=6 (paper geometry)

  attack::CampaignConfig profiling_campaign;   ///< step-1 attack on train data
  attack::CampaignConfig evaluation_campaign;  ///< attack on held-out test data

  detect::DetectorSuiteConfig detectors;
  /// Stride over benign windows when assembling detector train/test sets.
  std::size_t detector_benign_stride = 4;

  // Step-4 clustering choices.
  cluster::Linkage linkage = cluster::Linkage::kAverage;
  cluster::ProfileDistance profile_distance = cluster::ProfileDistance::kEuclidean;

  // Step-5 strategy settings.
  std::size_t random_runs = 10;    ///< paper: 10 repetitions
  std::size_t random_victims = 3;  ///< paper: 3 random patients per run

  std::uint64_t seed = 2025;

  static FrameworkConfig fast();
  static FrameworkConfig full();
  /// fast() unless the environment variable GOODONES_FULL=1.
  static FrameworkConfig from_env();
};

/// Deterministic fingerprint over every field that affects results; keys
/// the on-disk artifact cache.
std::uint64_t config_fingerprint(const FrameworkConfig& config) noexcept;

}  // namespace goodones::core
