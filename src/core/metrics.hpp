// Detection metrics and runtime observability counters.
//
// Detection: the paper's evaluation reports recall (its priority: false
// negatives are lethal in safety-critical systems), precision (false
// positives cost availability) and their harmonic mean (F1, Appendix C).
// Observability: long-running attack campaigns report shard progress and
// probe throughput through the process-wide counter registry. The serving
// stack reports into the same registry under dotted prefixes — "serve.*"
// (ScoringService), "serve.adaptive.*" (AdaptiveController cadence,
// refreshes, refresh_failures), "serve.daemon.*" (connections, frames,
// scores, error/malformed frames) — and the daemon's Stats message serves
// the whole snapshot over IPC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace goodones::core {

struct ConfusionMatrix {
  std::size_t tp = 0;  ///< malicious, flagged
  std::size_t fp = 0;  ///< benign, flagged
  std::size_t fn = 0;  ///< malicious, missed
  std::size_t tn = 0;  ///< benign, passed

  void add(bool actual_malicious, bool flagged) noexcept;
  ConfusionMatrix& merge(const ConfusionMatrix& other) noexcept;

  std::size_t total() const noexcept { return tp + fp + fn + tn; }
  std::size_t positives() const noexcept { return tp + fn; }

  /// tp / (tp + fn); 0 when there are no positives.
  double recall() const noexcept;
  /// tp / (tp + fp); degenerate cases: 1 when nothing was flagged and no
  /// positives existed (vacuously precise), 0 when positives existed but
  /// nothing was flagged.
  double precision() const noexcept;
  /// Harmonic mean of recall and precision; 0 when both are 0.
  double f1() const noexcept;
  /// fn / (tp + fn); the paper's headline safety number.
  double false_negative_rate() const noexcept;
  /// fp / (fp + tn).
  double false_positive_rate() const noexcept;
  double accuracy() const noexcept;
};

/// Named monotonic counters for coarse progress/throughput observability
/// (shard completion, windows attacked, forecaster probes). Thread-safe via
/// a mutex, so callers aggregate locally and add once per shard or batch,
/// never per item.
class CounterRegistry {
 public:
  void add(std::string_view name, std::uint64_t delta);
  /// Current value; 0 for a counter never touched.
  std::uint64_t value(std::string_view name) const;
  /// All counters, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;
  /// Clears every counter (test isolation / between campaign batches).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/// The process-wide registry the campaign scheduler reports into.
CounterRegistry& counters();

}  // namespace goodones::core
