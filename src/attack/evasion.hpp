// The evasion attack itself: manipulate a telemetry window's target channel
// so the forecaster predicts a harmful high state. Standalone substitute for
// the URET toolkit's greedy/beam input-transformation search.
#pragma once

#include <span>
#include <vector>

#include "attack/config.hpp"
#include "data/window.hpp"
#include "nn/matrix.hpp"
#include "predict/forecaster.hpp"

namespace goodones::attack {

struct AttackResult {
  bool success = false;
  std::size_t edits = 0;              ///< number of target-channel values rewritten
  double benign_prediction = 0.0;     ///< model output on the clean window
  double adversarial_prediction = 0.0;///< model output on the final window
  nn::Matrix adversarial_features;    ///< the manipulated window (raw units)
  /// Forecaster evaluations spent on this window (benign baseline plus every
  /// candidate probe). Throughput accounting; the batched path may request
  /// more probes than the early-exiting scalar path, so parity checks
  /// compare the decision fields above, not this counter.
  std::size_t probes = 0;
};

/// Stepwise state machine of one position-ordered greedy search (the
/// kOrderedGreedy / kGradientGuided decision logic, extracted so a campaign
/// can advance MANY windows' searches in lockstep and merge their candidate
/// probes into one predict_batch call per round). The single source of truth
/// for the batched decision path: EvasionAttack's own batched branch drives
/// exactly this object, so lockstep and per-window runs decide identically.
class OrderedGreedySearch {
 public:
  /// `step_order` is the edit-position order, `values` the ascending
  /// candidate grid, `benign_prediction` the model output on the clean
  /// window (already counted as one probe).
  OrderedGreedySearch(const AttackConfig& config, const data::Window& window,
                      std::vector<std::size_t> step_order, std::vector<double> values,
                      double benign_prediction);

  bool done() const noexcept { return done_; }
  /// Timestep the next consume() call decides. Only valid while !done().
  std::size_t pending_row() const noexcept { return order_[k_]; }
  /// The current (partially edited) window candidate probes must copy.
  const nn::Matrix& features() const noexcept { return result_.adversarial_features; }
  const std::vector<double>& values() const noexcept { return values_; }
  /// Applies one position's decision given the candidate predictions (in
  /// values() order, one per candidate) and advances to the next position.
  void consume(std::span<const double> candidate_preds);
  /// The final outcome; only meaningful once done().
  AttackResult take_result() { return std::move(result_); }

 private:
  std::size_t target_channel_;
  double stealth_fraction_;
  double threshold_;
  std::vector<std::size_t> order_;
  std::vector<double> values_;
  std::size_t budget_;
  std::size_t k_ = 0;
  bool done_ = false;
  AttackResult result_;
};

class EvasionAttack {
 public:
  explicit EvasionAttack(AttackConfig config);

  const AttackConfig& config() const noexcept { return config_; }

  /// Attacks one window against `model`. The window's regime selects the
  /// constraint box and the success threshold. Thread-safe.
  AttackResult attack_window(const predict::Forecaster& model,
                             const data::Window& window) const;

  /// Builds the stepwise search state for this window (valid only for the
  /// position-ordered searches, kOrderedGreedy / kGradientGuided). The
  /// cross-window campaign driver constructs one per shard window and
  /// advances them in lockstep.
  OrderedGreedySearch make_search(const predict::Forecaster& model,
                                  const data::Window& window,
                                  double benign_prediction) const;

  /// Evaluates probe windows in the configured probe lane: an explicit
  /// predict_batch precision when config().probe_precision is set, the
  /// model's own scoring mode otherwise. Every batched candidate probe —
  /// per-window and campaign-lockstep alike — goes through here.
  std::vector<double> probe_batch(const predict::Forecaster& model,
                                  std::span<const nn::Matrix> probes) const;

  /// True when batched probes run in an approximation lane, i.e. finished
  /// searches must have their reported numbers re-verified through the
  /// exact model.
  bool probes_need_verification() const noexcept;

  /// Exact re-verification of a finished search: recomputes the adversarial
  /// prediction with predict() (always full double) and re-derives success
  /// against the regime's threshold. No-op unless probes_need_verification().
  void verify_result(const predict::Forecaster& model, data::Regime regime,
                     AttackResult& result) const;

 private:
  /// Edit-position order of the position-ordered searches: back-to-front
  /// for kOrderedGreedy, |dPrediction/dInput|-sorted for kGradientGuided.
  std::vector<std::size_t> step_order(const predict::Forecaster& model,
                                      const data::Window& window) const;
  /// Candidate target values inside the box for the given regime. `jitter`
  /// in [0, 1) shifts the whole grid by a fraction of its spacing: derived
  /// deterministically per window, it prevents manipulated values from
  /// collapsing onto a handful of exact grid points across windows (which
  /// would hand detectors unrealistic exact-match evidence).
  std::vector<double> candidate_values(data::Regime regime, double jitter) const;

  /// Deterministic per-window jitter in [0, 1) from the feature bytes.
  static double window_jitter(const data::Window& window) noexcept;

  /// Evaluates every candidate value at position `t` of `base` as one
  /// predict_batch call (the probes share all rows except row t), adding the
  /// batch size to `result.probes`. Returns predictions in candidate order.
  std::vector<double> probe_position(const predict::Forecaster& model,
                                     const nn::Matrix& base, std::size_t t,
                                     const std::vector<double>& values,
                                     AttackResult& result) const;

  AttackResult run_ordered_greedy(const predict::Forecaster& model,
                                  const data::Window& window,
                                  const std::vector<std::size_t>& step_order) const;
  AttackResult run_greedy(const predict::Forecaster& model,
                          const data::Window& window) const;
  AttackResult run_beam(const predict::Forecaster& model,
                        const data::Window& window) const;

  AttackConfig config_;
};

/// Convenience: true if the prediction crosses the regime's diagnostic high
/// threshold under the given threshold table.
bool prediction_is_high(double prediction, data::Regime regime,
                        const data::StateThresholds& thresholds) noexcept;

}  // namespace goodones::attack
