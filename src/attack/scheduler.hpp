// Sharded execution of attack campaigns.
//
// A campaign over a fleet is embarrassingly parallel per window, but
// dispatching one pool task per window pays a queue round-trip per item and
// gives stochastic bodies no deterministic random stream. The scheduler
// partitions the index space into contiguous shards, runs shards across the
// thread pool, derives an independent splitmix-seeded RNG stream per shard
// (results never depend on thread interleaving or pool size), and reports
// shard-level progress and throughput into core::metrics::counters().
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace goodones::attack {

struct SchedulerConfig {
  /// Items per shard. 0 auto-sizes from the item count alone (never from
  /// the pool), so the shard partition — and every per-shard RNG stream —
  /// is reproducible across machines and worker counts.
  std::size_t shard_size = 0;
  /// Base seed of the per-shard RNG streams (shard s gets a stream derived
  /// from (seed, s), independent of how shards map to threads).
  std::uint64_t seed = 0;
  /// Prefix of the core::metrics counters this scheduler bumps:
  /// "<prefix>.shards_done" and "<prefix>.items_done".
  std::string counter_prefix = "campaign";
};

/// What one run() call did, for throughput reporting.
struct ShardReport {
  std::size_t shards = 0;
  std::size_t items = 0;
  double seconds = 0.0;
  double items_per_second() const noexcept;
};

class CampaignScheduler {
 public:
  explicit CampaignScheduler(common::ThreadPool& pool, SchedulerConfig config = {});

  const SchedulerConfig& config() const noexcept { return config_; }

  /// Number of shards a run over `items` would use.
  std::size_t shard_count(std::size_t items) const noexcept;

  /// Runs body(item, shard_rng) for every item in [0, items). Items within a
  /// shard run in index order on one worker and share the shard's RNG
  /// stream; shards run concurrently. Blocks until every shard finishes. A
  /// body exception skips the rest of its own shard (and that shard's
  /// counters) but every other shard completes; the lowest-index failing
  /// shard's exception is rethrown.
  ShardReport run(std::size_t items,
                  const std::function<void(std::size_t, common::Rng&)>& body) const;

  /// Shard-granular variant: body(begin, end, shard_rng) runs once per shard
  /// over its contiguous index range [begin, end). Same sharding, RNG
  /// streams, counters and exception containment as run() — this is the
  /// entry point for bodies that batch work ACROSS a shard's items (the
  /// cross-window campaign driver) instead of item by item.
  ShardReport run_shards(
      std::size_t items,
      const std::function<void(std::size_t, std::size_t, common::Rng&)>& body) const;

 private:
  std::size_t shard_size_for(std::size_t items) const noexcept;

  common::ThreadPool* pool_;
  SchedulerConfig config_;
};

}  // namespace goodones::attack
