#include "attack/campaign.hpp"

#include <span>
#include <utility>

#include "attack/scheduler.hpp"
#include "common/error.hpp"
#include "core/metrics.hpp"

namespace goodones::attack {

namespace {

double rate(std::size_t successes, std::size_t attempts) noexcept {
  return attempts == 0 ? 0.0
                       : static_cast<double>(successes) / static_cast<double>(attempts);
}

/// Advances every window's greedy search in lockstep: each round gathers the
/// still-active searches' candidate probes (one per candidate value per
/// window) into a single predict_batch call, so the model's batched path
/// merges prefix clusters across base windows. Decisions are taken by the
/// same OrderedGreedySearch::consume() the per-window path runs, so
/// outcomes are bitwise identical — only the probe batching changes.
void attack_shard_lockstep(const predict::Forecaster& model, const EvasionAttack& attack,
                           std::span<const data::Window* const> windows,
                           std::span<AttackResult> results) {
  const std::size_t n = windows.size();
  const std::size_t channel = attack.config().target_channel;

  // Merged benign baseline: one batch over every window's clean features.
  std::vector<nn::Matrix> benign_features;
  benign_features.reserve(n);
  for (const data::Window* w : windows) benign_features.push_back(w->features);
  const std::vector<double> benign = model.predict_batch(benign_features);

  std::vector<OrderedGreedySearch> searches;
  searches.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    searches.push_back(attack.make_search(model, *windows[i], benign[i]));
  }

  // The probe pool persists across rounds: same-shape copy-assignment into
  // an existing Matrix reuses its buffer, so rounds cost memcpys, not
  // allocations. `used` probes lead the pool each round.
  std::vector<nn::Matrix> probes;
  std::vector<std::size_t> active;
  while (true) {
    active.clear();
    std::size_t used = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (searches[i].done()) continue;
      active.push_back(i);
      const std::size_t t = searches[i].pending_row();
      for (const double value : searches[i].values()) {
        if (used < probes.size()) {
          probes[used] = searches[i].features();
        } else {
          probes.push_back(searches[i].features());
        }
        probes[used](t, channel) = value;
        ++used;
      }
    }
    if (active.empty()) break;
    const std::vector<double> preds =
        attack.probe_batch(model, std::span<const nn::Matrix>(probes.data(), used));
    std::size_t offset = 0;
    for (const std::size_t i : active) {
      const std::size_t count = searches[i].values().size();
      searches[i].consume(std::span<const double>(preds).subspan(offset, count));
      offset += count;
    }
  }
  for (std::size_t i = 0; i < n; ++i) results[i] = searches[i].take_result();

  // Probes in an approximation lane only steered the searches; the numbers a
  // campaign reports must be exact. Re-score every final trajectory as one
  // exact batch and re-derive success (cheaper than per-window predict() —
  // the shard's finals ride the same batched path the probes used).
  if (attack.probes_need_verification()) {
    std::vector<nn::Matrix> finals;
    finals.reserve(n);
    for (const AttackResult& r : results) finals.push_back(r.adversarial_features);
    const std::vector<double> exact = model.predict_batch(finals);
    for (std::size_t i = 0; i < n; ++i) {
      results[i].adversarial_prediction = exact[i];
      ++results[i].probes;
      results[i].success =
          exact[i] > attack.config().success_threshold(windows[i]->regime);
    }
  }
}

}  // namespace

std::vector<WindowOutcome> run_campaign(const predict::Forecaster& model,
                                        const std::vector<data::Window>& windows,
                                        const CampaignConfig& config,
                                        common::ThreadPool& pool) {
  GO_EXPECTS(config.window_step > 0);

  // Eligible: the adversary targets instances whose true state is normal or
  // low (already-high instances give the attacker nothing).
  const data::StateThresholds& thresholds = config.attack.thresholds;
  std::vector<const data::Window*> eligible;
  for (std::size_t i = 0; i < windows.size(); i += config.window_step) {
    const data::Window& w = windows[i];
    const auto state = thresholds.classify(w.target_value, w.regime);
    if (state != data::StateLabel::kHigh) eligible.push_back(&w);
  }

  const EvasionAttack attack(config.attack);
  std::vector<WindowOutcome> outcomes(eligible.size());
  SchedulerConfig scheduler_config;
  scheduler_config.shard_size = config.shard_size;
  scheduler_config.seed = config.seed;
  const CampaignScheduler scheduler(pool, scheduler_config);

  const auto finish_outcome = [&](std::size_t i, AttackResult result) {
    const data::Window& w = *eligible[i];
    WindowOutcome& outcome = outcomes[i];
    outcome.benign = w;
    outcome.attack = std::move(result);
    outcome.true_state = thresholds.classify(w.target_value, w.regime);
    outcome.benign_predicted_state =
        thresholds.classify(outcome.attack.benign_prediction, w.regime);
    outcome.adversarial_predicted_state =
        config.attack.induced_state(outcome.attack.adversarial_prediction, w.regime);
  };

  // Lockstep cross-window batching only helps the position-ordered searches
  // with batched probes on; everything else runs the per-window path.
  const bool lockstep = config.cross_window_probes && config.attack.batched_probes &&
                        (config.attack.search == SearchKind::kOrderedGreedy ||
                         config.attack.search == SearchKind::kGradientGuided);
  scheduler.run_shards(eligible.size(), [&](std::size_t begin, std::size_t end, common::Rng&) {
    if (lockstep && end - begin >= 2) {
      std::vector<AttackResult> results(end - begin);
      attack_shard_lockstep(
          model, attack,
          std::span<const data::Window* const>(eligible).subspan(begin, end - begin),
          results);
      for (std::size_t i = begin; i < end; ++i) {
        finish_outcome(i, std::move(results[i - begin]));
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        finish_outcome(i, attack.attack_window(model, *eligible[i]));
      }
    }
  });

  std::uint64_t probes = 0;
  std::uint64_t successes = 0;
  for (const WindowOutcome& outcome : outcomes) {
    probes += outcome.attack.probes;
    successes += outcome.attack.success ? 1 : 0;
  }
  core::counters().add("campaign.probes", probes);
  core::counters().add("campaign.successes", successes);
  return outcomes;
}

double SuccessRates::normal_baseline_rate() const noexcept {
  return rate(normal_baseline_successes, normal_baseline_attempts);
}
double SuccessRates::normal_active_rate() const noexcept {
  return rate(normal_active_successes, normal_active_attempts);
}
double SuccessRates::low_baseline_rate() const noexcept {
  return rate(low_baseline_successes, low_baseline_attempts);
}
double SuccessRates::low_active_rate() const noexcept {
  return rate(low_active_successes, low_active_attempts);
}
double SuccessRates::overall_rate() const noexcept {
  const std::size_t attempts = normal_baseline_attempts + normal_active_attempts +
                               low_baseline_attempts + low_active_attempts;
  const std::size_t successes = normal_baseline_successes + normal_active_successes +
                                low_baseline_successes + low_active_successes;
  return rate(successes, attempts);
}

SuccessRates summarize(const std::vector<WindowOutcome>& outcomes) {
  SuccessRates rates;
  for (const auto& outcome : outcomes) {
    const bool baseline = outcome.benign.regime == data::Regime::kBaseline;
    const bool success = outcome.attack.success;
    if (outcome.true_state == data::StateLabel::kNormal) {
      if (baseline) {
        ++rates.normal_baseline_attempts;
        rates.normal_baseline_successes += success ? 1 : 0;
      } else {
        ++rates.normal_active_attempts;
        rates.normal_active_successes += success ? 1 : 0;
      }
    } else if (outcome.true_state == data::StateLabel::kLow) {
      if (baseline) {
        ++rates.low_baseline_attempts;
        rates.low_baseline_successes += success ? 1 : 0;
      } else {
        ++rates.low_active_attempts;
        rates.low_active_successes += success ? 1 : 0;
      }
    }
  }
  return rates;
}

}  // namespace goodones::attack
