#include "attack/campaign.hpp"

#include "common/error.hpp"

namespace goodones::attack {

namespace {

double rate(std::size_t successes, std::size_t attempts) noexcept {
  return attempts == 0 ? 0.0
                       : static_cast<double>(successes) / static_cast<double>(attempts);
}

}  // namespace

std::vector<WindowOutcome> run_campaign(const predict::GlucoseForecaster& model,
                                        const std::vector<data::Window>& windows,
                                        const CampaignConfig& config,
                                        common::ThreadPool& pool) {
  GO_EXPECTS(config.window_step > 0);

  // Eligible: the adversary targets instances whose true state is normal or
  // hypoglycemic (already-hyper instances give the attacker nothing).
  std::vector<const data::Window*> eligible;
  for (std::size_t i = 0; i < windows.size(); i += config.window_step) {
    const data::Window& w = windows[i];
    const auto state = data::classify(w.target_glucose, w.context);
    if (state != data::GlycemicState::kHyper) eligible.push_back(&w);
  }

  const EvasionAttack attack(config.attack);
  std::vector<WindowOutcome> outcomes(eligible.size());
  common::parallel_for(pool, eligible.size(), [&](std::size_t i) {
    const data::Window& w = *eligible[i];
    WindowOutcome& outcome = outcomes[i];
    outcome.benign = w;
    outcome.attack = attack.attack_window(model, w);
    outcome.true_state = data::classify(w.target_glucose, w.context);
    outcome.benign_predicted_state =
        data::classify(outcome.attack.benign_prediction, w.context);
    outcome.adversarial_predicted_state =
        config.attack.induced_state(outcome.attack.adversarial_prediction, w.context);
  });
  return outcomes;
}

double SuccessRates::normal_fasting_rate() const noexcept {
  return rate(normal_fasting_successes, normal_fasting_attempts);
}
double SuccessRates::normal_postprandial_rate() const noexcept {
  return rate(normal_postprandial_successes, normal_postprandial_attempts);
}
double SuccessRates::hypo_fasting_rate() const noexcept {
  return rate(hypo_fasting_successes, hypo_fasting_attempts);
}
double SuccessRates::hypo_postprandial_rate() const noexcept {
  return rate(hypo_postprandial_successes, hypo_postprandial_attempts);
}
double SuccessRates::overall_rate() const noexcept {
  const std::size_t attempts = normal_fasting_attempts + normal_postprandial_attempts +
                               hypo_fasting_attempts + hypo_postprandial_attempts;
  const std::size_t successes = normal_fasting_successes + normal_postprandial_successes +
                                hypo_fasting_successes + hypo_postprandial_successes;
  return rate(successes, attempts);
}

SuccessRates summarize(const std::vector<WindowOutcome>& outcomes) {
  SuccessRates rates;
  for (const auto& outcome : outcomes) {
    const bool fasting = outcome.benign.context == data::MealContext::kFasting;
    const bool success = outcome.attack.success;
    if (outcome.true_state == data::GlycemicState::kNormal) {
      if (fasting) {
        ++rates.normal_fasting_attempts;
        rates.normal_fasting_successes += success ? 1 : 0;
      } else {
        ++rates.normal_postprandial_attempts;
        rates.normal_postprandial_successes += success ? 1 : 0;
      }
    } else if (outcome.true_state == data::GlycemicState::kHypo) {
      if (fasting) {
        ++rates.hypo_fasting_attempts;
        rates.hypo_fasting_successes += success ? 1 : 0;
      } else {
        ++rates.hypo_postprandial_attempts;
        rates.hypo_postprandial_successes += success ? 1 : 0;
      }
    }
  }
  return rates;
}

}  // namespace goodones::attack
