#include "attack/campaign.hpp"

#include "attack/scheduler.hpp"
#include "common/error.hpp"
#include "core/metrics.hpp"

namespace goodones::attack {

namespace {

double rate(std::size_t successes, std::size_t attempts) noexcept {
  return attempts == 0 ? 0.0
                       : static_cast<double>(successes) / static_cast<double>(attempts);
}

}  // namespace

std::vector<WindowOutcome> run_campaign(const predict::Forecaster& model,
                                        const std::vector<data::Window>& windows,
                                        const CampaignConfig& config,
                                        common::ThreadPool& pool) {
  GO_EXPECTS(config.window_step > 0);

  // Eligible: the adversary targets instances whose true state is normal or
  // low (already-high instances give the attacker nothing).
  const data::StateThresholds& thresholds = config.attack.thresholds;
  std::vector<const data::Window*> eligible;
  for (std::size_t i = 0; i < windows.size(); i += config.window_step) {
    const data::Window& w = windows[i];
    const auto state = thresholds.classify(w.target_value, w.regime);
    if (state != data::StateLabel::kHigh) eligible.push_back(&w);
  }

  const EvasionAttack attack(config.attack);
  std::vector<WindowOutcome> outcomes(eligible.size());
  SchedulerConfig scheduler_config;
  scheduler_config.shard_size = config.shard_size;
  scheduler_config.seed = config.seed;
  const CampaignScheduler scheduler(pool, scheduler_config);
  scheduler.run(eligible.size(), [&](std::size_t i, common::Rng&) {
    const data::Window& w = *eligible[i];
    WindowOutcome& outcome = outcomes[i];
    outcome.benign = w;
    outcome.attack = attack.attack_window(model, w);
    outcome.true_state = thresholds.classify(w.target_value, w.regime);
    outcome.benign_predicted_state =
        thresholds.classify(outcome.attack.benign_prediction, w.regime);
    outcome.adversarial_predicted_state =
        config.attack.induced_state(outcome.attack.adversarial_prediction, w.regime);
  });

  std::uint64_t probes = 0;
  std::uint64_t successes = 0;
  for (const WindowOutcome& outcome : outcomes) {
    probes += outcome.attack.probes;
    successes += outcome.attack.success ? 1 : 0;
  }
  core::counters().add("campaign.probes", probes);
  core::counters().add("campaign.successes", successes);
  return outcomes;
}

double SuccessRates::normal_baseline_rate() const noexcept {
  return rate(normal_baseline_successes, normal_baseline_attempts);
}
double SuccessRates::normal_active_rate() const noexcept {
  return rate(normal_active_successes, normal_active_attempts);
}
double SuccessRates::low_baseline_rate() const noexcept {
  return rate(low_baseline_successes, low_baseline_attempts);
}
double SuccessRates::low_active_rate() const noexcept {
  return rate(low_active_successes, low_active_attempts);
}
double SuccessRates::overall_rate() const noexcept {
  const std::size_t attempts = normal_baseline_attempts + normal_active_attempts +
                               low_baseline_attempts + low_active_attempts;
  const std::size_t successes = normal_baseline_successes + normal_active_successes +
                                low_baseline_successes + low_active_successes;
  return rate(successes, attempts);
}

SuccessRates summarize(const std::vector<WindowOutcome>& outcomes) {
  SuccessRates rates;
  for (const auto& outcome : outcomes) {
    const bool baseline = outcome.benign.regime == data::Regime::kBaseline;
    const bool success = outcome.attack.success;
    if (outcome.true_state == data::StateLabel::kNormal) {
      if (baseline) {
        ++rates.normal_baseline_attempts;
        rates.normal_baseline_successes += success ? 1 : 0;
      } else {
        ++rates.normal_active_attempts;
        rates.normal_active_successes += success ? 1 : 0;
      }
    } else if (outcome.true_state == data::StateLabel::kLow) {
      if (baseline) {
        ++rates.low_baseline_attempts;
        rates.low_baseline_successes += success ? 1 : 0;
      } else {
        ++rates.low_active_attempts;
        rates.low_active_successes += success ? 1 : 0;
      }
    }
  }
  return rates;
}

}  // namespace goodones::attack
