#include "attack/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <vector>

#include "common/error.hpp"
#include "core/metrics.hpp"

namespace goodones::attack {

double ShardReport::items_per_second() const noexcept {
  return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
}

CampaignScheduler::CampaignScheduler(common::ThreadPool& pool, SchedulerConfig config)
    : pool_(&pool), config_(std::move(config)) {}

std::size_t CampaignScheduler::shard_size_for(std::size_t items) const noexcept {
  if (config_.shard_size > 0) return config_.shard_size;
  // Auto sizing is a function of the item count only — never of the pool —
  // so the shard partition (and with it every per-shard RNG stream) is
  // reproducible across machines. 64 shards keeps pools up to ~16 workers
  // busy with several shards each while dispatch cost stays negligible.
  constexpr std::size_t kAutoShards = 64;
  return std::max<std::size_t>(1, (items + kAutoShards - 1) / kAutoShards);
}

std::size_t CampaignScheduler::shard_count(std::size_t items) const noexcept {
  if (items == 0) return 0;
  const std::size_t size = shard_size_for(items);
  return (items + size - 1) / size;
}

ShardReport CampaignScheduler::run(
    std::size_t items, const std::function<void(std::size_t, common::Rng&)>& body) const {
  return run_shards(items, [&body](std::size_t begin, std::size_t end, common::Rng& rng) {
    for (std::size_t i = begin; i < end; ++i) body(i, rng);
  });
}

ShardReport CampaignScheduler::run_shards(
    std::size_t items,
    const std::function<void(std::size_t, std::size_t, common::Rng&)>& body) const {
  ShardReport report;
  report.items = items;
  if (items == 0) return report;

  const std::size_t shard_size = shard_size_for(items);
  const std::size_t shards = (items + shard_size - 1) / shard_size;
  report.shards = shards;

  const auto start = std::chrono::steady_clock::now();
  core::CounterRegistry& counters = core::counters();
  const std::string shards_key = config_.counter_prefix + ".shards_done";
  const std::string items_key = config_.counter_prefix + ".items_done";

  // Exceptions are contained per shard (parallel_for packs several shards
  // into one pool task, and a raw throw there would abort the chunk's later
  // shards); the lowest-index failure is rethrown after every shard ran.
  std::vector<std::exception_ptr> errors(shards);
  common::parallel_for(*pool_, shards, [&](std::size_t s) {
    try {
      // The stream is a function of (seed, shard index) only: reruns and
      // different pool sizes replay identical draws.
      std::uint64_t stream_seed = config_.seed ^ (0x9E3779B97F4A7C15ULL * (s + 1));
      (void)common::splitmix64_next(stream_seed);
      common::Rng rng(stream_seed);

      const std::size_t begin = s * shard_size;
      const std::size_t end = std::min(items, begin + shard_size);
      body(begin, end, rng);
      counters.add(items_key, end - begin);
      counters.add(shards_key, 1);
    } catch (...) {
      errors[s] = std::current_exception();
    }
  });
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return report;
}

}  // namespace goodones::attack
