#include "attack/evasion.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace goodones::attack {

bool prediction_is_high(double prediction, data::Regime regime,
                        const data::StateThresholds& thresholds) noexcept {
  return thresholds.classify(prediction, regime) == data::StateLabel::kHigh;
}

EvasionAttack::EvasionAttack(AttackConfig config) : config_(config) {
  GO_EXPECTS(config_.max_edits > 0);
  GO_EXPECTS(config_.harm_threshold > 0.0);
  GO_EXPECTS(config_.value_candidates >= 2);
  GO_EXPECTS(config_.beam_width >= 1);
  GO_EXPECTS(config_.baseline_box_min < config_.box_max);
  GO_EXPECTS(config_.active_box_min < config_.box_max);
}

double EvasionAttack::window_jitter(const data::Window& window) noexcept {
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  for (std::size_t t = 0; t < window.features.rows(); ++t) {
    for (const double v : window.features.row(t)) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      state ^= bits;
      (void)common::splitmix64_next(state);
    }
  }
  return static_cast<double>(common::splitmix64_next(state) >> 11) * 0x1.0p-53;
}

std::vector<double> EvasionAttack::candidate_values(data::Regime regime,
                                                    double jitter) const {
  const double lo = config_.box_min(regime);
  const double hi = config_.box_max;
  std::vector<double> values(config_.value_candidates);
  // Jittered interior grid, but the box maximum is always available: the
  // escalating attacker's strongest move must not depend on the jitter.
  const double spacing = (hi - lo) / static_cast<double>(values.size());
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    values[i] = lo + spacing * (static_cast<double>(i) + jitter);
  }
  values.back() = hi;
  return values;
}

std::vector<std::size_t> EvasionAttack::step_order(const predict::Forecaster& model,
                                                   const data::Window& window) const {
  std::vector<std::size_t> order(window.features.rows());
  if (config_.search == SearchKind::kGradientGuided) {
    const nn::Matrix grad = model.input_gradient(window.features);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return std::abs(grad(a, config_.target_channel)) > std::abs(grad(b, config_.target_channel));
    });
  } else {
    // Most recent samples influence the forecast most: edit back-to-front.
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = window.features.rows() - 1 - i;
    }
  }
  return order;
}

AttackResult EvasionAttack::attack_window(const predict::Forecaster& model,
                                          const data::Window& window) const {
  GO_EXPECTS(config_.target_channel < window.features.cols());
  GO_EXPECTS(window.features.rows() > 0);

  switch (config_.search) {
    case SearchKind::kOrderedGreedy:
    case SearchKind::kGradientGuided:
      return run_ordered_greedy(model, window, step_order(model, window));
    case SearchKind::kGreedy:
      return run_greedy(model, window);
    case SearchKind::kBeam:
      return run_beam(model, window);
  }
  GO_ENSURES(false);  // unreachable
  return {};
}

OrderedGreedySearch EvasionAttack::make_search(const predict::Forecaster& model,
                                               const data::Window& window,
                                               double benign_prediction) const {
  GO_EXPECTS(config_.search == SearchKind::kOrderedGreedy ||
             config_.search == SearchKind::kGradientGuided);
  GO_EXPECTS(config_.target_channel < window.features.cols());
  GO_EXPECTS(window.features.rows() > 0);
  return OrderedGreedySearch(config_, window, step_order(model, window),
                             candidate_values(window.regime, window_jitter(window)),
                             benign_prediction);
}

OrderedGreedySearch::OrderedGreedySearch(const AttackConfig& config,
                                         const data::Window& window,
                                         std::vector<std::size_t> step_order,
                                         std::vector<double> values,
                                         double benign_prediction)
    : target_channel_(config.target_channel),
      stealth_fraction_(config.stealth_fraction),
      threshold_(config.success_threshold(window.regime)),
      order_(std::move(step_order)),
      values_(std::move(values)),
      budget_(std::min<std::size_t>(config.max_edits, order_.size())) {
  result_.benign_prediction = benign_prediction;
  result_.probes = 1;
  result_.adversarial_features = window.features;
  result_.adversarial_prediction = benign_prediction;
  if (benign_prediction > threshold_) {
    result_.success = true;  // the model already predicts past the harm level
    done_ = true;
  }
}

void OrderedGreedySearch::consume(std::span<const double> candidate_preds) {
  GO_EXPECTS(!done_);
  GO_EXPECTS(candidate_preds.size() == values_.size());
  result_.probes += candidate_preds.size();
  const std::size_t t = order_[k_];

  // Stealth-first, as URET's minimal-perturbation search: if any candidate
  // value at this timestep achieves the attacker's goal, take the *smallest*
  // such value (it blends into the victim's benign abnormal range).
  // Otherwise escalate — but stealthily: among the candidates that improve
  // the forecast, take the smallest one that captures most of the
  // achievable gain rather than always slamming the box maximum.
  const double base_pred = result_.adversarial_prediction;
  double best_pred = base_pred;
  double best_value = result_.adversarial_features(t, target_channel_);
  for (std::size_t vi = 0; vi < values_.size(); ++vi) {  // ascending
    const double pred = candidate_preds[vi];
    if (pred > threshold_) {
      result_.adversarial_features(t, target_channel_) = values_[vi];
      result_.adversarial_prediction = pred;
      ++result_.edits;
      result_.success = true;
      done_ = true;
      return;
    }
    if (pred > best_pred) {
      best_pred = pred;
      best_value = values_[vi];
    }
  }
  if (best_pred > base_pred) {
    // Goal-adaptive stealth (see AttackConfig::stealth_fraction): when a
    // single edit can cover a substantial fraction of the remaining
    // distance to the threshold, take the smallest candidate that does;
    // otherwise escalate with the full best candidate.
    double chosen_value = best_value;
    double chosen_pred = best_pred;
    if (stealth_fraction_ > 0.0) {
      const double required = base_pred + stealth_fraction_ * (threshold_ - base_pred);
      if (best_pred >= required) {
        for (std::size_t vi = 0; vi < values_.size(); ++vi) {
          if (candidate_preds[vi] >= required) {
            chosen_value = values_[vi];
            chosen_pred = candidate_preds[vi];
            break;
          }
        }
      }
    }
    result_.adversarial_features(t, target_channel_) = chosen_value;
    result_.adversarial_prediction = chosen_pred;
    ++result_.edits;
  }
  if (++k_ == budget_) {
    result_.success = result_.adversarial_prediction > threshold_;
    done_ = true;
  }
}

std::vector<double> EvasionAttack::probe_batch(const predict::Forecaster& model,
                                               std::span<const nn::Matrix> probes) const {
  return config_.probe_precision.has_value()
             ? model.predict_batch(probes, *config_.probe_precision)
             : model.predict_batch(probes);
}

bool EvasionAttack::probes_need_verification() const noexcept {
  return config_.batched_probes && config_.probe_precision.has_value() &&
         *config_.probe_precision != nn::Precision::kDouble;
}

void EvasionAttack::verify_result(const predict::Forecaster& model, data::Regime regime,
                                  AttackResult& result) const {
  if (!probes_need_verification()) return;
  result.adversarial_prediction = model.predict(result.adversarial_features);
  ++result.probes;
  result.success = result.adversarial_prediction > config_.success_threshold(regime);
}

std::vector<double> EvasionAttack::probe_position(const predict::Forecaster& model,
                                                  const nn::Matrix& base,
                                                  std::size_t t,
                                                  const std::vector<double>& values,
                                                  AttackResult& result) const {
  // All of a position's candidate edits in one predict_batch call: the
  // probes are copies of `base` differing only at row t, so a model with a
  // true batched path consumes the shared rows once and replays only the
  // divergent tail per candidate.
  std::vector<nn::Matrix> probes(values.size(), base);
  for (std::size_t vi = 0; vi < values.size(); ++vi) {
    probes[vi](t, config_.target_channel) = values[vi];
  }
  result.probes += probes.size();
  return probe_batch(model, probes);
}

AttackResult EvasionAttack::run_ordered_greedy(const predict::Forecaster& model,
                                               const data::Window& window,
                                               const std::vector<std::size_t>& step_order) const {
  if (config_.batched_probes) {
    // The batched branch IS the lockstep state machine with a fleet of one:
    // decisions live in OrderedGreedySearch::consume() only.
    OrderedGreedySearch search(config_, window, step_order,
                               candidate_values(window.regime, window_jitter(window)),
                               model.predict(window.features));
    // The probe matrices persist across rounds: same-shape copy-assignment
    // reuses their buffers, so each round costs memcpys, not allocations.
    std::vector<nn::Matrix> probes(search.values().size(), search.features());
    while (!search.done()) {
      const std::size_t t = search.pending_row();
      const std::vector<double>& values = search.values();
      for (std::size_t vi = 0; vi < values.size(); ++vi) {
        probes[vi] = search.features();
        probes[vi](t, config_.target_channel) = values[vi];
      }
      const std::vector<double> preds = probe_batch(model, probes);
      search.consume(preds);
    }
    AttackResult result = search.take_result();
    verify_result(model, window.regime, result);
    return result;
  }

  // Scalar reference path: one predict() per candidate, early exit mid-batch.
  AttackResult result;
  result.benign_prediction = model.predict(window.features);
  result.probes = 1;
  result.adversarial_features = window.features;
  result.adversarial_prediction = result.benign_prediction;

  const double threshold = config_.success_threshold(window.regime);
  if (result.benign_prediction > threshold) {
    result.success = true;  // the model already predicts past the harm level
    return result;
  }

  const auto values = candidate_values(window.regime, window_jitter(window));
  const std::size_t budget = std::min<std::size_t>(config_.max_edits, step_order.size());

  for (std::size_t k = 0; k < budget; ++k) {
    const std::size_t t = step_order[k];
    // Stealth-first, as URET's minimal-perturbation search: if any candidate
    // value at this timestep achieves the attacker's goal, take the
    // *smallest* such value (it blends into the victim's benign abnormal
    // range). Otherwise escalate — but stealthily: among the candidates
    // that improve the forecast, take the smallest one that captures most
    // of the achievable gain rather than always slamming the box maximum.
    const double base_pred = result.adversarial_prediction;
    double best_pred = base_pred;
    double best_value = result.adversarial_features(t, config_.target_channel);
    std::vector<double> candidate_preds(values.size(), 0.0);
    nn::Matrix probe = result.adversarial_features;
    for (std::size_t vi = 0; vi < values.size(); ++vi) {  // ascending
      probe(t, config_.target_channel) = values[vi];
      candidate_preds[vi] = model.predict(probe);
      ++result.probes;
      const double pred = candidate_preds[vi];
      if (pred > threshold) {
        result.adversarial_features(t, config_.target_channel) = values[vi];
        result.adversarial_prediction = pred;
        ++result.edits;
        result.success = true;
        return result;
      }
      if (pred > best_pred) {
        best_pred = pred;
        best_value = values[vi];
      }
    }
    if (best_pred > base_pred) {
      // Goal-adaptive stealth (see AttackConfig::stealth_fraction): when a
      // single edit can cover a substantial fraction of the remaining
      // distance to the threshold, take the smallest candidate that does;
      // otherwise escalate with the full best candidate.
      double chosen_value = best_value;
      double chosen_pred = best_pred;
      if (config_.stealth_fraction > 0.0) {
        const double required =
            base_pred + config_.stealth_fraction * (threshold - base_pred);
        if (best_pred >= required) {
          for (std::size_t vi = 0; vi < values.size(); ++vi) {
            if (candidate_preds[vi] >= required) {
              chosen_value = values[vi];
              chosen_pred = candidate_preds[vi];
              break;
            }
          }
        }
      }
      result.adversarial_features(t, config_.target_channel) = chosen_value;
      result.adversarial_prediction = chosen_pred;
      ++result.edits;
    }
  }
  result.success = result.adversarial_prediction > threshold;
  return result;
}

AttackResult EvasionAttack::run_greedy(const predict::Forecaster& model,
                                       const data::Window& window) const {
  AttackResult result;
  result.benign_prediction = model.predict(window.features);
  result.probes = 1;
  result.adversarial_features = window.features;
  result.adversarial_prediction = result.benign_prediction;

  const auto values = candidate_values(window.regime, window_jitter(window));
  const std::size_t steps = window.features.rows();
  std::vector<bool> edited(steps, false);

  for (std::size_t iter = 0; iter < config_.max_edits; ++iter) {
    double best_pred = result.adversarial_prediction;
    std::size_t best_t = steps;
    double best_value = 0.0;
    nn::Matrix probe;  // scalar-path scratch only
    if (!config_.batched_probes) probe = result.adversarial_features;
    for (std::size_t t = 0; t < steps; ++t) {
      if (edited[t]) continue;
      if (config_.batched_probes) {
        const auto preds =
            probe_position(model, result.adversarial_features, t, values, result);
        for (std::size_t vi = 0; vi < values.size(); ++vi) {
          if (preds[vi] > best_pred) {
            best_pred = preds[vi];
            best_t = t;
            best_value = values[vi];
          }
        }
        continue;
      }
      const double original = probe(t, config_.target_channel);
      for (const double v : values) {
        probe(t, config_.target_channel) = v;
        const double pred = model.predict(probe);
        ++result.probes;
        if (pred > best_pred) {
          best_pred = pred;
          best_t = t;
          best_value = v;
        }
      }
      probe(t, config_.target_channel) = original;
    }
    if (best_t == steps) break;  // no edit improves the objective
    edited[best_t] = true;
    result.adversarial_features(best_t, config_.target_channel) = best_value;
    result.adversarial_prediction = best_pred;
    ++result.edits;
    if (best_pred > config_.success_threshold(window.regime)) {
      result.success = true;
      verify_result(model, window.regime, result);
      return result;
    }
  }
  result.success = result.adversarial_prediction > config_.success_threshold(window.regime);
  verify_result(model, window.regime, result);
  return result;
}

AttackResult EvasionAttack::run_beam(const predict::Forecaster& model,
                                     const data::Window& window) const {
  struct Beam {
    nn::Matrix features;
    double prediction;
    std::size_t edits;
    std::size_t next_step;  // timesteps are consumed back-to-front
  };

  AttackResult result;
  result.benign_prediction = model.predict(window.features);
  result.probes = 1;
  result.adversarial_features = window.features;
  result.adversarial_prediction = result.benign_prediction;

  const auto values = candidate_values(window.regime, window_jitter(window));
  const std::size_t steps = window.features.rows();
  const std::size_t budget = std::min<std::size_t>(config_.max_edits, steps);

  std::vector<Beam> frontier{{window.features, result.benign_prediction, 0, 0}};
  for (std::size_t depth = 0; depth < budget; ++depth) {
    std::vector<Beam> expanded;
    for (const Beam& beam : frontier) {
      if (beam.next_step >= steps) continue;
      const std::size_t t = steps - 1 - beam.next_step;
      // "Keep unchanged" branch preserves stealthy prefixes.
      Beam unchanged = beam;
      unchanged.next_step++;
      expanded.push_back(std::move(unchanged));
      std::vector<double> batch_preds;
      if (config_.batched_probes) {
        batch_preds = probe_position(model, beam.features, t, values, result);
      }
      for (std::size_t vi = 0; vi < values.size(); ++vi) {
        Beam child = beam;
        child.features(t, config_.target_channel) = values[vi];
        if (config_.batched_probes) {
          child.prediction = batch_preds[vi];
        } else {
          child.prediction = model.predict(child.features);
          ++result.probes;
        }
        child.edits++;
        child.next_step++;
        expanded.push_back(std::move(child));
      }
    }
    if (expanded.empty()) break;
    std::sort(expanded.begin(), expanded.end(), [](const Beam& a, const Beam& b) {
      if (a.prediction != b.prediction) return a.prediction > b.prediction;
      return a.edits < b.edits;  // stealthier first among equals
    });
    if (expanded.size() > config_.beam_width) expanded.resize(config_.beam_width);
    frontier = std::move(expanded);

    const Beam& best = frontier.front();
    if (best.prediction > result.adversarial_prediction) {
      result.adversarial_features = best.features;
      result.adversarial_prediction = best.prediction;
      result.edits = best.edits;
    }
    if (result.adversarial_prediction > config_.success_threshold(window.regime)) {
      result.success = true;
      verify_result(model, window.regime, result);
      return result;
    }
  }
  result.success = result.adversarial_prediction > config_.success_threshold(window.regime);
  verify_result(model, window.regime, result);
  return result;
}

}  // namespace goodones::attack
