// Attack campaigns: run the evasion attack over a patient's telemetry and
// aggregate per-scenario success rates (the paper's Appendix-A figures),
// keeping per-window outcomes for the risk profiler and the detectors.
#pragma once

#include <vector>

#include "attack/evasion.hpp"
#include "common/thread_pool.hpp"
#include "data/window.hpp"
#include "predict/forecaster.hpp"
#include "sim/patient.hpp"

namespace goodones::attack {

/// Everything recorded about one attacked window.
struct WindowOutcome {
  data::Window benign;               ///< the clean window (raw units)
  AttackResult attack;               ///< adversarial features + predictions
  data::GlycemicState true_state;    ///< state of the true future glucose
  data::GlycemicState benign_predicted_state;
  data::GlycemicState adversarial_predicted_state;
};

struct CampaignConfig {
  AttackConfig attack;
  /// Stride over the eligible windows (campaigns attack every n-th window;
  /// 1 attacks everything).
  std::size_t window_step = 4;
};

/// Attacks every `window_step`-th eligible window (true state normal or
/// hypoglycemic — the states the adversary wants misdiagnosed as hyper).
/// Outcomes stay in time order. Parallel across windows via `pool`.
std::vector<WindowOutcome> run_campaign(const predict::GlucoseForecaster& model,
                                        const std::vector<data::Window>& windows,
                                        const CampaignConfig& config,
                                        common::ThreadPool& pool);

/// Success-rate summary per (origin state x meal context) cell, matching
/// the paper's Fig. 9 (normal -> hyper) and Fig. 10 (hypo -> hyper).
struct SuccessRates {
  std::size_t normal_fasting_attempts = 0;
  std::size_t normal_fasting_successes = 0;
  std::size_t normal_postprandial_attempts = 0;
  std::size_t normal_postprandial_successes = 0;
  std::size_t hypo_fasting_attempts = 0;
  std::size_t hypo_fasting_successes = 0;
  std::size_t hypo_postprandial_attempts = 0;
  std::size_t hypo_postprandial_successes = 0;

  double normal_fasting_rate() const noexcept;
  double normal_postprandial_rate() const noexcept;
  double hypo_fasting_rate() const noexcept;
  double hypo_postprandial_rate() const noexcept;
  /// Success rate over all attempts.
  double overall_rate() const noexcept;
};

SuccessRates summarize(const std::vector<WindowOutcome>& outcomes);

}  // namespace goodones::attack
