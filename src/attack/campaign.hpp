// Attack campaigns: run the evasion attack over an entity's telemetry and
// aggregate per-scenario success rates (the paper's Appendix-A figures),
// keeping per-window outcomes for the risk profiler and the detectors.
#pragma once

#include <vector>

#include "attack/evasion.hpp"
#include "common/thread_pool.hpp"
#include "data/window.hpp"
#include "predict/forecaster.hpp"

namespace goodones::attack {

/// Everything recorded about one attacked window.
struct WindowOutcome {
  data::Window benign;               ///< the clean window (raw units)
  AttackResult attack;               ///< adversarial features + predictions
  data::StateLabel true_state = data::StateLabel::kNormal;  ///< state of the true future target
  data::StateLabel benign_predicted_state = data::StateLabel::kNormal;
  data::StateLabel adversarial_predicted_state = data::StateLabel::kNormal;
};

struct CampaignConfig {
  /// Per-window attack settings. attack.probe_precision also governs the
  /// campaign's merged lockstep probes — with an approximation lane (e.g.
  /// nn::Precision::kFast) every shard re-scores its final trajectories as
  /// one exact batch before reporting, so summarize() and the risk profiler
  /// only ever see full-double numbers.
  AttackConfig attack;
  /// Stride over the eligible windows (campaigns attack every n-th window;
  /// 1 attacks everything).
  std::size_t window_step = 4;
  /// Windows per scheduler shard (0 = auto-size to the pool). Outcomes do
  /// not depend on the sharding; it only shapes dispatch granularity.
  std::size_t shard_size = 0;
  /// Base seed of the per-shard RNG streams (reserved for stochastic attack
  /// variants; the current searches are deterministic per window).
  std::uint64_t seed = 0;
  /// Advance a shard's greedy searches in lockstep and merge every active
  /// window's candidate probes into ONE predict_batch call per round (the
  /// model's batched path then spans several base windows' prefix clusters
  /// with single packed GEMMs). Decisions are bitwise identical to the
  /// per-window batched path; only throughput changes. Applies to the
  /// position-ordered searches when attack.batched_probes is on.
  bool cross_window_probes = true;
};

/// Attacks every `window_step`-th eligible window (true state normal or
/// low — the states the adversary wants misdiagnosed as high). Outcomes
/// stay in time order. Sharded across the pool via attack::CampaignScheduler;
/// progress and probe throughput land in core::metrics::counters() under the
/// "campaign." prefix.
std::vector<WindowOutcome> run_campaign(const predict::Forecaster& model,
                                        const std::vector<data::Window>& windows,
                                        const CampaignConfig& config,
                                        common::ThreadPool& pool);

/// Success-rate summary per (origin state x regime) cell, matching the
/// paper's Fig. 9 (normal -> high) and Fig. 10 (low -> high). For the BGMS
/// domain: baseline = fasting, active = postprandial.
struct SuccessRates {
  std::size_t normal_baseline_attempts = 0;
  std::size_t normal_baseline_successes = 0;
  std::size_t normal_active_attempts = 0;
  std::size_t normal_active_successes = 0;
  std::size_t low_baseline_attempts = 0;
  std::size_t low_baseline_successes = 0;
  std::size_t low_active_attempts = 0;
  std::size_t low_active_successes = 0;

  double normal_baseline_rate() const noexcept;
  double normal_active_rate() const noexcept;
  double low_baseline_rate() const noexcept;
  double low_active_rate() const noexcept;
  /// Success rate over all attempts.
  double overall_rate() const noexcept;
};

SuccessRates summarize(const std::vector<WindowOutcome>& outcomes);

}  // namespace goodones::attack
