// Evasion-attack configuration mirroring the paper's URET setup,
// generalized over the engine's domain vocabulary.
//
// Threat model: the adversary can rewrite only the target channel of the
// telemetry window (e.g. a compromised sensor link) and must keep
// manipulated values inside a per-regime plausibility box. The goal is to
// push the DNN's forecast across the domain's high-state threshold while
// the victim's true state is normal or low.
//
// The numeric defaults below are the BGMS case study's calibration
// (mg/dL boxes from OhioT1DM, overdose harm level); every DomainAdapter
// stamps its own semantics via DomainAdapter::prepare().
#pragma once

#include <cstdint>
#include <optional>

#include "data/labels.hpp"
#include "nn/simd.hpp"

namespace goodones::attack {

/// Search strategy over candidate target-channel edits.
enum class SearchKind : std::uint8_t {
  /// Edits timesteps from the most recent backwards, keeping the best
  /// candidate value at each step; stops at first success. This is the
  /// cheap default used for large campaigns.
  kOrderedGreedy,
  /// Full greedy: every iteration evaluates all (timestep, value) edits and
  /// applies the single best one. Stronger, quadratically more expensive.
  kGreedy,
  /// Beam search over edit sequences (width configurable). Strongest.
  kBeam,
  /// Orders timesteps by |d prediction / d target_t| from the model's input
  /// gradient, then proceeds like ordered greedy. Extension beyond URET.
  kGradientGuided,
};

struct AttackConfig {
  SearchKind search = SearchKind::kOrderedGreedy;
  /// Edit budget. URET-style attacks minimize perturbation: a stealthy
  /// adversary rewrites only a few recent readings, because wholesale
  /// window rewrites are trivially detectable. With a bounded budget the
  /// remaining benign readings anchor the forecast, which is exactly where
  /// entity-to-entity resilience differences (paper Fig. 9/10) come from.
  std::size_t max_edits = 4;
  /// Grid resolution inside the constraint box. The stealth-first search
  /// picks the smallest succeeding value, so a finer grid lets successful
  /// manipulations sit just above what the model needs — overlapping the
  /// victim's benign abnormal range (the paper's Fig. 6 quadrants).
  std::size_t value_candidates = 6;

  /// Escalation stealth for the ordered-greedy searches. When an edit cannot
  /// yet cross the success threshold, the attacker escalates: with
  /// stealth_fraction <= 0 it takes the candidate with the largest forecast
  /// gain (worst-case/aggressive attacker — what the defender's risk
  /// profiling should measure); with a positive fraction it takes the
  /// smallest candidate covering that fraction of the remaining distance to
  /// the threshold (a detector-evading attacker whose manipulations blend
  /// into benign excursions).
  double stealth_fraction = 0.6;
  std::size_t beam_width = 4;         ///< only for kBeam

  /// Evaluate each position's candidate edits as one Forecaster::predict_batch
  /// call instead of per-candidate predict() calls. Decision semantics are
  /// identical (candidates are scanned in the same order with the same
  /// comparisons); models with a true batched path amortize the shared
  /// window prefix across candidates. Off = the scalar reference path.
  bool batched_probes = true;

  /// Numeric lane of batched candidate probes. Unset = the model's own
  /// configured scoring mode (whatever set_scoring_precision chose); set =
  /// an explicit per-call lane for every probe predict_batch. Probes only
  /// steer the search — when this requests an approximation lane (kMixed /
  /// kFast) the final reported trajectory is re-verified through the exact
  /// model: adversarial_prediction is recomputed with predict() and success
  /// re-derived, so reported numbers never carry approximation error. The
  /// scalar (batched_probes = false) reference path always probes exact.
  std::optional<nn::Precision> probe_precision;

  /// Channel of the telemetry window the adversary can rewrite (the
  /// forecast target channel; stamped by the domain adapter).
  std::size_t target_channel = 0;

  /// Diagnostic thresholds of the domain (state classification of benign
  /// and induced predictions). Defaults: the BGMS glycemic table.
  data::StateThresholds thresholds{/*low=*/70.0, /*high_baseline=*/125.0,
                                   /*high_active=*/180.0};

  // Constraint box per regime (raw units). Defaults: the paper's
  // [125, 499] mg/dL fasting and [180, 499] mg/dL postprandial boxes.
  double baseline_box_min = 125.0;
  double active_box_min = 180.0;
  double box_max = 499.0;

  /// Harm level (raw units): the attack counts as successful only when the
  /// induced prediction exceeds this level. A prediction a hair over the
  /// diagnostic threshold triggers a negligible correction, so the faithful
  /// reading of the threat model is a prediction high enough to provoke a
  /// harmful response (the BGMS paper's "excessively high insulin dose").
  /// This is also where entity resilience becomes measurable: stable
  /// entities' personalized models damp manipulated inputs and cannot be
  /// pushed this high, while volatile entities' models follow the
  /// manipulated channel all the way up.
  double harm_threshold = 370.0;

  /// Lower bound of the box for a given regime.
  double box_min(data::Regime regime) const noexcept {
    return regime == data::Regime::kBaseline ? baseline_box_min : active_box_min;
  }

  /// Prediction level that counts as a successful attack for this regime
  /// (never below the regime's diagnostic high threshold).
  double success_threshold(data::Regime regime) const noexcept {
    const double diagnostic = thresholds.high(regime);
    return harm_threshold > diagnostic ? harm_threshold : diagnostic;
  }

  /// Treatment-relevant state induced by an adversarial prediction: the
  /// victim system only takes a harmful action when the prediction crosses
  /// the harm level, so risk quantification counts the High transition only
  /// then (elevated-but-subcritical predictions remain "Normal").
  data::StateLabel induced_state(double prediction,
                                 data::Regime regime) const noexcept {
    if (prediction > success_threshold(regime)) return data::StateLabel::kHigh;
    if (prediction < thresholds.low) return data::StateLabel::kLow;
    return data::StateLabel::kNormal;
  }
};

}  // namespace goodones::attack
