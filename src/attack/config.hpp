// Evasion-attack configuration mirroring the paper's URET setup.
//
// Threat model: the adversary can rewrite only the CGM channel (compromised
// Bluetooth link) and must keep manipulated values physiologically plausible:
// within [125, 499] mg/dL for fasting scenarios and [180, 499] mg/dL for
// postprandial scenarios (499 is the highest value in OhioT1DM). The goal is
// to push the DNN's glucose forecast across the hyperglycemia threshold while
// the patient's true state is normal or hypoglycemic.
#pragma once

#include <cstdint>

#include "data/glucose_state.hpp"

namespace goodones::attack {

/// Search strategy over candidate CGM edits.
enum class SearchKind : std::uint8_t {
  /// Edits timesteps from the most recent backwards, keeping the best
  /// candidate value at each step; stops at first success. This is the
  /// cheap default used for large campaigns.
  kOrderedGreedy,
  /// Full greedy: every iteration evaluates all (timestep, value) edits and
  /// applies the single best one. Stronger, quadratically more expensive.
  kGreedy,
  /// Beam search over edit sequences (width configurable). Strongest.
  kBeam,
  /// Orders timesteps by |d prediction / d CGM_t| from the model's input
  /// gradient, then proceeds like ordered greedy. Extension beyond URET.
  kGradientGuided,
};

struct AttackConfig {
  SearchKind search = SearchKind::kOrderedGreedy;
  /// Edit budget. URET-style attacks minimize perturbation: a stealthy
  /// adversary rewrites only a few recent CGM readings, because wholesale
  /// window rewrites are trivially detectable. With a bounded budget the
  /// remaining benign readings anchor the forecast, which is exactly where
  /// patient-to-patient resilience differences (paper Fig. 9/10) come from.
  std::size_t max_edits = 4;
  /// Grid resolution inside the constraint box. The stealth-first search
  /// picks the smallest succeeding value, so a finer grid lets successful
  /// manipulations sit just above what the model needs — overlapping the
  /// victim's benign abnormal range (the paper's Fig. 6 quadrants).
  std::size_t value_candidates = 6;

  /// Escalation stealth for the ordered-greedy searches. When an edit cannot
  /// yet cross the success threshold, the attacker escalates: with
  /// stealth_fraction <= 0 it takes the candidate with the largest forecast
  /// gain (worst-case/aggressive attacker — what the defender's risk
  /// profiling should measure); with a positive fraction it takes the
  /// smallest candidate covering that fraction of the remaining distance to
  /// the threshold (a detector-evading attacker whose manipulations blend
  /// into benign excursions).
  double stealth_fraction = 0.6;
  std::size_t beam_width = 4;         ///< only for kBeam

  // Constraint boxes (mg/dL) per scenario, straight from the paper.
  double fasting_min = data::kFastingHyperThreshold;        // 125
  double postprandial_min = data::kPostprandialHyperThreshold;  // 180
  double value_max = 499.0;

  /// Overdose-danger level (mg/dL): the attack counts as successful only
  /// when the induced prediction exceeds this level. The paper's attacker
  /// goal is an *excessively high* insulin dose that "could lead the
  /// patient into a coma or even death" — a prediction a hair over the
  /// diagnostic threshold triggers a negligible correction bolus, so the
  /// faithful reading of the threat model is a prediction high enough to
  /// provoke a harmful dose. This is also where patient resilience becomes
  /// measurable: tightly-controlled patients' personalized models damp
  /// manipulated inputs and cannot be pushed this high, while dysregulated
  /// patients' models follow the manipulated CGM all the way up.
  double overdose_threshold = 370.0;

  /// Lower bound of the box for a given meal context.
  double box_min(data::MealContext context) const noexcept {
    return context == data::MealContext::kFasting ? fasting_min : postprandial_min;
  }

  /// Prediction level that counts as a successful attack for this context
  /// (never below the scenario's diagnostic hyperglycemia threshold).
  double success_threshold(data::MealContext context) const noexcept {
    const double diagnostic = data::hyper_threshold(context);
    return overdose_threshold > diagnostic ? overdose_threshold : diagnostic;
  }

  /// Treatment-relevant state induced by an adversarial prediction: the
  /// BGMS only administers a harmful correction when the prediction crosses
  /// the overdose level, so risk quantification counts the Hyper transition
  /// only then (elevated-but-subcritical predictions remain "Normal").
  data::GlycemicState induced_state(double prediction,
                                    data::MealContext context) const noexcept {
    if (prediction > success_threshold(context)) return data::GlycemicState::kHyper;
    if (prediction < data::kHypoThreshold) return data::GlycemicState::kHypo;
    return data::GlycemicState::kNormal;
  }
};

}  // namespace goodones::attack
