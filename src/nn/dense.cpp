#include "nn/dense.hpp"

#include "common/error.hpp"
#include "nn/activations.hpp"

namespace goodones::nn {

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Activation activation, common::Rng& rng)
    : weight_(in_dim, out_dim), bias_(1, out_dim), activation_(activation) {
  GO_EXPECTS(in_dim > 0 && out_dim > 0);
  weight_.init_xavier(rng, in_dim, out_dim);
}

Matrix Dense::apply_activation(Matrix pre) const noexcept {
  switch (activation_) {
    case Activation::kLinear: return pre;
    case Activation::kTanh: return tanh_matrix(std::move(pre));
    case Activation::kSigmoid: return sigmoid_matrix(std::move(pre));
    case Activation::kRelu: return relu_matrix(std::move(pre));
  }
  return pre;
}

Matrix Dense::forward(const Matrix& x) const {
  GO_EXPECTS(x.cols() == in_dim());
  Matrix pre = matmul(x, weight_.value);
  for (std::size_t r = 0; r < pre.rows(); ++r) {
    axpy(1.0, bias_.value.row(0), pre.row(r));
  }
  return apply_activation(std::move(pre));
}

Matrix Dense::forward_cached(const Matrix& x, Cache& cache) const {
  cache.input = x;
  cache.output = forward(x);
  return cache.output;
}

namespace {

/// Gradient through an activation, expressed via the cached output.
Matrix activation_backward(const Matrix& grad_output, const Matrix& output,
                           Activation activation) {
  Matrix grad_pre = grad_output;
  switch (activation) {
    case Activation::kLinear:
      break;
    case Activation::kTanh:
      for (std::size_t r = 0; r < grad_pre.rows(); ++r) {
        auto g = grad_pre.row(r);
        const auto y = output.row(r);
        for (std::size_t c = 0; c < g.size(); ++c) g[c] *= tanh_grad_from_output(y[c]);
      }
      break;
    case Activation::kSigmoid:
      for (std::size_t r = 0; r < grad_pre.rows(); ++r) {
        auto g = grad_pre.row(r);
        const auto y = output.row(r);
        for (std::size_t c = 0; c < g.size(); ++c) g[c] *= sigmoid_grad_from_output(y[c]);
      }
      break;
    case Activation::kRelu:
      for (std::size_t r = 0; r < grad_pre.rows(); ++r) {
        auto g = grad_pre.row(r);
        const auto y = output.row(r);
        for (std::size_t c = 0; c < g.size(); ++c) g[c] *= relu_grad_from_output(y[c]);
      }
      break;
  }

  return grad_pre;
}

}  // namespace

Matrix Dense::backward(const Matrix& grad_output, const Cache& cache) {
  GO_EXPECTS(grad_output.rows() == cache.output.rows());
  GO_EXPECTS(grad_output.cols() == out_dim());
  const Matrix grad_pre = activation_backward(grad_output, cache.output, activation_);

  // dW += x^T * grad_pre ; db += column sums ; dx = grad_pre * W^T.
  matmul_trans_a_accumulate(cache.input, grad_pre, weight_.grad);
  for (std::size_t r = 0; r < grad_pre.rows(); ++r) {
    axpy(1.0, grad_pre.row(r), bias_.grad.row(0));
  }
  return matmul_trans_b(grad_pre, weight_.value);
}

Matrix Dense::backward_input(const Matrix& grad_output, const Cache& cache) const {
  GO_EXPECTS(grad_output.rows() == cache.output.rows());
  GO_EXPECTS(grad_output.cols() == out_dim());
  const Matrix grad_pre = activation_backward(grad_output, cache.output, activation_);
  return matmul_trans_b(grad_pre, weight_.value);
}

}  // namespace goodones::nn
