// Shared transcendental math for the SIMD kernel lanes. Included only via
// the kernel headers that nn/simd.cpp pulls in.
//
// Two families live here:
//
//  1. The PARITY lane's scalar-libm helpers: the exact sign-split sigmoid,
//     the spill-to-buffer loops the vector lanes use to route exp/tanh
//     through glibc, and the exact gate-math range loops that serve both as
//     the scalar kernels (full range) and as the ragged tails of the vector
//     kernels. One definition keeps every lane's libm arguments identical,
//     which is what the bitwise parity contract rests on.
//
//  2. The FAST lane (Precision::kFast): range-reduced polynomial
//     exp/tanh/sigmoid with explicit FMA. This lane is OUTSIDE the bitwise
//     parity-with-libm contract — it trades a few ulp for keeping the whole
//     gate row-step in vector registers. It keeps a weaker invariant
//     instead: every op is a correctly-rounded IEEE primitive (fma, mul,
//     add, div) applied in the same order on every lane, so the scalar,
//     AVX2, and NEON fast kernels agree bitwise WITH EACH OTHER even though
//     none of them matches glibc. Accuracy bounds (measured by the
//     nn_simd_test ulp sweep): exp <= 2 ulp over the full finite range;
//     tanh/sigmoid <= 4 ulp (the p/(p+2) and 1/(1+z) forms amplify the exp
//     error by at most ~2x near the small-argument branch boundary).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace goodones::nn::simd::tmath {

// --- parity lane: shared scalar-libm helpers --------------------------------

/// Sign-split sigmoid, same formulation as nn::sigmoid (activations.hpp):
/// the exp argument is -|x| in both branches, one correctly-rounded libm
/// call serves positive and negative inputs alike.
inline double libm_sigmoid(double x) noexcept {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

/// z[l] = exp(-|x[l]|) through scalar libm — the spill loop shared by the
/// AVX2 (w=4) and NEON (w=2) vector sigmoids.
inline void libm_exp_neg_abs(const double* x, double* z, std::size_t w) noexcept {
  for (std::size_t l = 0; l < w; ++l) z[l] = std::exp(-std::fabs(x[l]));
}

/// lanes[l] = tanh(lanes[l]) through scalar libm — shared spill loop of the
/// vector tanh helpers.
inline void libm_tanh_inplace(double* lanes, std::size_t w) noexcept {
  for (std::size_t l = 0; l < w; ++l) lanes[l] = std::tanh(lanes[l]);
}

/// Exact LSTM gate math over rows [j0, h). With j0 = 0 this IS the scalar
/// lstm_gates kernel; the vector lanes call it with j0 at their ragged tail.
inline void lstm_gates_range(const double* pre, std::size_t h, std::size_t j0, double* cell,
                             double* hidden) noexcept {
  for (std::size_t j = j0; j < h; ++j) {
    const double gi = libm_sigmoid(pre[j]);
    const double gf = libm_sigmoid(pre[h + j]);
    const double gg = std::tanh(pre[2 * h + j]);
    const double go = libm_sigmoid(pre[3 * h + j]);
    const double ct = gf * cell[j] + gi * gg;
    cell[j] = ct;
    hidden[j] = go * std::tanh(ct);
  }
}

/// Exact cache-filling gate math over rows [j0, h); same sharing scheme.
inline void lstm_gates_cached_range(const double* pre, std::size_t h, std::size_t j0,
                                    double* gi, double* gf, double* gg, double* go, double* ct,
                                    double* ctt, double* ht, double* cs, double* hs) noexcept {
  for (std::size_t j = j0; j < h; ++j) {
    gi[j] = libm_sigmoid(pre[j]);
    gf[j] = libm_sigmoid(pre[h + j]);
    gg[j] = std::tanh(pre[2 * h + j]);
    go[j] = libm_sigmoid(pre[3 * h + j]);
    ct[j] = gf[j] * cs[j] + gi[j] * gg[j];
    ctt[j] = std::tanh(ct[j]);
    ht[j] = go[j] * ctt[j];
    cs[j] = ct[j];
    hs[j] = ht[j];
  }
}

// --- fast lane: polynomial exp/tanh/sigmoid ---------------------------------
//
// exp: Cody-Waite reduction x = n*ln2 + r, |r| <= ln2/2, n recovered via the
// round-to-nearest shifter trick; degree-13 Taylor core (truncation ~4e-18,
// well under half an ulp); 2^n reconstructed in two half-steps so outputs
// denormalize gracefully instead of flushing at the 2^-1022 scale boundary.

inline constexpr double kFastExpLog2e = 1.4426950408889634074;
inline constexpr double kFastExpLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kFastExpLn2Lo = 1.90821492927058770002e-10;
// 1.5 * 2^52: adding then subtracting rounds to the nearest integer and
// leaves that integer in the low mantissa bits of the intermediate sum.
inline constexpr double kFastExpShifter = 6755399441055744.0;
// Clamp bounds keep |n| small enough for the two-step 2^n reconstruction;
// true out-of-range behavior is restored by the final selects.
inline constexpr double kFastExpHiClamp = 710.0;
inline constexpr double kFastExpLoClamp = -746.0;
inline constexpr double kFastExpOverflow = 709.782712893384;     // exp(x) = +inf above
inline constexpr double kFastExpUnderflow = -745.13321910194110842;  // exp(x) = 0 below

/// exp(r) Taylor coefficients 1/k!, k = 13 .. 0, Horner order.
inline constexpr double kFastExpPoly[] = {
    1.0 / 6227020800.0, 1.0 / 479001600.0, 1.0 / 39916800.0, 1.0 / 3628800.0,
    1.0 / 362880.0,     1.0 / 40320.0,     1.0 / 5040.0,     1.0 / 720.0,
    1.0 / 120.0,        1.0 / 24.0,        1.0 / 6.0,        1.0 / 2.0,
    1.0,                1.0,
};

/// expm1(u)/u Taylor coefficients 1/(k+1)!, k = 14 .. 0, Horner order —
/// the cancellation-free small-argument branch of fast_tanh (u = 2|x| in
/// [0, 0.5), truncation ~1e-18 relative).
inline constexpr double kFastExpm1Poly[] = {
    1.0 / 1307674368000.0, 1.0 / 87178291200.0, 1.0 / 6227020800.0, 1.0 / 479001600.0,
    1.0 / 39916800.0,      1.0 / 3628800.0,     1.0 / 362880.0,     1.0 / 40320.0,
    1.0 / 5040.0,          1.0 / 720.0,         1.0 / 120.0,        1.0 / 24.0,
    1.0 / 6.0,             1.0 / 2.0,           1.0,
};

/// |x| below which fast_tanh switches to the expm1 polynomial (u = 2|x|
/// stays within the polynomial's [0, 0.5) domain).
inline constexpr double kFastTanhSmall = 0.25;
/// |x| at and above which tanh(x) rounds to exactly 1.0 in double.
inline constexpr double kFastTanhSaturate = 19.0625;

/// Builds 2^e for |e| <= 1023 straight from the exponent bit field.
inline double fast_pow2(std::int64_t e) noexcept {
  double out;
  const std::uint64_t bits = static_cast<std::uint64_t>(e + 1023) << 52;
  __builtin_memcpy(&out, &bits, sizeof(out));
  return out;
}

/// Polynomial exp. Same operation sequence as the vector versions — the
/// clamp, reduction, Horner chain, two-step scaling, and the three trailing
/// selects (overflow, underflow, NaN) appear in identical order so scalar
/// and vector fast lanes agree bitwise.
inline double fast_exp(double x) noexcept {
  // min/max with the vector lanes' operand order (NaN falls through to the
  // clamp value; the final select restores it).
  double xc = x < kFastExpHiClamp ? x : kFastExpHiClamp;
  xc = xc > kFastExpLoClamp ? xc : kFastExpLoClamp;
  const double shifted = std::fma(xc, kFastExpLog2e, kFastExpShifter);
  const double nd = shifted - kFastExpShifter;
  double r = std::fma(nd, -kFastExpLn2Hi, xc);
  r = std::fma(nd, -kFastExpLn2Lo, r);
  double p = kFastExpPoly[0];
  for (std::size_t i = 1; i < sizeof(kFastExpPoly) / sizeof(double); ++i) {
    p = std::fma(p, r, kFastExpPoly[i]);
  }
  const auto n = static_cast<std::int64_t>(nd);
  const std::int64_t n1 = n >> 1;  // floor halves, matching the vector shifts
  const std::int64_t n2 = n - n1;
  double result = (p * fast_pow2(n1)) * fast_pow2(n2);
  if (x > kFastExpOverflow) result = std::numeric_limits<double>::infinity();
  if (x < kFastExpUnderflow) result = 0.0;
  if (x != x) result = x;
  return result;
}

/// Polynomial tanh: sign(x) * p/(p+2) with p = expm1(2|x|) — the expm1
/// polynomial below the branch point (no cancellation), fast_exp(u)-1 above
/// it, saturating to exactly +/-1 past kFastTanhSaturate.
inline double fast_tanh(double x) noexcept {
  const double ax = std::fabs(x);
  const double u = ax + ax;
  double p;
  if (ax < kFastTanhSmall) {
    double q = kFastExpm1Poly[0];
    for (std::size_t i = 1; i < sizeof(kFastExpm1Poly) / sizeof(double); ++i) {
      q = std::fma(q, u, kFastExpm1Poly[i]);
    }
    p = u * q;
  } else {
    p = fast_exp(u) - 1.0;
  }
  double r = p / (p + 2.0);
  if (ax >= kFastTanhSaturate) r = 1.0;
  r = std::copysign(r, x);
  if (x != x) r = x;
  return r;
}

/// Polynomial sigmoid, same sign-split form as libm_sigmoid but through
/// fast_exp: z = exp(-|x|), then 1/(1+z) or z/(1+z) by sign.
inline double fast_sigmoid(double x) noexcept {
  const double z = fast_exp(-std::fabs(x));
  const double denom = 1.0 + z;
  return x >= 0.0 ? 1.0 / denom : z / denom;
}

/// Fast-lane LSTM gate math over rows [j0, h). With j0 = 0 this is the
/// scalar lstm_gates_fast kernel; vector lanes call it for ragged tails.
/// Unlike the exact lane, the cell update may fuse (fma), matching the
/// vector lanes' fmadd — the fast lane's own cross-ISA bitwise contract.
inline void lstm_gates_fast_range(const double* pre, std::size_t h, std::size_t j0,
                                  double* cell, double* hidden) noexcept {
  for (std::size_t j = j0; j < h; ++j) {
    const double gi = fast_sigmoid(pre[j]);
    const double gf = fast_sigmoid(pre[h + j]);
    const double gg = fast_tanh(pre[2 * h + j]);
    const double go = fast_sigmoid(pre[3 * h + j]);
    const double ct = std::fma(gf, cell[j], gi * gg);
    cell[j] = ct;
    hidden[j] = go * fast_tanh(ct);
  }
}

/// Fast-lane cache-filling gate math over rows [j0, h).
inline void lstm_gates_cached_fast_range(const double* pre, std::size_t h, std::size_t j0,
                                         double* gi, double* gf, double* gg, double* go,
                                         double* ct, double* ctt, double* ht, double* cs,
                                         double* hs) noexcept {
  for (std::size_t j = j0; j < h; ++j) {
    gi[j] = fast_sigmoid(pre[j]);
    gf[j] = fast_sigmoid(pre[h + j]);
    gg[j] = fast_tanh(pre[2 * h + j]);
    go[j] = fast_sigmoid(pre[3 * h + j]);
    ct[j] = std::fma(gf[j], cs[j], gi[j] * gg[j]);
    ctt[j] = fast_tanh(ct[j]);
    ht[j] = go[j] * ctt[j];
    cs[j] = ct[j];
    hs[j] = ht[j];
  }
}

}  // namespace goodones::nn::simd::tmath
