// NEON (aarch64) kernel lane. Included only by nn/simd.cpp.
//
// Same bitwise-parity contract as the AVX2 lane: separate vmulq/vaddq (no
// vfmaq fusion), per-output-element accumulation order identical to the
// scalar loops, transcendentals through scalar libm. float64x2_t is the
// widest double vector on aarch64, so this lane is 2-wide.
#pragma once

#if defined(__aarch64__) && defined(__ARM_NEON) && !defined(GOODONES_SIMD_NO_NEON)
#define GOODONES_SIMD_HAS_NEON 1

#include <arm_neon.h>

#include <cmath>
#include <cstddef>

#include "nn/kernels/scalar.hpp"

namespace goodones::nn::simd::neon_kernels {

inline float64x2_t sigmoid2(float64x2_t x) noexcept {
  double lanes[2];
  vst1q_f64(lanes, x);
  double zbuf[2];
  for (int l = 0; l < 2; ++l) zbuf[l] = std::exp(-std::fabs(lanes[l]));
  const float64x2_t z = vld1q_f64(zbuf);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t denom = vaddq_f64(one, z);
  const float64x2_t pos = vdivq_f64(one, denom);
  const float64x2_t neg = vdivq_f64(z, denom);
  const uint64x2_t ge = vcgeq_f64(x, vdupq_n_f64(0.0));
  return vbslq_f64(ge, pos, neg);
}

inline float64x2_t tanh2(float64x2_t x) noexcept {
  double lanes[2];
  vst1q_f64(lanes, x);
  lanes[0] = std::tanh(lanes[0]);
  lanes[1] = std::tanh(lanes[1]);
  return vld1q_f64(lanes);
}

inline void matmul_acc(const double* a, const double* b, double* out, std::size_t m,
                       std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      float64x2_t acc0 = vld1q_f64(out_row + j);
      float64x2_t acc1 = vld1q_f64(out_row + j + 2);
      float64x2_t acc2 = vld1q_f64(out_row + j + 4);
      float64x2_t acc3 = vld1q_f64(out_row + j + 6);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vdupq_n_f64(a_row[kk]);
        const double* b_row = b + kk * n + j;
        acc0 = vaddq_f64(acc0, vmulq_f64(va, vld1q_f64(b_row)));
        acc1 = vaddq_f64(acc1, vmulq_f64(va, vld1q_f64(b_row + 2)));
        acc2 = vaddq_f64(acc2, vmulq_f64(va, vld1q_f64(b_row + 4)));
        acc3 = vaddq_f64(acc3, vmulq_f64(va, vld1q_f64(b_row + 6)));
      }
      vst1q_f64(out_row + j, acc0);
      vst1q_f64(out_row + j + 2, acc1);
      vst1q_f64(out_row + j + 4, acc2);
      vst1q_f64(out_row + j + 6, acc3);
    }
    for (; j + 2 <= n; j += 2) {
      float64x2_t acc = vld1q_f64(out_row + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vdupq_n_f64(a_row[kk]);
        acc = vaddq_f64(acc, vmulq_f64(va, vld1q_f64(b + kk * n + j)));
      }
      vst1q_f64(out_row + j, acc);
    }
    for (; j < n; ++j) {
      double sum = out_row[j];
      for (std::size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b[kk * n + j];
      out_row[j] = sum;
    }
  }
}

inline void matmul_bias(const double* a, const double* b, const double* bias, double* out,
                        std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      float64x2_t acc = vdupq_n_f64(0.0);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vdupq_n_f64(a_row[kk]);
        acc = vaddq_f64(acc, vmulq_f64(va, vld1q_f64(b + kk * n + j)));
      }
      vst1q_f64(out_row + j, vaddq_f64(acc, vld1q_f64(bias + j)));
    }
    for (; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b[kk * n + j];
      out_row[j] = sum + bias[j];
    }
  }
}

inline void matmul_ta_acc(const double* a, const double* b, double* out, std::size_t r,
                          std::size_t m, std::size_t n) {
  for (std::size_t kk = 0; kk < r; ++kk) {
    const double* a_row = a + kk * m;
    const double* b_row = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float64x2_t va = vdupq_n_f64(a_row[i]);
      double* out_row = out + i * n;
      std::size_t j = 0;
      for (; j + 2 <= n; j += 2) {
        const float64x2_t prod = vmulq_f64(va, vld1q_f64(b_row + j));
        vst1q_f64(out_row + j, vaddq_f64(vld1q_f64(out_row + j), prod));
      }
      for (; j < n; ++j) out_row[j] += a_row[i] * b_row[j];
    }
  }
}

inline void matmul_tb_acc(const double* a, const double* b, double* out, std::size_t m,
                          std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const double* b0 = b + j * k;
      const double* b1 = b + (j + 1) * k;
      float64x2_t acc = vdupq_n_f64(0.0);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vdupq_n_f64(a_row[kk]);
        const double vb_lanes[2] = {b0[kk], b1[kk]};
        acc = vaddq_f64(acc, vmulq_f64(va, vld1q_f64(vb_lanes)));
      }
      vst1q_f64(out_row + j, vaddq_f64(vld1q_f64(out_row + j), acc));
    }
    for (; j < n; ++j) {
      const double* b_row = b + j * k;
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b_row[kk];
      out_row[j] += sum;
    }
  }
}

inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t prod = vmulq_f64(va, vld1q_f64(x + i));
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

inline void lstm_gates(const double* pre, std::size_t h, double* cell, double* hidden) {
  std::size_t j = 0;
  for (; j + 2 <= h; j += 2) {
    const float64x2_t gi = sigmoid2(vld1q_f64(pre + j));
    const float64x2_t gf = sigmoid2(vld1q_f64(pre + h + j));
    const float64x2_t gg = tanh2(vld1q_f64(pre + 2 * h + j));
    const float64x2_t go = sigmoid2(vld1q_f64(pre + 3 * h + j));
    const float64x2_t ct =
        vaddq_f64(vmulq_f64(gf, vld1q_f64(cell + j)), vmulq_f64(gi, gg));
    vst1q_f64(cell + j, ct);
    vst1q_f64(hidden + j, vmulq_f64(go, tanh2(ct)));
  }
  for (; j < h; ++j) {
    const double gi = scalar_kernels::sigmoid(pre[j]);
    const double gf = scalar_kernels::sigmoid(pre[h + j]);
    const double gg = std::tanh(pre[2 * h + j]);
    const double go = scalar_kernels::sigmoid(pre[3 * h + j]);
    const double ct = gf * cell[j] + gi * gg;
    cell[j] = ct;
    hidden[j] = go * std::tanh(ct);
  }
}

inline void lstm_gates_cached(const double* pre, std::size_t h, double* gi, double* gf,
                              double* gg, double* go, double* ct, double* ctt, double* ht,
                              double* cs, double* hs) {
  std::size_t j = 0;
  for (; j + 2 <= h; j += 2) {
    const float64x2_t vgi = sigmoid2(vld1q_f64(pre + j));
    const float64x2_t vgf = sigmoid2(vld1q_f64(pre + h + j));
    const float64x2_t vgg = tanh2(vld1q_f64(pre + 2 * h + j));
    const float64x2_t vgo = sigmoid2(vld1q_f64(pre + 3 * h + j));
    const float64x2_t vct = vaddq_f64(vmulq_f64(vgf, vld1q_f64(cs + j)), vmulq_f64(vgi, vgg));
    const float64x2_t vctt = tanh2(vct);
    const float64x2_t vht = vmulq_f64(vgo, vctt);
    vst1q_f64(gi + j, vgi);
    vst1q_f64(gf + j, vgf);
    vst1q_f64(gg + j, vgg);
    vst1q_f64(go + j, vgo);
    vst1q_f64(ct + j, vct);
    vst1q_f64(ctt + j, vctt);
    vst1q_f64(ht + j, vht);
    vst1q_f64(cs + j, vct);
    vst1q_f64(hs + j, vht);
  }
  for (; j < h; ++j) {
    gi[j] = scalar_kernels::sigmoid(pre[j]);
    gf[j] = scalar_kernels::sigmoid(pre[h + j]);
    gg[j] = std::tanh(pre[2 * h + j]);
    go[j] = scalar_kernels::sigmoid(pre[3 * h + j]);
    ct[j] = gf[j] * cs[j] + gi[j] * gg[j];
    ctt[j] = std::tanh(ct[j]);
    ht[j] = go[j] * ctt[j];
    cs[j] = ct[j];
    hs[j] = ht[j];
  }
}

inline void matmul_acc_f32w(const double* a, const float* b, double* out, std::size_t m,
                            std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      float64x2_t acc = vld1q_f64(out_row + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vdupq_n_f64(a_row[kk]);
        const float64x2_t vb = vcvt_f64_f32(vld1_f32(b + kk * n + j));
        acc = vaddq_f64(acc, vmulq_f64(va, vb));
      }
      vst1q_f64(out_row + j, acc);
    }
    for (; j < n; ++j) {
      double sum = out_row[j];
      for (std::size_t kk = 0; kk < k; ++kk) {
        sum += a_row[kk] * static_cast<double>(b[kk * n + j]);
      }
      out_row[j] = sum;
    }
  }
}

inline void matmul_bias_f32w(const double* a, const float* b, const float* bias, double* out,
                             std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      float64x2_t acc = vdupq_n_f64(0.0);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vdupq_n_f64(a_row[kk]);
        const float64x2_t vb = vcvt_f64_f32(vld1_f32(b + kk * n + j));
        acc = vaddq_f64(acc, vmulq_f64(va, vb));
      }
      vst1q_f64(out_row + j, vaddq_f64(acc, vcvt_f64_f32(vld1_f32(bias + j))));
    }
    for (; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        sum += a_row[kk] * static_cast<double>(b[kk * n + j]);
      }
      out_row[j] = sum + static_cast<double>(bias[j]);
    }
  }
}

}  // namespace goodones::nn::simd::neon_kernels

#endif  // aarch64 with NEON
