// NEON (aarch64) kernel lane. Included only by nn/simd.cpp.
//
// Same bitwise-parity contract as the AVX2 lane: separate vmulq/vaddq (no
// vfmaq fusion), per-output-element accumulation order identical to the
// scalar loops, transcendentals through scalar libm. float64x2_t is the
// widest double vector on aarch64, so this lane is 2-wide.
#pragma once

#if defined(__aarch64__) && defined(__ARM_NEON) && !defined(GOODONES_SIMD_NO_NEON)
#define GOODONES_SIMD_HAS_NEON 1

#include <arm_neon.h>

#include <cmath>
#include <cstddef>

#include "nn/kernels/scalar.hpp"
#include "nn/kernels/transcendental.hpp"

namespace goodones::nn::simd::neon_kernels {

inline float64x2_t sigmoid2(float64x2_t x) noexcept {
  double lanes[2];
  vst1q_f64(lanes, x);
  double zbuf[2];
  tmath::libm_exp_neg_abs(lanes, zbuf, 2);
  const float64x2_t z = vld1q_f64(zbuf);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t denom = vaddq_f64(one, z);
  const float64x2_t pos = vdivq_f64(one, denom);
  const float64x2_t neg = vdivq_f64(z, denom);
  const uint64x2_t ge = vcgeq_f64(x, vdupq_n_f64(0.0));
  return vbslq_f64(ge, pos, neg);
}

inline float64x2_t tanh2(float64x2_t x) noexcept {
  double lanes[2];
  vst1q_f64(lanes, x);
  tmath::libm_tanh_inplace(lanes, 2);
  return vld1q_f64(lanes);
}

inline void matmul_acc(const double* a, const double* b, double* out, std::size_t m,
                       std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      float64x2_t acc0 = vld1q_f64(out_row + j);
      float64x2_t acc1 = vld1q_f64(out_row + j + 2);
      float64x2_t acc2 = vld1q_f64(out_row + j + 4);
      float64x2_t acc3 = vld1q_f64(out_row + j + 6);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vdupq_n_f64(a_row[kk]);
        const double* b_row = b + kk * n + j;
        acc0 = vaddq_f64(acc0, vmulq_f64(va, vld1q_f64(b_row)));
        acc1 = vaddq_f64(acc1, vmulq_f64(va, vld1q_f64(b_row + 2)));
        acc2 = vaddq_f64(acc2, vmulq_f64(va, vld1q_f64(b_row + 4)));
        acc3 = vaddq_f64(acc3, vmulq_f64(va, vld1q_f64(b_row + 6)));
      }
      vst1q_f64(out_row + j, acc0);
      vst1q_f64(out_row + j + 2, acc1);
      vst1q_f64(out_row + j + 4, acc2);
      vst1q_f64(out_row + j + 6, acc3);
    }
    for (; j + 2 <= n; j += 2) {
      float64x2_t acc = vld1q_f64(out_row + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vdupq_n_f64(a_row[kk]);
        acc = vaddq_f64(acc, vmulq_f64(va, vld1q_f64(b + kk * n + j)));
      }
      vst1q_f64(out_row + j, acc);
    }
    for (; j < n; ++j) {
      double sum = out_row[j];
      for (std::size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b[kk * n + j];
      out_row[j] = sum;
    }
  }
}

inline void matmul_bias(const double* a, const double* b, const double* bias, double* out,
                        std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      float64x2_t acc = vdupq_n_f64(0.0);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vdupq_n_f64(a_row[kk]);
        acc = vaddq_f64(acc, vmulq_f64(va, vld1q_f64(b + kk * n + j)));
      }
      vst1q_f64(out_row + j, vaddq_f64(acc, vld1q_f64(bias + j)));
    }
    for (; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b[kk * n + j];
      out_row[j] = sum + bias[j];
    }
  }
}

inline void matmul_ta_acc(const double* a, const double* b, double* out, std::size_t r,
                          std::size_t m, std::size_t n) {
  for (std::size_t kk = 0; kk < r; ++kk) {
    const double* a_row = a + kk * m;
    const double* b_row = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float64x2_t va = vdupq_n_f64(a_row[i]);
      double* out_row = out + i * n;
      std::size_t j = 0;
      for (; j + 2 <= n; j += 2) {
        const float64x2_t prod = vmulq_f64(va, vld1q_f64(b_row + j));
        vst1q_f64(out_row + j, vaddq_f64(vld1q_f64(out_row + j), prod));
      }
      for (; j < n; ++j) out_row[j] += a_row[i] * b_row[j];
    }
  }
}

inline void matmul_tb_acc(const double* a, const double* b, double* out, std::size_t m,
                          std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const double* b0 = b + j * k;
      const double* b1 = b + (j + 1) * k;
      float64x2_t acc = vdupq_n_f64(0.0);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vdupq_n_f64(a_row[kk]);
        const double vb_lanes[2] = {b0[kk], b1[kk]};
        acc = vaddq_f64(acc, vmulq_f64(va, vld1q_f64(vb_lanes)));
      }
      vst1q_f64(out_row + j, vaddq_f64(vld1q_f64(out_row + j), acc));
    }
    for (; j < n; ++j) {
      const double* b_row = b + j * k;
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b_row[kk];
      out_row[j] += sum;
    }
  }
}

inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t prod = vmulq_f64(va, vld1q_f64(x + i));
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

inline void lstm_gates(const double* pre, std::size_t h, double* cell, double* hidden) {
  std::size_t j = 0;
  for (; j + 2 <= h; j += 2) {
    const float64x2_t gi = sigmoid2(vld1q_f64(pre + j));
    const float64x2_t gf = sigmoid2(vld1q_f64(pre + h + j));
    const float64x2_t gg = tanh2(vld1q_f64(pre + 2 * h + j));
    const float64x2_t go = sigmoid2(vld1q_f64(pre + 3 * h + j));
    const float64x2_t ct =
        vaddq_f64(vmulq_f64(gf, vld1q_f64(cell + j)), vmulq_f64(gi, gg));
    vst1q_f64(cell + j, ct);
    vst1q_f64(hidden + j, vmulq_f64(go, tanh2(ct)));
  }
  tmath::lstm_gates_range(pre, h, j, cell, hidden);
}

inline void lstm_gates_cached(const double* pre, std::size_t h, double* gi, double* gf,
                              double* gg, double* go, double* ct, double* ctt, double* ht,
                              double* cs, double* hs) {
  std::size_t j = 0;
  for (; j + 2 <= h; j += 2) {
    const float64x2_t vgi = sigmoid2(vld1q_f64(pre + j));
    const float64x2_t vgf = sigmoid2(vld1q_f64(pre + h + j));
    const float64x2_t vgg = tanh2(vld1q_f64(pre + 2 * h + j));
    const float64x2_t vgo = sigmoid2(vld1q_f64(pre + 3 * h + j));
    const float64x2_t vct = vaddq_f64(vmulq_f64(vgf, vld1q_f64(cs + j)), vmulq_f64(vgi, vgg));
    const float64x2_t vctt = tanh2(vct);
    const float64x2_t vht = vmulq_f64(vgo, vctt);
    vst1q_f64(gi + j, vgi);
    vst1q_f64(gf + j, vgf);
    vst1q_f64(gg + j, vgg);
    vst1q_f64(go + j, vgo);
    vst1q_f64(ct + j, vct);
    vst1q_f64(ctt + j, vctt);
    vst1q_f64(ht + j, vht);
    vst1q_f64(cs + j, vct);
    vst1q_f64(hs + j, vht);
  }
  tmath::lstm_gates_cached_range(pre, h, j, gi, gf, gg, go, ct, ctt, ht, cs, hs);
}

inline void matmul_acc_f32w(const double* a, const float* b, double* out, std::size_t m,
                            std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      float64x2_t acc = vld1q_f64(out_row + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vdupq_n_f64(a_row[kk]);
        const float64x2_t vb = vcvt_f64_f32(vld1_f32(b + kk * n + j));
        acc = vaddq_f64(acc, vmulq_f64(va, vb));
      }
      vst1q_f64(out_row + j, acc);
    }
    for (; j < n; ++j) {
      double sum = out_row[j];
      for (std::size_t kk = 0; kk < k; ++kk) {
        sum += a_row[kk] * static_cast<double>(b[kk * n + j]);
      }
      out_row[j] = sum;
    }
  }
}

inline void matmul_bias_f32w(const double* a, const float* b, const float* bias, double* out,
                             std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      float64x2_t acc = vdupq_n_f64(0.0);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vdupq_n_f64(a_row[kk]);
        const float64x2_t vb = vcvt_f64_f32(vld1_f32(b + kk * n + j));
        acc = vaddq_f64(acc, vmulq_f64(va, vb));
      }
      vst1q_f64(out_row + j, vaddq_f64(acc, vcvt_f64_f32(vld1_f32(bias + j))));
    }
    for (; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        sum += a_row[kk] * static_cast<double>(b[kk * n + j]);
      }
      out_row[j] = sum + static_cast<double>(bias[j]);
    }
  }
}

// --- fast lane (Precision::kFast): 2-wide polynomial transcendentals -------
//
// Same operation sequence as tmath::fast_exp/fast_tanh/fast_sigmoid (and the
// AVX2 4-wide versions): clamp, shifter-trick reduction, Horner-with-fma
// core, two-step 2^n scaling, then overflow/underflow/NaN selects in that
// order — every op is a correctly-rounded IEEE primitive, so the fast lanes
// agree bitwise across ISAs. vfmaq_f64(a, b, c) computes a + b*c fused,
// matching the scalar std::fma.

inline float64x2_t fast_exp2(float64x2_t x) noexcept {
  float64x2_t xc = vminq_f64(x, vdupq_n_f64(tmath::kFastExpHiClamp));
  xc = vmaxq_f64(xc, vdupq_n_f64(tmath::kFastExpLoClamp));
  const float64x2_t shifter = vdupq_n_f64(tmath::kFastExpShifter);
  const float64x2_t nd =
      vsubq_f64(vfmaq_f64(shifter, xc, vdupq_n_f64(tmath::kFastExpLog2e)), shifter);
  float64x2_t r = vfmaq_f64(xc, nd, vdupq_n_f64(-tmath::kFastExpLn2Hi));
  r = vfmaq_f64(r, nd, vdupq_n_f64(-tmath::kFastExpLn2Lo));
  float64x2_t p = vdupq_n_f64(tmath::kFastExpPoly[0]);
  for (std::size_t i = 1; i < sizeof(tmath::kFastExpPoly) / sizeof(double); ++i) {
    p = vfmaq_f64(vdupq_n_f64(tmath::kFastExpPoly[i]), p, r);
  }
  const int64x2_t n = vcvtq_s64_f64(nd);  // nd is an exact integer
  const int64x2_t n1 = vshrq_n_s64(n, 1);
  const int64x2_t n2 = vsubq_s64(n, n1);
  const int64x2_t bias = vdupq_n_s64(1023);
  const float64x2_t scale1 = vreinterpretq_f64_s64(vshlq_n_s64(vaddq_s64(n1, bias), 52));
  const float64x2_t scale2 = vreinterpretq_f64_s64(vshlq_n_s64(vaddq_s64(n2, bias), 52));
  float64x2_t result = vmulq_f64(vmulq_f64(p, scale1), scale2);
  result = vbslq_f64(vcgtq_f64(x, vdupq_n_f64(tmath::kFastExpOverflow)),
                     vdupq_n_f64(std::numeric_limits<double>::infinity()), result);
  result = vbslq_f64(vcltq_f64(x, vdupq_n_f64(tmath::kFastExpUnderflow)), vdupq_n_f64(0.0),
                     result);
  result = vbslq_f64(vceqq_f64(x, x), result, x);
  return result;
}

inline float64x2_t fast_tanh2(float64x2_t x) noexcept {
  const float64x2_t ax = vabsq_f64(x);
  const float64x2_t u = vaddq_f64(ax, ax);
  float64x2_t q = vdupq_n_f64(tmath::kFastExpm1Poly[0]);
  for (std::size_t i = 1; i < sizeof(tmath::kFastExpm1Poly) / sizeof(double); ++i) {
    q = vfmaq_f64(vdupq_n_f64(tmath::kFastExpm1Poly[i]), q, u);
  }
  const float64x2_t p_small = vmulq_f64(u, q);
  const float64x2_t p_big = vsubq_f64(fast_exp2(u), vdupq_n_f64(1.0));
  const float64x2_t p =
      vbslq_f64(vcltq_f64(ax, vdupq_n_f64(tmath::kFastTanhSmall)), p_small, p_big);
  float64x2_t r = vdivq_f64(p, vaddq_f64(p, vdupq_n_f64(2.0)));
  r = vbslq_f64(vcgeq_f64(ax, vdupq_n_f64(tmath::kFastTanhSaturate)), vdupq_n_f64(1.0), r);
  const uint64x2_t sign =
      vandq_u64(vreinterpretq_u64_f64(x), vdupq_n_u64(0x8000000000000000ULL));
  r = vreinterpretq_f64_u64(vorrq_u64(vreinterpretq_u64_f64(r), sign));  // r >= 0
  r = vbslq_f64(vceqq_f64(x, x), r, x);
  return r;
}

inline float64x2_t fast_sigmoid2(float64x2_t x) noexcept {
  const float64x2_t z = fast_exp2(vnegq_f64(vabsq_f64(x)));
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t denom = vaddq_f64(one, z);
  const float64x2_t pos = vdivq_f64(one, denom);
  const float64x2_t neg = vdivq_f64(z, denom);
  return vbslq_f64(vcgeq_f64(x, vdupq_n_f64(0.0)), pos, neg);
}

inline void lstm_gates_fast(const double* pre, std::size_t h, double* cell, double* hidden) {
  std::size_t j = 0;
  for (; j + 2 <= h; j += 2) {
    const float64x2_t gi = fast_sigmoid2(vld1q_f64(pre + j));
    const float64x2_t gf = fast_sigmoid2(vld1q_f64(pre + h + j));
    const float64x2_t gg = fast_tanh2(vld1q_f64(pre + 2 * h + j));
    const float64x2_t go = fast_sigmoid2(vld1q_f64(pre + 3 * h + j));
    const float64x2_t ct = vfmaq_f64(vmulq_f64(gi, gg), gf, vld1q_f64(cell + j));
    vst1q_f64(cell + j, ct);
    vst1q_f64(hidden + j, vmulq_f64(go, fast_tanh2(ct)));
  }
  tmath::lstm_gates_fast_range(pre, h, j, cell, hidden);
}

inline void lstm_gates_cached_fast(const double* pre, std::size_t h, double* gi, double* gf,
                                   double* gg, double* go, double* ct, double* ctt, double* ht,
                                   double* cs, double* hs) {
  std::size_t j = 0;
  for (; j + 2 <= h; j += 2) {
    const float64x2_t vgi = fast_sigmoid2(vld1q_f64(pre + j));
    const float64x2_t vgf = fast_sigmoid2(vld1q_f64(pre + h + j));
    const float64x2_t vgg = fast_tanh2(vld1q_f64(pre + 2 * h + j));
    const float64x2_t vgo = fast_sigmoid2(vld1q_f64(pre + 3 * h + j));
    const float64x2_t vct = vfmaq_f64(vmulq_f64(vgi, vgg), vgf, vld1q_f64(cs + j));
    const float64x2_t vctt = fast_tanh2(vct);
    const float64x2_t vht = vmulq_f64(vgo, vctt);
    vst1q_f64(gi + j, vgi);
    vst1q_f64(gf + j, vgf);
    vst1q_f64(gg + j, vgg);
    vst1q_f64(go + j, vgo);
    vst1q_f64(ct + j, vct);
    vst1q_f64(ctt + j, vctt);
    vst1q_f64(ht + j, vht);
    vst1q_f64(cs + j, vct);
    vst1q_f64(hs + j, vht);
  }
  tmath::lstm_gates_cached_fast_range(pre, h, j, gi, gf, gg, go, ct, ctt, ht, cs, hs);
}

inline void fast_exp_n(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(out + i, fast_exp2(vld1q_f64(x + i)));
  for (; i < n; ++i) out[i] = tmath::fast_exp(x[i]);
}

inline void fast_tanh_n(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(out + i, fast_tanh2(vld1q_f64(x + i)));
  for (; i < n; ++i) out[i] = tmath::fast_tanh(x[i]);
}

inline void fast_sigmoid_n(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(out + i, fast_sigmoid2(vld1q_f64(x + i)));
  for (; i < n; ++i) out[i] = tmath::fast_sigmoid(x[i]);
}

}  // namespace goodones::nn::simd::neon_kernels

#endif  // aarch64 with NEON
