// Scalar reference kernels — the lane every vector lane must match bitwise.
//
// Included only by nn/simd.cpp, which is compiled with -ffp-contract=off so
// these loops are plain IEEE mul/add even if a toolchain enables FMA
// contraction globally. Accumulation is branchless (no zero-skip): adding an
// exact-zero product can only flip the sign of a zero partial sum, which no
// downstream comparison observes, and the straight-line loops are what lets
// the compiler autovectorize this lane too.
#pragma once

#include <cmath>
#include <cstddef>

#include "nn/kernels/transcendental.hpp"

namespace goodones::nn::simd::scalar_kernels {

/// Same sign-split formulation as nn::sigmoid (activations.hpp): one shared
/// definition (tmath::libm_sigmoid) keeps every lane's transcendental
/// arguments identical.
inline double sigmoid(double x) noexcept { return tmath::libm_sigmoid(x); }

inline void matmul_acc(const double* a, const double* b, double* out, std::size_t m,
                       std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = a_row[kk];
      const double* b_row = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
    }
  }
}

inline void matmul_bias(const double* a, const double* b, const double* bias, double* out,
                        std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    for (std::size_t j = 0; j < n; ++j) out_row[j] = 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = a_row[kk];
      const double* b_row = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
    }
    // Bias lands after the row's full k-accumulation: bit-identical to the
    // historical separate bias pass over a finished matmul.
    for (std::size_t j = 0; j < n; ++j) out_row[j] += bias[j];
  }
}

inline void matmul_ta_acc(const double* a, const double* b, double* out, std::size_t r,
                          std::size_t m, std::size_t n) {
  for (std::size_t kk = 0; kk < r; ++kk) {
    const double* a_row = a + kk * m;
    const double* b_row = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double aki = a_row[i];
      double* out_row = out + i * n;
      for (std::size_t j = 0; j < n; ++j) out_row[j] += aki * b_row[j];
    }
  }
}

inline void matmul_tb_acc(const double* a, const double* b, double* out, std::size_t m,
                          std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* b_row = b + j * k;
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b_row[kk];
      out_row[j] += sum;
    }
  }
}

inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

inline void lstm_gates(const double* pre, std::size_t h, double* cell, double* hidden) {
  tmath::lstm_gates_range(pre, h, 0, cell, hidden);
}

inline void lstm_gates_cached(const double* pre, std::size_t h, double* gi, double* gf,
                              double* gg, double* go, double* ct, double* ctt, double* ht,
                              double* cs, double* hs) {
  tmath::lstm_gates_cached_range(pre, h, 0, gi, gf, gg, go, ct, ctt, ht, cs, hs);
}

// --- fast lane (Precision::kFast): polynomial transcendentals ---------------

inline void lstm_gates_fast(const double* pre, std::size_t h, double* cell, double* hidden) {
  tmath::lstm_gates_fast_range(pre, h, 0, cell, hidden);
}

inline void lstm_gates_cached_fast(const double* pre, std::size_t h, double* gi, double* gf,
                                   double* gg, double* go, double* ct, double* ctt, double* ht,
                                   double* cs, double* hs) {
  tmath::lstm_gates_cached_fast_range(pre, h, 0, gi, gf, gg, go, ct, ctt, ht, cs, hs);
}

inline void fast_exp_n(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = tmath::fast_exp(x[i]);
}

inline void fast_tanh_n(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = tmath::fast_tanh(x[i]);
}

inline void fast_sigmoid_n(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = tmath::fast_sigmoid(x[i]);
}

inline void matmul_acc_f32w(const double* a, const float* b, double* out, std::size_t m,
                            std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = a_row[kk];
      const float* b_row = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) out_row[j] += aik * static_cast<double>(b_row[j]);
    }
  }
}

inline void matmul_bias_f32w(const double* a, const float* b, const float* bias, double* out,
                             std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    for (std::size_t j = 0; j < n; ++j) out_row[j] = 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = a_row[kk];
      const float* b_row = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) out_row[j] += aik * static_cast<double>(b_row[j]);
    }
    for (std::size_t j = 0; j < n; ++j) out_row[j] += static_cast<double>(bias[j]);
  }
}

}  // namespace goodones::nn::simd::scalar_kernels
