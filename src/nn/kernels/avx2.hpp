// AVX2 kernel lane. Included only by nn/simd.cpp.
//
// Compiled via per-function `target("avx2")` attributes so the rest of the
// binary keeps the baseline ISA and the lane can be selected at runtime.
// Bitwise parity with the scalar lane is a hard contract here:
//   - multiplies and adds stay separate (_mm256_mul_pd + _mm256_add_pd,
//     never _mm256_fmadd_pd),
//   - every output element's partial sums arrive in the same order as the
//     scalar loops (vector lanes only ever parallelize independent output
//     elements),
//   - exp/tanh go through scalar libm per lane; only the IEEE
//     correctly-rounded surrounding arithmetic (div, mul, add) vectorizes.
#pragma once

#if defined(__x86_64__) && defined(__GNUC__) && !defined(GOODONES_SIMD_NO_AVX2)
#define GOODONES_SIMD_HAS_AVX2 1

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "nn/kernels/scalar.hpp"
#include "nn/kernels/transcendental.hpp"

namespace goodones::nn::simd::avx2_kernels {

#define GOODONES_AVX2 __attribute__((target("avx2")))
// The fast-math lane is allowed (required, for cross-lane bitwise identity
// with the scalar fast kernels' std::fma) to use fused multiply-add, so its
// kernels carry the fma target on top of avx2. isa_runnable gates the whole
// AVX2 table on both cpuid bits.
#define GOODONES_AVX2_FMA __attribute__((target("avx2,fma")))

/// 4-lane sigmoid matching the scalar sign-split form bit for bit: the exp
/// argument is -|x| in both branches (identical to -x for x >= 0 and to x
/// for x < 0), so one scalar-exp call per lane serves both, and the final
/// select picks 1/(1+z) vs z/(1+z) exactly as the scalar branch does.
GOODONES_AVX2 inline __m256d sigmoid4(__m256d x) noexcept {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, x);
  alignas(32) double zbuf[4];
  tmath::libm_exp_neg_abs(lanes, zbuf, 4);
  const __m256d z = _mm256_load_pd(zbuf);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d denom = _mm256_add_pd(one, z);
  const __m256d pos = _mm256_div_pd(one, denom);
  const __m256d neg = _mm256_div_pd(z, denom);
  const __m256d ge = _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_GE_OQ);
  return _mm256_blendv_pd(neg, pos, ge);
}

GOODONES_AVX2 inline __m256d tanh4(__m256d x) noexcept {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, x);
  tmath::libm_tanh_inplace(lanes, 4);
  return _mm256_load_pd(lanes);
}

GOODONES_AVX2 inline void matmul_acc(const double* a, const double* b, double* out,
                                     std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    // Register-blocked columns: four accumulators live across the whole k
    // loop, so out traffic drops k-fold while each element still sums its
    // products in ascending k order.
    for (; j + 16 <= n; j += 16) {
      __m256d acc0 = _mm256_loadu_pd(out_row + j);
      __m256d acc1 = _mm256_loadu_pd(out_row + j + 4);
      __m256d acc2 = _mm256_loadu_pd(out_row + j + 8);
      __m256d acc3 = _mm256_loadu_pd(out_row + j + 12);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        const double* b_row = b + kk * n + j;
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(va, _mm256_loadu_pd(b_row)));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(va, _mm256_loadu_pd(b_row + 4)));
        acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(va, _mm256_loadu_pd(b_row + 8)));
        acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(va, _mm256_loadu_pd(b_row + 12)));
      }
      _mm256_storeu_pd(out_row + j, acc0);
      _mm256_storeu_pd(out_row + j + 4, acc1);
      _mm256_storeu_pd(out_row + j + 8, acc2);
      _mm256_storeu_pd(out_row + j + 12, acc3);
    }
    for (; j + 4 <= n; j += 4) {
      __m256d acc = _mm256_loadu_pd(out_row + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, _mm256_loadu_pd(b + kk * n + j)));
      }
      _mm256_storeu_pd(out_row + j, acc);
    }
    for (; j < n; ++j) {
      double sum = out_row[j];
      for (std::size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b[kk * n + j];
      out_row[j] = sum;
    }
  }
}

GOODONES_AVX2 inline void matmul_bias(const double* a, const double* b, const double* bias,
                                      double* out, std::size_t m, std::size_t k,
                                      std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        const double* b_row = b + kk * n + j;
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(va, _mm256_loadu_pd(b_row)));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(va, _mm256_loadu_pd(b_row + 4)));
        acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(va, _mm256_loadu_pd(b_row + 8)));
        acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(va, _mm256_loadu_pd(b_row + 12)));
      }
      _mm256_storeu_pd(out_row + j, _mm256_add_pd(acc0, _mm256_loadu_pd(bias + j)));
      _mm256_storeu_pd(out_row + j + 4, _mm256_add_pd(acc1, _mm256_loadu_pd(bias + j + 4)));
      _mm256_storeu_pd(out_row + j + 8, _mm256_add_pd(acc2, _mm256_loadu_pd(bias + j + 8)));
      _mm256_storeu_pd(out_row + j + 12, _mm256_add_pd(acc3, _mm256_loadu_pd(bias + j + 12)));
    }
    for (; j + 4 <= n; j += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, _mm256_loadu_pd(b + kk * n + j)));
      }
      _mm256_storeu_pd(out_row + j, _mm256_add_pd(acc, _mm256_loadu_pd(bias + j)));
    }
    for (; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b[kk * n + j];
      out_row[j] = sum + bias[j];
    }
  }
}

GOODONES_AVX2 inline void matmul_ta_acc(const double* a, const double* b, double* out,
                                        std::size_t r, std::size_t m, std::size_t n) {
  for (std::size_t kk = 0; kk < r; ++kk) {
    const double* a_row = a + kk * m;
    const double* b_row = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const __m256d va = _mm256_set1_pd(a_row[i]);
      double* out_row = out + i * n;
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(b_row + j));
        _mm256_storeu_pd(out_row + j, _mm256_add_pd(_mm256_loadu_pd(out_row + j), prod));
      }
      for (; j < n; ++j) out_row[j] += a_row[i] * b_row[j];
    }
  }
}

GOODONES_AVX2 inline void matmul_tb_acc(const double* a, const double* b, double* out,
                                        std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    // Four dot products at once, one per lane; each lane's sum still grows
    // in ascending k order, exactly like one scalar dot product.
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + j * k;
      const double* b1 = b + (j + 1) * k;
      const double* b2 = b + (j + 2) * k;
      const double* b3 = b + (j + 3) * k;
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        const __m256d vb = _mm256_set_pd(b3[kk], b2[kk], b1[kk], b0[kk]);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
      }
      _mm256_storeu_pd(out_row + j, _mm256_add_pd(_mm256_loadu_pd(out_row + j), acc));
    }
    for (; j < n; ++j) {
      const double* b_row = b + j * k;
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b_row[kk];
      out_row[j] += sum;
    }
  }
}

GOODONES_AVX2 inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

GOODONES_AVX2 inline void lstm_gates(const double* pre, std::size_t h, double* cell,
                                     double* hidden) {
  std::size_t j = 0;
  for (; j + 4 <= h; j += 4) {
    const __m256d gi = sigmoid4(_mm256_loadu_pd(pre + j));
    const __m256d gf = sigmoid4(_mm256_loadu_pd(pre + h + j));
    const __m256d gg = tanh4(_mm256_loadu_pd(pre + 2 * h + j));
    const __m256d go = sigmoid4(_mm256_loadu_pd(pre + 3 * h + j));
    const __m256d ct =
        _mm256_add_pd(_mm256_mul_pd(gf, _mm256_loadu_pd(cell + j)), _mm256_mul_pd(gi, gg));
    _mm256_storeu_pd(cell + j, ct);
    _mm256_storeu_pd(hidden + j, _mm256_mul_pd(go, tanh4(ct)));
  }
  tmath::lstm_gates_range(pre, h, j, cell, hidden);
}

GOODONES_AVX2 inline void lstm_gates_cached(const double* pre, std::size_t h, double* gi,
                                            double* gf, double* gg, double* go, double* ct,
                                            double* ctt, double* ht, double* cs, double* hs) {
  std::size_t j = 0;
  for (; j + 4 <= h; j += 4) {
    const __m256d vgi = sigmoid4(_mm256_loadu_pd(pre + j));
    const __m256d vgf = sigmoid4(_mm256_loadu_pd(pre + h + j));
    const __m256d vgg = tanh4(_mm256_loadu_pd(pre + 2 * h + j));
    const __m256d vgo = sigmoid4(_mm256_loadu_pd(pre + 3 * h + j));
    const __m256d vct =
        _mm256_add_pd(_mm256_mul_pd(vgf, _mm256_loadu_pd(cs + j)), _mm256_mul_pd(vgi, vgg));
    const __m256d vctt = tanh4(vct);
    const __m256d vht = _mm256_mul_pd(vgo, vctt);
    _mm256_storeu_pd(gi + j, vgi);
    _mm256_storeu_pd(gf + j, vgf);
    _mm256_storeu_pd(gg + j, vgg);
    _mm256_storeu_pd(go + j, vgo);
    _mm256_storeu_pd(ct + j, vct);
    _mm256_storeu_pd(ctt + j, vctt);
    _mm256_storeu_pd(ht + j, vht);
    _mm256_storeu_pd(cs + j, vct);
    _mm256_storeu_pd(hs + j, vht);
  }
  tmath::lstm_gates_cached_range(pre, h, j, gi, gf, gg, go, ct, ctt, ht, cs, hs);
}

GOODONES_AVX2 inline void matmul_acc_f32w(const double* a, const float* b, double* out,
                                          std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256d acc = _mm256_loadu_pd(out_row + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        const __m256d vb = _mm256_cvtps_pd(_mm_loadu_ps(b + kk * n + j));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
      }
      _mm256_storeu_pd(out_row + j, acc);
    }
    for (; j < n; ++j) {
      double sum = out_row[j];
      for (std::size_t kk = 0; kk < k; ++kk) {
        sum += a_row[kk] * static_cast<double>(b[kk * n + j]);
      }
      out_row[j] = sum;
    }
  }
}

GOODONES_AVX2 inline void matmul_bias_f32w(const double* a, const float* b, const float* bias,
                                           double* out, std::size_t m, std::size_t k,
                                           std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        const __m256d vb = _mm256_cvtps_pd(_mm_loadu_ps(b + kk * n + j));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
      }
      const __m256d vbias = _mm256_cvtps_pd(_mm_loadu_ps(bias + j));
      _mm256_storeu_pd(out_row + j, _mm256_add_pd(acc, vbias));
    }
    for (; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        sum += a_row[kk] * static_cast<double>(b[kk * n + j]);
      }
      out_row[j] = sum + static_cast<double>(bias[j]);
    }
  }
}

// --- fast lane (Precision::kFast): 4-wide polynomial transcendentals -------
//
// Same operation sequence as tmath::fast_exp/fast_tanh/fast_sigmoid — clamp,
// shifter-trick reduction, Horner-with-fma core, two-step 2^n scaling, then
// overflow/underflow/NaN selects in that order — so the four lanes land
// bitwise identical to the scalar fast lane.

GOODONES_AVX2_FMA inline __m256d fast_exp4(__m256d x) noexcept {
  __m256d xc = _mm256_min_pd(x, _mm256_set1_pd(tmath::kFastExpHiClamp));
  xc = _mm256_max_pd(xc, _mm256_set1_pd(tmath::kFastExpLoClamp));
  const __m256d shifter = _mm256_set1_pd(tmath::kFastExpShifter);
  const __m256d nd = _mm256_sub_pd(
      _mm256_fmadd_pd(xc, _mm256_set1_pd(tmath::kFastExpLog2e), shifter), shifter);
  __m256d r = _mm256_fmadd_pd(nd, _mm256_set1_pd(-tmath::kFastExpLn2Hi), xc);
  r = _mm256_fmadd_pd(nd, _mm256_set1_pd(-tmath::kFastExpLn2Lo), r);
  __m256d p = _mm256_set1_pd(tmath::kFastExpPoly[0]);
  for (std::size_t i = 1; i < sizeof(tmath::kFastExpPoly) / sizeof(double); ++i) {
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(tmath::kFastExpPoly[i]));
  }
  // Two-step 2^n from the (exact-integer) nd: n fits in int32 after the
  // clamp, and the halves' floor division matches the scalar n >> 1.
  const __m128i n32 = _mm256_cvtpd_epi32(nd);
  const __m128i n1 = _mm_srai_epi32(n32, 1);
  const __m128i n2 = _mm_sub_epi32(n32, n1);
  const __m256i bias = _mm256_set1_epi64x(1023);
  const __m256d scale1 = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_add_epi64(_mm256_cvtepi32_epi64(n1), bias), 52));
  const __m256d scale2 = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_add_epi64(_mm256_cvtepi32_epi64(n2), bias), 52));
  __m256d result = _mm256_mul_pd(_mm256_mul_pd(p, scale1), scale2);
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  result = _mm256_blendv_pd(
      result, inf, _mm256_cmp_pd(x, _mm256_set1_pd(tmath::kFastExpOverflow), _CMP_GT_OQ));
  result = _mm256_blendv_pd(
      result, _mm256_setzero_pd(),
      _mm256_cmp_pd(x, _mm256_set1_pd(tmath::kFastExpUnderflow), _CMP_LT_OQ));
  result = _mm256_blendv_pd(result, x, _mm256_cmp_pd(x, x, _CMP_UNORD_Q));
  return result;
}

GOODONES_AVX2_FMA inline __m256d fast_tanh4(__m256d x) noexcept {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d ax = _mm256_andnot_pd(sign_mask, x);
  const __m256d u = _mm256_add_pd(ax, ax);
  __m256d q = _mm256_set1_pd(tmath::kFastExpm1Poly[0]);
  for (std::size_t i = 1; i < sizeof(tmath::kFastExpm1Poly) / sizeof(double); ++i) {
    q = _mm256_fmadd_pd(q, u, _mm256_set1_pd(tmath::kFastExpm1Poly[i]));
  }
  const __m256d p_small = _mm256_mul_pd(u, q);
  const __m256d p_big = _mm256_sub_pd(fast_exp4(u), _mm256_set1_pd(1.0));
  const __m256d small =
      _mm256_cmp_pd(ax, _mm256_set1_pd(tmath::kFastTanhSmall), _CMP_LT_OQ);
  const __m256d p = _mm256_blendv_pd(p_big, p_small, small);
  __m256d r = _mm256_div_pd(p, _mm256_add_pd(p, _mm256_set1_pd(2.0)));
  r = _mm256_blendv_pd(
      r, _mm256_set1_pd(1.0),
      _mm256_cmp_pd(ax, _mm256_set1_pd(tmath::kFastTanhSaturate), _CMP_GE_OQ));
  r = _mm256_or_pd(r, _mm256_and_pd(sign_mask, x));  // r >= 0: OR == copysign
  r = _mm256_blendv_pd(r, x, _mm256_cmp_pd(x, x, _CMP_UNORD_Q));
  return r;
}

GOODONES_AVX2_FMA inline __m256d fast_sigmoid4(__m256d x) noexcept {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d z = fast_exp4(_mm256_or_pd(_mm256_andnot_pd(sign_mask, x), sign_mask));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d denom = _mm256_add_pd(one, z);
  const __m256d pos = _mm256_div_pd(one, denom);
  const __m256d neg = _mm256_div_pd(z, denom);
  const __m256d ge = _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_GE_OQ);
  return _mm256_blendv_pd(neg, pos, ge);
}

GOODONES_AVX2_FMA inline void lstm_gates_fast(const double* pre, std::size_t h, double* cell,
                                              double* hidden) {
  std::size_t j = 0;
  for (; j + 4 <= h; j += 4) {
    const __m256d gi = fast_sigmoid4(_mm256_loadu_pd(pre + j));
    const __m256d gf = fast_sigmoid4(_mm256_loadu_pd(pre + h + j));
    const __m256d gg = fast_tanh4(_mm256_loadu_pd(pre + 2 * h + j));
    const __m256d go = fast_sigmoid4(_mm256_loadu_pd(pre + 3 * h + j));
    const __m256d ct = _mm256_fmadd_pd(gf, _mm256_loadu_pd(cell + j), _mm256_mul_pd(gi, gg));
    _mm256_storeu_pd(cell + j, ct);
    _mm256_storeu_pd(hidden + j, _mm256_mul_pd(go, fast_tanh4(ct)));
  }
  tmath::lstm_gates_fast_range(pre, h, j, cell, hidden);
}

GOODONES_AVX2_FMA inline void lstm_gates_cached_fast(const double* pre, std::size_t h,
                                                     double* gi, double* gf, double* gg,
                                                     double* go, double* ct, double* ctt,
                                                     double* ht, double* cs, double* hs) {
  std::size_t j = 0;
  for (; j + 4 <= h; j += 4) {
    const __m256d vgi = fast_sigmoid4(_mm256_loadu_pd(pre + j));
    const __m256d vgf = fast_sigmoid4(_mm256_loadu_pd(pre + h + j));
    const __m256d vgg = fast_tanh4(_mm256_loadu_pd(pre + 2 * h + j));
    const __m256d vgo = fast_sigmoid4(_mm256_loadu_pd(pre + 3 * h + j));
    const __m256d vct = _mm256_fmadd_pd(vgf, _mm256_loadu_pd(cs + j), _mm256_mul_pd(vgi, vgg));
    const __m256d vctt = fast_tanh4(vct);
    const __m256d vht = _mm256_mul_pd(vgo, vctt);
    _mm256_storeu_pd(gi + j, vgi);
    _mm256_storeu_pd(gf + j, vgf);
    _mm256_storeu_pd(gg + j, vgg);
    _mm256_storeu_pd(go + j, vgo);
    _mm256_storeu_pd(ct + j, vct);
    _mm256_storeu_pd(ctt + j, vctt);
    _mm256_storeu_pd(ht + j, vht);
    _mm256_storeu_pd(cs + j, vct);
    _mm256_storeu_pd(hs + j, vht);
  }
  tmath::lstm_gates_cached_fast_range(pre, h, j, gi, gf, gg, go, ct, ctt, ht, cs, hs);
}

GOODONES_AVX2_FMA inline void fast_exp_n(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(out + i, fast_exp4(_mm256_loadu_pd(x + i)));
  for (; i < n; ++i) out[i] = tmath::fast_exp(x[i]);
}

GOODONES_AVX2_FMA inline void fast_tanh_n(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(out + i, fast_tanh4(_mm256_loadu_pd(x + i)));
  for (; i < n; ++i) out[i] = tmath::fast_tanh(x[i]);
}

GOODONES_AVX2_FMA inline void fast_sigmoid_n(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(out + i, fast_sigmoid4(_mm256_loadu_pd(x + i)));
  for (; i < n; ++i) out[i] = tmath::fast_sigmoid(x[i]);
}

#undef GOODONES_AVX2
#undef GOODONES_AVX2_FMA

}  // namespace goodones::nn::simd::avx2_kernels

#endif  // x86-64 gcc/clang
