// AVX2 kernel lane. Included only by nn/simd.cpp.
//
// Compiled via per-function `target("avx2")` attributes so the rest of the
// binary keeps the baseline ISA and the lane can be selected at runtime.
// Bitwise parity with the scalar lane is a hard contract here:
//   - multiplies and adds stay separate (_mm256_mul_pd + _mm256_add_pd,
//     never _mm256_fmadd_pd),
//   - every output element's partial sums arrive in the same order as the
//     scalar loops (vector lanes only ever parallelize independent output
//     elements),
//   - exp/tanh go through scalar libm per lane; only the IEEE
//     correctly-rounded surrounding arithmetic (div, mul, add) vectorizes.
#pragma once

#if defined(__x86_64__) && defined(__GNUC__) && !defined(GOODONES_SIMD_NO_AVX2)
#define GOODONES_SIMD_HAS_AVX2 1

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "nn/kernels/scalar.hpp"

namespace goodones::nn::simd::avx2_kernels {

#define GOODONES_AVX2 __attribute__((target("avx2")))

/// 4-lane sigmoid matching the scalar sign-split form bit for bit: the exp
/// argument is -|x| in both branches (identical to -x for x >= 0 and to x
/// for x < 0), so one scalar-exp call per lane serves both, and the final
/// select picks 1/(1+z) vs z/(1+z) exactly as the scalar branch does.
GOODONES_AVX2 inline __m256d sigmoid4(__m256d x) noexcept {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, x);
  alignas(32) double zbuf[4];
  for (int l = 0; l < 4; ++l) zbuf[l] = std::exp(-std::fabs(lanes[l]));
  const __m256d z = _mm256_load_pd(zbuf);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d denom = _mm256_add_pd(one, z);
  const __m256d pos = _mm256_div_pd(one, denom);
  const __m256d neg = _mm256_div_pd(z, denom);
  const __m256d ge = _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_GE_OQ);
  return _mm256_blendv_pd(neg, pos, ge);
}

GOODONES_AVX2 inline __m256d tanh4(__m256d x) noexcept {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, x);
  for (int l = 0; l < 4; ++l) lanes[l] = std::tanh(lanes[l]);
  return _mm256_load_pd(lanes);
}

GOODONES_AVX2 inline void matmul_acc(const double* a, const double* b, double* out,
                                     std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    // Register-blocked columns: four accumulators live across the whole k
    // loop, so out traffic drops k-fold while each element still sums its
    // products in ascending k order.
    for (; j + 16 <= n; j += 16) {
      __m256d acc0 = _mm256_loadu_pd(out_row + j);
      __m256d acc1 = _mm256_loadu_pd(out_row + j + 4);
      __m256d acc2 = _mm256_loadu_pd(out_row + j + 8);
      __m256d acc3 = _mm256_loadu_pd(out_row + j + 12);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        const double* b_row = b + kk * n + j;
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(va, _mm256_loadu_pd(b_row)));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(va, _mm256_loadu_pd(b_row + 4)));
        acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(va, _mm256_loadu_pd(b_row + 8)));
        acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(va, _mm256_loadu_pd(b_row + 12)));
      }
      _mm256_storeu_pd(out_row + j, acc0);
      _mm256_storeu_pd(out_row + j + 4, acc1);
      _mm256_storeu_pd(out_row + j + 8, acc2);
      _mm256_storeu_pd(out_row + j + 12, acc3);
    }
    for (; j + 4 <= n; j += 4) {
      __m256d acc = _mm256_loadu_pd(out_row + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, _mm256_loadu_pd(b + kk * n + j)));
      }
      _mm256_storeu_pd(out_row + j, acc);
    }
    for (; j < n; ++j) {
      double sum = out_row[j];
      for (std::size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b[kk * n + j];
      out_row[j] = sum;
    }
  }
}

GOODONES_AVX2 inline void matmul_bias(const double* a, const double* b, const double* bias,
                                      double* out, std::size_t m, std::size_t k,
                                      std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        const double* b_row = b + kk * n + j;
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(va, _mm256_loadu_pd(b_row)));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(va, _mm256_loadu_pd(b_row + 4)));
        acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(va, _mm256_loadu_pd(b_row + 8)));
        acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(va, _mm256_loadu_pd(b_row + 12)));
      }
      _mm256_storeu_pd(out_row + j, _mm256_add_pd(acc0, _mm256_loadu_pd(bias + j)));
      _mm256_storeu_pd(out_row + j + 4, _mm256_add_pd(acc1, _mm256_loadu_pd(bias + j + 4)));
      _mm256_storeu_pd(out_row + j + 8, _mm256_add_pd(acc2, _mm256_loadu_pd(bias + j + 8)));
      _mm256_storeu_pd(out_row + j + 12, _mm256_add_pd(acc3, _mm256_loadu_pd(bias + j + 12)));
    }
    for (; j + 4 <= n; j += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, _mm256_loadu_pd(b + kk * n + j)));
      }
      _mm256_storeu_pd(out_row + j, _mm256_add_pd(acc, _mm256_loadu_pd(bias + j)));
    }
    for (; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b[kk * n + j];
      out_row[j] = sum + bias[j];
    }
  }
}

GOODONES_AVX2 inline void matmul_ta_acc(const double* a, const double* b, double* out,
                                        std::size_t r, std::size_t m, std::size_t n) {
  for (std::size_t kk = 0; kk < r; ++kk) {
    const double* a_row = a + kk * m;
    const double* b_row = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const __m256d va = _mm256_set1_pd(a_row[i]);
      double* out_row = out + i * n;
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(b_row + j));
        _mm256_storeu_pd(out_row + j, _mm256_add_pd(_mm256_loadu_pd(out_row + j), prod));
      }
      for (; j < n; ++j) out_row[j] += a_row[i] * b_row[j];
    }
  }
}

GOODONES_AVX2 inline void matmul_tb_acc(const double* a, const double* b, double* out,
                                        std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    // Four dot products at once, one per lane; each lane's sum still grows
    // in ascending k order, exactly like one scalar dot product.
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + j * k;
      const double* b1 = b + (j + 1) * k;
      const double* b2 = b + (j + 2) * k;
      const double* b3 = b + (j + 3) * k;
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        const __m256d vb = _mm256_set_pd(b3[kk], b2[kk], b1[kk], b0[kk]);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
      }
      _mm256_storeu_pd(out_row + j, _mm256_add_pd(_mm256_loadu_pd(out_row + j), acc));
    }
    for (; j < n; ++j) {
      const double* b_row = b + j * k;
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) sum += a_row[kk] * b_row[kk];
      out_row[j] += sum;
    }
  }
}

GOODONES_AVX2 inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

GOODONES_AVX2 inline void lstm_gates(const double* pre, std::size_t h, double* cell,
                                     double* hidden) {
  std::size_t j = 0;
  for (; j + 4 <= h; j += 4) {
    const __m256d gi = sigmoid4(_mm256_loadu_pd(pre + j));
    const __m256d gf = sigmoid4(_mm256_loadu_pd(pre + h + j));
    const __m256d gg = tanh4(_mm256_loadu_pd(pre + 2 * h + j));
    const __m256d go = sigmoid4(_mm256_loadu_pd(pre + 3 * h + j));
    const __m256d ct =
        _mm256_add_pd(_mm256_mul_pd(gf, _mm256_loadu_pd(cell + j)), _mm256_mul_pd(gi, gg));
    _mm256_storeu_pd(cell + j, ct);
    _mm256_storeu_pd(hidden + j, _mm256_mul_pd(go, tanh4(ct)));
  }
  for (; j < h; ++j) {
    const double gi = scalar_kernels::sigmoid(pre[j]);
    const double gf = scalar_kernels::sigmoid(pre[h + j]);
    const double gg = std::tanh(pre[2 * h + j]);
    const double go = scalar_kernels::sigmoid(pre[3 * h + j]);
    const double ct = gf * cell[j] + gi * gg;
    cell[j] = ct;
    hidden[j] = go * std::tanh(ct);
  }
}

GOODONES_AVX2 inline void lstm_gates_cached(const double* pre, std::size_t h, double* gi,
                                            double* gf, double* gg, double* go, double* ct,
                                            double* ctt, double* ht, double* cs, double* hs) {
  std::size_t j = 0;
  for (; j + 4 <= h; j += 4) {
    const __m256d vgi = sigmoid4(_mm256_loadu_pd(pre + j));
    const __m256d vgf = sigmoid4(_mm256_loadu_pd(pre + h + j));
    const __m256d vgg = tanh4(_mm256_loadu_pd(pre + 2 * h + j));
    const __m256d vgo = sigmoid4(_mm256_loadu_pd(pre + 3 * h + j));
    const __m256d vct =
        _mm256_add_pd(_mm256_mul_pd(vgf, _mm256_loadu_pd(cs + j)), _mm256_mul_pd(vgi, vgg));
    const __m256d vctt = tanh4(vct);
    const __m256d vht = _mm256_mul_pd(vgo, vctt);
    _mm256_storeu_pd(gi + j, vgi);
    _mm256_storeu_pd(gf + j, vgf);
    _mm256_storeu_pd(gg + j, vgg);
    _mm256_storeu_pd(go + j, vgo);
    _mm256_storeu_pd(ct + j, vct);
    _mm256_storeu_pd(ctt + j, vctt);
    _mm256_storeu_pd(ht + j, vht);
    _mm256_storeu_pd(cs + j, vct);
    _mm256_storeu_pd(hs + j, vht);
  }
  for (; j < h; ++j) {
    gi[j] = scalar_kernels::sigmoid(pre[j]);
    gf[j] = scalar_kernels::sigmoid(pre[h + j]);
    gg[j] = std::tanh(pre[2 * h + j]);
    go[j] = scalar_kernels::sigmoid(pre[3 * h + j]);
    ct[j] = gf[j] * cs[j] + gi[j] * gg[j];
    ctt[j] = std::tanh(ct[j]);
    ht[j] = go[j] * ctt[j];
    cs[j] = ct[j];
    hs[j] = ht[j];
  }
}

GOODONES_AVX2 inline void matmul_acc_f32w(const double* a, const float* b, double* out,
                                          std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256d acc = _mm256_loadu_pd(out_row + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        const __m256d vb = _mm256_cvtps_pd(_mm_loadu_ps(b + kk * n + j));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
      }
      _mm256_storeu_pd(out_row + j, acc);
    }
    for (; j < n; ++j) {
      double sum = out_row[j];
      for (std::size_t kk = 0; kk < k; ++kk) {
        sum += a_row[kk] * static_cast<double>(b[kk * n + j]);
      }
      out_row[j] = sum;
    }
  }
}

GOODONES_AVX2 inline void matmul_bias_f32w(const double* a, const float* b, const float* bias,
                                           double* out, std::size_t m, std::size_t k,
                                           std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a + i * k;
    double* out_row = out + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(a_row[kk]);
        const __m256d vb = _mm256_cvtps_pd(_mm_loadu_ps(b + kk * n + j));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
      }
      const __m256d vbias = _mm256_cvtps_pd(_mm_loadu_ps(bias + j));
      _mm256_storeu_pd(out_row + j, _mm256_add_pd(acc, vbias));
    }
    for (; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        sum += a_row[kk] * static_cast<double>(b[kk * n + j]);
      }
      out_row[j] = sum + static_cast<double>(bias[j]);
    }
  }
}

#undef GOODONES_AVX2

}  // namespace goodones::nn::simd::avx2_kernels

#endif  // x86-64 gcc/clang
