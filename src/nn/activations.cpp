#include "nn/activations.hpp"

namespace goodones::nn {

Matrix tanh_matrix(Matrix m) noexcept {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (double& x : m.row(r)) x = tanh_act(x);
  }
  return m;
}

Matrix sigmoid_matrix(Matrix m) noexcept {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (double& x : m.row(r)) x = sigmoid(x);
  }
  return m;
}

Matrix relu_matrix(Matrix m) noexcept {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (double& x : m.row(r)) x = relu(x);
  }
  return m;
}

}  // namespace goodones::nn
