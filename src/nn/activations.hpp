// Scalar activation functions and their derivatives expressed in terms of
// the activation *output* (the form backpropagation needs when only the
// forward value was cached).
#pragma once

#include <cmath>

#include "nn/matrix.hpp"

namespace goodones::nn {

inline double sigmoid(double x) noexcept {
  // Split by sign to avoid overflow in exp for large |x|.
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

/// d sigmoid / dx given y = sigmoid(x).
inline double sigmoid_grad_from_output(double y) noexcept {
  return y * (1.0 - y);
}

inline double tanh_act(double x) noexcept {
  return std::tanh(x);
}

/// d tanh / dx given y = tanh(x).
inline double tanh_grad_from_output(double y) noexcept {
  return 1.0 - y * y;
}

inline double relu(double x) noexcept {
  return x > 0.0 ? x : 0.0;
}

/// d relu / dx given y = relu(x) (0 at the kink).
inline double relu_grad_from_output(double y) noexcept {
  return y > 0.0 ? 1.0 : 0.0;
}

/// Applies tanh element-wise to a matrix copy.
Matrix tanh_matrix(Matrix m) noexcept;

/// Applies sigmoid element-wise to a matrix copy.
Matrix sigmoid_matrix(Matrix m) noexcept;

/// Applies relu element-wise to a matrix copy.
Matrix relu_matrix(Matrix m) noexcept;

}  // namespace goodones::nn
