// Single-direction LSTM over a full sequence, with exact backpropagation
// through time that also yields gradients with respect to the *inputs*.
//
// Input gradients are load-bearing twice in this library: (1) MAD-GAN's
// DR-score inverts the generator by gradient descent in latent space, and
// (2) gradient-guided variants of the evasion attack need dPrediction/dInput.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"
#include "nn/param.hpp"
#include "nn/simd.hpp"

namespace goodones::nn {

class Lstm {
 public:
  /// Weights Xavier-initialized from `rng`; forget-gate bias starts at 1
  /// (the standard initialization that keeps early gradients flowing).
  Lstm(std::size_t input_dim, std::size_t hidden_dim, common::Rng& rng);

  std::size_t input_dim() const noexcept { return input_dim_; }
  std::size_t hidden_dim() const noexcept { return hidden_dim_; }

  /// Runs the sequence x (T x input_dim) from zero initial state and
  /// returns all hidden states (T x hidden_dim).
  Matrix forward(const Matrix& x) const;

  /// Per-sequence activation cache captured by forward_cached.
  struct Cache {
    Matrix input;      // T x D
    Matrix gate_i;     // T x H, post-sigmoid
    Matrix gate_f;     // T x H, post-sigmoid
    Matrix gate_g;     // T x H, post-tanh
    Matrix gate_o;     // T x H, post-sigmoid
    Matrix cell;       // T x H, c_t
    Matrix cell_tanh;  // T x H, tanh(c_t)
    Matrix hidden;     // T x H, h_t
  };

  Matrix forward_cached(const Matrix& x, Cache& cache) const;

  /// Snapshot of the recurrent (hidden, cell) state after consuming some
  /// prefix of a sequence. Candidate probes that share a prefix with a base
  /// window replay from the snapshot instead of from t = 0.
  struct PrefixState {
    std::size_t steps = 0;       ///< timesteps already consumed
    std::vector<double> hidden;  ///< H values
    std::vector<double> cell;    ///< H values
  };

  /// The zero state every sequence starts from.
  PrefixState initial_state() const;

  /// Advances `state` in place over all rows of `x` (the shared prefix).
  /// Bit-identical to the corresponding steps of forward().
  void advance(PrefixState& state, const Matrix& x) const;

  /// advance() that also appends a snapshot of the state after EVERY
  /// consumed row to `trail` (x.rows() entries). The per-position prefix
  /// cache in BiLstmForecaster replays greedy searches from these snapshots
  /// instead of re-advancing the prefix per probe batch; each snapshot is
  /// bit-identical to what advance() over that many rows produces.
  void advance_recording(PrefixState& state, const Matrix& x,
                         std::vector<PrefixState>& trail) const;

  /// Batched inference: B equal-length sequences, every one resuming from
  /// the same `start` snapshot at row `first_row` (rows before it are the
  /// shared prefix the snapshot already consumed). Per timestep the batch is
  /// processed as one packed (B x 4H) pre-activation GEMM. Returns the final
  /// hidden state of each sequence as rows of a (B x H) matrix —
  /// bit-identical to running forward() over each full sequence and taking
  /// the last row. first_row == rows() returns the snapshot replicated.
  /// Non-default `precision` selects an approximation lane (see
  /// run_batch_multi); the default stays bit-exact.
  Matrix run_batch(std::span<const Matrix> sequences, const PrefixState& start,
                   std::size_t first_row = 0,
                   Precision precision = Precision::kDouble) const;

  /// run_batch from the zero state (whole sequences, no shared prefix).
  Matrix run_batch(std::span<const Matrix> sequences) const;

  /// Generalization of run_batch where sequence i resumes from its OWN
  /// snapshot *starts[i] (all snapshots must have consumed `first_row`
  /// steps... or be the zero state with first_row == 0 semantics handled by
  /// the caller's plan). This is what lets one packed per-timestep GEMM span
  /// several prefix clusters at once: a cross-window campaign batch merges
  /// every cluster's tails into a single call. Bit-identical per sequence to
  /// run_batch over that sequence's own cluster. Precision::kMixed runs the
  /// projection/recurrent GEMMs against the float32 weight mirrors
  /// (sync_mixed_weights() first); Precision::kFast keeps the double GEMMs
  /// and swaps the gate transcendentals for the vectorized polynomial
  /// kernels (no weight mirrors needed). Both are approximation lanes, not
  /// bit-stable against the kDouble reference.
  Matrix run_batch_multi(std::span<const Matrix* const> sequences,
                         std::span<const PrefixState* const> starts, std::size_t first_row,
                         Precision precision = Precision::kDouble) const;

  /// One LSTM step from the zero state over each row of `rows` (N x D);
  /// returns the (N x H) hidden states. Bit-identical to advance() over a
  /// single-row matrix per row — this batches the backward cell's one-step
  /// evaluation across every probe of a scoring batch.
  Matrix first_step_batch(const Matrix& rows,
                          Precision precision = Precision::kDouble) const;

  /// Refreshes the float32 weight mirrors Precision::kMixed consumes. Must
  /// be called after construction and again whenever the weights change
  /// (training step, parameter load) before the next kMixed run.
  void sync_mixed_weights();
  /// True once sync_mixed_weights() has populated mirrors of the current
  /// weight shapes.
  bool mixed_ready() const noexcept;

  /// Batched forward over B equal-length sequences from the zero state that
  /// also fills one scalar-compatible Cache per sequence, so each sequence
  /// can still be backpropagated individually with backward(). The input
  /// projection of the whole batch runs as one packed GEMM per call and the
  /// recurrent step as one (B x 4H) GEMM per timestep. Outputs and caches
  /// are bit-identical to calling forward_cached() per sequence — this is
  /// what lets MAD-GAN batch its latent inversion across a request's
  /// windows without perturbing a single score. Precision::kFast swaps the
  /// gate transcendentals for the polynomial kernels (scoring-only callers;
  /// kMixed is not supported here).
  void forward_batch_cached(std::span<const Matrix> sequences, std::vector<Cache>& caches,
                            Precision precision = Precision::kDouble) const;

  /// Backpropagation through time. `grad_hidden` holds dLoss/dh_t for every
  /// timestep (T x hidden_dim; rows may be zero when only some steps feed
  /// the loss). Accumulates parameter gradients and returns dLoss/dx.
  Matrix backward(const Matrix& grad_hidden, const Cache& cache);

  /// Batched input-gradient-only BPTT over B cached same-length sequences:
  /// returns dLoss/dx per sequence WITHOUT touching parameter gradients
  /// (hence const). MAD-GAN's latent inversion only ever consumes dX — the
  /// parameter-gradient GEMMs backward() also runs are pure waste there,
  /// and skipping them plus batching the per-timestep recurrent transport
  /// (one (B x 4H) x Wh^T GEMM per step) is where the batched inversion's
  /// speedup comes from. Each returned dX is bit-identical to what
  /// backward() returns for that sequence.
  std::vector<Matrix> backward_input_batch(std::span<const Matrix> grad_hidden,
                                           std::span<const Cache> caches) const;

  ParamRefs parameters() noexcept { return {&w_x_, &w_h_, &b_}; }

  ParamBuffer& weight_input() noexcept { return w_x_; }
  ParamBuffer& weight_hidden() noexcept { return w_h_; }
  ParamBuffer& bias() noexcept { return b_; }
  const ParamBuffer& weight_input() const noexcept { return w_x_; }
  const ParamBuffer& weight_hidden() const noexcept { return w_h_; }
  const ParamBuffer& bias() const noexcept { return b_; }

 private:
  /// Shared body of advance/advance_recording (`trail` optional).
  void advance_impl(PrefixState& state, const Matrix& x,
                    std::vector<PrefixState>* trail) const;

  std::size_t input_dim_;
  std::size_t hidden_dim_;
  // Gate order within the fused 4H dimension: [input, forget, cell, output].
  ParamBuffer w_x_;  // D x 4H
  ParamBuffer w_h_;  // H x 4H
  ParamBuffer b_;    // 1 x 4H
  // float32 mirrors for Precision::kMixed (row-major, same layouts).
  std::vector<float> wx_f32_;
  std::vector<float> wh_f32_;
  std::vector<float> b_f32_;
};

/// Bidirectional LSTM: forward and backward passes over the sequence with
/// independent parameters; outputs are concatenated per timestep to
/// (T x 2*hidden_dim), matching the target model of Rubin-Falcone et al.
class BiLstm {
 public:
  BiLstm(std::size_t input_dim, std::size_t hidden_dim, common::Rng& rng);

  std::size_t input_dim() const noexcept { return fwd_.input_dim(); }
  std::size_t hidden_dim() const noexcept { return fwd_.hidden_dim(); }
  /// Output feature width (2 * hidden_dim).
  std::size_t output_dim() const noexcept { return 2 * fwd_.hidden_dim(); }

  Matrix forward(const Matrix& x) const;

  struct Cache {
    Lstm::Cache fwd;
    Lstm::Cache bwd;  // computed on the time-reversed input
  };

  Matrix forward_cached(const Matrix& x, Cache& cache) const;

  /// Batched final output state for B same-shape sequences: row i holds
  /// forward(sequences[i]).row(T - 1), i.e. the concatenation of the forward
  /// cell's state after all T steps and the backward cell's state after its
  /// first reversed step (which consumes only row T - 1). Rows
  /// [0, shared_prefix) must be identical across the batch: the forward cell
  /// consumes them once via a PrefixState snapshot and replays only the
  /// unshared tail per sequence. When shared_suffix >= 1 the last row is
  /// also shared and the backward step is computed once. Bit-identical to
  /// the scalar forward() path.
  Matrix final_states_batch(std::span<const Matrix> sequences,
                            std::size_t shared_prefix, std::size_t shared_suffix) const;

  /// `grad_output` is (T x 2H) w.r.t. the concatenated outputs.
  /// Returns dLoss/dx (T x input_dim).
  Matrix backward(const Matrix& grad_output, const Cache& cache);

  ParamRefs parameters();

  Lstm& forward_cell() noexcept { return fwd_; }
  Lstm& backward_cell() noexcept { return bwd_; }
  const Lstm& forward_cell() const noexcept { return fwd_; }
  const Lstm& backward_cell() const noexcept { return bwd_; }

 private:
  Lstm fwd_;
  Lstm bwd_;
};

/// Reverses the row (time) order of a sequence matrix.
Matrix reverse_time(const Matrix& x);

}  // namespace goodones::nn
