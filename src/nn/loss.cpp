#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace goodones::nn {

LossResult mse_loss(const Matrix& prediction, const Matrix& target) {
  GO_EXPECTS(prediction.same_shape(target));
  GO_EXPECTS(prediction.size() > 0);
  LossResult result;
  result.grad = Matrix(prediction.rows(), prediction.cols());
  const double inv_n = 1.0 / static_cast<double>(prediction.size());
  double sum = 0.0;
  for (std::size_t r = 0; r < prediction.rows(); ++r) {
    const auto p = prediction.row(r);
    const auto y = target.row(r);
    auto g = result.grad.row(r);
    for (std::size_t c = 0; c < p.size(); ++c) {
      const double diff = p[c] - y[c];
      sum += diff * diff;
      g[c] = 2.0 * diff * inv_n;
    }
  }
  result.value = sum * inv_n;
  return result;
}

LossResult bce_loss(const Matrix& prediction, const Matrix& target, double eps) {
  GO_EXPECTS(prediction.same_shape(target));
  GO_EXPECTS(prediction.size() > 0);
  GO_EXPECTS(eps > 0.0 && eps < 0.5);
  LossResult result;
  result.grad = Matrix(prediction.rows(), prediction.cols());
  const double inv_n = 1.0 / static_cast<double>(prediction.size());
  double sum = 0.0;
  for (std::size_t r = 0; r < prediction.rows(); ++r) {
    const auto p_row = prediction.row(r);
    const auto y_row = target.row(r);
    auto g = result.grad.row(r);
    for (std::size_t c = 0; c < p_row.size(); ++c) {
      const double p = std::clamp(p_row[c], eps, 1.0 - eps);
      const double y = y_row[c];
      sum += -(y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
      g[c] = (p - y) / (p * (1.0 - p)) * inv_n;
    }
  }
  result.value = sum * inv_n;
  return result;
}

}  // namespace goodones::nn
