// Loss functions returning both the scalar loss and the gradient with
// respect to the prediction, which is what the training loops consume.
#pragma once

#include "nn/matrix.hpp"

namespace goodones::nn {

struct LossResult {
  double value = 0.0;
  Matrix grad;  // dLoss/dPrediction, same shape as the prediction
};

/// Mean squared error over all elements: L = mean((pred - target)^2).
LossResult mse_loss(const Matrix& prediction, const Matrix& target);

/// Binary cross-entropy on probabilities in (0, 1); predictions are clamped
/// to [eps, 1-eps] for numerical safety. Targets must be in [0, 1].
LossResult bce_loss(const Matrix& prediction, const Matrix& target, double eps = 1e-7);

}  // namespace goodones::nn
