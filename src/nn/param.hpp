// Parameter storage shared by all layers.
//
// A ParamBuffer pairs a value matrix with its gradient accumulator. Layers
// own their buffers; optimizers receive non-owning pointers (Core Guidelines
// I.11 — ownership never transfers through the optimizer interface).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace goodones::nn {

struct ParamBuffer {
  Matrix value;
  Matrix grad;

  ParamBuffer() = default;
  ParamBuffer(std::size_t rows, std::size_t cols) : value(rows, cols), grad(rows, cols) {}

  void zero_grad() noexcept { grad.set_zero(); }

  /// Xavier/Glorot uniform initialization with explicit fan-in/out.
  void init_xavier(common::Rng& rng, std::size_t fan_in, std::size_t fan_out);

  /// Uniform init in [-bound, bound].
  void init_uniform(common::Rng& rng, double bound);
};

/// Non-owning list of a model's parameters, in a stable order. The optimizer
/// keys its per-parameter state on position in this list, so a model must
/// always report its buffers in the same order.
using ParamRefs = std::vector<ParamBuffer*>;

/// Total number of scalar parameters across buffers.
std::size_t parameter_count(const ParamRefs& params) noexcept;

/// Zeroes every gradient buffer.
void zero_all_grads(const ParamRefs& params) noexcept;

/// Global L2 norm of all gradients (for clipping / diagnostics).
double global_grad_norm(const ParamRefs& params) noexcept;

/// Scales all gradients so the global norm does not exceed max_norm.
void clip_global_grad_norm(const ParamRefs& params, double max_norm) noexcept;

}  // namespace goodones::nn
