// Binary serialization for matrices, parameter sets and the scalar stream
// primitives every persisted artifact in the library is built from. Used to
// persist trained models into the artifact cache (and the serving-path
// ModelRegistry) so repeated runs skip retraining.
//
// Stream format conventions, shared by every artifact writer in the repo:
// little-endian host order, length-prefixed strings and vectors, matrices
// as (rows, cols, row-major doubles). Malformed input always throws
// common::SerializationError and leaves the load target untouched.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/matrix.hpp"
#include "nn/param.hpp"

namespace goodones::nn {

// --- scalar stream primitives ----------------------------------------------

void write_u32(std::ostream& out, std::uint32_t v);
void write_u64(std::ostream& out, std::uint64_t v);
void write_f64(std::ostream& out, double v);
/// Length-prefixed (u32) raw bytes; no terminator.
void write_string(std::ostream& out, const std::string& s);
/// Length-prefixed (u64) doubles.
void write_f64_vector(std::ostream& out, const std::vector<double>& v);
/// Length-prefixed (u64) bytes.
void write_u8_vector(std::ostream& out, const std::vector<std::uint8_t>& v);

/// All readers throw common::SerializationError on truncated input.
/// `what` names the field being read for actionable error messages.
std::uint32_t read_u32(std::istream& in, const char* what = "u32");
std::uint64_t read_u64(std::istream& in, const char* what = "u64");
double read_f64(std::istream& in, const char* what = "f64");
std::string read_string(std::istream& in, const char* what = "string");
std::vector<double> read_f64_vector(std::istream& in, const char* what = "f64 vector");
std::vector<std::uint8_t> read_u8_vector(std::istream& in, const char* what = "u8 vector");

/// Reads a u32 and checks it against `expected`; mismatch throws
/// SerializationError naming `what` (magic/version/kind-tag guards).
void expect_u32(std::istream& in, std::uint32_t expected, const char* what);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
/// Chainable: feed the previous call's result as `seed` to checksum a file
/// in pieces. Artifact writers that frame whole blobs (the columnar
/// telemetry segments) append this over everything before the checksum
/// field so truncation and bit rot surface as typed SerializationErrors.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0) noexcept;

// --- matrices and parameter sets --------------------------------------------

/// Writes one matrix (dims + row-major doubles, little-endian host order).
void write_matrix(std::ostream& out, const Matrix& m);

/// Reads one matrix; throws common::SerializationError on malformed input.
Matrix read_matrix(std::istream& in);

/// Saves all parameter values (not gradients) to a file.
void save_parameters(const ParamRefs& params, const std::filesystem::path& path);

/// Loads values into existing buffers; shapes must match exactly.
/// Returns false (without modifying anything) if the file does not exist.
/// Throws common::SerializationError on shape or format mismatch.
bool load_parameters(const ParamRefs& params, const std::filesystem::path& path);

/// Streamed variants used by composite artifacts (forecaster + detector
/// bundles): parameter count, then each value matrix.
void write_parameters(std::ostream& out, const ParamRefs& params);
/// Reads into existing buffers; all-or-nothing (buffers untouched on throw).
void read_parameters(std::istream& in, const ParamRefs& params);

}  // namespace goodones::nn
