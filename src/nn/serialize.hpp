// Binary serialization for matrices and parameter sets. Used to persist
// trained models into the artifact cache so repeated bench runs skip
// retraining. Format: magic, version, then length-prefixed matrices.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "nn/matrix.hpp"
#include "nn/param.hpp"

namespace goodones::nn {

/// Writes one matrix (dims + row-major doubles, little-endian host order).
void write_matrix(std::ostream& out, const Matrix& m);

/// Reads one matrix; throws std::runtime_error on malformed input.
Matrix read_matrix(std::istream& in);

/// Saves all parameter values (not gradients) to a file.
void save_parameters(const ParamRefs& params, const std::filesystem::path& path);

/// Loads values into existing buffers; shapes must match exactly.
/// Returns false (without modifying anything) if the file does not exist.
/// Throws std::runtime_error on shape or format mismatch.
bool load_parameters(const ParamRefs& params, const std::filesystem::path& path);

}  // namespace goodones::nn
