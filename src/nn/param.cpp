#include "nn/param.hpp"

#include <cmath>

namespace goodones::nn {

void ParamBuffer::init_xavier(common::Rng& rng, std::size_t fan_in, std::size_t fan_out) {
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  init_uniform(rng, bound);
}

void ParamBuffer::init_uniform(common::Rng& rng, double bound) {
  for (std::size_t r = 0; r < value.rows(); ++r) {
    for (double& x : value.row(r)) x = rng.uniform(-bound, bound);
  }
  grad.set_zero();
}

std::size_t parameter_count(const ParamRefs& params) noexcept {
  std::size_t n = 0;
  for (const auto* p : params) n += p->value.size();
  return n;
}

void zero_all_grads(const ParamRefs& params) noexcept {
  for (auto* p : params) p->zero_grad();
}

double global_grad_norm(const ParamRefs& params) noexcept {
  double sum = 0.0;
  for (const auto* p : params) sum += p->grad.squared_norm();
  return std::sqrt(sum);
}

void clip_global_grad_norm(const ParamRefs& params, double max_norm) noexcept {
  const double norm = global_grad_norm(params);
  if (norm <= max_norm || norm == 0.0) return;
  const double scale = max_norm / norm;
  for (auto* p : params) p->grad *= scale;
}

}  // namespace goodones::nn
