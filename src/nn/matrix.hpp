// Dense row-major matrix used by the neural-network substrate.
//
// This is deliberately a small, explicit linear-algebra core (no expression
// templates, no BLAS dependency). The matmul variants needed by
// backpropagation (A*B, A^T*B, A*B^T) are provided directly instead of
// materializing transposes; their inner loops dispatch through the nn::simd
// kernel table (see nn/simd.hpp), whose vector lanes are bitwise-identical
// to the scalar lane, so callers never observe which lane ran.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace goodones::nn {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value);

  /// Construction from nested initializer list (row-major), for tests.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  /// Mutable/const view of a single row.
  std::span<double> row(std::size_t r) noexcept;
  std::span<const double> row(std::size_t r) const noexcept;

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  void fill(double value) noexcept;
  void set_zero() noexcept { fill(0.0); }

  /// Element-wise in-place operations. Shapes must match exactly.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar) noexcept;
  /// Hadamard (element-wise) product in place.
  Matrix& hadamard_inplace(const Matrix& other);

  Matrix transposed() const;

  /// Frobenius norm squared (sum of squares of all entries).
  double squared_norm() const noexcept;

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b. Shapes: (m x k) * (k x n) -> (m x n).
Matrix matmul(const Matrix& a, const Matrix& b);

/// out = a^T * b. Shapes: (k x m)^T * (k x n) -> (m x n).
Matrix matmul_trans_a(const Matrix& a, const Matrix& b);

/// out = a * b^T. Shapes: (m x k) * (n x k)^T -> (m x n).
Matrix matmul_trans_b(const Matrix& a, const Matrix& b);

/// out += a * b (accumulating variant; out must already be (m x n)).
void matmul_accumulate(const Matrix& a, const Matrix& b, Matrix& out);

/// out += a^T * b.
void matmul_trans_a_accumulate(const Matrix& a, const Matrix& b, Matrix& out);

/// out += a * b^T.
void matmul_trans_b_accumulate(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b with `bias` (1 x n) added to every output row. Batched
/// projection-with-bias: one call projects a whole packed batch through a
/// shared weight matrix (the batched LSTM input projection).
Matrix matmul_bias(const Matrix& a, const Matrix& b, const Matrix& bias);

/// Packs the same row range of B equal-shape matrices step-major: output row
/// (t * B + i) is blocks[i].row(first_row + t) for t in [0, num_rows). This
/// is the packed batch layout consumed by Lstm::run_batch — rows of one
/// timestep sit contiguously, so a single matmul over the packed matrix
/// projects every sequence's inputs at once and per-step processing streams
/// a contiguous (B x n) block.
Matrix pack_step_major(std::span<const Matrix> blocks, std::size_t first_row,
                       std::size_t num_rows);

/// pack_step_major over non-contiguous sequences (pointer span): the packed
/// batch of a prefix-cluster merge gathers members scattered across the
/// caller's storage without copying them into a temporary vector first.
Matrix pack_step_major(std::span<const Matrix* const> blocks, std::size_t first_row,
                       std::size_t num_rows);

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double scalar);

/// y = a*x + y over raw spans (vector axpy helper used by layer code).
void axpy(double a, std::span<const double> x, std::span<double> y);

}  // namespace goodones::nn
