#include "nn/serialize.hpp"

#include <array>
#include <fstream>
#include <limits>

#include "common/error.hpp"

namespace goodones::nn {

namespace {

constexpr std::uint32_t kMagic = 0x474F4E4E;  // "GONN"
constexpr std::uint32_t kVersion = 1;

using common::SerializationError;

[[noreturn]] void fail_truncated(const char* what) {
  throw SerializationError(std::string("artifact truncated while reading ") + what);
}

/// Caps on length prefixes: a corrupt length field must fail loudly
/// (SerializationError) instead of triggering a multi-gigabyte allocation
/// (std::bad_alloc). 2^26 doubles = 512 MiB per single vector/matrix,
/// far above any artifact this library writes (the largest is the kNN
/// reference set, capped at max_points_per_class rows).
constexpr std::uint64_t kMaxElements = 1ull << 26;

}  // namespace

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_f64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_string(std::ostream& out, const std::string& s) {
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void write_f64_vector(std::ostream& out, const std::vector<double>& v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

void write_u8_vector(std::ostream& out, const std::vector<std::uint8_t>& v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size()));
}

std::uint32_t read_u32(std::istream& in, const char* what) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) fail_truncated(what);
  return v;
}

std::uint64_t read_u64(std::istream& in, const char* what) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) fail_truncated(what);
  return v;
}

double read_f64(std::istream& in, const char* what) {
  double v = 0.0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) fail_truncated(what);
  return v;
}

std::string read_string(std::istream& in, const char* what) {
  const std::uint32_t size = read_u32(in, what);
  // Strings in artifacts are names and labels; a giant length prefix is a
  // corrupt artifact, not a legitimate payload.
  if (size > (1u << 20)) {
    throw SerializationError(std::string("implausible length for ") + what +
                             " (corrupt artifact?)");
  }
  std::string s(size, '\0');
  in.read(s.data(), static_cast<std::streamsize>(size));
  if (!in) fail_truncated(what);
  return s;
}

std::vector<double> read_f64_vector(std::istream& in, const char* what) {
  const std::uint64_t size = read_u64(in, what);
  if (size > kMaxElements) {
    throw SerializationError(std::string("implausible length for ") + what +
                             " (corrupt artifact?)");
  }
  std::vector<double> v(size);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(double)));
  if (!in) fail_truncated(what);
  return v;
}

std::vector<std::uint8_t> read_u8_vector(std::istream& in, const char* what) {
  const std::uint64_t size = read_u64(in, what);
  if (size > kMaxElements) {
    throw SerializationError(std::string("implausible length for ") + what +
                             " (corrupt artifact?)");
  }
  std::vector<std::uint8_t> v(size);
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(size));
  if (!in) fail_truncated(what);
  return v;
}

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) noexcept {
  // Table generated once, lazily, from the reflected IEEE 802.3 polynomial.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void expect_u32(std::istream& in, std::uint32_t expected, const char* what) {
  const std::uint32_t got = read_u32(in, what);
  if (got != expected) {
    throw SerializationError(std::string("bad ") + what + ": expected " +
                             std::to_string(expected) + ", got " + std::to_string(got));
  }
}

void write_matrix(std::ostream& out, const Matrix& m) {
  write_u32(out, static_cast<std::uint32_t>(m.rows()));
  write_u32(out, static_cast<std::uint32_t>(m.cols()));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
}

Matrix read_matrix(std::istream& in) {
  const std::uint32_t rows = read_u32(in, "matrix rows");
  const std::uint32_t cols = read_u32(in, "matrix cols");
  if (static_cast<std::uint64_t>(rows) * cols > kMaxElements) {
    throw SerializationError("implausible matrix shape (corrupt artifact?)");
  }
  Matrix m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(double)));
  if (!in) fail_truncated("matrix body");
  return m;
}

void write_parameters(std::ostream& out, const ParamRefs& params) {
  write_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const auto* p : params) write_matrix(out, p->value);
}

void read_parameters(std::istream& in, const ParamRefs& params) {
  const std::uint32_t count = read_u32(in, "parameter count");
  if (count != params.size()) {
    throw SerializationError("parameter count mismatch: artifact has " +
                             std::to_string(count) + ", model expects " +
                             std::to_string(params.size()));
  }
  // Read everything first so a mid-stream failure leaves buffers untouched.
  std::vector<Matrix> loaded;
  loaded.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) loaded.push_back(read_matrix(in));
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!loaded[i].same_shape(params[i]->value)) {
      throw SerializationError("parameter " + std::to_string(i) + " shape mismatch: artifact " +
                               std::to_string(loaded[i].rows()) + "x" +
                               std::to_string(loaded[i].cols()) + ", model " +
                               std::to_string(params[i]->value.rows()) + "x" +
                               std::to_string(params[i]->value.cols()));
    }
  }
  for (std::uint32_t i = 0; i < count; ++i) params[i]->value = std::move(loaded[i]);
}

void save_parameters(const ParamRefs& params, const std::filesystem::path& path) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SerializationError("cannot open model file for writing: " + path.string());
  write_u32(out, kMagic);
  write_u32(out, kVersion);
  write_parameters(out, params);
  if (!out) throw SerializationError("model write failed: " + path.string());
}

bool load_parameters(const ParamRefs& params, const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  if (read_u32(in, "model magic") != kMagic) {
    throw SerializationError("bad model magic: " + path.string());
  }
  if (read_u32(in, "model version") != kVersion) {
    throw SerializationError("bad model version: " + path.string());
  }
  read_parameters(in, params);
  return true;
}

}  // namespace goodones::nn
