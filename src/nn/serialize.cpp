#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace goodones::nn {

namespace {

constexpr std::uint32_t kMagic = 0x474F4E4E;  // "GONN"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("model file truncated");
  return v;
}

}  // namespace

void write_matrix(std::ostream& out, const Matrix& m) {
  write_u32(out, static_cast<std::uint32_t>(m.rows()));
  write_u32(out, static_cast<std::uint32_t>(m.cols()));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
}

Matrix read_matrix(std::istream& in) {
  const std::uint32_t rows = read_u32(in);
  const std::uint32_t cols = read_u32(in);
  Matrix m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(double)));
  if (!in) throw std::runtime_error("model file truncated in matrix body");
  return m;
}

void save_parameters(const ParamRefs& params, const std::filesystem::path& path) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open model file for writing: " + path.string());
  write_u32(out, kMagic);
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const auto* p : params) write_matrix(out, p->value);
  if (!out) throw std::runtime_error("model write failed: " + path.string());
}

bool load_parameters(const ParamRefs& params, const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  if (read_u32(in) != kMagic) throw std::runtime_error("bad model magic: " + path.string());
  if (read_u32(in) != kVersion) throw std::runtime_error("bad model version: " + path.string());
  const std::uint32_t count = read_u32(in);
  if (count != params.size()) {
    throw std::runtime_error("model parameter count mismatch: " + path.string());
  }
  // Read everything first so a mid-file failure leaves buffers untouched.
  std::vector<Matrix> loaded;
  loaded.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) loaded.push_back(read_matrix(in));
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!loaded[i].same_shape(params[i]->value)) {
      throw std::runtime_error("model parameter shape mismatch: " + path.string());
    }
  }
  for (std::uint32_t i = 0; i < count; ++i) params[i]->value = std::move(loaded[i]);
  return true;
}

}  // namespace goodones::nn
