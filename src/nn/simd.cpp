#include "nn/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>

#include "common/error.hpp"
#include "nn/kernels/avx2.hpp"
#include "nn/kernels/neon.hpp"
#include "nn/kernels/scalar.hpp"

namespace goodones::nn::simd {

namespace {

constexpr KernelTable kScalarTable = {
    Isa::kScalar,
    &scalar_kernels::matmul_acc,
    &scalar_kernels::matmul_bias,
    &scalar_kernels::matmul_ta_acc,
    &scalar_kernels::matmul_tb_acc,
    &scalar_kernels::axpy,
    &scalar_kernels::lstm_gates,
    &scalar_kernels::lstm_gates_cached,
    &scalar_kernels::matmul_acc_f32w,
    &scalar_kernels::matmul_bias_f32w,
    &scalar_kernels::lstm_gates_fast,
    &scalar_kernels::lstm_gates_cached_fast,
    &scalar_kernels::fast_exp_n,
    &scalar_kernels::fast_tanh_n,
    &scalar_kernels::fast_sigmoid_n,
};

#ifdef GOODONES_SIMD_HAS_AVX2
constexpr KernelTable kAvx2Table = {
    Isa::kAvx2,
    &avx2_kernels::matmul_acc,
    &avx2_kernels::matmul_bias,
    &avx2_kernels::matmul_ta_acc,
    &avx2_kernels::matmul_tb_acc,
    &avx2_kernels::axpy,
    &avx2_kernels::lstm_gates,
    &avx2_kernels::lstm_gates_cached,
    &avx2_kernels::matmul_acc_f32w,
    &avx2_kernels::matmul_bias_f32w,
    &avx2_kernels::lstm_gates_fast,
    &avx2_kernels::lstm_gates_cached_fast,
    &avx2_kernels::fast_exp_n,
    &avx2_kernels::fast_tanh_n,
    &avx2_kernels::fast_sigmoid_n,
};
#endif

#ifdef GOODONES_SIMD_HAS_NEON
constexpr KernelTable kNeonTable = {
    Isa::kNeon,
    &neon_kernels::matmul_acc,
    &neon_kernels::matmul_bias,
    &neon_kernels::matmul_ta_acc,
    &neon_kernels::matmul_tb_acc,
    &neon_kernels::axpy,
    &neon_kernels::lstm_gates,
    &neon_kernels::lstm_gates_cached,
    &neon_kernels::matmul_acc_f32w,
    &neon_kernels::matmul_bias_f32w,
    &neon_kernels::lstm_gates_fast,
    &neon_kernels::lstm_gates_cached_fast,
    &neon_kernels::fast_exp_n,
    &neon_kernels::fast_tanh_n,
    &neon_kernels::fast_sigmoid_n,
};
#endif

const KernelTable* resolve_initial() {
  return table_for(resolve(std::getenv("GOODONES_SIMD"), isa_runnable(Isa::kAvx2),
                           isa_runnable(Isa::kNeon)));
}

std::atomic<const KernelTable*>& active_slot() {
  static std::atomic<const KernelTable*> slot{resolve_initial()};
  return slot;
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "unknown";
}

bool isa_compiled(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#ifdef GOODONES_SIMD_HAS_AVX2
      return true;
#else
      return false;
#endif
    case Isa::kNeon:
#ifdef GOODONES_SIMD_HAS_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool isa_runnable(Isa isa) noexcept {
  if (!isa_compiled(isa)) return false;
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#ifdef GOODONES_SIMD_HAS_AVX2
      // The fast-math table entries use FMA; every AVX2-capable CPU in
      // practice has it, but gate on both cpuid bits to be exact.
      return __builtin_cpu_supports("avx2") != 0 && __builtin_cpu_supports("fma") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
      // NEON is architecturally mandatory on aarch64; compiled implies runnable.
      return true;
  }
  return false;
}

const KernelTable* table_for(Isa isa) noexcept {
  if (!isa_runnable(isa)) return nullptr;
  switch (isa) {
    case Isa::kScalar:
      return &kScalarTable;
    case Isa::kAvx2:
#ifdef GOODONES_SIMD_HAS_AVX2
      return &kAvx2Table;
#else
      return nullptr;
#endif
    case Isa::kNeon:
#ifdef GOODONES_SIMD_HAS_NEON
      return &kNeonTable;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

Isa resolve(const char* requested, bool avx2_runnable, bool neon_runnable) noexcept {
  const std::string_view req = requested == nullptr ? std::string_view{} : requested;
  if (req == "scalar") return Isa::kScalar;
  if (req == "avx2" && avx2_runnable) return Isa::kAvx2;
  if (req == "neon" && neon_runnable) return Isa::kNeon;
  // Auto, unknown value, or a lane this process cannot run: best available.
  if (avx2_runnable) return Isa::kAvx2;
  if (neon_runnable) return Isa::kNeon;
  return Isa::kScalar;
}

const KernelTable& active() noexcept {
  return *active_slot().load(std::memory_order_relaxed);
}

Isa active_isa() noexcept { return active().isa; }

Isa set_active_for_testing(Isa isa) {
  const KernelTable* table = table_for(isa);
  GO_EXPECTS(table != nullptr);
  return active_slot().exchange(table, std::memory_order_relaxed)->isa;
}

}  // namespace goodones::nn::simd
