#include "nn/lstm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "nn/activations.hpp"
#include "nn/simd.hpp"

namespace goodones::nn {

Lstm::Lstm(std::size_t input_dim, std::size_t hidden_dim, common::Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_x_(input_dim, 4 * hidden_dim),
      w_h_(hidden_dim, 4 * hidden_dim),
      b_(1, 4 * hidden_dim) {
  GO_EXPECTS(input_dim > 0 && hidden_dim > 0);
  w_x_.init_xavier(rng, input_dim, hidden_dim);
  w_h_.init_xavier(rng, hidden_dim, hidden_dim);
  // Forget-gate bias = 1 so cells retain state early in training.
  for (std::size_t j = 0; j < hidden_dim_; ++j) b_.value(0, hidden_dim_ + j) = 1.0;
}

Matrix Lstm::forward(const Matrix& x) const {
  Cache scratch;
  return forward_cached(x, scratch);
}

Matrix Lstm::forward_cached(const Matrix& x, Cache& cache) const {
  GO_EXPECTS(x.cols() == input_dim_);
  GO_EXPECTS(x.rows() > 0);
  const std::size_t steps = x.rows();
  const std::size_t h = hidden_dim_;

  cache.input = x;
  cache.gate_i = Matrix(steps, h);
  cache.gate_f = Matrix(steps, h);
  cache.gate_g = Matrix(steps, h);
  cache.gate_o = Matrix(steps, h);
  cache.cell = Matrix(steps, h);
  cache.cell_tanh = Matrix(steps, h);
  cache.hidden = Matrix(steps, h);

  // Precompute x * Wx for all timesteps at once (the big matmul).
  const Matrix x_proj = matmul(x, w_x_.value);
  const simd::KernelTable& kt = simd::active();

  std::vector<double> h_prev(h, 0.0);
  std::vector<double> c_prev(h, 0.0);
  std::vector<double> pre(4 * h);

  for (std::size_t t = 0; t < steps; ++t) {
    // pre = x_proj[t] + b + h_prev * Wh. The recurrent term is skipped on
    // the first step (h_prev is zero), matching forward_batch_cached.
    const auto xp = x_proj.row(t);
    for (std::size_t j = 0; j < 4 * h; ++j) pre[j] = xp[j] + b_.value(0, j);
    if (t > 0) kt.matmul_acc(h_prev.data(), w_h_.value.data(), pre.data(), 1, h, 4 * h);

    kt.lstm_gates_cached(pre.data(), h, cache.gate_i.row(t).data(),
                         cache.gate_f.row(t).data(), cache.gate_g.row(t).data(),
                         cache.gate_o.row(t).data(), cache.cell.row(t).data(),
                         cache.cell_tanh.row(t).data(), cache.hidden.row(t).data(),
                         c_prev.data(), h_prev.data());
  }
  return cache.hidden;
}

Lstm::PrefixState Lstm::initial_state() const {
  PrefixState state;
  state.hidden.assign(hidden_dim_, 0.0);
  state.cell.assign(hidden_dim_, 0.0);
  return state;
}

void Lstm::advance_impl(PrefixState& state, const Matrix& x,
                        std::vector<PrefixState>* trail) const {
  GO_EXPECTS(x.cols() == input_dim_);
  GO_EXPECTS(state.hidden.size() == hidden_dim_ && state.cell.size() == hidden_dim_);
  if (x.rows() == 0) return;
  const std::size_t h = hidden_dim_;
  const simd::KernelTable& kt = simd::active();

  // Same arithmetic and accumulation order as forward_cached, minus the
  // per-gate caches: the snapshot must be bit-identical to the scalar path.
  const Matrix x_proj = matmul(x, w_x_.value);
  std::vector<double> pre(4 * h);
  for (std::size_t t = 0; t < x.rows(); ++t) {
    const auto xp = x_proj.row(t);
    for (std::size_t j = 0; j < 4 * h; ++j) pre[j] = xp[j] + b_.value(0, j);
    // A fresh state's first step has a zero hidden vector — skip its GEMM,
    // like the batched paths do.
    if (t > 0 || state.steps > 0) {
      kt.matmul_acc(state.hidden.data(), w_h_.value.data(), pre.data(), 1, h, 4 * h);
    }
    kt.lstm_gates(pre.data(), h, state.cell.data(), state.hidden.data());
    if (trail != nullptr) {
      PrefixState snapshot;
      snapshot.steps = state.steps + t + 1;
      snapshot.hidden = state.hidden;
      snapshot.cell = state.cell;
      trail->push_back(std::move(snapshot));
    }
  }
  state.steps += x.rows();
}

void Lstm::advance(PrefixState& state, const Matrix& x) const {
  advance_impl(state, x, nullptr);
}

void Lstm::advance_recording(PrefixState& state, const Matrix& x,
                             std::vector<PrefixState>& trail) const {
  advance_impl(state, x, &trail);
}

Matrix Lstm::run_batch(std::span<const Matrix> sequences, const PrefixState& start,
                       std::size_t first_row, Precision precision) const {
  GO_EXPECTS(!sequences.empty());
  // Every sequence resumes from the same snapshot: the single-cluster
  // special case of run_batch_multi.
  std::vector<const Matrix*> seq_ptrs;
  seq_ptrs.reserve(sequences.size());
  for (const Matrix& s : sequences) seq_ptrs.push_back(&s);
  const std::vector<const PrefixState*> start_ptrs(sequences.size(), &start);
  return run_batch_multi(seq_ptrs, start_ptrs, first_row, precision);
}

Matrix Lstm::run_batch(std::span<const Matrix> sequences) const {
  return run_batch(sequences, initial_state());
}

Matrix Lstm::run_batch_multi(std::span<const Matrix* const> sequences,
                             std::span<const PrefixState* const> starts,
                             std::size_t first_row, Precision precision) const {
  GO_EXPECTS(!sequences.empty());
  GO_EXPECTS(starts.size() == sequences.size());
  const std::size_t batch = sequences.size();
  GO_EXPECTS(first_row <= sequences.front()->rows());
  const std::size_t steps = sequences.front()->rows() - first_row;
  for (const Matrix* s : sequences) {
    GO_EXPECTS(s->rows() == first_row + steps && s->cols() == input_dim_);
  }
  const std::size_t h = hidden_dim_;
  const simd::KernelTable& kt = simd::active();
  const bool mixed = precision == Precision::kMixed;
  if (mixed) GO_EXPECTS(mixed_ready());
  // kFast keeps the double GEMMs and swaps only the gate transcendentals.
  const auto gates = precision == Precision::kFast ? kt.lstm_gates_fast : kt.lstm_gates;

  Matrix h_state(batch, h);
  Matrix c_state(batch, h);
  bool any_started = false;
  for (std::size_t i = 0; i < batch; ++i) {
    const PrefixState& start = *starts[i];
    GO_EXPECTS(start.hidden.size() == h && start.cell.size() == h);
    std::copy(start.hidden.begin(), start.hidden.end(), h_state.row(i).begin());
    std::copy(start.cell.begin(), start.cell.end(), c_state.row(i).begin());
    any_started = any_started || start.steps > 0;
  }
  if (steps == 0) return h_state;

  // One packed GEMM projects every sequence's inputs (plus bias) at once;
  // rows [t*B, (t+1)*B) of the result are timestep t's batch block.
  const Matrix packed = pack_step_major(sequences, first_row, steps);
  Matrix pre_proj(packed.rows(), 4 * h);
  if (mixed) {
    kt.matmul_bias_f32w(packed.data(), wx_f32_.data(), b_f32_.data(), pre_proj.data(),
                        packed.rows(), input_dim_, 4 * h);
  } else {
    kt.matmul_bias(packed.data(), w_x_.value.data(), b_.value.data(), pre_proj.data(),
                   packed.rows(), input_dim_, 4 * h);
  }

  Matrix pre(batch, 4 * h);
  for (std::size_t t = 0; t < steps; ++t) {
    // Timestep t's batch block is contiguous in the packed projection.
    std::memcpy(pre.data(), pre_proj.data() + t * batch * 4 * h,
                batch * 4 * h * sizeof(double));
    // pre += h_state * Wh: batched recurrent GEMM. When every start is the
    // fresh zero state the first step has nothing to add — same skip as the
    // scalar step's t == 0.
    if (t > 0 || any_started) {
      if (mixed) {
        kt.matmul_acc_f32w(h_state.data(), wh_f32_.data(), pre.data(), batch, h, 4 * h);
      } else {
        kt.matmul_acc(h_state.data(), w_h_.value.data(), pre.data(), batch, h, 4 * h);
      }
    }
    for (std::size_t i = 0; i < batch; ++i) {
      gates(pre.row(i).data(), h, c_state.row(i).data(), h_state.row(i).data());
    }
  }
  return h_state;
}

Matrix Lstm::first_step_batch(const Matrix& rows, Precision precision) const {
  GO_EXPECTS(rows.cols() == input_dim_);
  const std::size_t n = rows.rows();
  const std::size_t h = hidden_dim_;
  const simd::KernelTable& kt = simd::active();
  const bool mixed = precision == Precision::kMixed;
  if (mixed) GO_EXPECTS(mixed_ready());
  const auto gates = precision == Precision::kFast ? kt.lstm_gates_fast : kt.lstm_gates;

  // From the zero state there is no recurrent term: one projection GEMM and
  // one gate pass per row gives every sequence's first hidden state.
  Matrix pre(n, 4 * h);
  if (mixed) {
    kt.matmul_bias_f32w(rows.data(), wx_f32_.data(), b_f32_.data(), pre.data(), n,
                        input_dim_, 4 * h);
  } else {
    kt.matmul_bias(rows.data(), w_x_.value.data(), b_.value.data(), pre.data(), n,
                   input_dim_, 4 * h);
  }
  Matrix h_state(n, h);
  Matrix c_state(n, h);
  for (std::size_t i = 0; i < n; ++i) {
    gates(pre.row(i).data(), h, c_state.row(i).data(), h_state.row(i).data());
  }
  return h_state;
}

void Lstm::sync_mixed_weights() {
  const auto mirror = [](const Matrix& m, std::vector<float>& out) {
    out.resize(m.size());
    for (std::size_t i = 0; i < m.size(); ++i) out[i] = static_cast<float>(m.data()[i]);
  };
  mirror(w_x_.value, wx_f32_);
  mirror(w_h_.value, wh_f32_);
  mirror(b_.value, b_f32_);
}

bool Lstm::mixed_ready() const noexcept {
  return wx_f32_.size() == w_x_.value.size() && wh_f32_.size() == w_h_.value.size() &&
         b_f32_.size() == b_.value.size() && !wx_f32_.empty();
}

void Lstm::forward_batch_cached(std::span<const Matrix> sequences, std::vector<Cache>& caches,
                                Precision precision) const {
  GO_EXPECTS(!sequences.empty());
  GO_EXPECTS(precision != Precision::kMixed);  // no f32w path for cached forwards
  const std::size_t batch = sequences.size();
  const std::size_t steps = sequences.front().rows();
  GO_EXPECTS(steps > 0);
  for (const Matrix& s : sequences) {
    GO_EXPECTS(s.rows() == steps && s.cols() == input_dim_);
  }
  const std::size_t h = hidden_dim_;

  caches.resize(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    Cache& cache = caches[i];
    cache.input = sequences[i];
    // Reuse the buffers across calls when the shape is unchanged: an
    // inversion loop calls this every gradient step with identical shapes,
    // and the realloc churn would otherwise eat the batching win.
    if (cache.hidden.rows() != steps || cache.hidden.cols() != h) {
      cache.gate_i = Matrix(steps, h);
      cache.gate_f = Matrix(steps, h);
      cache.gate_g = Matrix(steps, h);
      cache.gate_o = Matrix(steps, h);
      cache.cell = Matrix(steps, h);
      cache.cell_tanh = Matrix(steps, h);
      cache.hidden = Matrix(steps, h);
    }
  }

  // Same packed layout and accumulation order as run_batch: one GEMM for
  // every sequence's input projection, one recurrent GEMM per timestep.
  const Matrix packed = pack_step_major(sequences, 0, steps);
  const Matrix pre_proj = matmul_bias(packed, w_x_.value, b_.value);
  const simd::KernelTable& kt = simd::active();
  const auto gates_cached =
      precision == Precision::kFast ? kt.lstm_gates_cached_fast : kt.lstm_gates_cached;

  Matrix h_state(batch, h);
  Matrix c_state(batch, h);
  Matrix pre(batch, 4 * h);
  for (std::size_t t = 0; t < steps; ++t) {
    std::memcpy(pre.data(), pre_proj.data() + t * batch * 4 * h,
                batch * 4 * h * sizeof(double));
    if (t > 0) matmul_accumulate(h_state, w_h_.value, pre);
    for (std::size_t i = 0; i < batch; ++i) {
      Cache& cache = caches[i];
      gates_cached(pre.row(i).data(), h, cache.gate_i.row(t).data(),
                   cache.gate_f.row(t).data(), cache.gate_g.row(t).data(),
                   cache.gate_o.row(t).data(), cache.cell.row(t).data(),
                   cache.cell_tanh.row(t).data(), cache.hidden.row(t).data(),
                   c_state.row(i).data(), h_state.row(i).data());
    }
  }
}

Matrix Lstm::backward(const Matrix& grad_hidden, const Cache& cache) {
  const std::size_t steps = cache.input.rows();
  const std::size_t h = hidden_dim_;
  GO_EXPECTS(grad_hidden.rows() == steps && grad_hidden.cols() == h);

  Matrix grad_pre_all(steps, 4 * h);  // dLoss/d(pre-activations), all steps
  std::vector<double> dh_next(h, 0.0);
  std::vector<double> dc_next(h, 0.0);
  const simd::KernelTable& kt = simd::active();

  for (std::size_t t = steps; t-- > 0;) {
    const auto gi = cache.gate_i.row(t);
    const auto gf = cache.gate_f.row(t);
    const auto gg = cache.gate_g.row(t);
    const auto go = cache.gate_o.row(t);
    const auto ctt = cache.cell_tanh.row(t);
    const auto gh = grad_hidden.row(t);
    auto dpre = grad_pre_all.row(t);

    for (std::size_t j = 0; j < h; ++j) {
      const double dh = gh[j] + dh_next[j];
      const double dct = dh * go[j] * tanh_grad_from_output(ctt[j]) + dc_next[j];
      const double c_prev = t > 0 ? cache.cell(t - 1, j) : 0.0;

      const double di = dct * gg[j];
      const double df = dct * c_prev;
      const double dg = dct * gi[j];
      const double do_ = dh * ctt[j];

      dpre[j] = di * sigmoid_grad_from_output(gi[j]);
      dpre[h + j] = df * sigmoid_grad_from_output(gf[j]);
      dpre[2 * h + j] = dg * tanh_grad_from_output(gg[j]);
      dpre[3 * h + j] = do_ * sigmoid_grad_from_output(go[j]);

      dc_next[j] = dct * gf[j];
    }

    // dh_next = dpre * Wh^T (contribution to the previous hidden state) —
    // each element is the same ascending-j dot product as before.
    std::fill(dh_next.begin(), dh_next.end(), 0.0);
    kt.matmul_tb_acc(dpre.data(), w_h_.value.data(), dh_next.data(), 1, 4 * h, h);
  }

  // Parameter gradients, batched over time:
  //   dWx += x^T * dpre ; db += column sums of dpre ;
  //   dWh += h_{t-1}^T * dpre (shift hidden by one step).
  matmul_trans_a_accumulate(cache.input, grad_pre_all, w_x_.grad);
  for (std::size_t t = 0; t < steps; ++t) {
    axpy(1.0, grad_pre_all.row(t), b_.grad.row(0));
  }
  for (std::size_t t = 1; t < steps; ++t) {
    // Rank-1 update dWh += h_{t-1}^T * dpre_t, branchless.
    kt.matmul_ta_acc(cache.hidden.row(t - 1).data(), grad_pre_all.row(t).data(),
                     w_h_.grad.data(), 1, h, 4 * h);
  }

  // dX = dpre * Wx^T.
  return matmul_trans_b(grad_pre_all, w_x_.value);
}

std::vector<Matrix> Lstm::backward_input_batch(std::span<const Matrix> grad_hidden,
                                               std::span<const Cache> caches) const {
  GO_EXPECTS(!caches.empty());
  GO_EXPECTS(grad_hidden.size() == caches.size());
  const std::size_t batch = caches.size();
  const std::size_t steps = caches.front().input.rows();
  const std::size_t h = hidden_dim_;
  for (std::size_t i = 0; i < batch; ++i) {
    GO_EXPECTS(caches[i].input.rows() == steps);
    GO_EXPECTS(grad_hidden[i].rows() == steps && grad_hidden[i].cols() == h);
  }

  std::vector<Matrix> grad_pre_all(batch, Matrix(steps, 4 * h));
  Matrix dpre_t(batch, 4 * h);   // this timestep's pre-activation grads, packed
  Matrix dh_next(batch, h);      // zero-initialized, like the scalar path
  Matrix dc_next(batch, h);

  for (std::size_t t = steps; t-- > 0;) {
    for (std::size_t i = 0; i < batch; ++i) {
      const Cache& cache = caches[i];
      const auto gi = cache.gate_i.row(t);
      const auto gf = cache.gate_f.row(t);
      const auto gg = cache.gate_g.row(t);
      const auto go = cache.gate_o.row(t);
      const auto ctt = cache.cell_tanh.row(t);
      const auto gh = grad_hidden[i].row(t);
      auto dpre = dpre_t.row(i);
      auto dhn = dh_next.row(i);
      auto dcn = dc_next.row(i);

      // Same per-element recurrence as backward().
      for (std::size_t j = 0; j < h; ++j) {
        const double dh = gh[j] + dhn[j];
        const double dct = dh * go[j] * tanh_grad_from_output(ctt[j]) + dcn[j];
        const double c_prev = t > 0 ? cache.cell(t - 1, j) : 0.0;

        dpre[j] = dct * gg[j] * sigmoid_grad_from_output(gi[j]);
        dpre[h + j] = dct * c_prev * sigmoid_grad_from_output(gf[j]);
        dpre[2 * h + j] = dct * gi[j] * tanh_grad_from_output(gg[j]);
        dpre[3 * h + j] = dh * ctt[j] * sigmoid_grad_from_output(go[j]);

        dcn[j] = dct * gf[j];
      }
      std::copy(dpre.begin(), dpre.end(), grad_pre_all[i].row(t).begin());
    }
    // dh_next = dpre * Wh^T for the whole batch in one GEMM; each output
    // element is the same j-ascending dot product the scalar loop runs.
    dh_next = matmul_trans_b(dpre_t, w_h_.value);
  }

  std::vector<Matrix> grad_input;
  grad_input.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    grad_input.push_back(matmul_trans_b(grad_pre_all[i], w_x_.value));
  }
  return grad_input;
}

BiLstm::BiLstm(std::size_t input_dim, std::size_t hidden_dim, common::Rng& rng)
    : fwd_(input_dim, hidden_dim, rng), bwd_(input_dim, hidden_dim, rng) {}

Matrix reverse_time(const Matrix& x) {
  Matrix out(x.rows(), x.cols());
  for (std::size_t t = 0; t < x.rows(); ++t) {
    const auto src = x.row(x.rows() - 1 - t);
    auto dst = out.row(t);
    for (std::size_t c = 0; c < x.cols(); ++c) dst[c] = src[c];
  }
  return out;
}

Matrix BiLstm::forward(const Matrix& x) const {
  Cache scratch;
  return forward_cached(x, scratch);
}

Matrix BiLstm::forward_cached(const Matrix& x, Cache& cache) const {
  const Matrix h_fwd = fwd_.forward_cached(x, cache.fwd);
  const Matrix h_bwd_rev = bwd_.forward_cached(reverse_time(x), cache.bwd);
  const Matrix h_bwd = reverse_time(h_bwd_rev);  // re-align to forward time

  Matrix out(x.rows(), output_dim());
  const std::size_t h = hidden_dim();
  for (std::size_t t = 0; t < x.rows(); ++t) {
    auto dst = out.row(t);
    const auto f = h_fwd.row(t);
    const auto b = h_bwd.row(t);
    for (std::size_t j = 0; j < h; ++j) {
      dst[j] = f[j];
      dst[h + j] = b[j];
    }
  }
  return out;
}

Matrix BiLstm::backward(const Matrix& grad_output, const Cache& cache) {
  const std::size_t steps = cache.fwd.input.rows();
  const std::size_t h = hidden_dim();
  GO_EXPECTS(grad_output.rows() == steps && grad_output.cols() == 2 * h);

  Matrix grad_fwd(steps, h);
  Matrix grad_bwd_aligned(steps, h);
  for (std::size_t t = 0; t < steps; ++t) {
    const auto g = grad_output.row(t);
    auto gf = grad_fwd.row(t);
    auto gb = grad_bwd_aligned.row(t);
    for (std::size_t j = 0; j < h; ++j) {
      gf[j] = g[j];
      gb[j] = g[h + j];
    }
  }

  const Matrix dx_fwd = fwd_.backward(grad_fwd, cache.fwd);
  // The backward cell ran on reversed input, so its hidden-grad must be
  // reversed into its own time order, and its dX reversed back.
  const Matrix dx_bwd_rev = bwd_.backward(reverse_time(grad_bwd_aligned), cache.bwd);
  const Matrix dx_bwd = reverse_time(dx_bwd_rev);

  Matrix dx = dx_fwd;
  dx += dx_bwd;
  return dx;
}

Matrix BiLstm::final_states_batch(std::span<const Matrix> sequences,
                                  std::size_t shared_prefix,
                                  std::size_t shared_suffix) const {
  GO_EXPECTS(!sequences.empty());
  const std::size_t steps = sequences.front().rows();
  GO_EXPECTS(steps > 0);
  GO_EXPECTS(shared_prefix <= steps && shared_suffix <= steps);
  const std::size_t batch = sequences.size();
  const std::size_t h = hidden_dim();

  // Forward cell: consume the shared prefix once, then replay only each
  // sequence's unshared tail from the snapshot.
  Lstm::PrefixState fwd_state = fwd_.initial_state();
  if (shared_prefix > 0) {
    Matrix prefix(shared_prefix, sequences.front().cols());
    for (std::size_t t = 0; t < shared_prefix; ++t) {
      const auto src = sequences.front().row(t);
      std::copy(src.begin(), src.end(), prefix.row(t).begin());
    }
    fwd_.advance(fwd_state, prefix);
  }
  const Matrix h_fwd = fwd_.run_batch(sequences, fwd_state, shared_prefix);

  // Backward cell: the scalar path's last aligned output row is the state
  // after the FIRST reversed step, which consumes only row T - 1. One step
  // per sequence — computed once when the last row is shared.
  Matrix h_bwd(batch, h);
  const auto one_step = [&](const Matrix& seq) {
    Lstm::PrefixState state = bwd_.initial_state();
    Matrix last(1, seq.cols());
    const auto src = seq.row(steps - 1);
    std::copy(src.begin(), src.end(), last.row(0).begin());
    bwd_.advance(state, last);
    return state;
  };
  if (shared_suffix >= 1) {
    const Lstm::PrefixState state = one_step(sequences.front());
    for (std::size_t i = 0; i < batch; ++i) {
      std::copy(state.hidden.begin(), state.hidden.end(), h_bwd.row(i).begin());
    }
  } else {
    for (std::size_t i = 0; i < batch; ++i) {
      const Lstm::PrefixState state = one_step(sequences[i]);
      std::copy(state.hidden.begin(), state.hidden.end(), h_bwd.row(i).begin());
    }
  }

  Matrix out(batch, output_dim());
  for (std::size_t i = 0; i < batch; ++i) {
    auto dst = out.row(i);
    const auto f = h_fwd.row(i);
    const auto b = h_bwd.row(i);
    for (std::size_t j = 0; j < h; ++j) {
      dst[j] = f[j];
      dst[h + j] = b[j];
    }
  }
  return out;
}

ParamRefs BiLstm::parameters() {
  ParamRefs params = fwd_.parameters();
  const ParamRefs bwd_params = bwd_.parameters();
  params.insert(params.end(), bwd_params.begin(), bwd_params.end());
  return params;
}

}  // namespace goodones::nn
