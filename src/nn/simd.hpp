// Runtime-dispatched SIMD kernel layer for the nn substrate.
//
// All hot inner loops (dense GEMM variants, axpy, the fused LSTM gate math)
// route through one function-pointer table selected once per process: the
// best lane the CPU can run, overridable with GOODONES_SIMD=scalar|avx2|neon.
// Every vector lane is written to be BITWISE-identical to the scalar lane:
// per-output-element accumulation order is preserved, multiplies and adds
// stay separate IEEE operations (no FMA contraction — the kernel TU builds
// with -ffp-contract=off), and transcendentals (exp, tanh) always call the
// scalar libm so every lane shares one correctly-rounded implementation.
// That is what lets the 1e-12 / bitwise parity pins hold under any lane.
#pragma once

#include <cstddef>

namespace goodones::nn {

/// Numeric mode of batched scoring. kMixed keeps float32 mirrors of the
/// weights and accumulates in float64 — an opt-in approximation lane
/// (excluded from parity guarantees) for throughput-bound scoring. kFast
/// keeps the double GEMMs but swaps the gate-row transcendentals for
/// vectorized range-reduced polynomials (FMA allowed, few-ulp accuracy) —
/// also opt-in, also outside the parity contract, never used in training.
enum class Precision { kDouble, kMixed, kFast };

namespace simd {

enum class Isa { kScalar, kAvx2, kNeon };

/// Human-readable lane name ("scalar", "avx2", "neon").
const char* isa_name(Isa isa) noexcept;

/// The kernel function-pointer table of one lane. Raw-pointer signatures so
/// kernels stay usable on matrix rows, packed buffers, and std::vector
/// storage alike; shape checks live in the nn::Matrix wrappers.
struct KernelTable {
  Isa isa;

  /// out(m x n) += a(m x k) * b(k x n). Branchless accumulation in i-k-j
  /// order: each output element's partial sums land in ascending k order.
  void (*matmul_acc)(const double* a, const double* b, double* out, std::size_t m,
                     std::size_t k, std::size_t n);
  /// out(m x n) = a(m x k) * b(k x n) + bias(n) broadcast per row, fused in
  /// one pass (bias is added after each row's k-accumulation, matching the
  /// historical matmul-then-bias-pass numerics bit for bit).
  void (*matmul_bias)(const double* a, const double* b, const double* bias, double* out,
                      std::size_t m, std::size_t k, std::size_t n);
  /// out(m x n) += a(r x m)^T * b(r x n), r-outer accumulation order.
  void (*matmul_ta_acc)(const double* a, const double* b, double* out, std::size_t r,
                        std::size_t m, std::size_t n);
  /// out(m x n) += a(m x k) * b(n x k)^T; each output element is one
  /// ascending-k dot product.
  void (*matmul_tb_acc)(const double* a, const double* b, double* out, std::size_t m,
                        std::size_t k, std::size_t n);
  /// y += alpha * x over n elements.
  void (*axpy)(double alpha, const double* x, double* y, std::size_t n);

  /// Fused LSTM gate math over one 4h-wide pre-activation row laid out as
  /// [input, forget, cell, output]. Updates cell and hidden (h each) in
  /// place: c = sigm(f)*c + sigm(i)*tanh(g); h = sigm(o)*tanh(c).
  void (*lstm_gates)(const double* pre, std::size_t h, double* cell, double* hidden);
  /// Cache-filling variant: also stores the post-activation gates and the
  /// cell/cell_tanh/hidden rows a later backward pass needs. `cs`/`hs` are
  /// the running recurrent state (read then overwritten).
  void (*lstm_gates_cached)(const double* pre, std::size_t h, double* gi, double* gf,
                            double* gg, double* go, double* ct, double* ctt, double* ht,
                            double* cs, double* hs);

  /// Mixed-precision (Precision::kMixed) variants: float32 weights/bias,
  /// float64 activations and accumulation.
  void (*matmul_acc_f32w)(const double* a, const float* b, double* out, std::size_t m,
                          std::size_t k, std::size_t n);
  void (*matmul_bias_f32w)(const double* a, const float* b, const float* bias, double* out,
                           std::size_t m, std::size_t k, std::size_t n);

  /// Fast-math (Precision::kFast) gate variants: the same fused gate math
  /// but with range-reduced polynomial exp/tanh/sigmoid and FMA, staying in
  /// vector registers for the whole row-step. Outside the scalar-libm
  /// parity contract; the fast lanes instead agree bitwise with EACH OTHER
  /// across ISAs (identical correctly-rounded op sequence, shared fma).
  void (*lstm_gates_fast)(const double* pre, std::size_t h, double* cell, double* hidden);
  void (*lstm_gates_cached_fast)(const double* pre, std::size_t h, double* gi, double* gf,
                                 double* gg, double* go, double* ct, double* ctt, double* ht,
                                 double* cs, double* hs);

  /// Batch-apply fast transcendentals — the accuracy-sweep and microbench
  /// surface of the kFast lane (out[i] = f(x[i]) over n elements).
  void (*fast_exp_n)(const double* x, double* out, std::size_t n);
  void (*fast_tanh_n)(const double* x, double* out, std::size_t n);
  void (*fast_sigmoid_n)(const double* x, double* out, std::size_t n);
};

/// Whether a lane was compiled into this binary (NEON lanes exist only on
/// aarch64 builds, AVX2 only on x86-64 with GOODONES_SIMD enabled).
bool isa_compiled(Isa isa) noexcept;

/// Whether a lane is compiled AND this CPU can execute it.
bool isa_runnable(Isa isa) noexcept;

/// The table of a specific lane, or nullptr when it is not runnable here.
const KernelTable* table_for(Isa isa) noexcept;

/// Pure lane-selection logic (unit-testable): `requested` is the value of
/// GOODONES_SIMD (nullptr or "" = auto). An unknown value or a request for a
/// lane this process cannot run falls back to the best runnable lane
/// (avx2 > neon > scalar); "scalar" is always honored.
Isa resolve(const char* requested, bool avx2_runnable, bool neon_runnable) noexcept;

/// The process-wide active lane, resolved once from GOODONES_SIMD + CPU
/// detection on first use.
const KernelTable& active() noexcept;
Isa active_isa() noexcept;

/// Test hook: forces the active lane (must be runnable). Returns the
/// previously active lane so tests can restore it.
Isa set_active_for_testing(Isa isa);

}  // namespace simd
}  // namespace goodones::nn
