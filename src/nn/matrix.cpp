#include "nn/matrix.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace goodones::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    GO_EXPECTS(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

std::span<double> Matrix::row(std::size_t r) noexcept {
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const noexcept {
  return {data_.data() + r * cols_, cols_};
}

void Matrix::fill(double value) noexcept {
  for (double& x : data_) x = value;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  GO_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  GO_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix& Matrix::hadamard_inplace(const Matrix& other) {
  GO_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::squared_norm() const noexcept {
  double sum = 0.0;
  for (const double x : data_) sum += x * x;
  return sum;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  matmul_accumulate(a, b, out);
  return out;
}

Matrix matmul_trans_a(const Matrix& a, const Matrix& b) {
  Matrix out(a.cols(), b.cols());
  matmul_trans_a_accumulate(a, b, out);
  return out;
}

Matrix matmul_trans_b(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.rows());
  matmul_trans_b_accumulate(a, b, out);
  return out;
}

void matmul_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  GO_EXPECTS(a.cols() == b.rows());
  GO_EXPECTS(out.rows() == a.rows() && out.cols() == b.cols());
  // i-k-j order: streams through b and out rows contiguously.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* out_row = out.data() + i * out.cols();
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* b_row = b.data() + k * b.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) out_row[j] += aik * b_row[j];
    }
  }
}

void matmul_trans_a_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  GO_EXPECTS(a.rows() == b.rows());
  GO_EXPECTS(out.rows() == a.cols() && out.cols() == b.cols());
  // out(i,j) += sum_k a(k,i) * b(k,j); loop k outermost for contiguous rows.
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* a_row = a.data() + k * a.cols();
    const double* b_row = b.data() + k * b.cols();
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a_row[i];
      if (aki == 0.0) continue;
      double* out_row = out.data() + i * out.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) out_row[j] += aki * b_row[j];
    }
  }
}

void matmul_trans_b_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  GO_EXPECTS(a.cols() == b.cols());
  GO_EXPECTS(out.rows() == a.rows() && out.cols() == b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.data() + i * a.cols();
    double* out_row = out.data() + i * out.cols();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* b_row = b.data() + j * b.cols();
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) sum += a_row[k] * b_row[k];
      out_row[j] += sum;
    }
  }
}

Matrix matmul_bias(const Matrix& a, const Matrix& b, const Matrix& bias) {
  GO_EXPECTS(bias.rows() == 1 && bias.cols() == b.cols());
  Matrix out = matmul(a, b);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    const auto bias_row = bias.row(0);
    auto out_row = out.row(r);
    for (std::size_t j = 0; j < out_row.size(); ++j) out_row[j] += bias_row[j];
  }
  return out;
}

Matrix pack_step_major(std::span<const Matrix> blocks, std::size_t first_row,
                       std::size_t num_rows) {
  GO_EXPECTS(!blocks.empty());
  const std::size_t cols = blocks.front().cols();
  for (const Matrix& block : blocks) {
    GO_EXPECTS(block.cols() == cols);
    GO_EXPECTS(first_row + num_rows <= block.rows());
  }
  Matrix out(num_rows * blocks.size(), cols);
  for (std::size_t t = 0; t < num_rows; ++t) {
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const auto src = blocks[i].row(first_row + t);
      auto dst = out.row(t * blocks.size() + i);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  return out;
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(Matrix a, double scalar) {
  a *= scalar;
  return a;
}

void axpy(double a, std::span<const double> x, std::span<double> y) {
  GO_EXPECTS(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

}  // namespace goodones::nn
