#include "nn/matrix.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "nn/simd.hpp"

namespace goodones::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    GO_EXPECTS(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

std::span<double> Matrix::row(std::size_t r) noexcept {
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const noexcept {
  return {data_.data() + r * cols_, cols_};
}

void Matrix::fill(double value) noexcept {
  for (double& x : data_) x = value;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  GO_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  GO_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix& Matrix::hadamard_inplace(const Matrix& other) {
  GO_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::squared_norm() const noexcept {
  double sum = 0.0;
  for (const double x : data_) sum += x * x;
  return sum;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  matmul_accumulate(a, b, out);
  return out;
}

Matrix matmul_trans_a(const Matrix& a, const Matrix& b) {
  Matrix out(a.cols(), b.cols());
  matmul_trans_a_accumulate(a, b, out);
  return out;
}

Matrix matmul_trans_b(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.rows());
  matmul_trans_b_accumulate(a, b, out);
  return out;
}

void matmul_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  GO_EXPECTS(a.cols() == b.rows());
  GO_EXPECTS(out.rows() == a.rows() && out.cols() == b.cols());
  simd::active().matmul_acc(a.data(), b.data(), out.data(), a.rows(), a.cols(), b.cols());
}

void matmul_trans_a_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  GO_EXPECTS(a.rows() == b.rows());
  GO_EXPECTS(out.rows() == a.cols() && out.cols() == b.cols());
  simd::active().matmul_ta_acc(a.data(), b.data(), out.data(), a.rows(), a.cols(), b.cols());
}

void matmul_trans_b_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  GO_EXPECTS(a.cols() == b.cols());
  GO_EXPECTS(out.rows() == a.rows() && out.cols() == b.rows());
  simd::active().matmul_tb_acc(a.data(), b.data(), out.data(), a.rows(), a.cols(), b.rows());
}

Matrix matmul_bias(const Matrix& a, const Matrix& b, const Matrix& bias) {
  GO_EXPECTS(a.cols() == b.rows());
  GO_EXPECTS(bias.rows() == 1 && bias.cols() == b.cols());
  Matrix out(a.rows(), b.cols());
  simd::active().matmul_bias(a.data(), b.data(), bias.data(), out.data(), a.rows(), a.cols(),
                             b.cols());
  return out;
}

namespace {

Matrix pack_step_major_impl(std::size_t blocks, std::size_t cols,
                            const double* (*block_data)(const void*, std::size_t),
                            const void* ctx, std::size_t first_row, std::size_t num_rows) {
  Matrix out(num_rows * blocks, cols);
  if (num_rows == 0 || cols == 0) return out;
  if (blocks == 1) {
    // Single-sequence fast path: the packed layout IS the source row range.
    std::memcpy(out.data(), block_data(ctx, 0) + first_row * cols,
                num_rows * cols * sizeof(double));
    return out;
  }
  // The destination is written front to back in one contiguous sweep; only
  // the source pointer hops between blocks.
  double* dst = out.data();
  for (std::size_t t = 0; t < num_rows; ++t) {
    for (std::size_t i = 0; i < blocks; ++i) {
      std::memcpy(dst, block_data(ctx, i) + (first_row + t) * cols, cols * sizeof(double));
      dst += cols;
    }
  }
  return out;
}

}  // namespace

Matrix pack_step_major(std::span<const Matrix> blocks, std::size_t first_row,
                       std::size_t num_rows) {
  GO_EXPECTS(!blocks.empty());
  const std::size_t cols = blocks.front().cols();
  for (const Matrix& block : blocks) {
    GO_EXPECTS(block.cols() == cols);
    GO_EXPECTS(first_row + num_rows <= block.rows());
  }
  const auto data_of = [](const void* ctx, std::size_t i) -> const double* {
    return (*static_cast<const std::span<const Matrix>*>(ctx))[i].data();
  };
  return pack_step_major_impl(blocks.size(), cols, data_of, &blocks, first_row, num_rows);
}

Matrix pack_step_major(std::span<const Matrix* const> blocks, std::size_t first_row,
                       std::size_t num_rows) {
  GO_EXPECTS(!blocks.empty());
  const std::size_t cols = blocks.front()->cols();
  for (const Matrix* block : blocks) {
    GO_EXPECTS(block->cols() == cols);
    GO_EXPECTS(first_row + num_rows <= block->rows());
  }
  const auto data_of = [](const void* ctx, std::size_t i) -> const double* {
    return (*static_cast<const std::span<const Matrix* const>*>(ctx))[i]->data();
  };
  return pack_step_major_impl(blocks.size(), cols, data_of, &blocks, first_row, num_rows);
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(Matrix a, double scalar) {
  a *= scalar;
  return a;
}

void axpy(double a, std::span<const double> x, std::span<double> y) {
  GO_EXPECTS(x.size() == y.size());
  simd::active().axpy(a, x.data(), y.data(), x.size());
}

}  // namespace goodones::nn
