#include "nn/optimizer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace goodones::nn {

Sgd::Sgd(double learning_rate, double momentum) : lr_(learning_rate), momentum_(momentum) {
  GO_EXPECTS(learning_rate > 0.0);
  GO_EXPECTS(momentum >= 0.0 && momentum < 1.0);
}

void Sgd::step(const ParamRefs& params) {
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const auto* p : params) velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
  GO_EXPECTS(velocity_.size() == params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    ParamBuffer& p = *params[i];
    Matrix& vel = velocity_[i];
    GO_EXPECTS(vel.same_shape(p.value));
    double* value = p.value.data();
    const double* grad = p.grad.data();
    double* v = vel.data();
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      v[j] = momentum_ * v[j] - lr_ * grad[j];
      value[j] += v[j];
    }
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double eps)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(eps) {
  GO_EXPECTS(learning_rate > 0.0);
  GO_EXPECTS(beta1 >= 0.0 && beta1 < 1.0);
  GO_EXPECTS(beta2 >= 0.0 && beta2 < 1.0);
  GO_EXPECTS(eps > 0.0);
}

void Adam::step(const ParamRefs& params) {
  if (m_.empty()) {
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (const auto* p : params) {
      m_.emplace_back(p->value.rows(), p->value.cols());
      v_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
  GO_EXPECTS(m_.size() == params.size());
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));

  for (std::size_t i = 0; i < params.size(); ++i) {
    ParamBuffer& p = *params[i];
    GO_EXPECTS(m_[i].same_shape(p.value));
    double* value = p.value.data();
    const double* grad = p.grad.data();
    double* m = m_[i].data();
    double* v = v_[i].data();
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * grad[j] * grad[j];
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace goodones::nn
