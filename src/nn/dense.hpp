// Fully-connected layer with optional activation.
//
// Operates on (batch x in_dim) matrices; when applied to an LSTM output of
// shape (time x hidden) it acts as a time-distributed dense layer, which is
// exactly how the MAD-GAN generator projects hidden states to signals.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "nn/matrix.hpp"
#include "nn/param.hpp"

namespace goodones::nn {

enum class Activation : std::uint8_t { kLinear, kTanh, kSigmoid, kRelu };

class Dense {
 public:
  /// Weights initialized Xavier-uniform from `rng`; bias zero.
  Dense(std::size_t in_dim, std::size_t out_dim, Activation activation, common::Rng& rng);

  std::size_t in_dim() const noexcept { return weight_.value.rows(); }
  std::size_t out_dim() const noexcept { return weight_.value.cols(); }
  Activation activation() const noexcept { return activation_; }

  /// Forward pass: y = act(x * W + b). x is (n x in_dim).
  Matrix forward(const Matrix& x) const;

  /// Cache produced by forward_cached, consumed by backward.
  struct Cache {
    Matrix input;   // (n x in_dim)
    Matrix output;  // (n x out_dim), post-activation
  };

  /// Forward that also captures the tensors backward needs.
  Matrix forward_cached(const Matrix& x, Cache& cache) const;

  /// Backward pass. `grad_output` is dLoss/dy (n x out_dim). Accumulates
  /// parameter gradients and returns dLoss/dx (n x in_dim).
  Matrix backward(const Matrix& grad_output, const Cache& cache);

  /// dLoss/dx only, skipping the parameter-gradient accumulation (and
  /// therefore const). Bit-identical to the dx backward() returns; the
  /// latent-inversion hot path uses this because it never reads dW/db.
  Matrix backward_input(const Matrix& grad_output, const Cache& cache) const;

  ParamRefs parameters() noexcept { return {&weight_, &bias_}; }

  /// Direct access for serialization.
  ParamBuffer& weight() noexcept { return weight_; }
  ParamBuffer& bias() noexcept { return bias_; }
  const ParamBuffer& weight() const noexcept { return weight_; }
  const ParamBuffer& bias() const noexcept { return bias_; }

 private:
  Matrix apply_activation(Matrix pre) const noexcept;

  ParamBuffer weight_;  // (in_dim x out_dim)
  ParamBuffer bias_;    // (1 x out_dim)
  Activation activation_;
};

}  // namespace goodones::nn
