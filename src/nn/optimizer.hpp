// First-order optimizers over ParamRefs. State is keyed by position in the
// parameter list, so the same model must always present its buffers in the
// same order (which our layer classes guarantee).
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.hpp"
#include "nn/param.hpp"

namespace goodones::nn {

/// Interface for optimizers: apply accumulated gradients, then the caller
/// zeroes them (or uses `step_and_zero`).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update from the gradients currently in the buffers.
  virtual void step(const ParamRefs& params) = 0;

  /// Convenience: step then zero all gradients.
  void step_and_zero(const ParamRefs& params) {
    step(params);
    zero_all_grads(params);
  }
};

/// Plain SGD with optional momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0);

  void step(const ParamRefs& params) override;

  double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr) noexcept { lr_ = lr; }

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);

  void step(const ParamRefs& params) override;

  double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr) noexcept { lr_ = lr; }
  std::size_t step_count() const noexcept { return t_; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace goodones::nn
