// Name-based registry over the built-in DomainAdapters.
//
// Deliberately explicit (no static-initializer self-registration): a
// static-library build drops unreferenced translation units, which silently
// empties magic registries. New domains add one line to make_domain().
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/domain.hpp"

namespace goodones::domains {

/// Builds the named domain adapter. Known names: "bgms" (the paper's
/// blood-glucose case study) and "synthtel" (the synthetic sensor fleet).
/// Throws common::PreconditionError for unknown names.
std::shared_ptr<core::DomainAdapter> make_domain(std::string_view name);

/// Registered domain names, in registration order.
std::vector<std::string> available_domains();

}  // namespace goodones::domains
