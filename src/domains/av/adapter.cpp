#include "domains/av/adapter.hpp"

namespace goodones::av {

AvDomain::AvDomain(std::size_t vehicles_per_subset)
    : vehicles_per_subset_(vehicles_per_subset) {
  spec_.name = "av";
  spec_.variant = std::to_string(vehicles_per_subset) + "x2";
  spec_.num_channels = kNumChannels;
  spec_.target_channel = kSteering;
  spec_.channel_names = {"steering", "speed", "maneuver"};
  spec_.target_min = kMinSteering;
  spec_.target_max = kMaxSteering;
  // Sharp-left below -20 degrees; sharp-right above 20 on a straight and
  // above 35 mid-maneuver (the active regime expects sharper benign
  // angles, like the postprandial window expects higher glucose).
  spec_.thresholds.low = -20.0;
  spec_.thresholds.high_baseline = 20.0;
  spec_.thresholds.high_active = 35.0;
  // Exponential severity (Table-I shape): a phantom hard-right called while
  // the vehicle is actually steering hard-left is the catastrophic cell,
  // like an insulin overdose on a hypoglycemic patient.
  spec_.severity = risk::SeveritySchedule::paper_default();
  // The adversary must present a plausible "turning" reading: above the
  // regime's sharp-right threshold, below the physical steering stop. Harm
  // means the controller predicts an angle past the stability limit.
  spec_.attack_box_min_baseline = spec_.thresholds.high_baseline;
  spec_.attack_box_min_active = spec_.thresholds.high_active;
  spec_.attack_box_max = kMaxSteering;
  spec_.attack_harm_threshold = 28.0;
  // Sample-level context: recent maneuver activity explains benign sharp
  // angles, so detectors can excuse them.
  spec_.context_channels = {kManeuver};
  spec_.context_window_steps = kManeuverHoldSteps;
  spec_.num_subsets = 2;
}

std::vector<core::EntityData> AvDomain::make_entities(
    const core::PopulationConfig& population) const {
  std::vector<core::EntityData> entities;
  const auto fleet = fleet_parameters(vehicles_per_subset_);
  entities.reserve(fleet.size());
  for (const VehicleParams& vehicle : fleet) {
    const std::size_t total = population.train_steps + population.test_steps;
    data::TelemetrySeries full = simulate_vehicle(vehicle, total, population.seed);

    core::EntityData entity;
    entity.name = vehicle.name;
    entity.subset = vehicle.subset;
    // Chronological split, like the BGMS cohort.
    entity.train.values = nn::Matrix(population.train_steps, kNumChannels);
    entity.test.values = nn::Matrix(population.test_steps, kNumChannels);
    for (std::size_t t = 0; t < total; ++t) {
      auto& part = t < population.train_steps ? entity.train : entity.test;
      const std::size_t local = t < population.train_steps ? t : t - population.train_steps;
      for (std::size_t c = 0; c < kNumChannels; ++c) {
        part.values(local, c) = full.values(t, c);
      }
    }
    entity.train.true_target.assign(full.true_target.begin(),
                                    full.true_target.begin() +
                                        static_cast<std::ptrdiff_t>(population.train_steps));
    entity.test.true_target.assign(full.true_target.begin() +
                                       static_cast<std::ptrdiff_t>(population.train_steps),
                                   full.true_target.end());
    entity.train.regimes.assign(full.regimes.begin(),
                                full.regimes.begin() +
                                    static_cast<std::ptrdiff_t>(population.train_steps));
    entity.test.regimes.assign(full.regimes.begin() +
                                   static_cast<std::ptrdiff_t>(population.train_steps),
                               full.regimes.end());
    entities.push_back(std::move(entity));
  }
  return entities;
}

}  // namespace goodones::av
