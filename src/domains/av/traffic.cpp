#include "domains/av/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace goodones::av {

std::vector<VehicleParams> fleet_parameters(std::size_t vehicles_per_subset) {
  GO_EXPECTS(vehicles_per_subset >= 2);
  std::vector<VehicleParams> fleet;
  fleet.reserve(2 * vehicles_per_subset);
  for (std::size_t subset = 0; subset < 2; ++subset) {
    for (std::size_t i = 0; i < vehicles_per_subset; ++i) {
      VehicleParams vehicle;
      vehicle.name = std::string(subset == 0 ? "VA_" : "VB_") + std::to_string(i);
      vehicle.subset = subset;
      // Spread each subset from urban to highway so the per-subset
      // dendrograms have structure to find; the subsets are offset
      // slightly so the fleets are not mirror images.
      const double t =
          static_cast<double>(i) / static_cast<double>(vehicles_per_subset - 1);
      vehicle.chaos = std::clamp(0.85 - 0.75 * t + (subset == 0 ? 0.0 : -0.05), 0.0, 1.0);
      vehicle.seed_offset = (subset + 1) * 4000 + i;
      fleet.push_back(std::move(vehicle));
    }
  }
  return fleet;
}

data::TelemetrySeries simulate_vehicle(const VehicleParams& params, std::size_t steps,
                                       std::uint64_t seed) {
  GO_EXPECTS(steps > 0);
  common::Rng rng(seed * 0xC2B2AE3D27D4EB4FULL + params.seed_offset);

  // Urban vehicles maneuver often and sharply, track the route curvature
  // aggressively, and read noisier sensors; highway vehicles damp
  // everything toward straight-ahead.
  const double chaos = params.chaos;
  const double maneuver_probability = 0.004 + 0.045 * chaos;
  const double maneuver_sharpness = 6.0 + 26.0 * chaos;   // degrees
  const double curve_decay = 0.90 + 0.06 * chaos;         // maneuvers linger in traffic
  const double tracking_rate = 0.18 + 0.20 * chaos;
  const double process_noise = 0.25 + 2.0 * chaos;
  const double sensor_noise = 0.20 + 0.9 * chaos;
  const double cruise_speed = 105.0 - 60.0 * chaos;       // km/h

  data::TelemetrySeries series;
  series.values = nn::Matrix(steps, kNumChannels);
  series.true_target.resize(steps);
  std::vector<double> maneuvers(steps, 0.0);

  double angle = 0.0;  // current steering angle, degrees
  double curve = 0.0;  // route-curvature set point the controller tracks
  double speed = cruise_speed;
  for (std::size_t t = 0; t < steps; ++t) {
    double maneuver_marker = 0.0;
    if (rng.bernoulli(maneuver_probability)) {
      curve = rng.normal(0.0, maneuver_sharpness);
      maneuver_marker = std::abs(curve);
    }
    curve *= curve_decay;

    angle += tracking_rate * (curve - angle) + rng.normal(0.0, process_noise);
    const double true_angle = std::clamp(angle, kMinSteering, kMaxSteering);

    speed += 0.05 * (cruise_speed - speed) + rng.normal(0.0, 0.4 + 1.6 * chaos);

    series.true_target[t] = true_angle;
    series.values(t, kSteering) = std::clamp(true_angle + rng.normal(0.0, sensor_noise),
                                             kMinSteering, kMaxSteering);
    series.values(t, kSpeed) = speed;
    series.values(t, kManeuver) = maneuver_marker;
    maneuvers[t] = maneuver_marker;
  }
  series.regimes = data::derive_regimes(maneuvers, kManeuverHoldSteps);
  return series;
}

}  // namespace goodones::av
