// Autonomous-vehicle steering telemetry — the engine's third domain,
// promoted from examples/av_risk_profiles.
//
// The paper motivates its framework with healthcare AND autonomous
// vehicles and names AVs as the next evaluation target in its future work.
// Each vehicle reports a steering-angle signal that mean-reverts toward
// the current route curvature: highway vehicles drive long gentle curves
// (tight regulation), urban vehicles chain sharp maneuvers (volatile) —
// the same graded heterogeneity that drives vulnerability differences in
// the BGMS cohort. The adversary rewrites the steering-sensor channel to
// make the downstream controller predict a phantom sharp turn.
//
// Channels: [steering (target, degrees), speed, maneuver]. The maneuver
// channel marks maneuver onsets and drives the active regime (a sharp
// benign angle mid-maneuver is expected, like high glucose after a meal).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/timeseries.hpp"

namespace goodones::av {

/// Fixed channel layout of a vehicle telemetry matrix.
enum Channel : std::size_t { kSteering = 0, kSpeed = 1, kManeuver = 2 };
inline constexpr std::size_t kNumChannels = 3;

/// Steering-angle display/scaling bounds, degrees (positive = right).
inline constexpr double kMinSteering = -60.0;
inline constexpr double kMaxSteering = 60.0;

/// Steps a vehicle stays in the active regime after a maneuver onset.
inline constexpr std::size_t kManeuverHoldSteps = 15;

/// Behavioral parameters of one vehicle. `chaos` in [0, 1]:
/// 0 = smooth highway route, 1 = dense urban route.
struct VehicleParams {
  std::string name;
  std::size_t subset = 0;
  double chaos = 0.5;
  std::uint64_t seed_offset = 0;
};

/// The fixed parameter set of a fleet: `vehicles_per_subset` vehicles in
/// each of two subsets, spanning highway-to-urban within each subset.
std::vector<VehicleParams> fleet_parameters(std::size_t vehicles_per_subset);

/// Simulates one vehicle: returns a 3-channel telemetry series of `steps`
/// samples. Deterministic in (params, seed).
data::TelemetrySeries simulate_vehicle(const VehicleParams& params, std::size_t steps,
                                       std::uint64_t seed);

}  // namespace goodones::av
