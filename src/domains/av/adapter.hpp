// The autonomous-vehicle steering DomainAdapter — the third registered
// scenario, promoted from the examples/av_risk_profiles sketch to a full
// five-step pipeline citizen (the ROADMAP's "AV steering" open item).
//
// State semantics: sharp-left / straight / sharp-right on the steering
// channel, with the active (mid-maneuver) regime tolerating sharper benign
// angles. The adversary rewrites the steering sensor toward a plausible
// hard-right reading to provoke a phantom evasive swerve — harmful exactly
// when the downstream controller's prediction crosses into dangerous
// territory, mirroring the BGMS insulin-overdose semantics.
#pragma once

#include <cstddef>

#include "core/domain.hpp"
#include "domains/av/traffic.hpp"

namespace goodones::av {

class AvDomain final : public core::DomainAdapter {
 public:
  /// `vehicles_per_subset` sizes the fleet (two subsets; default 4 + 4).
  explicit AvDomain(std::size_t vehicles_per_subset = 4);

  const core::DomainSpec& spec() const noexcept override { return spec_; }

  std::vector<core::EntityData> make_entities(
      const core::PopulationConfig& population) const override;

 private:
  core::DomainSpec spec_;
  std::size_t vehicles_per_subset_;
};

}  // namespace goodones::av
