#include "domains/synthtel/fleet.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace goodones::synthtel {

std::vector<NodeParams> fleet_parameters(std::size_t nodes_per_subset) {
  GO_EXPECTS(nodes_per_subset >= 2);
  std::vector<NodeParams> fleet;
  fleet.reserve(2 * nodes_per_subset);
  for (std::size_t subset = 0; subset < 2; ++subset) {
    for (std::size_t i = 0; i < nodes_per_subset; ++i) {
      NodeParams node;
      node.name = std::string(subset == 0 ? "SA_" : "SB_") + std::to_string(i);
      node.subset = subset;
      // Spread each subset from volatile to stable so the per-subset
      // dendrograms have structure to find; the two subsets are offset
      // slightly so the fleets are not mirror images.
      const double t = static_cast<double>(i) / static_cast<double>(nodes_per_subset - 1);
      node.stability = std::clamp(0.08 + 0.84 * t + (subset == 0 ? 0.0 : 0.05), 0.0, 1.0);
      node.base_level = 66.0 - 10.0 * node.stability + (subset == 0 ? 0.0 : -1.5);
      node.seed_offset = (subset + 1) * 1000 + i;
      fleet.push_back(std::move(node));
    }
  }
  return fleet;
}

data::TelemetrySeries simulate_node(const NodeParams& params, std::size_t steps,
                                    std::uint64_t seed) {
  GO_EXPECTS(steps > 0);
  common::Rng rng(seed * 0x9E3779B97F4A7C15ULL + params.seed_offset);

  // Volatile nodes revert slowly, burst often and overshoot harder.
  const double stability = params.stability;
  const double return_rate = 0.04 + 0.10 * stability;
  const double burst_probability = (1.8 - 1.5 * stability) / static_cast<double>(kStepsPerDay);
  const double burst_gain = 46.0 - 22.0 * stability;   // event impulse height
  const double burst_decay = 0.88 - 0.10 * stability;  // per-step burst carryover
  const double seasonal_amp = 7.0 - 3.0 * stability;
  const double load_coupling = 0.35 - 0.15 * stability;
  const double process_noise = 1.8 - 1.2 * stability;
  const double sensor_noise = 1.6 - 1.0 * stability;

  data::TelemetrySeries series;
  series.values = nn::Matrix(steps, kNumChannels);
  series.true_target.resize(steps);
  std::vector<double> events(steps, 0.0);

  double level = params.base_level;
  double burst = 0.0;  // decaying burst compartment
  double load = 0.0;   // smoothed exogenous load
  for (std::size_t t = 0; t < steps; ++t) {
    const double phase = 2.0 * 3.14159265358979323846 *
                         static_cast<double>(t % kStepsPerDay) /
                         static_cast<double>(kStepsPerDay);
    const double seasonal = seasonal_amp * std::sin(phase);

    // Exogenous load: slow AR(1) noise the reading partially follows.
    load = 0.97 * load + rng.normal(0.0, 1.0);

    // Burst events: impulse into the decaying burst compartment.
    double event_marker = 0.0;
    if (rng.bernoulli(burst_probability)) {
      event_marker = burst_gain * rng.uniform(0.6, 1.3);
      burst += event_marker;
    }
    burst *= burst_decay;

    const double target = params.base_level + seasonal + load_coupling * load;
    level += return_rate * (target - level) + rng.normal(0.0, process_noise);
    const double true_reading =
        std::clamp(level + burst, kMinReading, kMaxReading);

    series.true_target[t] = true_reading;
    series.values(t, kReading) =
        std::clamp(true_reading + rng.normal(0.0, sensor_noise), kMinReading, kMaxReading);
    series.values(t, kLoad) = load;
    series.values(t, kEvent) = event_marker;
    events[t] = event_marker;
  }
  series.regimes = data::derive_regimes(events, kEventHoldSteps);
  return series;
}

}  // namespace goodones::synthtel
