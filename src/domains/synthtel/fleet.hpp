// Synthetic sensor-fleet telemetry — the engine's second, cheap domain.
//
// Each node monitors a scalar utilization-style signal (percent of rated
// capacity) that follows AR(1) mean reversion around a set point with daily
// seasonality, exogenous load coupling, stochastic burst events and sensor
// noise. Stable nodes revert fast and burst rarely; volatile nodes drift
// and burst often — the same graded normal-to-abnormal heterogeneity that
// drives vulnerability differences in the BGMS cohort, at a fraction of
// the simulation cost.
//
// Channels: [reading (target), load, event]. The event channel marks burst
// onsets and drives the active regime (like carbs mark meals in BGMS).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/timeseries.hpp"

namespace goodones::synthtel {

/// Fixed channel layout of a fleet telemetry matrix.
enum Channel : std::size_t { kReading = 0, kLoad = 1, kEvent = 2 };
inline constexpr std::size_t kNumChannels = 3;

/// Display/scaling bounds of the reading channel (percent of rated capacity;
/// bursts may overshoot 100).
inline constexpr double kMinReading = 0.0;
inline constexpr double kMaxReading = 160.0;

/// Steps per simulated day (5-minute cadence, matching the BGMS domain so
/// window geometry transfers unchanged).
inline constexpr std::size_t kStepsPerDay = 288;

/// Steps a node stays in the active regime after a burst onset.
inline constexpr std::size_t kEventHoldSteps = 18;  // 90 minutes

/// Behavioral parameters of one sensor node. `stability` in [0, 1]:
/// 1 = tight regulation, 0 = volatile.
struct NodeParams {
  std::string name;
  std::size_t subset = 0;
  double stability = 0.5;
  double base_level = 60.0;   ///< set point, percent of rated capacity
  std::uint64_t seed_offset = 0;
};

/// The fixed parameter set of a fleet: `nodes_per_subset` nodes in each of
/// two subsets, spanning stable-to-volatile within each subset.
std::vector<NodeParams> fleet_parameters(std::size_t nodes_per_subset);

/// Simulates one node: returns a 3-channel telemetry series of `steps`
/// samples. Deterministic in (params, seed).
data::TelemetrySeries simulate_node(const NodeParams& params, std::size_t steps,
                                    std::uint64_t seed);

}  // namespace goodones::synthtel
