// The synthetic sensor-fleet DomainAdapter — living proof that the
// risk-profiling engine's domain seam is real.
//
// Runs the full five-step pipeline on a configurable AR(1)+seasonality
// fleet at a fraction of the BGMS simulation cost: threshold-crossing
// state semantics, burst-driven regimes, and an adversary who rewrites the
// reading channel to provoke a harmful automated shutdown/failover.
#pragma once

#include <cstddef>

#include "core/domain.hpp"
#include "domains/synthtel/fleet.hpp"

namespace goodones::synthtel {

class SynthtelDomain final : public core::DomainAdapter {
 public:
  /// `nodes_per_subset` sizes the fleet (two subsets; default 4 + 4 nodes).
  explicit SynthtelDomain(std::size_t nodes_per_subset = 4);

  const core::DomainSpec& spec() const noexcept override { return spec_; }

  std::vector<core::EntityData> make_entities(
      const core::PopulationConfig& population) const override;

 private:
  core::DomainSpec spec_;
  std::size_t nodes_per_subset_;
};

}  // namespace goodones::synthtel
