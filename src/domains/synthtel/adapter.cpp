#include "domains/synthtel/adapter.hpp"

namespace goodones::synthtel {

SynthtelDomain::SynthtelDomain(std::size_t nodes_per_subset)
    : nodes_per_subset_(nodes_per_subset) {
  spec_.name = "synthtel";
  spec_.variant = std::to_string(nodes_per_subset) + "x2";
  spec_.num_channels = kNumChannels;
  spec_.target_channel = kReading;
  spec_.channel_names = {"reading", "load", "event"};
  spec_.target_min = kMinReading;
  spec_.target_max = kMaxReading;
  // Threshold-crossing state semantics: under-range below 25, over-range
  // above 95 in the baseline regime and above 120 while a burst is being
  // absorbed (the active regime tolerates higher readings, like the
  // postprandial window tolerates higher glucose).
  spec_.thresholds.low = 25.0;
  spec_.thresholds.high_baseline = 95.0;
  spec_.thresholds.high_active = 120.0;
  // Linear severity: this fleet's mis-responses degrade service rather than
  // people, so transitions are weighted 6..1 instead of exponentially —
  // and the engine must not care (the schedule is the domain's choice).
  spec_.severity = risk::SeveritySchedule::linear();
  // The adversary must stay above the regime's over-range threshold (a
  // plausible "overloaded" reading) and below the sensor ceiling; harm
  // means a prediction high enough to trigger an automated failover.
  spec_.attack_box_min_baseline = spec_.thresholds.high_baseline;
  spec_.attack_box_min_active = spec_.thresholds.high_active;
  spec_.attack_box_max = kMaxReading;
  spec_.attack_harm_threshold = 112.0;
  // Sample-level context: recent burst activity explains benign highs.
  spec_.context_channels = {kEvent};
  spec_.context_window_steps = kEventHoldSteps;
  spec_.num_subsets = 2;
}

std::vector<core::EntityData> SynthtelDomain::make_entities(
    const core::PopulationConfig& population) const {
  std::vector<core::EntityData> entities;
  const auto fleet = fleet_parameters(nodes_per_subset_);
  entities.reserve(fleet.size());
  for (const NodeParams& node : fleet) {
    const std::size_t total = population.train_steps + population.test_steps;
    data::TelemetrySeries full = simulate_node(node, total, population.seed);

    core::EntityData entity;
    entity.name = node.name;
    entity.subset = node.subset;
    // Chronological split, like the BGMS cohort.
    entity.train.values = nn::Matrix(population.train_steps, kNumChannels);
    entity.test.values = nn::Matrix(population.test_steps, kNumChannels);
    for (std::size_t t = 0; t < total; ++t) {
      auto& part = t < population.train_steps ? entity.train : entity.test;
      const std::size_t local = t < population.train_steps ? t : t - population.train_steps;
      for (std::size_t c = 0; c < kNumChannels; ++c) {
        part.values(local, c) = full.values(t, c);
      }
    }
    entity.train.true_target.assign(full.true_target.begin(),
                                    full.true_target.begin() +
                                        static_cast<std::ptrdiff_t>(population.train_steps));
    entity.test.true_target.assign(full.true_target.begin() +
                                       static_cast<std::ptrdiff_t>(population.train_steps),
                                   full.true_target.end());
    entity.train.regimes.assign(full.regimes.begin(),
                                full.regimes.begin() +
                                    static_cast<std::ptrdiff_t>(population.train_steps));
    entity.test.regimes.assign(full.regimes.begin() +
                                   static_cast<std::ptrdiff_t>(population.train_steps),
                               full.regimes.end());
    entities.push_back(std::move(entity));
  }
  return entities;
}

}  // namespace goodones::synthtel
