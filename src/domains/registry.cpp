#include "domains/registry.hpp"

#include "common/error.hpp"
#include "domains/av/adapter.hpp"
#include "domains/bgms/adapter.hpp"
#include "domains/synthtel/adapter.hpp"

namespace goodones::domains {

std::shared_ptr<core::DomainAdapter> make_domain(std::string_view name) {
  if (name == "bgms") return std::make_shared<bgms::BgmsDomain>();
  if (name == "synthtel") return std::make_shared<synthtel::SynthtelDomain>();
  if (name == "av") return std::make_shared<av::AvDomain>();
  throw common::PreconditionError("unknown domain: " + std::string(name));
}

std::vector<std::string> available_domains() {
  return {"bgms", "synthtel", "av"};
}

}  // namespace goodones::domains
