#include "domains/bgms/glucose_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace goodones::bgms {

namespace {

// Compartment rate constants (per 5-minute step). Shared across patients;
// patient individuality enters through PatientParams.
constexpr double kCarbAbsorption = 0.035;   // gut -> plasma carb absorption
constexpr double kInsulinDecay = 0.045;     // plasma insulin clearance
constexpr double kBolusPerCarb = 0.095;     // U of bolus per gram of carbs
constexpr double kBasalRate = 0.9;          // U/h baseline basal

}  // namespace

GlucoseSimulator::GlucoseSimulator(const PatientParams& params, std::uint64_t seed)
    : params_(params), rng_(seed ^ (params.seed_offset * 0x9E3779B97F4A7C15ULL)) {}

std::vector<GlucoseSimulator::MealEvent> GlucoseSimulator::plan_day(std::size_t day_start) {
  std::vector<MealEvent> events;
  // Canonical meal anchors: 07:30, 12:30, 18:30 with per-day jitter.
  const double anchors_min[] = {450.0, 750.0, 1110.0};
  const int meals = static_cast<int>(std::round(params_.meals_per_day));
  for (int m = 0; m < meals && m < 3; ++m) {
    const double jitter = rng_.normal(0.0, 25.0);  // minutes
    const double at_min = std::clamp(anchors_min[m] + jitter, 0.0, 1435.0);
    const auto step = day_start + static_cast<std::size_t>(at_min / kMinutesPerStep);
    const double spread = params_.mean_meal_carbs * params_.meal_carb_spread;
    const double carbs = std::max(8.0, rng_.normal(params_.mean_meal_carbs, spread));
    events.push_back({step, carbs});
  }
  if (rng_.bernoulli(params_.snack_probability)) {
    const double at_min = rng_.uniform(840.0, 1320.0);  // afternoon/evening snack
    const auto step = day_start + static_cast<std::size_t>(at_min / kMinutesPerStep);
    events.push_back({step, std::max(5.0, rng_.normal(15.0, 6.0))});
  }
  std::sort(events.begin(), events.end(),
            [](const MealEvent& a, const MealEvent& b) { return a.step < b.step; });
  return events;
}

double GlucoseSimulator::circadian(std::size_t step) const noexcept {
  // Dawn phenomenon: set point rises a few mg/dL in the early morning.
  const double day_fraction =
      static_cast<double>(step % kStepsPerDay) / static_cast<double>(kStepsPerDay);
  return 6.0 * std::sin(2.0 * std::numbers::pi * (day_fraction - 0.15));
}

std::vector<TelemetrySample> GlucoseSimulator::run(std::size_t steps) {
  GO_EXPECTS(steps > 0);
  std::vector<TelemetrySample> trace(steps);

  double glucose = params_.basal_glucose + rng_.normal(0.0, 8.0);
  double gut_carbs = 0.0;       // grams awaiting absorption
  double active_insulin = 0.0;  // units on board

  // Sustained disturbances currently in effect (hypo dips / hyper drifts).
  double disturbance = 0.0;        // mg/dL per step, decays
  double disturbance_decay = 0.9;

  std::vector<MealEvent> todays_meals;
  std::size_t meal_cursor = 0;
  double last_cgm = glucose;

  const double per_step_hypo = params_.hypo_event_rate / kStepsPerDay;
  const double per_step_hyper = params_.hyper_drift_rate / kStepsPerDay;

  for (std::size_t t = 0; t < steps; ++t) {
    if (t % kStepsPerDay == 0) {
      todays_meals = plan_day(t);
      meal_cursor = 0;
    }

    TelemetrySample& sample = trace[t];
    sample.basal = kBasalRate;

    // Meals: carbs hit the gut; an adherent patient boluses with error.
    while (meal_cursor < todays_meals.size() && todays_meals[meal_cursor].step == t) {
      const double carbs = todays_meals[meal_cursor].carbs;
      gut_carbs += carbs;
      sample.carbs += carbs;
      if (rng_.bernoulli(params_.bolus_adherence)) {
        const double ideal = carbs * kBolusPerCarb;
        const double dose = std::max(0.0, ideal * (1.0 + rng_.normal(0.0, params_.bolus_error)));
        active_insulin += dose;
        sample.bolus += dose;
      }
      ++meal_cursor;
    }

    // Occasional adverse events: hypo dips pull glucose down sharply for a
    // while; hyper drifts push it up (missed bolus, stress, sensor site).
    if (rng_.bernoulli(per_step_hypo)) {
      disturbance -= rng_.uniform(2.5, 5.0);
      disturbance_decay = 0.93;
    }
    if (rng_.bernoulli(per_step_hyper)) {
      disturbance += rng_.uniform(2.0, 4.5);
      disturbance_decay = 0.95;
    }

    // Compartment updates.
    const double absorbed = gut_carbs * kCarbAbsorption;
    gut_carbs -= absorbed;
    const double insulin_used = active_insulin * kInsulinDecay;
    active_insulin -= insulin_used;
    active_insulin += sample.basal / 60.0 * kMinutesPerStep * 0.2;  // basal trickle

    const double set_point = params_.basal_glucose + circadian(t);
    glucose += -params_.return_rate * (glucose - set_point);
    glucose += params_.carb_sensitivity * absorbed;
    glucose -= params_.insulin_sensitivity * insulin_used * 10.0;
    glucose += disturbance;
    glucose += rng_.normal(0.0, params_.process_noise);
    disturbance *= disturbance_decay;

    glucose = std::clamp(glucose, kMinGlucose, kMaxGlucose);
    sample.true_glucose = glucose;

    // CGM sensor: additive noise plus occasional held readings.
    if (rng_.bernoulli(params_.cgm_dropout) && t > 0) {
      sample.cgm = last_cgm;
    } else {
      sample.cgm = std::clamp(glucose + rng_.normal(0.0, params_.cgm_noise),
                              kMinGlucose, kMaxGlucose);
    }
    last_cgm = sample.cgm;
  }
  return trace;
}

}  // namespace goodones::bgms
