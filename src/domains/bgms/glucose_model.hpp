// Discrete-time glucose-insulin dynamics at the 5-minute CGM cadence.
//
// A three-compartment minimal model in the spirit of Bergman's: a gut
// compartment absorbs carbohydrates, a plasma-insulin compartment decays
// administered insulin, and glucose integrates absorption, insulin action,
// mean reversion toward the patient's set point, circadian modulation and
// process noise. This is intentionally *not* a clinical-grade simulator;
// it is calibrated to reproduce the statistical structure the paper's
// experiments depend on (time-in-range heterogeneity across patients).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "domains/bgms/patient.hpp"

namespace goodones::bgms {

/// One 5-minute telemetry step as transmitted by the BGMS.
struct TelemetrySample {
  double cgm = 0.0;    ///< measured glucose (mg/dL), with sensor noise
  double basal = 0.0;  ///< basal insulin rate (U/h)
  double bolus = 0.0;  ///< bolus insulin delivered this step (U)
  double carbs = 0.0;  ///< carbohydrates ingested this step (g)

  /// True blood glucose before sensor noise (used as ground truth for the
  /// forecaster's training target; never shown to the detectors).
  double true_glucose = 0.0;
};

/// Minutes simulated per step (CGM cadence).
inline constexpr int kMinutesPerStep = 5;
/// Steps per simulated day.
inline constexpr int kStepsPerDay = 24 * 60 / kMinutesPerStep;

/// Generates a complete telemetry trace for one patient.
class GlucoseSimulator {
 public:
  /// `seed` controls all stochastic elements; identical inputs produce
  /// identical traces on every platform.
  GlucoseSimulator(const PatientParams& params, std::uint64_t seed);

  /// Simulates `steps` consecutive 5-minute samples.
  std::vector<TelemetrySample> run(std::size_t steps);

 private:
  struct MealEvent {
    std::size_t step;
    double carbs;
  };

  /// Draws the meal plan (meals + snacks) for one day starting at `day_start`.
  std::vector<MealEvent> plan_day(std::size_t day_start);

  /// Circadian modulation of the set point (dawn phenomenon).
  double circadian(std::size_t step) const noexcept;

  PatientParams params_;
  common::Rng rng_;
};

}  // namespace goodones::bgms
