// The 12-patient OhioT1DM-like cohort (Subset A = "2018", Subset B = "2020").
//
// Parameters are fixed per patient (not sampled) so the cohort is stable
// across seeds; the *traces* are stochastic per seed. Heterogeneity follows
// the structure the paper measured: A_5, B_1 and B_2 are tightly controlled
// patients (high normal-to-abnormal ratio -> less vulnerable); A_2 is the
// most dysregulated (lowest ratio -> most vulnerable).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/timeseries.hpp"
#include "domains/bgms/glucose_model.hpp"
#include "domains/bgms/patient.hpp"

namespace goodones::bgms {

/// Fixed BGMS channel layout within a telemetry matrix: the four signals
/// the paper's MAD-GAN configuration uses (Appendix B: "number of
/// signals = 4").
enum Channel : std::size_t { kCgm = 0, kBasal = 1, kBolus = 2, kCarbs = 3 };
inline constexpr std::size_t kNumChannels = 4;

/// A patient's generated telemetry, split chronologically like OhioT1DM
/// (the first `train_steps` samples train models; the rest test them).
struct PatientTrace {
  PatientParams params;
  std::vector<TelemetrySample> train;
  std::vector<TelemetrySample> test;
};

struct CohortConfig {
  std::size_t train_steps = 10000;  ///< per patient (paper: ~10000)
  std::size_t test_steps = 2500;    ///< per patient (paper: ~2500)
  std::uint64_t seed = 2025;        ///< global seed; per-patient streams derive from it
};

/// The fixed parameter set of all 12 patients, Subset A first (A_0..A_5)
/// then Subset B (B_0..B_5).
std::vector<PatientParams> cohort_parameters();

/// Parameters of a single patient; throws PreconditionError for index > 5.
PatientParams patient_parameters(const PatientId& id);

/// Simulates the full cohort: 12 traces, each split into train/test.
std::vector<PatientTrace> generate_cohort(const CohortConfig& config);

/// Simulates one patient under the given config.
PatientTrace generate_patient(const PatientId& id, const CohortConfig& config);

/// Converts raw simulator samples to a generic telemetry series (derives
/// the meal regime from the carbs channel).
data::TelemetrySeries to_series(std::span<const TelemetrySample> samples);

}  // namespace goodones::bgms
