#include "domains/bgms/glucose_state.hpp"

namespace goodones::bgms {

data::StateThresholds glycemic_thresholds() noexcept {
  data::StateThresholds thresholds;
  thresholds.low = kHypoThreshold;
  thresholds.high_baseline = kFastingHyperThreshold;
  thresholds.high_active = kPostprandialHyperThreshold;
  return thresholds;
}

double hyper_threshold(data::Regime regime) noexcept {
  return glycemic_thresholds().high(regime);
}

data::StateLabel classify(double glucose_mgdl, data::Regime regime) noexcept {
  return glycemic_thresholds().classify(glucose_mgdl, regime);
}

std::vector<data::Regime> derive_meal_context(std::span<const double> carbs) {
  return data::derive_regimes(carbs, kPostprandialSteps);
}

}  // namespace goodones::bgms
