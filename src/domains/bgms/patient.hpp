// Synthetic Type-1-diabetes patient parameterization.
//
// The OhioT1DM dataset is distributed under a data-use agreement and cannot
// ship with this repository, so the cohort is simulated. The parameters
// below control exactly the properties the paper's result depends on:
// glycemic set point, variability of meal excursions, hypoglycemia
// tendency and sensor noise. Together they determine each patient's ratio
// of normal-to-abnormal benign samples (paper Fig. 4), which in turn drives
// vulnerability to the evasion attack (paper Table II).
#pragma once

#include <cstdint>
#include <string>

namespace goodones::bgms {

/// Which half of the cohort a patient belongs to. The paper calls the six
/// 2018 patients "Subset A" and the six 2020 patients "Subset B".
enum class Subset : std::uint8_t { kA, kB };

/// Stable identifier, e.g. {kA, 5} is the paper's patient "A_5".
struct PatientId {
  Subset subset = Subset::kA;
  std::uint8_t index = 0;

  friend bool operator==(const PatientId&, const PatientId&) = default;
};

/// Renders "A_3" / "B_1" as the paper writes them.
std::string to_string(const PatientId& id);

/// Physiological and behavioral parameters of one simulated patient.
struct PatientParams {
  PatientId id;

  // Glucose dynamics (mg/dL and per-5-minute-step rates).
  double basal_glucose = 120.0;      ///< homeostatic set point
  double return_rate = 0.035;        ///< mean-reversion rate toward set point
  double carb_sensitivity = 3.2;     ///< mg/dL rise per gram of absorbed carbs
  double insulin_sensitivity = 1.9;  ///< mg/dL drop per unit of active insulin
  double process_noise = 1.2;        ///< per-step stochastic glucose drift (std)

  // Meals and dosing behavior.
  double meals_per_day = 3.0;
  double mean_meal_carbs = 45.0;     ///< grams
  double meal_carb_spread = 0.35;    ///< relative spread of meal size
  double bolus_adherence = 0.9;      ///< probability a meal is covered by a bolus
  double bolus_error = 0.15;         ///< relative dosing error (drives excursions)
  double snack_probability = 0.25;   ///< chance of an extra small snack per day

  // Adverse-event tendencies.
  double hypo_event_rate = 0.15;     ///< expected hypoglycemic dips per day
  double hyper_drift_rate = 0.2;     ///< expected sustained hyper drifts per day

  // Sensor model.
  double cgm_noise = 2.0;            ///< CGM measurement noise std (mg/dL)
  double cgm_dropout = 0.002;        ///< probability a reading repeats (sensor hold)

  // Seed offset: the cohort combines this with the global seed so each
  // patient's trace is independent yet reproducible.
  std::uint64_t seed_offset = 0;
};

/// Physiological display bounds used throughout the paper's case study.
inline constexpr double kMinGlucose = 40.0;   ///< mg/dL, sensor floor
inline constexpr double kMaxGlucose = 499.0;  ///< mg/dL, highest value in OhioT1DM

}  // namespace goodones::bgms
