#include "domains/bgms/patient.hpp"

namespace goodones::bgms {

std::string to_string(const PatientId& id) {
  const char prefix = id.subset == Subset::kA ? 'A' : 'B';
  return std::string(1, prefix) + "_" + std::to_string(static_cast<int>(id.index));
}

}  // namespace goodones::bgms
