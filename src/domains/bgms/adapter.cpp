#include "domains/bgms/adapter.hpp"

#include "domains/bgms/glucose_state.hpp"

namespace goodones::bgms {

BgmsDomain::BgmsDomain() {
  spec_.name = "bgms";
  spec_.num_channels = kNumChannels;
  spec_.target_channel = kCgm;
  spec_.channel_names = {"cgm", "basal", "bolus", "carbs"};
  spec_.target_min = kMinGlucose;   // 40 mg/dL sensor floor
  spec_.target_max = kMaxGlucose;   // 499 mg/dL, highest value in OhioT1DM
  spec_.thresholds = glycemic_thresholds();
  spec_.severity = risk::SeveritySchedule::paper_default();  // Table I
  // The paper's constraint boxes and overdose harm level.
  spec_.attack_box_min_baseline = kFastingHyperThreshold;
  spec_.attack_box_min_active = kPostprandialHyperThreshold;
  spec_.attack_box_max = kMaxGlucose;
  spec_.attack_harm_threshold = 370.0;
  // Sample-level detector context: one hour of carb ingestion and bolus
  // dosing — what lets a detector excuse a benign postprandial excursion.
  spec_.context_channels = {kCarbs, kBolus};
  spec_.context_window_steps = 12;  // one hour at 5-minute cadence
  spec_.num_subsets = 2;  // Subset A and Subset B
}

std::vector<core::EntityData> BgmsDomain::make_entities(
    const core::PopulationConfig& population) const {
  CohortConfig cohort_config;
  cohort_config.train_steps = population.train_steps;
  cohort_config.test_steps = population.test_steps;
  cohort_config.seed = population.seed;

  std::vector<core::EntityData> entities;
  entities.reserve(12);
  for (const PatientTrace& trace : generate_cohort(cohort_config)) {
    core::EntityData entity;
    entity.name = to_string(trace.params.id);
    entity.subset = trace.params.id.subset == Subset::kA ? 0 : 1;
    entity.train = to_series(trace.train);
    entity.test = to_series(trace.test);
    entities.push_back(std::move(entity));
  }
  return entities;
}

}  // namespace goodones::bgms
