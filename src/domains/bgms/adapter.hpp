// The blood-glucose-management-system (BGMS) DomainAdapter — the paper's
// case study, expressed as the first of many scenarios the risk-profiling
// engine can run.
//
// Entities are the 12 simulated OhioT1DM-like patients (Subset A = "2018",
// Subset B = "2020"); telemetry is [CGM, basal, bolus, carbs] at 5-minute
// cadence; the adversary rewrites the CGM channel inside the paper's
// [125, 499] / [180, 499] mg/dL boxes; severity follows Table I.
#pragma once

#include "core/domain.hpp"
#include "domains/bgms/cohort.hpp"

namespace goodones::bgms {

class BgmsDomain final : public core::DomainAdapter {
 public:
  BgmsDomain();

  const core::DomainSpec& spec() const noexcept override { return spec_; }

  /// The 12-patient cohort, Subset A first (A_0..A_5) then Subset B.
  std::vector<core::EntityData> make_entities(
      const core::PopulationConfig& population) const override;

 private:
  core::DomainSpec spec_;
};

}  // namespace goodones::bgms
