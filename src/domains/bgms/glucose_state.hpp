// Glycemic-state semantics of the BGMS case study, expressed over the
// engine's generic state/regime vocabulary (data/labels.hpp).
//
// The paper's thresholds: hypoglycemia below 70 mg/dL; hyperglycemia above
// 125 mg/dL in a fasting state and above 180 mg/dL within two hours after a
// meal (postprandial). In the generic vocabulary: kLow = hypoglycemia,
// kHigh = hyperglycemia, kBaseline regime = fasting, kActive = postprandial.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/labels.hpp"

namespace goodones::bgms {

inline constexpr double kHypoThreshold = 70.0;                ///< mg/dL
inline constexpr double kFastingHyperThreshold = 125.0;       ///< mg/dL
inline constexpr double kPostprandialHyperThreshold = 180.0;  ///< mg/dL
/// Two hours at the 5-minute cadence.
inline constexpr std::size_t kPostprandialSteps = 24;

/// The paper's glycemic thresholds as a generic threshold table.
data::StateThresholds glycemic_thresholds() noexcept;

/// Hyperglycemia threshold for the given meal regime.
double hyper_threshold(data::Regime regime) noexcept;

/// Classifies a glucose value under the given meal regime.
data::StateLabel classify(double glucose_mgdl, data::Regime regime) noexcept;

/// Derives the meal regime of every step from the carbs channel: a step is
/// postprandial (kActive) if any carbs were ingested within the previous
/// two hours (inclusive of the current step).
std::vector<data::Regime> derive_meal_context(std::span<const double> carbs);

}  // namespace goodones::bgms
