#include "domains/bgms/cohort.hpp"

#include "common/error.hpp"
#include "domains/bgms/glucose_state.hpp"

namespace goodones::bgms {

data::TelemetrySeries to_series(std::span<const TelemetrySample> samples) {
  GO_EXPECTS(!samples.empty());
  data::TelemetrySeries series;
  series.values = nn::Matrix(samples.size(), kNumChannels);
  series.true_target.resize(samples.size());
  std::vector<double> carbs(samples.size());
  for (std::size_t t = 0; t < samples.size(); ++t) {
    series.values(t, kCgm) = samples[t].cgm;
    series.values(t, kBasal) = samples[t].basal;
    series.values(t, kBolus) = samples[t].bolus;
    series.values(t, kCarbs) = samples[t].carbs;
    series.true_target[t] = samples[t].true_glucose;
    carbs[t] = samples[t].carbs;
  }
  series.regimes = derive_meal_context(carbs);
  return series;
}

namespace {

/// Builds one patient's parameters from the traits that differ across the
/// cohort. `stability` in [0, 1]: 1 = tight control (high time-in-range),
/// 0 = dysregulated. Everything else derives from it plus explicit knobs.
PatientParams make_patient(PatientId id, double stability, double basal_glucose,
                           double hypo_rate, double hyper_rate) {
  PatientParams p;
  p.id = id;
  p.basal_glucose = basal_glucose;
  // Stable patients revert to their set point faster and eat smaller,
  // better-covered meals; dysregulated patients have larger excursions.
  // Magnitudes of excursions overlap across the cohort (all Type-1 patients
  // reach similar glucose peaks); what differs between tightly and loosely
  // controlled patients is the *frequency* of excursions — more snacks,
  // worse bolus adherence, noisier dosing. That matches the real OhioT1DM
  // heterogeneity and is what makes the detection problem graded rather
  // than trivially separable.
  p.return_rate = 0.022 + 0.028 * stability;
  p.carb_sensitivity = 3.4 - 0.8 * stability;
  p.mean_meal_carbs = 58.0 - 18.0 * stability;
  p.meal_carb_spread = 0.5 - 0.25 * stability;
  p.bolus_adherence = 0.72 + 0.26 * stability;
  p.bolus_error = 0.30 - 0.18 * stability;
  p.snack_probability = 0.5 - 0.35 * stability;
  p.process_noise = 2.1 - 1.2 * stability;
  p.hypo_event_rate = hypo_rate;
  p.hyper_drift_rate = hyper_rate;
  p.cgm_noise = 2.6 - 1.2 * stability;
  p.seed_offset = (id.subset == Subset::kA ? 100 : 200) + id.index;
  return p;
}

}  // namespace

std::vector<PatientParams> cohort_parameters() {
  std::vector<PatientParams> cohort;
  cohort.reserve(12);
  // Subset A ("2018" patients). A_5 is the tightly controlled outlier the
  // paper's dendrogram isolates; A_2 is the most dysregulated patient.
  // Vulnerable patients sit just below the fasting-hyper threshold with
  // large excursions, so their benign traces mix normal and abnormal
  // samples (paper Fig. 4 shows ratios between ~0.2 and ~0.9).
  // Hyper-drift events (elevated glucose with no dietary explanation) are
  // kept rare: clinically, most Type-1 hyperglycemia is meal- or dosing-
  // driven, and meal-driven excursions carry the carbohydrate context that
  // anomaly detectors legitimately use to excuse benign highs.
  cohort.push_back(make_patient({Subset::kA, 0}, 0.30, 124.0, 0.50, 0.35));
  cohort.push_back(make_patient({Subset::kA, 1}, 0.35, 122.0, 0.45, 0.30));
  cohort.push_back(make_patient({Subset::kA, 2}, 0.08, 131.0, 0.90, 0.60));
  cohort.push_back(make_patient({Subset::kA, 3}, 0.28, 126.0, 0.55, 0.35));
  cohort.push_back(make_patient({Subset::kA, 4}, 0.32, 123.0, 0.50, 0.32));
  cohort.push_back(make_patient({Subset::kA, 5}, 0.92, 116.0, 0.10, 0.08));
  // Subset B ("2020" patients). B_1 and B_2 are the less vulnerable pair.
  cohort.push_back(make_patient({Subset::kB, 0}, 0.22, 128.0, 0.65, 0.45));
  cohort.push_back(make_patient({Subset::kB, 1}, 0.82, 121.0, 0.15, 0.10));
  cohort.push_back(make_patient({Subset::kB, 2}, 0.95, 112.0, 0.08, 0.05));
  cohort.push_back(make_patient({Subset::kB, 3}, 0.30, 124.0, 0.50, 0.35));
  cohort.push_back(make_patient({Subset::kB, 4}, 0.26, 127.0, 0.60, 0.40));
  cohort.push_back(make_patient({Subset::kB, 5}, 0.33, 122.0, 0.45, 0.30));
  return cohort;
}

PatientParams patient_parameters(const PatientId& id) {
  GO_EXPECTS(id.index < 6);
  const auto all = cohort_parameters();
  const std::size_t offset = id.subset == Subset::kA ? 0 : 6;
  return all[offset + id.index];
}

PatientTrace generate_patient(const PatientId& id, const CohortConfig& config) {
  GO_EXPECTS(config.train_steps > 0 && config.test_steps > 0);
  const PatientParams params = patient_parameters(id);
  GlucoseSimulator simulator(params, config.seed);
  auto full = simulator.run(config.train_steps + config.test_steps);

  PatientTrace trace;
  trace.params = params;
  trace.train.assign(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(config.train_steps));
  trace.test.assign(full.begin() + static_cast<std::ptrdiff_t>(config.train_steps), full.end());
  return trace;
}

std::vector<PatientTrace> generate_cohort(const CohortConfig& config) {
  std::vector<PatientTrace> cohort;
  cohort.reserve(12);
  for (const Subset subset : {Subset::kA, Subset::kB}) {
    for (std::uint8_t i = 0; i < 6; ++i) {
      cohort.push_back(generate_patient({subset, i}, config));
    }
  }
  return cohort;
}

}  // namespace goodones::bgms
