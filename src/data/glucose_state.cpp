#include "data/glucose_state.hpp"

#include "common/error.hpp"

namespace goodones::data {

double hyper_threshold(MealContext context) noexcept {
  return context == MealContext::kFasting ? kFastingHyperThreshold
                                          : kPostprandialHyperThreshold;
}

GlycemicState classify(double glucose_mgdl, MealContext context) noexcept {
  if (glucose_mgdl < kHypoThreshold) return GlycemicState::kHypo;
  if (glucose_mgdl > hyper_threshold(context)) return GlycemicState::kHyper;
  return GlycemicState::kNormal;
}

bool is_abnormal(GlycemicState state) noexcept {
  return state != GlycemicState::kNormal;
}

std::vector<MealContext> derive_meal_context(std::span<const double> carbs) {
  std::vector<MealContext> context(carbs.size(), MealContext::kFasting);
  std::size_t steps_since_meal = kPostprandialSteps + 1;
  for (std::size_t t = 0; t < carbs.size(); ++t) {
    if (carbs[t] > 0.0) steps_since_meal = 0;
    else ++steps_since_meal;
    if (steps_since_meal <= kPostprandialSteps) context[t] = MealContext::kPostprandial;
  }
  return context;
}

double normal_to_abnormal_ratio(std::span<const double> glucose,
                                std::span<const MealContext> context) {
  GO_EXPECTS(glucose.size() == context.size());
  if (glucose.empty()) return 0.0;
  std::size_t normal = 0;
  for (std::size_t t = 0; t < glucose.size(); ++t) {
    if (classify(glucose[t], context[t]) == GlycemicState::kNormal) ++normal;
  }
  return static_cast<double>(normal) / static_cast<double>(glucose.size());
}

const char* to_string(GlycemicState state) noexcept {
  switch (state) {
    case GlycemicState::kHypo: return "Hypo";
    case GlycemicState::kNormal: return "Normal";
    case GlycemicState::kHyper: return "Hyper";
  }
  return "?";
}

const char* to_string(MealContext context) noexcept {
  return context == MealContext::kFasting ? "Fasting" : "Postprandial";
}

}  // namespace goodones::data
