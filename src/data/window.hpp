// Sliding-window extraction for forecasting and anomaly detection.
//
// Default geometry follows the paper's MAD-GAN configuration: sequence
// length 12, step 1, with the forecasting target `horizon` steps past the
// window end. Each window also records the operating regime at prediction
// time, which decides the attack scenario and the diagnostic threshold.
#pragma once

#include <cstddef>
#include <vector>

#include "data/labels.hpp"
#include "data/scaler.hpp"
#include "data/timeseries.hpp"
#include "nn/matrix.hpp"

namespace goodones::data {

/// Default window geometry (paper Appendix B + 30-minute forecast horizon).
inline constexpr std::size_t kDefaultSeqLen = 12;
inline constexpr std::size_t kDefaultHorizon = 6;

struct Window {
  nn::Matrix features;        ///< seq_len x channels, raw (unscaled) units
  double target_value = 0;    ///< true target signal at end+horizon (raw units)
  std::size_t end_index = 0;  ///< index of the window's last step in the series
  Regime regime = Regime::kBaseline;  ///< regime at prediction time
};

struct WindowConfig {
  std::size_t seq_len = kDefaultSeqLen;
  std::size_t step = 1;
  std::size_t horizon = kDefaultHorizon;
};

/// Extracts forecasting windows: every `step` positions, a (seq_len x C)
/// feature block plus the target signal `horizon` steps later. Windows
/// whose target would fall past the end of the series are dropped.
std::vector<Window> make_windows(const TelemetrySeries& series, const WindowConfig& config);

/// Flattens a window's features row-major into a single vector of
/// seq_len * channels values (kNN / OneClassSVM input).
std::vector<double> flatten(const nn::Matrix& features);

/// Applies a fitted scaler to a window's features (returns a scaled copy).
nn::Matrix scale_window(const nn::Matrix& features, const MinMaxScaler& scaler);

}  // namespace goodones::data
