#include "data/scaler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "nn/serialize.hpp"

namespace goodones::data {
namespace {

/// Scaler section tags: a scaler of the wrong kind in a composite artifact
/// stream fails loudly instead of silently misinterpreting bytes.
constexpr std::uint32_t kMinMaxTag = 0x4D4D5343;    // "MMSC"
constexpr std::uint32_t kStandardTag = 0x53545343;  // "STSC"

}  // namespace

void MinMaxScaler::fit(const nn::Matrix& data) {
  mins_.clear();
  maxs_.clear();
  partial_fit(data);
}

void MinMaxScaler::partial_fit(const nn::Matrix& data) {
  GO_EXPECTS(data.rows() > 0);
  if (mins_.empty()) {
    mins_.assign(data.cols(), std::numeric_limits<double>::infinity());
    maxs_.assign(data.cols(), -std::numeric_limits<double>::infinity());
  }
  GO_EXPECTS(data.cols() == mins_.size());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      mins_[c] = std::min(mins_[c], data(r, c));
      maxs_[c] = std::max(maxs_[c], data(r, c));
    }
  }
}

nn::Matrix MinMaxScaler::transform(const nn::Matrix& data) const {
  GO_EXPECTS(fitted());
  GO_EXPECTS(data.cols() == mins_.size());
  nn::Matrix out(data.rows(), data.cols());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      out(r, c) = transform_value(data(r, c), c);
    }
  }
  return out;
}

nn::Matrix MinMaxScaler::inverse_transform(const nn::Matrix& data) const {
  GO_EXPECTS(fitted());
  GO_EXPECTS(data.cols() == mins_.size());
  nn::Matrix out(data.rows(), data.cols());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      out(r, c) = inverse_transform_value(data(r, c), c);
    }
  }
  return out;
}

double MinMaxScaler::transform_value(double value, std::size_t column) const {
  GO_EXPECTS(column < mins_.size());
  const double range = maxs_[column] - mins_[column];
  if (range <= 0.0) return 0.5;
  return (value - mins_[column]) / range;
}

double MinMaxScaler::inverse_transform_value(double value, std::size_t column) const {
  GO_EXPECTS(column < mins_.size());
  const double range = maxs_[column] - mins_[column];
  if (range <= 0.0) return mins_[column];
  return mins_[column] + value * range;
}

double MinMaxScaler::column_min(std::size_t column) const {
  GO_EXPECTS(column < mins_.size());
  return mins_[column];
}

double MinMaxScaler::column_max(std::size_t column) const {
  GO_EXPECTS(column < maxs_.size());
  return maxs_[column];
}

void MinMaxScaler::set_column_range(std::size_t column, double min_value, double max_value) {
  GO_EXPECTS(fitted());
  GO_EXPECTS(column < mins_.size());
  GO_EXPECTS(min_value < max_value);
  mins_[column] = min_value;
  maxs_[column] = max_value;
}

void MinMaxScaler::save(std::ostream& out) const {
  nn::write_u32(out, kMinMaxTag);
  nn::write_f64_vector(out, mins_);
  nn::write_f64_vector(out, maxs_);
}

void MinMaxScaler::load(std::istream& in) {
  nn::expect_u32(in, kMinMaxTag, "min-max scaler tag");
  std::vector<double> mins = nn::read_f64_vector(in, "scaler mins");
  std::vector<double> maxs = nn::read_f64_vector(in, "scaler maxs");
  if (mins.size() != maxs.size()) {
    throw common::SerializationError("min-max scaler column count mismatch");
  }
  // fit()/set_column_range() guarantee finite ranges with max >= min
  // (equality = degenerate constant column, handled by transform); anything
  // else is a corrupt artifact that would otherwise serve NaN features.
  for (std::size_t c = 0; c < mins.size(); ++c) {
    if (!std::isfinite(mins[c]) || !std::isfinite(maxs[c]) || maxs[c] < mins[c]) {
      throw common::SerializationError("min-max scaler artifact carries an invalid range");
    }
  }
  mins_ = std::move(mins);
  maxs_ = std::move(maxs);
}

void StandardScaler::save(std::ostream& out) const {
  nn::write_u32(out, kStandardTag);
  nn::write_f64_vector(out, means_);
  nn::write_f64_vector(out, stds_);
}

void StandardScaler::load(std::istream& in) {
  nn::expect_u32(in, kStandardTag, "standard scaler tag");
  std::vector<double> means = nn::read_f64_vector(in, "scaler means");
  std::vector<double> stds = nn::read_f64_vector(in, "scaler stds");
  if (means.size() != stds.size()) {
    throw common::SerializationError("standard scaler column count mismatch");
  }
  // fit() guarantees finite means and strictly positive stds; anything
  // else divides by zero (or NaN-poisons) every transform.
  for (std::size_t c = 0; c < means.size(); ++c) {
    if (!std::isfinite(means[c]) || !std::isfinite(stds[c]) || stds[c] <= 0.0) {
      throw common::SerializationError("standard scaler artifact carries an invalid std");
    }
  }
  means_ = std::move(means);
  stds_ = std::move(stds);
}

void StandardScaler::fit(const nn::Matrix& data) {
  GO_EXPECTS(data.rows() > 1);
  means_.assign(data.cols(), 0.0);
  stds_.assign(data.cols(), 0.0);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) means_[c] += data(r, c);
  }
  for (double& m : means_) m /= static_cast<double>(data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      const double d = data(r, c) - means_[c];
      stds_[c] += d * d;
    }
  }
  for (double& s : stds_) {
    s = std::sqrt(s / static_cast<double>(data.rows() - 1));
    if (s < 1e-12) s = 1.0;  // constant column: pass through centered
  }
}

nn::Matrix StandardScaler::transform(const nn::Matrix& data) const {
  GO_EXPECTS(fitted());
  GO_EXPECTS(data.cols() == means_.size());
  nn::Matrix out(data.rows(), data.cols());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      out(r, c) = (data(r, c) - means_[c]) / stds_[c];
    }
  }
  return out;
}

}  // namespace goodones::data
