// Multivariate telemetry series and conversion from simulator output.
//
// Channel layout is fixed library-wide: [CGM, basal, bolus, carbs] — the
// four signals the paper's MAD-GAN configuration uses (Appendix B:
// "number of signals = 4").
#pragma once

#include <span>
#include <vector>

#include "data/glucose_state.hpp"
#include "nn/matrix.hpp"
#include "sim/glucose_model.hpp"

namespace goodones::data {

/// Fixed channel indices within a telemetry matrix.
enum Channel : std::size_t { kCgm = 0, kBasal = 1, kBolus = 2, kCarbs = 3 };
inline constexpr std::size_t kNumChannels = 4;

/// A patient telemetry segment: (steps x kNumChannels) values plus the
/// derived per-step meal context and the ground-truth glucose used only for
/// forecaster supervision.
struct TelemetrySeries {
  nn::Matrix values;                  // steps x 4
  std::vector<MealContext> context;   // per step
  std::vector<double> true_glucose;   // per step

  std::size_t steps() const noexcept { return values.rows(); }

  /// Column view of one channel (copies into a vector).
  std::vector<double> channel(Channel c) const;
};

/// Converts raw simulator samples to a series (derives meal context).
TelemetrySeries to_series(std::span<const sim::TelemetrySample> samples);

}  // namespace goodones::data
