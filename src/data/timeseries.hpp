// Multivariate telemetry series — the engine's domain-agnostic data unit.
//
// A DomainAdapter decides the channel layout (how many signals, which one
// is the forecast/attack target) and builds these series from its own
// simulator or dataset; everything downstream (windowing, forecasting,
// attack campaigns, detectors) only sees the matrix plus per-step regimes.
#pragma once

#include <vector>

#include "data/labels.hpp"
#include "nn/matrix.hpp"

namespace goodones::data {

/// One monitored entity's telemetry segment: (steps x channels) raw values
/// plus the per-step operating regime and the ground-truth target signal
/// used only for forecaster supervision (never shown to detectors).
struct TelemetrySeries {
  nn::Matrix values;                // steps x channels
  std::vector<Regime> regimes;      // per step
  std::vector<double> true_target;  // per step, raw units

  std::size_t steps() const noexcept { return values.rows(); }
  std::size_t num_channels() const noexcept { return values.cols(); }

  /// Column view of one channel (copies into a vector).
  std::vector<double> channel(std::size_t c) const;
};

}  // namespace goodones::data
