#include "data/window.hpp"

#include "common/error.hpp"

namespace goodones::data {

std::vector<Window> make_windows(const TelemetrySeries& series, const WindowConfig& config) {
  GO_EXPECTS(config.seq_len > 0);
  GO_EXPECTS(config.step > 0);
  const std::size_t steps = series.steps();
  const std::size_t channels = series.num_channels();
  std::vector<Window> windows;
  if (steps < config.seq_len + config.horizon) return windows;

  const std::size_t last_start = steps - config.seq_len - config.horizon;
  windows.reserve(last_start / config.step + 1);
  for (std::size_t start = 0; start <= last_start; start += config.step) {
    Window w;
    w.features = nn::Matrix(config.seq_len, channels);
    for (std::size_t t = 0; t < config.seq_len; ++t) {
      for (std::size_t c = 0; c < channels; ++c) {
        w.features(t, c) = series.values(start + t, c);
      }
    }
    w.end_index = start + config.seq_len - 1;
    const std::size_t target_index = w.end_index + config.horizon;
    w.target_value = series.true_target[target_index];
    w.regime = series.regimes[target_index];
    windows.push_back(std::move(w));
  }
  return windows;
}

std::vector<double> flatten(const nn::Matrix& features) {
  std::vector<double> out;
  out.reserve(features.size());
  for (std::size_t r = 0; r < features.rows(); ++r) {
    const auto row = features.row(r);
    out.insert(out.end(), row.begin(), row.end());
  }
  return out;
}

nn::Matrix scale_window(const nn::Matrix& features, const MinMaxScaler& scaler) {
  return scaler.transform(features);
}

}  // namespace goodones::data
