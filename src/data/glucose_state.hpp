// Glycemic state classification with fasting/postprandial context.
//
// The paper's thresholds: hypoglycemia below 70 mg/dL; hyperglycemia above
// 125 mg/dL in a fasting state and above 180 mg/dL within two hours after a
// meal (postprandial). Everything between is "normal".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace goodones::data {

enum class GlycemicState : std::uint8_t { kHypo, kNormal, kHyper };

/// Meal context at a sample: fasting vs within two hours postprandial.
enum class MealContext : std::uint8_t { kFasting, kPostprandial };

inline constexpr double kHypoThreshold = 70.0;             ///< mg/dL
inline constexpr double kFastingHyperThreshold = 125.0;    ///< mg/dL
inline constexpr double kPostprandialHyperThreshold = 180.0;  ///< mg/dL
/// Two hours at the 5-minute cadence.
inline constexpr std::size_t kPostprandialSteps = 24;

/// Hyperglycemia threshold for the given context.
double hyper_threshold(MealContext context) noexcept;

/// Classifies a glucose value under the given meal context.
GlycemicState classify(double glucose_mgdl, MealContext context) noexcept;

/// True if the state counts as "abnormal" (hypo or hyper).
bool is_abnormal(GlycemicState state) noexcept;

/// Derives the meal context of every step from the carbs channel: a step is
/// postprandial if any carbs were ingested within the previous two hours
/// (inclusive of the current step).
std::vector<MealContext> derive_meal_context(std::span<const double> carbs);

/// The paper's Fig. 4 statistic: fraction of benign samples in the normal
/// state. Requires equal lengths; empty input returns 0.
double normal_to_abnormal_ratio(std::span<const double> glucose,
                                std::span<const MealContext> context);

const char* to_string(GlycemicState state) noexcept;
const char* to_string(MealContext context) noexcept;

}  // namespace goodones::data
