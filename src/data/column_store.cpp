#include "data/column_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <system_error>

#include "common/error.hpp"
#include "nn/serialize.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define GOODONES_HAS_MMAP 1
#else
#define GOODONES_HAS_MMAP 0
#endif

namespace goodones::data {

namespace {

using common::PreconditionError;
using common::SerializationError;

// Segment geometry guard mirroring nn/serialize's kMaxElements: a corrupt
// header must fail loudly instead of driving a multi-gigabyte allocation.
constexpr std::uint64_t kMaxSegmentElements = 1ull << 26;

constexpr std::size_t kHeaderBytes = 40;  // magic+version+channels+capacity+start+count
constexpr std::size_t kCrcBytes = 4;

std::uint64_t read_header_u64(const std::byte* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t read_header_u32(const std::byte* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

// --- MappedSegment -----------------------------------------------------------

MappedSegment::MappedSegment(const std::filesystem::path& path, bool allow_mmap) {
#if GOODONES_HAS_MMAP
  if (allow_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st {};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                            MAP_PRIVATE, fd, 0);
        if (addr != MAP_FAILED) {
          data_ = static_cast<const std::byte*>(addr);
          size_ = static_cast<std::size_t>(st.st_size);
          mapped_ = true;
        }
      }
      ::close(fd);
      if (mapped_) return;
    }
  }
#else
  (void)allow_mmap;
#endif
  // Portable fallback: slurp the whole file. The vector's allocation comes
  // from operator new, which guarantees at least 16-byte alignment — enough
  // for the f64 columns at the 8-aligned header offset.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw SerializationError("cannot open segment file: " + path.string());
  }
  const std::streamoff size = in.tellg();
  if (size <= 0) {
    throw SerializationError("empty segment file: " + path.string());
  }
  fallback_.resize(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(fallback_.data()), size);
  if (!in) {
    throw SerializationError("short read of segment file: " + path.string());
  }
  data_ = fallback_.data();
  size_ = fallback_.size();
}

MappedSegment::~MappedSegment() {
#if GOODONES_HAS_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
}

// --- Segment -----------------------------------------------------------------

Segment::Segment(std::size_t channels, std::size_t capacity, std::uint64_t start_tick)
    : channels_(channels), capacity_(capacity), start_tick_(start_tick) {
  GO_EXPECTS(channels > 0);
  GO_EXPECTS(capacity > 0);
  GO_EXPECTS(static_cast<std::uint64_t>(channels) * capacity <= kMaxSegmentElements);
  // Full preallocation is the lifetime contract: append() never moves
  // storage, so spans handed to WindowViews stay valid.
  columns_.resize(channels_ * capacity_, 0.0);
  regime_bytes_.resize(capacity_, 0);
}

void Segment::append(std::span<const double> values, Regime regime) {
  GO_EXPECTS(writable());
  GO_EXPECTS(!full());
  GO_EXPECTS(values.size() == channels_);
  for (std::size_t c = 0; c < channels_; ++c) {
    columns_[c * capacity_ + count_] = values[c];
  }
  regime_bytes_[count_] = static_cast<std::uint8_t>(regime);
  ++count_;
}

std::span<const double> Segment::channel(std::size_t c) const noexcept {
  if (mapping_) return {mapped_columns_ + c * count_, count_};
  return {columns_.data() + c * capacity_, count_};
}

Regime Segment::regime(std::size_t i) const noexcept {
  const std::uint8_t raw = mapping_ ? mapped_regimes_[i] : regime_bytes_[i];
  return static_cast<Regime>(raw);
}

std::span<const std::uint8_t> Segment::regimes() const noexcept {
  if (mapping_) return {mapped_regimes_, count_};
  return {regime_bytes_.data(), count_};
}

void Segment::save(const std::filesystem::path& path) const {
  GO_EXPECTS(count_ > 0);
  std::ostringstream out(std::ios::binary);
  nn::write_u32(out, kMagic);
  nn::write_u32(out, kVersion);
  nn::write_u64(out, channels_);
  nn::write_u64(out, capacity_);
  nn::write_u64(out, start_tick_);
  nn::write_u64(out, count_);
  // Channel-major f64 columns with count stride: the file holds exactly the
  // filled ticks, so a partial flush and the sealed rewrite share one format.
  for (std::size_t c = 0; c < channels_; ++c) {
    const auto col = channel(c);
    out.write(reinterpret_cast<const char*>(col.data()),
              static_cast<std::streamsize>(col.size() * sizeof(double)));
  }
  const auto regs = regimes();
  out.write(reinterpret_cast<const char*>(regs.data()),
            static_cast<std::streamsize>(regs.size()));
  std::string body = std::move(out).str();
  const std::uint32_t crc = nn::crc32(body.data(), body.size());
  body.append(reinterpret_cast<const char*>(&crc), sizeof(crc));

  // Atomic replace: a crash mid-write never leaves a torn segment behind.
  std::filesystem::create_directories(path.parent_path());
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      throw SerializationError("cannot open segment file for writing: " + tmp.string());
    }
    file.write(body.data(), static_cast<std::streamsize>(body.size()));
    if (!file) {
      throw SerializationError("segment write failed: " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, path);
}

std::shared_ptr<const Segment> Segment::load(const std::filesystem::path& path,
                                             std::size_t expected_channels,
                                             bool allow_mmap) {
  auto mapping = std::make_shared<MappedSegment>(path, allow_mmap);
  const std::byte* base = mapping->data();
  const std::size_t size = mapping->size();
  if (size < kHeaderBytes + kCrcBytes) {
    throw SerializationError("segment file truncated (no header): " + path.string());
  }
  if (read_header_u32(base) != kMagic) {
    throw SerializationError("bad segment magic: " + path.string());
  }
  if (read_header_u32(base + 4) != kVersion) {
    throw SerializationError("bad segment version: " + path.string());
  }
  const std::uint64_t channels = read_header_u64(base + 8);
  const std::uint64_t capacity = read_header_u64(base + 16);
  const std::uint64_t start_tick = read_header_u64(base + 24);
  const std::uint64_t count = read_header_u64(base + 32);
  if (channels != expected_channels) {
    throw SerializationError("segment channel count mismatch: file has " +
                             std::to_string(channels) + ", store expects " +
                             std::to_string(expected_channels) + ": " + path.string());
  }
  if (count == 0 || capacity == 0 || count > capacity ||
      channels * capacity > kMaxSegmentElements) {
    throw SerializationError("implausible segment geometry (corrupt file?): " +
                             path.string());
  }
  const std::uint64_t expected_size =
      kHeaderBytes + channels * count * sizeof(double) + count + kCrcBytes;
  if (size != expected_size) {
    throw SerializationError("segment size mismatch (truncated or corrupt): " +
                             path.string() + " has " + std::to_string(size) +
                             " bytes, header implies " + std::to_string(expected_size));
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, base + size - kCrcBytes, sizeof(stored_crc));
  const std::uint32_t actual_crc = nn::crc32(base, size - kCrcBytes);
  if (stored_crc != actual_crc) {
    throw SerializationError("segment CRC mismatch (corrupt file): " + path.string());
  }
  const auto* regimes = reinterpret_cast<const std::uint8_t*>(
      base + kHeaderBytes + channels * count * sizeof(double));
  for (std::uint64_t i = 0; i < count; ++i) {
    if (regimes[i] > static_cast<std::uint8_t>(Regime::kActive)) {
      throw SerializationError("segment holds invalid regime byte: " + path.string());
    }
  }

  auto segment = std::shared_ptr<Segment>(new Segment());
  segment->channels_ = channels;
  segment->capacity_ = capacity;
  segment->count_ = count;
  segment->start_tick_ = start_tick;
  segment->mapping_ = std::move(mapping);
  segment->mapped_columns_ = reinterpret_cast<const double*>(base + kHeaderBytes);
  segment->mapped_regimes_ = regimes;
  return segment;
}

// --- WindowView --------------------------------------------------------------

double WindowView::at(std::size_t t, std::size_t c) const noexcept {
  for (const auto& piece : pieces_) {
    if (t < piece.count) return piece.segment->channel(c)[piece.first + t];
    t -= piece.count;
  }
  return 0.0;  // out of range; bounds are the caller's contract
}

std::span<const double> WindowView::piece_channel(std::size_t p, std::size_t c) const noexcept {
  const auto& piece = pieces_[p];
  return piece.segment->channel(c).subspan(piece.first, piece.count);
}

void WindowView::gather(nn::Matrix& out) const {
  if (out.rows() != rows_ || out.cols() != cols_) {
    out = nn::Matrix(rows_, cols_);
  }
  std::size_t row_base = 0;
  for (const auto& piece : pieces_) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const auto col = piece.segment->channel(c).subspan(piece.first, piece.count);
      for (std::size_t i = 0; i < piece.count; ++i) {
        out(row_base + i, c) = col[i];
      }
    }
    row_base += piece.count;
  }
}

nn::Matrix WindowView::materialize() const {
  nn::Matrix out(rows_, cols_);
  gather(out);
  return out;
}

// --- ColumnStore -------------------------------------------------------------

namespace {

/// Entity names become directory names under the store root, so they must
/// be safe path components.
void validate_entity_name(std::string_view entity) {
  if (entity.empty() || entity == "." || entity == ".." ||
      entity.find('/') != std::string_view::npos ||
      entity.find('\\') != std::string_view::npos) {
    throw PreconditionError("invalid entity name for column store: '" +
                            std::string(entity) + "'");
  }
}

constexpr const char* kSegmentPrefix = "seg_";
constexpr const char* kSegmentSuffix = ".col";

}  // namespace

ColumnStore::ColumnStore(ColumnStoreConfig config, std::size_t num_channels)
    : config_(std::move(config)), channels_(num_channels) {
  GO_EXPECTS(channels_ > 0);
  GO_EXPECTS(config_.segment_capacity > 0);
  if (config_.root.empty()) return;
  std::filesystem::create_directories(config_.root);
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(config_.root)) {
    if (entry.is_directory()) names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  for (const auto& name : names) load_entity(name);
}

std::filesystem::path ColumnStore::entity_dir(std::string_view entity) const {
  return config_.root / std::filesystem::path(std::string(entity));
}

std::filesystem::path ColumnStore::segment_path(const std::filesystem::path& dir,
                                                std::size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%06zu%s", kSegmentPrefix, index, kSegmentSuffix);
  return dir / name;
}

void ColumnStore::load_entity(const std::string& entity) {
  validate_entity_name(entity);
  const std::filesystem::path dir = entity_dir(entity);
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with(kSegmentPrefix) && name.ends_with(kSegmentSuffix)) {
      files.push_back(entry.path());
    }
  }
  if (files.empty()) return;
  std::sort(files.begin(), files.end());

  EntityColumns columns;
  std::uint64_t expected_start = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i] != segment_path(dir, i)) {
      throw SerializationError("segment chain has a gap: expected " +
                               segment_path(dir, i).string() + ", found " +
                               files[i].string());
    }
    auto segment = Segment::load(files[i], channels_, config_.mmap_reads);
    if (segment->start_tick() != expected_start) {
      throw SerializationError("segment chain discontinuity in " + files[i].string() +
                               ": starts at tick " + std::to_string(segment->start_tick()) +
                               ", expected " + std::to_string(expected_start));
    }
    if (i + 1 < files.size() && segment->count() != segment->capacity()) {
      throw SerializationError("non-final segment is partial (corrupt chain): " +
                               files[i].string());
    }
    expected_start += segment->count();
    const bool final_partial =
        i + 1 == files.size() && segment->count() < segment->capacity();
    if (final_partial) {
      // Resume appending where the trace left off: copy the partial tail
      // into a writable segment (mapped segments are immutable).
      auto active = std::make_shared<Segment>(channels_, config_.segment_capacity,
                                              segment->start_tick());
      std::vector<double> tick(channels_);
      for (std::size_t t = 0; t < segment->count(); ++t) {
        for (std::size_t c = 0; c < channels_; ++c) tick[c] = segment->channel(c)[t];
        active->append(tick, segment->regime(t));
      }
      columns.active = std::move(active);
    } else {
      columns.sealed.push_back(std::move(segment));
    }
  }
  columns.total_ticks = expected_start;
  entities_.emplace(entity, std::move(columns));
}

void ColumnStore::append(std::string_view entity, std::span<const double> values,
                         Regime regime) {
  GO_EXPECTS(values.size() == channels_);
  validate_entity_name(entity);
  std::unique_lock lock(mutex_);
  auto it = entities_.find(entity);
  if (it == entities_.end()) {
    it = entities_.emplace(std::string(entity), EntityColumns{}).first;
  }
  EntityColumns& columns = it->second;
  if (!columns.active) {
    columns.active = std::make_shared<Segment>(channels_, config_.segment_capacity,
                                               columns.total_ticks);
  }
  columns.active->append(values, regime);
  ++columns.total_ticks;
  if (columns.active->full()) seal_active(it->first, columns);
}

void ColumnStore::append_block(std::string_view entity, const nn::Matrix& ticks,
                               std::span<const Regime> regimes) {
  GO_EXPECTS(ticks.rows() == regimes.size());
  GO_EXPECTS(ticks.empty() || ticks.cols() == channels_);
  for (std::size_t t = 0; t < ticks.rows(); ++t) {
    append(entity, ticks.row(t), regimes[t]);
  }
}

void ColumnStore::seal_active(const std::string& entity, EntityColumns& columns) {
  if (!config_.root.empty()) {
    const auto path = segment_path(entity_dir(entity), columns.sealed.size());
    columns.active->save(path);
    // Swap in the mapped twin. Any WindowView still holding the writable
    // segment keeps it alive through its shared_ptr; new views read the
    // (bitwise-identical) file-backed columns.
    columns.sealed.push_back(Segment::load(path, channels_, config_.mmap_reads));
  } else {
    columns.sealed.push_back(columns.active);
  }
  columns.active = nullptr;
}

std::uint64_t ColumnStore::ticks(std::string_view entity) const {
  std::shared_lock lock(mutex_);
  const auto it = entities_.find(entity);
  return it == entities_.end() ? 0 : it->second.total_ticks;
}

std::vector<std::string> ColumnStore::entity_names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entities_.size());
  for (const auto& [name, _] : entities_) names.push_back(name);
  return names;
}

WindowView ColumnStore::cut_window(const EntityColumns& columns, std::uint64_t end_tick,
                                   std::size_t seq_len) const {
  if (end_tick >= columns.total_ticks) {
    throw PreconditionError("window end tick " + std::to_string(end_tick) +
                            " past stored history (" +
                            std::to_string(columns.total_ticks) + " ticks)");
  }
  if (end_tick + 1 < seq_len) {
    throw PreconditionError("window of " + std::to_string(seq_len) +
                            " ticks ending at tick " + std::to_string(end_tick) +
                            " would start before tick 0");
  }
  const std::uint64_t first = end_tick + 1 - seq_len;

  WindowView view;
  view.rows_ = seq_len;
  view.cols_ = channels_;
  view.end_tick_ = end_tick;

  std::uint64_t tick = first;
  const auto add_from = [&](std::shared_ptr<const Segment> segment) {
    if (tick > end_tick) return;
    const std::uint64_t seg_end = segment->start_tick() + segment->count();
    if (seg_end <= tick || segment->start_tick() > end_tick) return;
    const std::size_t first_in = static_cast<std::size_t>(tick - segment->start_tick());
    const std::size_t take =
        static_cast<std::size_t>(std::min<std::uint64_t>(end_tick + 1, seg_end) - tick);
    view.pieces_.push_back(WindowView::Piece{std::move(segment), first_in, take});
    tick += take;
  };
  // Skip segments entirely before the window, then take pieces in order.
  auto it = std::partition_point(
      columns.sealed.begin(), columns.sealed.end(),
      [&](const auto& s) { return s->start_tick() + s->count() <= first; });
  for (; it != columns.sealed.end() && tick <= end_tick; ++it) add_from(*it);
  if (columns.active) add_from(columns.active);
  GO_ENSURES(tick == end_tick + 1);

  const auto& last = view.pieces_.back();
  view.regime_ = last.segment->regime(last.first + last.count - 1);
  return view;
}

WindowView ColumnStore::window_at(std::string_view entity, std::uint64_t end_tick,
                                  std::size_t seq_len) const {
  GO_EXPECTS(seq_len > 0);
  std::shared_lock lock(mutex_);
  const auto it = entities_.find(entity);
  if (it == entities_.end()) {
    throw PreconditionError("unknown entity in column store: '" + std::string(entity) + "'");
  }
  return cut_window(it->second, end_tick, seq_len);
}

std::vector<WindowView> ColumnStore::latest_windows(std::string_view entity,
                                                    std::size_t seq_len,
                                                    std::size_t count) const {
  GO_EXPECTS(seq_len > 0);
  GO_EXPECTS(count > 0);
  std::shared_lock lock(mutex_);
  const auto it = entities_.find(entity);
  if (it == entities_.end()) {
    throw PreconditionError("unknown entity in column store: '" + std::string(entity) + "'");
  }
  const EntityColumns& columns = it->second;
  const std::uint64_t needed = seq_len + count - 1;
  if (columns.total_ticks < needed) {
    throw PreconditionError("entity '" + std::string(entity) + "' holds " +
                            std::to_string(columns.total_ticks) + " ticks, " +
                            std::to_string(needed) + " needed for " +
                            std::to_string(count) + " window(s) of " +
                            std::to_string(seq_len));
  }
  std::vector<WindowView> views;
  views.reserve(count);
  for (std::uint64_t end = columns.total_ticks - count; end < columns.total_ticks; ++end) {
    views.push_back(cut_window(columns, end, seq_len));
  }
  return views;
}

void ColumnStore::flush() {
  if (config_.root.empty()) return;
  std::unique_lock lock(mutex_);
  for (const auto& [entity, columns] : entities_) {
    if (columns.active && columns.active->count() > 0) {
      columns.active->save(segment_path(entity_dir(entity), columns.sealed.size()));
    }
  }
}

ColumnStore::Stats ColumnStore::stats() const {
  std::shared_lock lock(mutex_);
  Stats s;
  s.entities = entities_.size();
  for (const auto& [_, columns] : entities_) {
    s.ticks += columns.total_ticks;
    s.segments += columns.sealed.size() + (columns.active ? 1 : 0);
    for (const auto& segment : columns.sealed) s.bytes_mapped += segment->mapped_bytes();
  }
  return s;
}

}  // namespace goodones::data
