#include "data/timeseries.hpp"

#include "common/error.hpp"

namespace goodones::data {

std::vector<double> TelemetrySeries::channel(Channel c) const {
  std::vector<double> out(values.rows());
  for (std::size_t t = 0; t < values.rows(); ++t) out[t] = values(t, c);
  return out;
}

TelemetrySeries to_series(std::span<const sim::TelemetrySample> samples) {
  GO_EXPECTS(!samples.empty());
  TelemetrySeries series;
  series.values = nn::Matrix(samples.size(), kNumChannels);
  series.true_glucose.resize(samples.size());
  std::vector<double> carbs(samples.size());
  for (std::size_t t = 0; t < samples.size(); ++t) {
    series.values(t, kCgm) = samples[t].cgm;
    series.values(t, kBasal) = samples[t].basal;
    series.values(t, kBolus) = samples[t].bolus;
    series.values(t, kCarbs) = samples[t].carbs;
    series.true_glucose[t] = samples[t].true_glucose;
    carbs[t] = samples[t].carbs;
  }
  series.context = derive_meal_context(carbs);
  return series;
}

}  // namespace goodones::data
