#include "data/timeseries.hpp"

#include "common/error.hpp"

namespace goodones::data {

std::vector<double> TelemetrySeries::channel(std::size_t c) const {
  GO_EXPECTS(c < values.cols());
  std::vector<double> out(values.rows());
  for (std::size_t t = 0; t < values.rows(); ++t) out[t] = values(t, c);
  return out;
}

}  // namespace goodones::data
