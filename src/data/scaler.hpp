// Feature scaling fit on training data and applied everywhere else.
//
// Min-max scaling maps each channel to [0, 1] (forecaster + kNN + MAD-GAN
// inputs); z-score standardization is provided for OneClassSVM, whose
// sigmoid kernel needs centered data to leave the saturation region.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace goodones::data {

/// Per-column min-max scaler. transform clamps nothing: out-of-range inputs
/// (e.g. adversarially manipulated CGM) map outside [0, 1] by design so
/// detectors can see them as extreme.
class MinMaxScaler {
 public:
  /// Fits column-wise min/max. Degenerate (constant) columns scale to 0.5.
  void fit(const nn::Matrix& data);

  /// Widens fitted ranges with another matrix (multi-patient fitting).
  void partial_fit(const nn::Matrix& data);

  bool fitted() const noexcept { return !mins_.empty(); }
  std::size_t num_features() const noexcept { return mins_.size(); }

  nn::Matrix transform(const nn::Matrix& data) const;
  nn::Matrix inverse_transform(const nn::Matrix& data) const;

  /// Scalar helpers for a single column (used for glucose targets).
  double transform_value(double value, std::size_t column) const;
  double inverse_transform_value(double value, std::size_t column) const;

  double column_min(std::size_t column) const;
  double column_max(std::size_t column) const;

  /// Forces a column's range (e.g. pin glucose to [40, 499] so scaling is
  /// identical across patients regardless of observed extremes).
  void set_column_range(std::size_t column, double min_value, double max_value);

  /// Binary round-trip for the model artifact cache. Bit-exact: a reloaded
  /// scaler transforms identically to the saved one.
  void save(std::ostream& out) const;
  /// Throws common::SerializationError on malformed input (state untouched).
  void load(std::istream& in);

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

/// Per-column z-score standardizer.
class StandardScaler {
 public:
  void fit(const nn::Matrix& data);
  bool fitted() const noexcept { return !means_.empty(); }
  std::size_t num_features() const noexcept { return means_.size(); }

  nn::Matrix transform(const nn::Matrix& data) const;

  /// Binary round-trip for the model artifact cache (bit-exact).
  void save(std::ostream& out) const;
  /// Throws common::SerializationError on malformed input (state untouched).
  void load(std::istream& in);

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace goodones::data
