// Domain-agnostic telemetry vocabulary shared by every scenario.
//
// The risk-profiling engine reasons about a monitored scalar signal whose
// readings fall into three diagnostic states (low / normal / high) under a
// two-regime operating context. Each DomainAdapter maps its own semantics
// onto this vocabulary — the BGMS case study maps hypo/normal/hyperglycemia
// onto the states and fasting/postprandial onto the regimes; the synthetic
// sensor-fleet domain maps under/normal/over-range and idle/event regimes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace goodones::data {

/// Diagnostic state of a target-signal reading. Ordering is part of the
/// contract: severity schedules index transition tables by the enum value.
enum class StateLabel : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

/// Operating regime at a sample. The engine is regime-aware because both
/// diagnostic thresholds and attack constraint boxes differ per regime
/// (BGMS: fasting vs. two hours postprandial; synthtel: idle vs. event).
enum class Regime : std::uint8_t { kBaseline = 0, kActive = 1 };

/// Per-domain diagnostic thresholds on the raw target signal.
struct StateThresholds {
  double low = 0.0;            ///< below -> kLow
  double high_baseline = 1.0;  ///< above (baseline regime) -> kHigh
  double high_active = 1.0;    ///< above (active regime) -> kHigh

  /// High threshold for the given regime.
  double high(Regime regime) const noexcept {
    return regime == Regime::kBaseline ? high_baseline : high_active;
  }

  /// Classifies a raw reading under the given regime.
  StateLabel classify(double value, Regime regime) const noexcept {
    if (value < low) return StateLabel::kLow;
    if (value > high(regime)) return StateLabel::kHigh;
    return StateLabel::kNormal;
  }
};

/// True if the state counts as "abnormal" (low or high).
bool is_abnormal(StateLabel state) noexcept;

/// Derives the per-step regime from an event channel: a step is kActive if
/// any positive event value occurred within the previous `hold_steps` steps
/// (inclusive of the current step). BGMS uses the carbs channel with a
/// two-hour hold; other domains pick their own event channel and hold.
std::vector<Regime> derive_regimes(std::span<const double> events,
                                   std::size_t hold_steps);

/// Fraction of readings in the normal state (the paper's Fig. 4 statistic,
/// generalized). Requires equal lengths; empty input returns 0.
double normal_ratio(std::span<const double> values, std::span<const Regime> regimes,
                    const StateThresholds& thresholds);

const char* to_string(StateLabel state) noexcept;
const char* to_string(Regime regime) noexcept;

}  // namespace goodones::data
