#include "data/labels.hpp"

#include "common/error.hpp"

namespace goodones::data {

bool is_abnormal(StateLabel state) noexcept {
  return state != StateLabel::kNormal;
}

std::vector<Regime> derive_regimes(std::span<const double> events,
                                   std::size_t hold_steps) {
  std::vector<Regime> regimes(events.size(), Regime::kBaseline);
  std::size_t steps_since_event = hold_steps + 1;
  for (std::size_t t = 0; t < events.size(); ++t) {
    if (events[t] > 0.0) steps_since_event = 0;
    else ++steps_since_event;
    if (steps_since_event <= hold_steps) regimes[t] = Regime::kActive;
  }
  return regimes;
}

double normal_ratio(std::span<const double> values, std::span<const Regime> regimes,
                    const StateThresholds& thresholds) {
  GO_EXPECTS(values.size() == regimes.size());
  if (values.empty()) return 0.0;
  std::size_t normal = 0;
  for (std::size_t t = 0; t < values.size(); ++t) {
    if (thresholds.classify(values[t], regimes[t]) == StateLabel::kNormal) ++normal;
  }
  return static_cast<double>(normal) / static_cast<double>(values.size());
}

const char* to_string(StateLabel state) noexcept {
  switch (state) {
    case StateLabel::kLow: return "Low";
    case StateLabel::kNormal: return "Normal";
    case StateLabel::kHigh: return "High";
  }
  return "?";
}

const char* to_string(Regime regime) noexcept {
  return regime == Regime::kBaseline ? "Baseline" : "Active";
}

}  // namespace goodones::data
