// Columnar telemetry store: per-entity, per-channel append-only segments
// with zero-copy window views into the batched scorer.
//
// The serving path historically required every client to re-send full
// pre-cut windows in each Score frame. At fleet scale that spends the
// daemon's time deserializing redundant history bytes: consecutive windows
// share seq_len-1 of their seq_len rows. The ColumnStore inverts the
// ownership — clients stream raw ticks once (Ingest frames), the daemon
// appends them into columnar segments, and "score entity X now" cuts
// WindowViews straight over the stored columns without materializing
// data::Window copies.
//
// Layout and lifetime contract:
//  - Each entity owns a chain of fixed-capacity segments. A segment stores
//    its channels channel-major (each channel's values contiguous), plus a
//    per-tick regime byte. Writable segments preallocate their full
//    capacity up front, so appends NEVER reallocate — spans handed out by
//    WindowView stay valid for the life of the segment object.
//  - WindowView holds shared_ptr references to the segments it spans, so a
//    view outlives store mutations, segment seals, and even store
//    destruction or reopen.
//  - When a segment fills and the store has a root directory, it is sealed
//    to disk as `<root>/<entity>/seg_<index>.col` — a CRC-framed binary
//    format built from the nn/serialize stream conventions — and replaced
//    by an mmap-backed read-only twin (MappedSegment RAII over
//    mmap/munmap, with a portable read()-fallback). Reopening a root
//    directory restores every entity's history; a partial trailing segment
//    resumes appending where it left off.
//  - Corrupt or truncated segment files always raise
//    common::SerializationError, never crash, and leave the store empty.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/labels.hpp"
#include "nn/matrix.hpp"

namespace goodones::data {

struct ColumnStoreConfig {
  /// Root directory for sealed segments. Empty = memory-only store (nothing
  /// is ever persisted; flush() is a no-op).
  std::filesystem::path root;
  /// Ticks per segment. Sealing happens exactly at this boundary.
  std::size_t segment_capacity = 4096;
  /// Read sealed segments through mmap. When false (or when mmap fails at
  /// runtime), whole-file read() is used instead; bytes are identical.
  bool mmap_reads = true;
};

/// RAII memory-mapping of one segment file. Prefers mmap (the replay path
/// touches only the pages a window actually covers); falls back to reading
/// the whole file into a heap buffer when mmap is disabled or unavailable.
class MappedSegment {
 public:
  /// Maps (or reads) the entire file. Throws common::SerializationError if
  /// the file cannot be opened or is empty.
  MappedSegment(const std::filesystem::path& path, bool allow_mmap);
  ~MappedSegment();

  MappedSegment(const MappedSegment&) = delete;
  MappedSegment& operator=(const MappedSegment&) = delete;

  const std::byte* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  /// True when backed by a live mmap (false = read() fallback buffer).
  bool memory_mapped() const noexcept { return mapped_; }

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> fallback_;
};

/// One contiguous run of ticks for one entity: all channels plus regimes.
/// Either writable (preallocated in-memory columns) or sealed (pointers
/// into a MappedSegment). Shared-ptr owned so WindowViews can pin it.
class Segment {
 public:
  /// On-disk format constants ("GOCS" v1). Header is 40 bytes — a multiple
  /// of 8, so the mapped f64 columns that follow are naturally aligned.
  static constexpr std::uint32_t kMagic = 0x53434F47;  // "GOCS"
  static constexpr std::uint32_t kVersion = 1;

  /// Writable segment with fully preallocated storage.
  Segment(std::size_t channels, std::size_t capacity, std::uint64_t start_tick);

  /// Loads a sealed segment file (mmap or read() fallback). Validates
  /// magic, version, geometry, regime bytes and the trailing CRC; throws
  /// common::SerializationError on any mismatch.
  static std::shared_ptr<const Segment> load(const std::filesystem::path& path,
                                             std::size_t expected_channels,
                                             bool allow_mmap);

  /// Serializes header + columns + regimes + CRC and atomically replaces
  /// `path` (tmp file + rename). Valid at any fill level: flush() persists
  /// partial segments with count < capacity.
  void save(const std::filesystem::path& path) const;

  /// Appends one tick (one value per channel). Requires writable and not
  /// full. Never reallocates: outstanding channel spans stay valid.
  void append(std::span<const double> values, Regime regime);

  std::size_t channels() const noexcept { return channels_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t count() const noexcept { return count_; }
  std::uint64_t start_tick() const noexcept { return start_tick_; }
  bool full() const noexcept { return count_ == capacity_; }
  bool writable() const noexcept { return mapping_ == nullptr; }

  /// Contiguous values of channel `c`, ticks [start_tick, start_tick+count).
  std::span<const double> channel(std::size_t c) const noexcept;
  /// Regime of the i-th tick in this segment.
  Regime regime(std::size_t i) const noexcept;
  std::span<const std::uint8_t> regimes() const noexcept;

  /// Bytes held by the backing file mapping (0 for writable segments).
  std::size_t mapped_bytes() const noexcept { return mapping_ ? mapping_->size() : 0; }
  bool memory_mapped() const noexcept { return mapping_ && mapping_->memory_mapped(); }

 private:
  Segment() = default;

  std::size_t channels_ = 0;
  std::size_t capacity_ = 0;
  std::size_t count_ = 0;
  std::uint64_t start_tick_ = 0;

  // Writable storage: channel-major with `capacity_` stride, sized once at
  // construction. Sealed storage: raw pointers into `mapping_` with
  // `count_` stride (sealed files store exactly count ticks).
  std::vector<double> columns_;
  std::vector<std::uint8_t> regime_bytes_;
  std::shared_ptr<MappedSegment> mapping_;
  const double* mapped_columns_ = nullptr;
  const std::uint8_t* mapped_regimes_ = nullptr;
};

/// Zero-copy view of one seq_len-row window over stored columns. A window
/// may straddle a segment boundary, so the view is a short list of
/// contiguous per-segment pieces; each piece pins its segment via
/// shared_ptr, making the view safe past store reopen or destruction.
///
/// Consumers that need row-major features (the forecaster input layout)
/// call gather()/materialize() exactly once per scoring pass; everything
/// upstream of that point is copy-free.
class WindowView {
 public:
  WindowView() = default;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0; }

  /// Tick index of the window's last row in the entity's series.
  std::uint64_t end_tick() const noexcept { return end_tick_; }
  /// Regime at prediction time (the window's last row).
  Regime regime() const noexcept { return regime_; }

  /// Value at (row t, channel c) of the window.
  double at(std::size_t t, std::size_t c) const noexcept;

  /// Number of contiguous pieces (1 unless the window straddles segments).
  std::size_t num_pieces() const noexcept { return pieces_.size(); }
  /// Rows covered by piece `p`.
  std::size_t piece_rows(std::size_t p) const noexcept { return pieces_[p].count; }
  /// Contiguous values of channel `c` within piece `p` (zero-copy span
  /// directly over segment storage).
  std::span<const double> piece_channel(std::size_t p, std::size_t c) const noexcept;

  /// Fills `out` (resized to rows x cols) with the window's features
  /// row-major — the single copy on the view scoring path.
  void gather(nn::Matrix& out) const;
  /// gather() into a fresh matrix.
  nn::Matrix materialize() const;

 private:
  friend class ColumnStore;

  struct Piece {
    std::shared_ptr<const Segment> segment;
    std::size_t first = 0;  ///< first in-segment tick index
    std::size_t count = 0;  ///< rows taken from this segment
  };

  std::vector<Piece> pieces_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::uint64_t end_tick_ = 0;
  Regime regime_ = Regime::kBaseline;
};

/// The store. Thread-safe: appends take a unique lock, reads a shared
/// lock; handed-out WindowViews are immune to later mutations because
/// segment storage never moves and views pin their segments.
class ColumnStore {
 public:
  /// Opens (or creates) the store. With a non-empty root that already
  /// contains segments, the full history is restored; corrupt segment
  /// files raise common::SerializationError.
  ColumnStore(ColumnStoreConfig config, std::size_t num_channels);

  std::size_t num_channels() const noexcept { return channels_; }

  /// Appends one tick for `entity` (values.size() must equal
  /// num_channels()). Creates the entity on first touch. Seals + persists
  /// the active segment when it reaches capacity.
  void append(std::string_view entity, std::span<const double> values, Regime regime);

  /// Bulk append: `ticks` is (num_ticks x num_channels), `regimes` one per
  /// tick. Equivalent to num_ticks single appends.
  void append_block(std::string_view entity, const nn::Matrix& ticks,
                    std::span<const Regime> regimes);

  /// Total ticks stored for `entity` (0 if unknown).
  std::uint64_t ticks(std::string_view entity) const;
  std::vector<std::string> entity_names() const;

  /// The `count` most recent seq_len-row windows (stride 1, oldest first,
  /// newest last). Throws common::PreconditionError if the entity is
  /// unknown or holds fewer than seq_len + count - 1 ticks.
  std::vector<WindowView> latest_windows(std::string_view entity, std::size_t seq_len,
                                         std::size_t count) const;

  /// The window covering ticks [end_tick + 1 - seq_len, end_tick].
  WindowView window_at(std::string_view entity, std::uint64_t end_tick,
                       std::size_t seq_len) const;

  /// Persists every entity's partial active segment (durability point for
  /// recorded traces). No-op for a memory-only store.
  void flush();

  struct Stats {
    std::uint64_t entities = 0;
    std::uint64_t ticks = 0;
    std::uint64_t segments = 0;
    std::uint64_t bytes_mapped = 0;
  };
  Stats stats() const;

 private:
  struct EntityColumns {
    std::vector<std::shared_ptr<const Segment>> sealed;
    std::shared_ptr<Segment> active;  ///< null until first append past sealing
    std::uint64_t total_ticks = 0;
  };

  std::filesystem::path entity_dir(std::string_view entity) const;
  static std::filesystem::path segment_path(const std::filesystem::path& dir,
                                            std::size_t index);
  void seal_active(const std::string& entity, EntityColumns& columns);
  void load_entity(const std::string& entity);
  WindowView cut_window(const EntityColumns& columns, std::uint64_t end_tick,
                        std::size_t seq_len) const;

  ColumnStoreConfig config_;
  std::size_t channels_ = 0;
  std::map<std::string, EntityColumns, std::less<>> entities_;
  mutable std::shared_mutex mutex_;
};

}  // namespace goodones::data
