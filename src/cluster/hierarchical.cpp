#include "cluster/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace goodones::cluster {

Dendrogram::Dendrogram(std::size_t num_leaves, std::vector<Merge> merges)
    : num_leaves_(num_leaves), merges_(std::move(merges)) {
  GO_EXPECTS(num_leaves_ >= 1);
  GO_EXPECTS(merges_.size() == num_leaves_ - 1);
}

std::vector<std::size_t> Dendrogram::cut(std::size_t k) const {
  GO_EXPECTS(k >= 1 && k <= num_leaves_);
  // Apply the first (n - k) merges; remaining roots are the clusters.
  const std::size_t applied = num_leaves_ - k;
  std::vector<std::size_t> parent(num_leaves_ + merges_.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  for (std::size_t m = 0; m < applied; ++m) {
    parent[merges_[m].left] = num_leaves_ + m;
    parent[merges_[m].right] = num_leaves_ + m;
  }
  const auto find_root = [&](std::size_t node) {
    while (parent[node] != node) node = parent[node];
    return node;
  };

  std::vector<std::size_t> labels(num_leaves_);
  std::vector<std::size_t> root_to_label;
  for (std::size_t leaf = 0; leaf < num_leaves_; ++leaf) {
    const std::size_t root = find_root(leaf);
    auto it = std::find(root_to_label.begin(), root_to_label.end(), root);
    if (it == root_to_label.end()) {
      root_to_label.push_back(root);
      labels[leaf] = root_to_label.size() - 1;
    } else {
      labels[leaf] = static_cast<std::size_t>(it - root_to_label.begin());
    }
  }
  GO_ENSURES(root_to_label.size() == k);
  return labels;
}

std::size_t Dendrogram::suggest_cluster_count() const {
  if (merges_.size() < 2) return std::min<std::size_t>(2, num_leaves_);
  // Largest gap between consecutive merge heights; cutting inside that gap
  // leaves n - (i + 1) clusters.
  std::size_t best_index = merges_.size() - 2;
  double best_gap = -1.0;
  for (std::size_t i = 0; i + 1 < merges_.size(); ++i) {
    const double gap = merges_[i + 1].height - merges_[i].height;
    if (gap >= best_gap) {  // >= prefers later (coarser) cuts on ties
      best_gap = gap;
      best_index = i;
    }
  }
  const std::size_t k = num_leaves_ - (best_index + 1);
  return std::max<std::size_t>(2, k);
}

namespace {

struct RenderContext {
  const std::vector<Merge>* merges;
  std::size_t num_leaves;
  const std::vector<std::string>* names;
  std::ostringstream out;

  void render(std::size_t node, const std::string& prefix, bool is_last) {
    const std::string branch = prefix.empty() ? "" : (is_last ? "`-- " : "|-- ");
    const std::string child_prefix = prefix + (prefix.empty() ? "" : (is_last ? "    " : "|   "));
    if (node < num_leaves) {
      out << prefix << branch << (*names)[node] << "\n";
      return;
    }
    const Merge& merge = (*merges)[node - num_leaves];
    out << prefix << branch << "[h=" << common::fixed(merge.height, 2) << "]\n";
    render(merge.left, child_prefix, false);
    render(merge.right, child_prefix, true);
  }
};

}  // namespace

std::string Dendrogram::render_ascii(const std::vector<std::string>& leaf_names) const {
  GO_EXPECTS(leaf_names.size() == num_leaves_);
  if (merges_.empty()) return leaf_names.empty() ? "" : leaf_names.front() + "\n";
  RenderContext ctx;
  ctx.merges = &merges_;
  ctx.num_leaves = num_leaves_;
  ctx.names = &leaf_names;
  ctx.render(num_leaves_ + merges_.size() - 1, "", true);
  return ctx.out.str();
}

Dendrogram agglomerate(const nn::Matrix& distances, Linkage linkage) {
  GO_EXPECTS(distances.rows() == distances.cols());
  const std::size_t n = distances.rows();
  GO_EXPECTS(n >= 1);

  // Work on a copy; Ward's recurrence operates on squared distances.
  nn::Matrix d = distances;
  if (linkage == Linkage::kWard) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) d(i, j) = d(i, j) * d(i, j);
    }
  }

  std::vector<std::size_t> active;       // currently-live matrix rows
  std::vector<std::size_t> node_id(n);   // dendrogram node each row represents
  std::vector<std::size_t> sizes(n, 1);  // leaves under each row
  for (std::size_t i = 0; i < n; ++i) {
    active.push_back(i);
    node_id[i] = i;
  }

  std::vector<Merge> merges;
  merges.reserve(n - 1);

  while (active.size() > 1) {
    // Find the closest active pair.
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0;
    std::size_t bj = 1;
    for (std::size_t a = 0; a < active.size(); ++a) {
      for (std::size_t b = a + 1; b < active.size(); ++b) {
        const double dist = d(active[a], active[b]);
        if (dist < best) {
          best = dist;
          bi = a;
          bj = b;
        }
      }
    }
    const std::size_t i = active[bi];
    const std::size_t j = active[bj];
    const std::size_t ni = sizes[i];
    const std::size_t nj = sizes[j];

    // Lance-Williams update of distances from every other cluster k to i∪j.
    for (const std::size_t k : active) {
      if (k == i || k == j) continue;
      const double dki = d(k, i);
      const double dkj = d(k, j);
      const double dij = d(i, j);
      double updated = 0.0;
      switch (linkage) {
        case Linkage::kSingle:
          updated = std::min(dki, dkj);
          break;
        case Linkage::kComplete:
          updated = std::max(dki, dkj);
          break;
        case Linkage::kAverage: {
          const double wi = static_cast<double>(ni) / static_cast<double>(ni + nj);
          const double wj = static_cast<double>(nj) / static_cast<double>(ni + nj);
          updated = wi * dki + wj * dkj;
          break;
        }
        case Linkage::kWard: {
          const double nk = static_cast<double>(sizes[k]);
          const double total = static_cast<double>(ni + nj) + nk;
          updated = ((static_cast<double>(ni) + nk) * dki +
                     (static_cast<double>(nj) + nk) * dkj - nk * dij) /
                    total;
          break;
        }
      }
      d(k, i) = updated;
      d(i, k) = updated;
    }

    const double height = linkage == Linkage::kWard ? std::sqrt(best) : best;
    merges.push_back({node_id[i], node_id[j], height, ni + nj});

    // Row i now represents the merged cluster; row j dies.
    node_id[i] = n + merges.size() - 1;
    sizes[i] = ni + nj;
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(bj));
  }

  return Dendrogram(n, std::move(merges));
}

}  // namespace goodones::cluster
