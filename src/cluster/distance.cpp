#include "cluster/distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace goodones::cluster {

double euclidean(std::span<const double> a, std::span<const double> b) {
  GO_EXPECTS(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double dtw(std::span<const double> a, std::span<const double> b, std::size_t band) {
  GO_EXPECTS(!a.empty() && !b.empty());
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Two-row DP over the alignment matrix with |cost| = |a_i - b_j|.
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    std::size_t j_lo = 1;
    std::size_t j_hi = m;
    if (band > 0) {
      // Sakoe-Chiba: |i - j| <= band after rescaling unequal lengths.
      const double scale = static_cast<double>(m) / static_cast<double>(n);
      const auto center = static_cast<std::ptrdiff_t>(std::llround(scale * static_cast<double>(i)));
      j_lo = static_cast<std::size_t>(
          std::max<std::ptrdiff_t>(1, center - static_cast<std::ptrdiff_t>(band)));
      j_hi = static_cast<std::size_t>(
          std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(m),
                                   center + static_cast<std::ptrdiff_t>(band)));
      if (j_lo > j_hi) continue;
    }
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = std::abs(a[i - 1] - b[j - 1]);
      const double best = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = cost + best;
    }
    std::swap(prev, curr);
  }
  GO_ENSURES(std::isfinite(prev[m]));
  return prev[m];
}

nn::Matrix distance_matrix(const std::vector<std::vector<double>>& series,
                           ProfileDistance metric, std::size_t dtw_band) {
  GO_EXPECTS(!series.empty());
  const std::size_t n = series.size();
  nn::Matrix distances(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = metric == ProfileDistance::kEuclidean
                           ? euclidean(series[i], series[j])
                           : dtw(series[i], series[j], dtw_band);
      distances(i, j) = d;
      distances(j, i) = d;
    }
  }
  return distances;
}

}  // namespace goodones::cluster
