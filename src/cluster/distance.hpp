// Time-series distance functions for risk-profile clustering.
#pragma once

#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace goodones::cluster {

/// Euclidean (L2) distance; requires equal lengths.
double euclidean(std::span<const double> a, std::span<const double> b);

/// Dynamic time warping with an optional Sakoe-Chiba band (`band` = maximum
/// index offset; 0 means unconstrained). Handles unequal lengths.
double dtw(std::span<const double> a, std::span<const double> b, std::size_t band = 0);

enum class ProfileDistance { kEuclidean, kDtw };

/// Pairwise symmetric distance matrix over a set of series.
/// For kEuclidean all series must have equal length.
nn::Matrix distance_matrix(const std::vector<std::vector<double>>& series,
                           ProfileDistance metric, std::size_t dtw_band = 0);

}  // namespace goodones::cluster
