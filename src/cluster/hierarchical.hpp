// Agglomerative hierarchical clustering (framework step 4).
//
// The paper clusters victim risk profiles hierarchically because the number
// of vulnerability groups is unknown a priori; the dendrogram is then cut at
// the largest inter-merge gap (the paper splits its 12 patients into two
// groups that way). All four classic linkages are implemented through the
// Lance-Williams recurrence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/matrix.hpp"

namespace goodones::cluster {

enum class Linkage : std::uint8_t { kSingle, kComplete, kAverage, kWard };

/// One agglomeration step. Nodes 0..n-1 are leaves; merge k creates node
/// n+k. `height` is the linkage distance at which the merge happened.
struct Merge {
  std::size_t left;
  std::size_t right;
  double height;
  std::size_t size;  ///< leaves under the new node
};

class Dendrogram {
 public:
  Dendrogram(std::size_t num_leaves, std::vector<Merge> merges);

  std::size_t num_leaves() const noexcept { return num_leaves_; }
  const std::vector<Merge>& merges() const noexcept { return merges_; }

  /// Cluster labels (0..k-1) from cutting the tree into k clusters.
  /// Labels are ordered by first-leaf appearance for stability.
  std::vector<std::size_t> cut(std::size_t k) const;

  /// Chooses the cluster count with the largest gap between consecutive
  /// merge heights (minimum 2 clusters; n-1 merges must exist).
  std::size_t suggest_cluster_count() const;

  /// Text dendrogram (rotated: one leaf per line, merge brackets to the
  /// right) with merge heights annotated. For bench/figure output.
  std::string render_ascii(const std::vector<std::string>& leaf_names) const;

 private:
  std::size_t num_leaves_;
  std::vector<Merge> merges_;
};

/// Clusters from a symmetric pairwise distance matrix.
Dendrogram agglomerate(const nn::Matrix& distances, Linkage linkage);

}  // namespace goodones::cluster
