#include "common/thread_pool.hpp"

#include <algorithm>

namespace goodones::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::scoped_lock lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Contiguous chunks instead of one task per index: a million-iteration
  // campaign pays a handful of queue round-trips, not a million. A body that
  // throws aborts the rest of its own chunk; other chunks still run.
  const std::size_t chunks = std::min<std::size_t>(n, std::max<std::size_t>(1, pool.size() * 4));
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    futures.push_back(pool.submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  // Every future is drained before rethrowing, so no task is left running
  // with dangling references to the caller's stack; the packaged_task
  // captured each chunk's exception, and the first (lowest-index chunk)
  // wins.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace goodones::common
