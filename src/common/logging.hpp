// Leveled logging with a global threshold. Intentionally tiny: the library
// logs progress of long-running training/attack phases and nothing else.
#pragma once

#include <sstream>
#include <string>

namespace goodones::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits a message (thread-safe, single write to stderr).
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug) log_message(LogLevel::kDebug, detail::concat(args...));
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo) log_message(LogLevel::kInfo, detail::concat(args...));
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn) log_message(LogLevel::kWarn, detail::concat(args...));
}

template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() <= LogLevel::kError) log_message(LogLevel::kError, detail::concat(args...));
}

}  // namespace goodones::common
