// Contract checking and error types shared across the goodones library.
//
// Follows C++ Core Guidelines I.6/I.8 (state preconditions and postconditions)
// with lightweight macros that throw rather than abort, so library misuse is
// testable and recoverable by callers.
#pragma once

#include <stdexcept>
#include <string>

namespace goodones::common {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant or postcondition fails (library bug).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when numeric computation degenerates (NaN/Inf propagation, no
/// convergence) in a way the caller can act on.
class NumericError : public std::runtime_error {
 public:
  explicit NumericError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a persisted artifact cannot be read back: truncated file,
/// wrong magic or version, shape/kind mismatch, or a stale config
/// fingerprint. Loaders guarantee the in-memory target is left untouched
/// when this is thrown — a half-loaded model is never served.
class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail_precondition(const char* expr, const char* file, int line) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " + file + ":" +
                          std::to_string(line));
}

[[noreturn]] inline void fail_invariant(const char* expr, const char* file, int line) {
  throw InvariantError(std::string("invariant failed: ") + expr + " at " + file + ":" +
                       std::to_string(line));
}

}  // namespace goodones::common

/// Precondition check: document and enforce what callers must guarantee.
#define GO_EXPECTS(cond)                                                 \
  do {                                                                   \
    if (!(cond)) ::goodones::common::fail_precondition(#cond, __FILE__, __LINE__); \
  } while (false)

/// Invariant/postcondition check: enforce what the library guarantees.
#define GO_ENSURES(cond)                                               \
  do {                                                                 \
    if (!(cond)) ::goodones::common::fail_invariant(#cond, __FILE__, __LINE__); \
  } while (false)
