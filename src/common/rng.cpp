#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace goodones::common {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64_next(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return lo + static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 nudged away from zero so log is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept {
  return uniform() < p;
}

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  GO_EXPECTS(k <= n);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: after k swaps the prefix is a uniform k-sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n - 1)));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::fork() noexcept {
  return Rng(next_u64());
}

}  // namespace goodones::common
