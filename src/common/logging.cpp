#include "common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace goodones::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const std::scoped_lock lock(g_write_mutex);
  std::cerr << "[goodones:" << level_name(level) << "] " << message << '\n';
}

}  // namespace goodones::common
