// Descriptive statistics used across risk profiling, clustering and
// evaluation. All functions are pure; the streaming accumulator uses
// Welford's algorithm for numerically stable single-pass moments.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace goodones::common {

/// Streaming mean/variance accumulator (Welford). Stable for long series.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel reduction support).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Sample variance (n-1); 0 for fewer than two values.
double variance(std::span<const double> xs) noexcept;

/// Sample standard deviation.
double stddev(std::span<const double> xs) noexcept;

/// Median (copies and partially sorts). Requires non-empty input.
double median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Requires non-empty input.
double quantile(std::span<const double> xs, double q);

/// Pearson correlation; 0 when either side has zero variance.
/// Requires equal, non-zero lengths.
double pearson(std::span<const double> a, std::span<const double> b);

/// Min-max normalization of a copy into [0, 1]; constant input maps to 0.5.
std::vector<double> min_max_normalize(std::span<const double> xs);

/// Root mean squared error between two equal-length series.
double rmse(std::span<const double> a, std::span<const double> b);

/// Mean absolute error between two equal-length series.
double mae(std::span<const double> a, std::span<const double> b);

}  // namespace goodones::common
