#include "common/socket.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace goodones::common {

namespace {

[[noreturn]] void throw_errno(const char* op) {
  throw SocketError(std::string(op) + " failed: " + std::strerror(errno));
}

sockaddr_un make_address(const std::filesystem::path& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  const std::string text = path.string();
  if (text.size() >= sizeof(address.sun_path)) {
    throw SocketError("unix socket path too long (" + std::to_string(text.size()) +
                      " bytes, limit " + std::to_string(sizeof(address.sun_path) - 1) +
                      "): " + text);
  }
  std::memcpy(address.sun_path, text.c_str(), text.size() + 1);
  return address;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket::ReadResult Socket::read_exact(void* data, std::size_t n) {
  if (fd_ < 0) throw SocketError("read on a closed socket");
  auto* cursor = static_cast<char*>(data);
  std::size_t remaining = n;
  while (remaining > 0) {
    const ssize_t got = ::recv(fd_, cursor, remaining, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (got == 0) {
      return remaining == n ? ReadResult::kClosed : ReadResult::kTruncated;
    }
    cursor += got;
    remaining -= static_cast<std::size_t>(got);
  }
  return ReadResult::kOk;
}

void Socket::write_all(const void* data, std::size_t n) {
  if (fd_ < 0) throw SocketError("write on a closed socket");
  const auto* cursor = static_cast<const char*>(data);
  std::size_t remaining = n;
  while (remaining > 0) {
    const ssize_t sent = ::send(fd_, cursor, remaining, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw SocketError("send timed out: peer stopped draining the socket");
      }
      throw_errno("send");
    }
    cursor += sent;
    remaining -= static_cast<std::size_t>(sent);
  }
}

void Socket::set_send_timeout_ms(int timeout_ms) {
  if (fd_ < 0) throw SocketError("set_send_timeout_ms on a closed socket");
  timeval timeout{};
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout)) != 0) {
    throw_errno("setsockopt(SO_SNDTIMEO)");
  }
}

void Socket::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_unix(const std::filesystem::path& path) {
  const sockaddr_un address = make_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket socket(fd);
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    if (errno == EINTR) continue;
    throw SocketError("connect to " + path.string() + " failed: " + std::strerror(errno));
  }
  return socket;
}

UnixListener::UnixListener(std::filesystem::path path) : path_(std::move(path)) {
  const sockaddr_un address = make_address(path_);
  // A stale file from a crashed daemon would make bind fail; a *live*
  // daemon is indistinguishable from a stale file here, so ownership of
  // the path is the deployment's contract (one daemon per socket path).
  std::error_code ignored;
  std::filesystem::remove(path_, ignored);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw SocketError("bind to " + path_.string() + " failed: " + std::strerror(saved));
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    close();
    throw SocketError("listen on " + path_.string() + " failed: " + std::strerror(saved));
  }
}

UnixListener::~UnixListener() { close(); }

Socket UnixListener::accept(int timeout_ms) {
  if (fd_ < 0) return Socket();
  pollfd waiter{fd_, POLLIN, 0};
  const int ready = ::poll(&waiter, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return Socket();
    throw_errno("poll");
  }
  if (ready == 0) return Socket();
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) return Socket();
    throw_errno("accept");
  }
  return Socket(client);
}

void UnixListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    std::error_code ignored;
    std::filesystem::remove(path_, ignored);
  }
}

}  // namespace goodones::common
