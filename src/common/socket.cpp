#include "common/socket.hpp"

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/rng.hpp"

namespace goodones::common {

namespace {

[[noreturn]] void throw_errno(const char* op) {
  throw SocketError(std::string(op) + " failed: " + std::strerror(errno));
}

sockaddr_un make_address(const std::filesystem::path& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  const std::string text = path.string();
  if (text.size() >= sizeof(address.sun_path)) {
    throw SocketError("unix socket path too long (" + std::to_string(text.size()) +
                      " bytes, limit " + std::to_string(sizeof(address.sun_path) - 1) +
                      "): " + text);
  }
  std::memcpy(address.sun_path, text.c_str(), text.size() + 1);
  return address;
}

/// RAII for getaddrinfo results.
struct AddrInfoList {
  addrinfo* head = nullptr;
  ~AddrInfoList() {
    if (head != nullptr) ::freeaddrinfo(head);
  }
};

/// Resolves host:port for TCP. `passive` = resolve for bind() (AI_PASSIVE
/// semantics when the host is empty). Throws SocketError with the
/// gai_strerror detail on failure.
AddrInfoList resolve_tcp(const std::string& host, std::uint16_t port, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  AddrInfoList list;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), service.c_str(),
                               &hints, &list.head);
  if (rc != 0) {
    throw SocketError("getaddrinfo for " + (host.empty() ? std::string("*") : host) + ":" +
                      service + " failed: " + ::gai_strerror(rc));
  }
  return list;
}

void set_nodelay(int fd) noexcept {
  // Best-effort: Nagle only costs latency, never correctness.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Reads back the port the kernel actually bound (port 0 = ephemeral).
std::uint16_t bound_port(int fd) {
  sockaddr_storage storage{};
  socklen_t length = sizeof(storage);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&storage), &length) != 0) {
    throw_errno("getsockname");
  }
  if (storage.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in&>(storage).sin_port);
  }
  if (storage.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6&>(storage).sin6_port);
  }
  throw SocketError("getsockname returned a non-IP family");
}

void set_timeout(int fd, int timeout_ms, int option, const char* what) {
  timeval timeout{};
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, option, &timeout, sizeof(timeout)) != 0) {
    throw SocketError(std::string("setsockopt(") + what + ") failed: " +
                      std::strerror(errno));
  }
}

/// Shared poll-accept for both listener transports.
Socket poll_accept(int fd, int timeout_ms, bool tcp) {
  if (fd < 0) return Socket();
  pollfd waiter{fd, POLLIN, 0};
  const int ready = ::poll(&waiter, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return Socket();
    throw_errno("poll");
  }
  if (ready == 0) return Socket();
  const int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) return Socket();
    throw_errno("accept");
  }
  if (tcp) set_nodelay(client);
  return Socket(client);
}

}  // namespace

// --- Endpoint ----------------------------------------------------------------

Endpoint Endpoint::unix_socket(std::filesystem::path path) {
  Endpoint endpoint;
  endpoint.kind_ = Kind::kUnix;
  endpoint.path_ = std::move(path);
  return endpoint;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint endpoint;
  endpoint.kind_ = Kind::kTcp;
  endpoint.host_ = std::move(host);
  endpoint.port_ = port;
  return endpoint;
}

Endpoint Endpoint::parse(std::string_view text) {
  if (text.empty()) throw SocketError("endpoint: empty address");
  if (text.rfind("unix:", 0) == 0) {
    const std::string_view path = text.substr(5);
    if (path.empty()) throw SocketError("endpoint: unix: needs a path");
    return unix_socket(std::filesystem::path(path));
  }
  if (text.rfind("tcp:", 0) == 0) {
    const std::string_view rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0 || colon + 1 == rest.size()) {
      throw SocketError("endpoint: tcp: needs host:port, got \"" + std::string(text) +
                        "\"");
    }
    const std::string_view port_text = rest.substr(colon + 1);
    unsigned port = 0;
    const auto [end, error] =
        std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
    if (error != std::errc() || end != port_text.data() + port_text.size() ||
        port > 65535) {
      throw SocketError("endpoint: bad tcp port \"" + std::string(port_text) + "\"");
    }
    return tcp(std::string(rest.substr(0, colon)), static_cast<std::uint16_t>(port));
  }
  // Bare text: the pre-mesh shorthand — a unix socket path.
  return unix_socket(std::filesystem::path(text));
}

std::string Endpoint::to_string() const {
  switch (kind_) {
    case Kind::kNone:
      return "<none>";
    case Kind::kUnix:
      return "unix:" + path_.string();
    case Kind::kTcp:
      return "tcp:" + host_ + ":" + std::to_string(port_);
  }
  return "<none>";
}

// --- Socket ------------------------------------------------------------------

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket::ReadResult Socket::read_exact(void* data, std::size_t n) {
  if (fd_ < 0) throw SocketError("read on a closed socket");
  auto* cursor = static_cast<char*>(data);
  std::size_t remaining = n;
  while (remaining > 0) {
    const ssize_t got = ::recv(fd_, cursor, remaining, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw SocketError("recv timed out: peer went silent mid-exchange");
      }
      throw_errno("recv");
    }
    if (got == 0) {
      return remaining == n ? ReadResult::kClosed : ReadResult::kTruncated;
    }
    cursor += got;
    remaining -= static_cast<std::size_t>(got);
  }
  return ReadResult::kOk;
}

void Socket::write_all(const void* data, std::size_t n) {
  if (fd_ < 0) throw SocketError("write on a closed socket");
  const auto* cursor = static_cast<const char*>(data);
  std::size_t remaining = n;
  while (remaining > 0) {
    const ssize_t sent = ::send(fd_, cursor, remaining, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw SocketError("send timed out: peer stopped draining the socket");
      }
      throw_errno("send");
    }
    cursor += sent;
    remaining -= static_cast<std::size_t>(sent);
  }
}

void Socket::set_send_timeout_ms(int timeout_ms) {
  if (fd_ < 0) throw SocketError("set_send_timeout_ms on a closed socket");
  set_timeout(fd_, timeout_ms, SO_SNDTIMEO, "SO_SNDTIMEO");
}

void Socket::set_recv_timeout_ms(int timeout_ms) {
  if (fd_ < 0) throw SocketError("set_recv_timeout_ms on a closed socket");
  set_timeout(fd_, timeout_ms, SO_RCVTIMEO, "SO_RCVTIMEO");
}

void Socket::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- dialing -----------------------------------------------------------------

Socket connect_unix(const std::filesystem::path& path) {
  const sockaddr_un address = make_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket socket(fd);
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    if (errno == EINTR) continue;
    throw SocketError("connect to " + path.string() + " failed: " + std::strerror(errno));
  }
  return socket;
}

Socket connect_tcp(const std::string& host, std::uint16_t port) {
  const AddrInfoList resolved = resolve_tcp(host, port, /*passive=*/false);
  std::string last_error = "no addresses resolved";
  for (const addrinfo* info = resolved.head; info != nullptr; info = info->ai_next) {
    const int fd = ::socket(info->ai_family, info->ai_socktype, info->ai_protocol);
    if (fd < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    Socket socket(fd);
    int rc;
    do {
      rc = ::connect(fd, info->ai_addr, info->ai_addrlen);
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) {
      set_nodelay(fd);
      return socket;
    }
    last_error = std::string("connect: ") + std::strerror(errno);
  }
  throw SocketError("connect to tcp:" + host + ":" + std::to_string(port) +
                    " failed: " + last_error);
}

Socket connect_endpoint(const Endpoint& endpoint) {
  switch (endpoint.kind()) {
    case Endpoint::Kind::kUnix:
      return connect_unix(endpoint.path());
    case Endpoint::Kind::kTcp:
      return connect_tcp(endpoint.host(), endpoint.port());
    case Endpoint::Kind::kNone:
      break;
  }
  throw SocketError("connect to an empty endpoint");
}

Socket connect_with_backoff(const Endpoint& endpoint, const BackoffConfig& config) {
  if (config.max_attempts == 0) {
    throw SocketError("connect_with_backoff: max_attempts must be >= 1");
  }
  // Deterministic jitter stream: reproducible under a fixed seed, and a
  // fleet of clients with distinct seeds spreads its retries apart.
  std::uint64_t jitter_state = config.seed ^ 0x6d657368u;  // "mesh"
  for (const char c : endpoint.to_string()) {
    jitter_state = jitter_state * 1099511628211ull + static_cast<unsigned char>(c);
  }
  double delay_ms = static_cast<double>(config.initial_delay_ms);
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return connect_endpoint(endpoint);
    } catch (const SocketError& error) {
      if (attempt >= config.max_attempts) {
        throw SocketError(std::string(error.what()) + " (after " +
                          std::to_string(attempt) + " attempts with backoff)");
      }
      // 1 + jitter·u with u uniform in [-1, 1): full-jitter stampedes, but
      // bounded so the worst-case total wait stays predictable.
      const double u =
          2.0 * (static_cast<double>(splitmix64_next(jitter_state) >> 11) * 0x1.0p-53) -
          1.0;
      const double jittered = delay_ms * (1.0 + config.jitter * u);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(jittered < 1.0 ? 1.0 : jittered)));
      delay_ms = delay_ms * config.multiplier;
      if (delay_ms > config.max_delay_ms) delay_ms = config.max_delay_ms;
    }
  }
}

// --- UnixListener ------------------------------------------------------------

UnixListener::UnixListener(std::filesystem::path path)
    : endpoint_(Endpoint::unix_socket(std::move(path))) {
  const sockaddr_un address = make_address(endpoint_.path());
  // A stale file from a crashed daemon would make bind fail; a *live*
  // daemon is indistinguishable from a stale file here, so ownership of
  // the path is the deployment's contract (one daemon per socket path).
  std::error_code ignored;
  std::filesystem::remove(endpoint_.path(), ignored);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw SocketError("bind to " + endpoint_.path().string() +
                      " failed: " + std::strerror(saved));
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    close();
    throw SocketError("listen on " + endpoint_.path().string() +
                      " failed: " + std::strerror(saved));
  }
}

UnixListener::~UnixListener() { close(); }

Socket UnixListener::accept(int timeout_ms) {
  return poll_accept(fd_, timeout_ms, /*tcp=*/false);
}

void UnixListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    std::error_code ignored;
    std::filesystem::remove(endpoint_.path(), ignored);
  }
}

// --- TcpListener -------------------------------------------------------------

TcpListener::TcpListener(const std::string& host, std::uint16_t port)
    : endpoint_(Endpoint::tcp(host, port)) {
  const AddrInfoList resolved = resolve_tcp(host, port, /*passive=*/true);
  std::string last_error = "no addresses resolved";
  for (const addrinfo* info = resolved.head; info != nullptr; info = info->ai_next) {
    const int fd = ::socket(info->ai_family, info->ai_socktype, info->ai_protocol);
    if (fd < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    // SO_REUSEADDR: a restarted shard must rebind its port immediately,
    // not wait out TIME_WAIT from its previous life.
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, info->ai_addr, info->ai_addrlen) != 0 || ::listen(fd, SOMAXCONN) != 0) {
      last_error = std::string("bind/listen: ") + std::strerror(errno);
      ::close(fd);
      continue;
    }
    fd_ = fd;
    endpoint_ = Endpoint::tcp(host, bound_port(fd_));
    return;
  }
  throw SocketError("bind to " + endpoint_.to_string() + " failed: " + last_error);
}

TcpListener::TcpListener(const Endpoint& endpoint)
    : TcpListener(endpoint.host(), endpoint.port()) {}

TcpListener::~TcpListener() { close(); }

Socket TcpListener::accept(int timeout_ms) {
  return poll_accept(fd_, timeout_ms, /*tcp=*/true);
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<Listener> make_listener(const Endpoint& endpoint) {
  switch (endpoint.kind()) {
    case Endpoint::Kind::kUnix:
      return std::make_unique<UnixListener>(endpoint.path());
    case Endpoint::Kind::kTcp:
      return std::make_unique<TcpListener>(endpoint);
    case Endpoint::Kind::kNone:
      break;
  }
  throw SocketError("listen on an empty endpoint");
}

}  // namespace goodones::common
