// Fixed-size thread pool and a blocking parallel_for built on it.
//
// Training the per-patient forecasters and the random-strategy repetitions
// are embarrassingly parallel; this pool keeps them deterministic by having
// each work item derive its own seed, never sharing RNG state across threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace goodones::common {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Schedules a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n), distributing contiguous index chunks across
/// the pool, and blocks until all chunks finish. Exceptions from the body
/// propagate to the caller (the one from the lowest-index chunk is rethrown;
/// that chunk's remaining indices are skipped, other chunks still complete,
/// and the pool stays usable).
void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace goodones::common
