#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace goodones::common {

AsciiTable::AsciiTable(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  GO_EXPECTS(!header_.empty());
}

void AsciiTable::add_row(std::vector<std::string> row) {
  GO_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void AsciiTable::add_row(const std::string& label, const std::vector<double>& values,
                         int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) row.push_back(fixed(v, precision));
  add_row(std::move(row));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&] {
    std::string line = "+";
    for (const std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::ostringstream out;
  out << "\n== " << title_ << " ==\n";
  out << rule() << render_row(header_) << rule();
  for (const auto& row : rows_) out << render_row(row);
  out << rule();
  return out.str();
}

void AsciiTable::print() const {
  std::cout << render() << std::flush;
}

std::string fixed(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string signed_percent(double fraction, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%+.*f%%", precision, fraction * 100.0);
  return buffer;
}

}  // namespace goodones::common
