// Minimal CSV reading/writing for experiment artifacts.
//
// The benches persist every reproduced table/figure as a CSV next to the
// console output so downstream plotting does not have to re-run experiments.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace goodones::common {

/// A rectangular CSV table: one header row plus data rows of equal width.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept { return rows_; }
  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_cols() const noexcept { return header_.size(); }

  /// Appends a row; width must match the header. Throws PreconditionError.
  void add_row(std::vector<std::string> row);

  /// Convenience: appends a row of doubles formatted with 6 significant digits.
  void add_numeric_row(const std::vector<double>& row);

  /// Column index by header name; throws PreconditionError if absent.
  std::size_t column_index(const std::string& name) const;

  /// Writes to a file with RFC-4180-style quoting of fields containing
  /// commas, quotes or newlines. Throws std::runtime_error on I/O failure.
  void write(const std::filesystem::path& path) const;

  /// Serializes to a CSV string (used by write and by tests).
  std::string to_string() const;

  /// Parses a CSV string (quoting-aware). Throws on ragged rows.
  static CsvTable parse(const std::string& text);

  /// Reads and parses a CSV file.
  static CsvTable read(const std::filesystem::path& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly (6 significant digits, no trailing zeros).
std::string format_double(double value);

}  // namespace goodones::common
