#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace goodones::common {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header) : header_(std::move(header)) {
  GO_EXPECTS(!header_.empty());
}

void CsvTable::add_row(std::vector<std::string> row) {
  GO_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void CsvTable::add_numeric_row(const std::vector<double>& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (const double v : row) fields.push_back(format_double(v));
  add_row(std::move(fields));
}

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw PreconditionError("no such CSV column: " + name);
}

std::string CsvTable::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) out << ',';
    out << quote(header_[i]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << quote(row[i]);
    }
    out << '\n';
  }
  return out.str();
}

void CsvTable::write(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open CSV for writing: " + path.string());
  file << to_string();
  if (!file) throw std::runtime_error("write failed: " + path.string());
}

CsvTable CsvTable::parse(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  const auto end_field = [&] {
    current.push_back(field);
    field.clear();
  };
  const auto end_record = [&] {
    end_field();
    records.push_back(std::move(current));
    current.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !field.empty() || !current.empty()) end_record();
        break;
      default:
        field += c;
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !field.empty() || !current.empty()) end_record();

  GO_EXPECTS(!records.empty());
  CsvTable table(records.front());
  for (std::size_t r = 1; r < records.size(); ++r) table.add_row(records[r]);
  return table;
}

CsvTable CsvTable::read(const std::filesystem::path& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open CSV for reading: " + path.string());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse(buffer.str());
}

std::string format_double(double value) {
  std::ostringstream out;
  out.precision(6);
  out << value;
  return out.str();
}

}  // namespace goodones::common
