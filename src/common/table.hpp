// ASCII table rendering for bench output. Each bench prints the paper-style
// rows through this so the console reproduction of every table/figure is
// uniformly formatted and easy to diff across runs.
#pragma once

#include <string>
#include <vector>

namespace goodones::common {

/// Column-aligned ASCII table with a title and a header row.
class AsciiTable {
 public:
  AsciiTable(std::string title, std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Doubles are rendered with the given fixed precision.
  void add_row(const std::string& label, const std::vector<double>& values, int precision = 3);

  /// Renders the full table (title, rule, header, rule, rows, rule).
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helper for table cells.
std::string fixed(double value, int precision = 3);

/// Formats a ratio as a signed percentage string, e.g. +27.5%.
std::string signed_percent(double fraction, int precision = 1);

}  // namespace goodones::common
