// RAII stream sockets and the serving mesh's transport seam.
//
// The wire layer above (serve/wire.hpp) is length-prefixed and byte-exact,
// so it only needs three things from a transport: exact-length reads,
// exact-length writes, and a listener that can be polled with a timeout.
// This header provides them behind a transport-agnostic surface:
//
//   Endpoint   names where a peer lives — "unix:/path" or "tcp:host:port" —
//              parseable from CLI flags and printable for logs
//   Socket     one connected stream (either transport, either end)
//   Listener   the abstract accept seam; UnixListener and TcpListener are
//              the two implementations, make_listener() picks by endpoint
//   connect_endpoint / connect_with_backoff
//              dialing, including the mesh's bounded-exponential-backoff +
//              jitter policy for peers that are down *right now* (a shard
//              mid-restart) but expected back
//
// Everything follows the library's error discipline: syscall failures throw
// the typed SocketError; a clean EOF at a frame boundary is a normal
// return, an EOF mid-buffer is the caller's (wire-layer) problem and
// reported distinctly so it can become a SerializationError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

namespace goodones::common {

/// Thrown on socket syscall failures (socket/bind/listen/connect/poll/
/// send/recv) and on connect_with_backoff exhausting its attempts.
/// Malformed *content* on a healthy socket is the wire layer's domain and
/// throws SerializationError there instead.
class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error(what) {}
};

/// Where a serving peer lives. Two transports: Unix-domain stream sockets
/// (single-host IPC, the daemon's original front end) and TCP (the mesh's
/// cross-host transport). Value type; compare/print/parse freely.
class Endpoint {
 public:
  enum class Kind { kNone, kUnix, kTcp };

  Endpoint() = default;

  static Endpoint unix_socket(std::filesystem::path path);
  static Endpoint tcp(std::string host, std::uint16_t port);

  /// Parses "unix:<path>", "tcp:<host>:<port>" (port 0 = ephemeral, the
  /// resolved port is reported by Listener::endpoint()), or a bare path
  /// (treated as unix — the pre-mesh CLI shorthand). Throws SocketError on
  /// anything else (empty text, missing port, port out of range).
  static Endpoint parse(std::string_view text);

  Kind kind() const noexcept { return kind_; }
  bool empty() const noexcept { return kind_ == Kind::kNone; }

  /// Unix-only accessor (empty path otherwise).
  const std::filesystem::path& path() const noexcept { return path_; }
  /// TCP-only accessors (empty host / port 0 otherwise).
  const std::string& host() const noexcept { return host_; }
  std::uint16_t port() const noexcept { return port_; }

  /// Canonical text form ("unix:/run/x.sock", "tcp:127.0.0.1:7461") —
  /// parse(to_string()) round-trips.
  std::string to_string() const;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;

 private:
  Kind kind_ = Kind::kNone;
  std::filesystem::path path_;
  std::string host_;
  std::uint16_t port_ = 0;
};

/// One connected stream socket (either transport, either end). Move-only;
/// closes on destroy.
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of `fd` (-1 = empty).
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// Result of read_exact: kOk (buffer filled), kClosed (EOF before the
  /// first byte — the peer hung up cleanly between frames), kTruncated
  /// (EOF after some bytes — the peer died mid-frame).
  enum class ReadResult { kOk, kClosed, kTruncated };

  /// Blocks until exactly `n` bytes arrive (retrying on EINTR / short
  /// reads). Throws SocketError on syscall failure, including a receive
  /// timeout when one is set.
  ReadResult read_exact(void* data, std::size_t n);

  /// Blocks until all `n` bytes are sent (MSG_NOSIGNAL — a vanished peer
  /// surfaces as SocketError, never SIGPIPE). When a send timeout is set
  /// and the peer stops draining, throws SocketError instead of blocking
  /// forever.
  void write_all(const void* data, std::size_t n);

  /// Bounds how long one send may block on a peer that stopped reading
  /// (SO_SNDTIMEO). 0 = never time out (the default). A server sets this
  /// so a stalled client cannot wedge its writer thread — and therefore
  /// shutdown — indefinitely.
  void set_send_timeout_ms(int timeout_ms);

  /// Bounds how long one recv may block on a silent peer (SO_RCVTIMEO).
  /// 0 = never time out (the default). Health probes set this so a hung
  /// shard cannot wedge the prober; the timeout surfaces as SocketError.
  void set_recv_timeout_ms(int timeout_ms);

  /// Half-closes the read side so a peer thread blocked in read_exact
  /// observes EOF after its in-flight frame; the write side stays open so
  /// that thread can still flush its response. No-op on an empty socket.
  void shutdown_read() noexcept;

  /// Half-closes the write side: the peer observes EOF after draining what
  /// was already sent, while this end can still read its replies. The fuzz
  /// harness sends a (possibly truncated) byte stream, half-closes, and
  /// collects whatever the server answers. No-op on an empty socket.
  void shutdown_write() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// The accept seam every frame server (serve::Daemon, serve::Router) binds
/// through: poll-with-timeout accept so an accept loop can observe a stop
/// flag without signals or a self-pipe. Obtain one via make_listener().
class Listener {
 public:
  virtual ~Listener() = default;

  /// Waits up to `timeout_ms` for a connection. Returns an empty Socket on
  /// timeout or after close(); throws SocketError on poll/accept failure.
  virtual Socket accept(int timeout_ms) = 0;

  /// Stops accepting (accept() returns empty from now on). Idempotent.
  virtual void close() noexcept = 0;

  /// The RESOLVED endpoint: for TCP bound with port 0, the kernel-assigned
  /// port (this is how tests and the mesh learn where a shard landed).
  virtual const Endpoint& endpoint() const noexcept = 0;
};

/// A bound + listening Unix-domain socket. Removes a stale socket file on
/// bind and unlinks its own file on destruction.
class UnixListener final : public Listener {
 public:
  explicit UnixListener(std::filesystem::path path);
  ~UnixListener() override;

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  const std::filesystem::path& path() const noexcept { return endpoint_.path(); }

  Socket accept(int timeout_ms) override;
  void close() noexcept override;
  const Endpoint& endpoint() const noexcept override { return endpoint_; }

 private:
  Endpoint endpoint_;
  int fd_ = -1;
};

/// A bound + listening TCP socket (SO_REUSEADDR so a restarted shard can
/// rebind its port immediately; TCP_NODELAY on accepted connections so
/// small request/reply frames are not Nagle-delayed). Binding port 0 picks
/// an ephemeral port; endpoint() reports the resolved one.
class TcpListener final : public Listener {
 public:
  TcpListener(const std::string& host, std::uint16_t port);
  explicit TcpListener(const Endpoint& endpoint);
  ~TcpListener() override;

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  Socket accept(int timeout_ms) override;
  void close() noexcept override;
  const Endpoint& endpoint() const noexcept override { return endpoint_; }

 private:
  Endpoint endpoint_;
  int fd_ = -1;
};

/// Binds a listener of the endpoint's transport. Throws SocketError when
/// the endpoint is empty or cannot be bound.
std::unique_ptr<Listener> make_listener(const Endpoint& endpoint);

/// Connects to a Unix-domain listener at `path`. Throws SocketError when
/// nothing is listening (or the path exceeds the sockaddr_un limit).
Socket connect_unix(const std::filesystem::path& path);

/// Connects to a TCP listener (numeric address or resolvable name;
/// TCP_NODELAY set). Throws SocketError when nothing is listening.
Socket connect_tcp(const std::string& host, std::uint16_t port);

/// Dials whatever transport the endpoint names. One attempt, no retries.
Socket connect_endpoint(const Endpoint& endpoint);

/// Reconnect policy for peers that are down *now* but expected back (a
/// shard mid-restart): bounded exponential backoff with jitter. The jitter
/// is deterministic per (endpoint, seed) — reproducible in tests — while
/// still de-synchronizing a fleet of clients hammering one recovering
/// shard (each client passes its own seed, or any nonzero salt).
struct BackoffConfig {
  int initial_delay_ms = 20;    ///< sleep before the 2nd attempt
  int max_delay_ms = 1000;      ///< exponential growth cap
  double multiplier = 2.0;      ///< delay growth per failed attempt
  double jitter = 0.2;          ///< each sleep is scaled by 1 ± jitter·u
  std::size_t max_attempts = 8; ///< total connect attempts before throwing
  std::uint64_t seed = 0;       ///< jitter stream salt (0 is fine)
};

/// Repeatedly dials `endpoint` under `config` until a connect succeeds or
/// max_attempts are exhausted (throws the last SocketError, annotated with
/// the attempt count). Total worst-case wait is the sum of the capped
/// exponential schedule — bounded by construction, never infinite.
Socket connect_with_backoff(const Endpoint& endpoint, const BackoffConfig& config);

}  // namespace goodones::common
