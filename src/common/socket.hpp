// RAII Unix-domain stream sockets for the serving daemon's IPC front end.
//
// Deliberately minimal: blocking sockets, exact-length reads/writes (the
// wire layer above is length-prefixed, so partial-read bookkeeping lives
// here and nowhere else), and a listener whose accept() polls with a
// timeout so an accept loop can observe a stop flag without signals or a
// self-pipe. Everything follows the library's error discipline: syscall
// failures throw the typed SocketError; a clean EOF at a frame boundary is
// a normal return, an EOF mid-buffer is the caller's (wire-layer) problem
// and reported distinctly so it can become a SerializationError.
#pragma once

#include <cstddef>
#include <filesystem>
#include <stdexcept>
#include <string>

namespace goodones::common {

/// Thrown on socket syscall failures (socket/bind/listen/connect/poll/
/// send/recv). Malformed *content* on a healthy socket is the wire layer's
/// domain and throws SerializationError there instead.
class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error(what) {}
};

/// One connected stream socket (either end). Move-only; closes on destroy.
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of `fd` (-1 = empty).
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// Result of read_exact: kOk (buffer filled), kClosed (EOF before the
  /// first byte — the peer hung up cleanly between frames), kTruncated
  /// (EOF after some bytes — the peer died mid-frame).
  enum class ReadResult { kOk, kClosed, kTruncated };

  /// Blocks until exactly `n` bytes arrive (retrying on EINTR / short
  /// reads). Throws SocketError on syscall failure.
  ReadResult read_exact(void* data, std::size_t n);

  /// Blocks until all `n` bytes are sent (MSG_NOSIGNAL — a vanished peer
  /// surfaces as SocketError, never SIGPIPE). When a send timeout is set
  /// and the peer stops draining, throws SocketError instead of blocking
  /// forever.
  void write_all(const void* data, std::size_t n);

  /// Bounds how long one send may block on a peer that stopped reading
  /// (SO_SNDTIMEO). 0 = never time out (the default). A server sets this
  /// so a stalled client cannot wedge its writer thread — and therefore
  /// shutdown — indefinitely.
  void set_send_timeout_ms(int timeout_ms);

  /// Half-closes the read side so a peer thread blocked in read_exact
  /// observes EOF after its in-flight frame; the write side stays open so
  /// that thread can still flush its response. No-op on an empty socket.
  void shutdown_read() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Connects to a Unix-domain listener at `path`. Throws SocketError when
/// nothing is listening (or the path exceeds the sockaddr_un limit).
Socket connect_unix(const std::filesystem::path& path);

/// A bound + listening Unix-domain socket. Removes a stale socket file on
/// bind and unlinks its own file on destruction.
class UnixListener {
 public:
  explicit UnixListener(std::filesystem::path path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }

  /// Waits up to `timeout_ms` for a connection. Returns an empty Socket on
  /// timeout or after close(); throws SocketError on poll/accept failure.
  Socket accept(int timeout_ms);

  /// Stops accepting (accept() returns empty from now on). Idempotent.
  void close() noexcept;

 private:
  std::filesystem::path path_;
  int fd_ = -1;
};

}  // namespace goodones::common
