#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace goodones::common {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (const double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double median(std::span<const double> xs) {
  GO_EXPECTS(!xs.empty());
  return quantile(xs, 0.5);
}

double quantile(std::span<const double> xs, double q) {
  GO_EXPECTS(!xs.empty());
  GO_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  GO_EXPECTS(a.size() == b.size());
  GO_EXPECTS(!a.empty());
  const double ma = mean(a);
  const double mb = mean(b);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::vector<double> min_max_normalize(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  if (out.empty()) return out;
  const auto [lo_it, hi_it] = std::minmax_element(out.begin(), out.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  if (hi == lo) {
    std::fill(out.begin(), out.end(), 0.5);
    return out;
  }
  for (double& x : out) x = (x - lo) / (hi - lo);
  return out;
}

double rmse(std::span<const double> a, std::span<const double> b) {
  GO_EXPECTS(a.size() == b.size());
  GO_EXPECTS(!a.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

double mae(std::span<const double> a, std::span<const double> b) {
  GO_EXPECTS(a.size() == b.size());
  GO_EXPECTS(!a.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

}  // namespace goodones::common
