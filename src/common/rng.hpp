// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit seed so that
// experiments are reproducible bit-for-bit. We implement xoshiro256** seeded
// via splitmix64 (the reference seeding procedure) rather than relying on
// std::mt19937, whose distribution implementations differ across standard
// libraries and would make cross-platform reproduction impossible.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace goodones::common {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
/// Also useful directly for cheap hash-like seed derivation.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** generator with explicit-seed construction and stable,
/// hand-rolled uniform/normal transforms (identical results everywhere).
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (expanded via splitmix64).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second value for speed).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) noexcept;

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Derives an independent child generator (for per-worker streams).
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace goodones::common
